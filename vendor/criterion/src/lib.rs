//! A minimal, API-compatible stand-in for the subset of `criterion`
//! this workspace's benches use: [`Criterion`], benchmark groups with
//! `warm_up_time` / `measurement_time` / `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Vendored because
//! the build environment has no access to crates.io.
//!
//! Statistics are deliberately simple: warm up for the configured time,
//! then run up to `sample_size` samples within the measurement budget
//! and report mean / min / max seconds per iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function by
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    defaults: Config,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            defaults: Config {
                warm_up: Duration::from_millis(300),
                measurement: Duration::from_secs(2),
                sample_size: 10,
            },
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.defaults;
        BenchmarkGroup { _parent: self, name: name.into(), config }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&id.to_string(), self.defaults, f);
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Time spent running the closure untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Target wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Maximum number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.config, f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.config, |b| f(b, input));
        self
    }

    /// Close the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Per-benchmark timing driver passed to the user closure.
pub struct Bencher {
    config: Config,
    samples: Vec<f64>,
}

impl Bencher {
    /// Warm up, then repeatedly time `routine`, recording seconds per
    /// sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.config.warm_up;
        loop {
            std::hint::black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let budget = Instant::now() + self.config.measurement;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
            if Instant::now() >= budget {
                break;
            }
        }
    }
}

fn run_benchmark(label: &str, config: Config, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { config, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let n = b.samples.len();
    // [min median max]: the median is the headline statistic — on
    // shared machines scheduler preemption produces far outliers that
    // make the mean unrepresentative of kernel cost.
    b.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = b.samples[0];
    let max = b.samples[n - 1];
    let median =
        if n % 2 == 1 { b.samples[n / 2] } else { 0.5 * (b.samples[n / 2 - 1] + b.samples[n / 2]) };
    println!(
        "{label:<48} time: [{} {} {}]  ({n} samples, median)",
        format_secs(min),
        format_secs(median),
        format_secs(max)
    );
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Group benchmark functions into one callable, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from one or more [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs >= 2, "warm-up plus at least one sample, got {runs}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
