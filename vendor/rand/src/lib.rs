//! A minimal, API-compatible stand-in for the subset of `rand` this
//! workspace uses: a deterministic seedable [`rngs::StdRng`] plus the
//! [`Rng`] methods `gen`, `gen_range`, and `gen_bool`. Vendored because
//! the build environment has no access to crates.io.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, but the workspace only relies on
//! determinism for a fixed seed, uniformity, and statistical quality
//! adequate for graph generation, which xoshiro provides.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// A deterministic, seedable pseudo-random generator
    /// (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding for xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types producible uniformly from a generator (`rng.gen::<T>()`).
pub trait Random: Sized {
    /// Sample a uniform value.
    fn random(rng: &mut dyn RngCore) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Generic over the output
/// type (as in real rand) so literals like `-0.5..0.5` unify with the
/// assignment target's float width.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Random>::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniform value of `T` (`rng.gen::<f64>()`).
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
