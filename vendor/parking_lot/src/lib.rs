//! A minimal, API-compatible stand-in for the subset of `parking_lot`
//! this workspace uses: [`RwLock`] and [`Mutex`] whose `read` / `write`
//! / `lock` return guards directly (no `Result`), implemented over
//! `std::sync` with poison recovery. Vendored because the build
//! environment has no access to crates.io.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_default() {
        let l: RwLock<Vec<u32>> = RwLock::default();
        assert!(l.read().is_empty());
    }
}
