//! The sliver of rayon's parallel iterators the workspace uses:
//! `par_chunks(_mut)` on slices, `zip`, and `for_each`.
//!
//! Items are materialized into a `Vec`, split into
//! [`current_num_threads`](crate::current_num_threads()) contiguous
//! groups, and each group is processed by one scoped thread — the same
//! static 1D decomposition the FusedMM drivers use, which is exactly
//! what the STREAM bandwidth probe needs.

use crate::current_num_threads;

/// A pseudo-parallel iterator wrapping a standard iterator.
pub struct Par<I> {
    inner: I,
}

impl<I: Iterator> Par<I> {
    /// Pair up with another parallel iterator, element by element.
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par { inner: self.inner.zip(other.inner) }
    }

    /// Apply `f` to every item, fanning out across threads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.inner.collect();
        let t = current_num_threads().max(1);
        if t <= 1 || items.len() <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let chunk = items.len().div_ceil(t);
        let mut items = items;
        std::thread::scope(|s| {
            let f = &f;
            while !items.is_empty() {
                let take = chunk.min(items.len());
                let group: Vec<I::Item> = items.drain(..take).collect();
                s.spawn(move || {
                    for item in group {
                        f(item);
                    }
                });
            }
        });
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel analogue of [`slice::chunks`].
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par { inner: self.chunks(chunk_size) }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel analogue of [`slice::chunks_mut`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par { inner: self.chunks_mut(chunk_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_shape_zip_for_each() {
        let b: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let c: Vec<f32> = (0..1000).map(|i| (i * 2) as f32).collect();
        let mut a = vec![0f32; 1000];
        a.par_chunks_mut(64).zip(b.par_chunks(64)).zip(c.par_chunks(64)).for_each(
            |((ac, bc), cc)| {
                for ((ai, &bi), &ci) in ac.iter_mut().zip(bc).zip(cc) {
                    *ai = bi + 3.0 * ci;
                }
            },
        );
        for i in 0..1000 {
            assert_eq!(a[i], i as f32 + 3.0 * (i * 2) as f32);
        }
    }
}
