//! A minimal, API-compatible stand-in for the subset of `rayon` this
//! workspace uses, implemented over [`std::thread::scope`]. The build
//! environment has no access to crates.io, so the dependency is
//! vendored rather than fetched.
//!
//! Covered surface:
//!
//! * [`current_num_threads`] — the pool width the drivers partition for;
//! * [`scope`] / [`Scope::spawn`] — structured fork-join parallelism
//!   (every spawn is a real OS thread; the workloads here spawn one
//!   task per partition, so thread counts stay small);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — width overrides
//!   for the scaling benchmarks, implemented as a thread-local override
//!   consulted by [`current_num_threads`];
//! * [`prelude`] — `par_chunks` / `par_chunks_mut` / `zip` / `for_each`,
//!   enough for the STREAM-triad bandwidth probe.

use std::cell::Cell;
use std::thread;

pub mod iter;

pub mod prelude {
    pub use crate::iter::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads computations should fan out to: the installed
/// pool's width when running under [`ThreadPool::install`], otherwise
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(|| thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
}

/// A scope for structured task parallelism; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
    width: Option<usize>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `f` as a task that must finish before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        let width = self.width;
        inner.spawn(move || {
            // Propagate the installed pool width into the worker so
            // nested `current_num_threads` calls see it.
            let prev = POOL_WIDTH.with(|w| w.replace(width));
            let s = Scope { inner, width };
            f(&s);
            POOL_WIDTH.with(|w| w.set(prev));
        });
    }
}

/// Run `op` with a [`Scope`] whose spawned tasks are all joined before
/// `scope` returns (the rayon fork-join contract).
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let width = POOL_WIDTH.with(|w| w.get());
    thread::scope(|s| {
        let wrapper = Scope { inner: s, width };
        op(&wrapper)
    })
}

/// Builder for a [`ThreadPool`] of a fixed width.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default (machine-width) settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool width (0 means machine width, as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool. Infallible here, but kept `Result` for API
    /// compatibility with rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = self
            .num_threads
            .unwrap_or_else(|| thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
        Ok(ThreadPool { width })
    }
}

/// A logical thread pool: a width that [`install`](ThreadPool::install)
/// makes visible to [`current_num_threads`] for the duration of a
/// closure. Work is still executed by scoped OS threads; the pool
/// controls how many tasks the drivers partition into.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's width installed as the current one.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_WIDTH.with(|w| w.replace(Some(self.width)));
        let out = f();
        POOL_WIDTH.with(|w| w.set(prev));
        out
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn install_overrides_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_width_visible_inside_scope_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            scope(|s| {
                s.spawn(|_| {
                    assert_eq!(current_num_threads(), 2);
                });
            });
        });
    }

    #[test]
    fn mutable_borrows_can_be_split_across_tasks() {
        let mut data = [0u32; 10];
        let (a, b) = data.split_at_mut(5);
        scope(|s| {
            s.spawn(move |_| a.fill(1));
            s.spawn(move |_| b.fill(2));
        });
        assert_eq!(&data[..5], &[1; 5]);
        assert_eq!(&data[5..], &[2; 5]);
    }
}
