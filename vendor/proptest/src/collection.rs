//! Collection strategies: `vec(element, size_range)`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_tuples() {
        let s = vec((0usize..7, -1.0f32..1.0), 0..10);
        let mut rng = TestRng::for_case(3);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 10);
            for (a, b) in v {
                assert!(a < 7);
                assert!((-1.0..1.0).contains(&b));
            }
        }
    }
}
