//! Case generation and failure plumbing for the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic per-case random source. Case `i` of every property
/// test uses the same stream on every run, so failures reproduce
/// without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case number `case`.
    pub fn for_case(case: u64) -> Self {
        // Decorrelate neighbouring cases with a golden-ratio stride.
        TestRng(StdRng::seed_from_u64(case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5DEECE66D))
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property case (carried by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
