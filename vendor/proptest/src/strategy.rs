//! Value-generation strategies: ranges, tuples, `Just`, and the
//! `prop_map` / `prop_flat_map` combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range_strategy {
    ($($t:ty, $bits:expr, $mant:expr);*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / (1u64 << $mant) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, 32, 24; f64, 64, 53);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_applies_function() {
        let s = (1usize..5).prop_map(|v| v * 10);
        let mut rng = TestRng::for_case(0);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn tuple_samples_componentwise() {
        let s = (0usize..4, 10u64..20, -1.0f32..1.0);
        let mut rng = TestRng::for_case(1);
        for _ in 0..50 {
            let (a, b, c) = s.sample(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn just_clones() {
        let s = Just(vec![1, 2, 3]);
        let mut rng = TestRng::for_case(2);
        assert_eq!(s.sample(&mut rng), vec![1, 2, 3]);
    }
}
