//! A minimal, API-compatible stand-in for the subset of `proptest` this
//! workspace's property tests use. Vendored because the build
//! environment has no access to crates.io.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `arg in strategy` parameters;
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range
//!   strategies over integers and floats, tuple strategies up to arity
//!   four, [`strategy::Just`], and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-case seed (reproducible by construction, so no
//! failure-persistence files), and there is no shrinking — a failing
//! case reports the case number; re-running reproduces it exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Runner configuration: the number of generated cases per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `body` over generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest case #{case} (of {}) failed: {e}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body, failing the current case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in -1.5f32..1.5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-1.5..1.5).contains(&b));
        }

        #[test]
        fn flat_map_threads_outer_value(
            pair in (2usize..8).prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={} n={}", k, n);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> =
            (0..5).map(|c| s.sample(&mut crate::test_runner::TestRng::for_case(c))).collect();
        let b: Vec<u64> =
            (0..5).map(|c| s.sample(&mut crate::test_runner::TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }
}
