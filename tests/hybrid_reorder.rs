//! Degree-aware hybrid execution and load-time reordering, end to end:
//! the hybrid kernel must be bit-identical to the uniform baseline for
//! every dimension class, partition count, and degree shape (including
//! star graphs and empty rows); a serving engine configured with any
//! [`Reordering`] and hybrid blocking — sharded or not, cached or not
//! — must answer every request bit-identically to a plain engine in
//! the external id space; and permutations must round-trip exactly.

use proptest::prelude::*;

use fusedmm::prelude::*;

/// A graph with all four degree classes: a hub row adjacent to
/// everyone, a mid-degree block, a long short-row tail, and empty rows
/// at the end.
fn skewed(n: usize, seed: u64) -> Csr {
    let mut c = Coo::new(n, n);
    for v in 1..n {
        c.push(0, v, 0.3 + ((v + seed as usize) % 11) as f32 * 0.05);
    }
    for u in 1..n / 4 {
        for k in 1..=10usize {
            c.push(u, (u * 7 + k * 13 + seed as usize) % n, 1.0 - k as f32 * 0.02);
        }
    }
    for u in n / 4..n - n / 8 {
        for k in 1..=(u % 3 + 1) {
            c.push(u, (u + k * 17) % n, 0.8);
        }
    }
    // Rows in n - n/8 .. n stay empty.
    c.to_csr(Dedup::Last)
}

/// Hybrid blocking vs the baseline paths across the dimension classes
/// the dispatcher distinguishes: d = 8 resolves to a generated
/// const-dimension kernel (hybrid falls through), d = 96 and 192 are
/// strip-level dims where the degree-classed passes actually engage.
#[test]
fn hybrid_bit_identical_across_dims_and_parts() {
    let n = 160;
    let a = skewed(n, 3);
    let cfg = HybridConfig { short_max: 8, mega_floor: 32 };
    for d in [8usize, 96, 192] {
        let x = random_features(n, d, 0.5, 11);
        let y = random_features(n, d, 0.5, 22);
        let ops = OpSet::sigmoid_embedding(None);
        for parts in [1usize, 2, 4] {
            let auto = fusedmm_opt_with(
                &a,
                &x,
                &y,
                &ops,
                Blocking::Auto,
                Some(parts),
                PartitionStrategy::NnzBalanced,
            );
            let hybrid = fusedmm_opt_with(
                &a,
                &x,
                &y,
                &ops,
                Blocking::Hybrid(cfg),
                Some(parts),
                PartitionStrategy::NnzBalanced,
            );
            assert_eq!(auto.as_slice(), hybrid.as_slice(), "hybrid vs auto d={d} parts={parts}");
            if d > 64 {
                // Strip-level dims: the uniform strip-mined path is the
                // exact baseline the hybrid classes must reproduce.
                let strip = fusedmm_opt_with(
                    &a,
                    &x,
                    &y,
                    &ops,
                    Blocking::StripMined,
                    Some(parts),
                    PartitionStrategy::NnzBalanced,
                );
                assert_eq!(
                    strip.as_slice(),
                    hybrid.as_slice(),
                    "hybrid vs strip d={d} parts={parts}"
                );
            }
        }
    }
}

/// A pure star (every edge in one row) exercises the cooperative
/// mega-row path; the result must still match the uniform kernel bit
/// for bit and the mega pass must show up in the kernel profile.
#[test]
fn star_graph_mega_path_bit_identical_and_profiled() {
    let n = 400;
    let d = 96;
    let mut c = Coo::new(n, n);
    for v in 1..n {
        c.push(0, v, 1.0 + (v % 5) as f32 * 0.1);
    }
    let a = c.to_csr(Dedup::Last);
    let x = random_features(n, d, 0.5, 7);
    let y = random_features(n, d, 0.5, 9);
    let ops = OpSet::tdist_embedding();
    let cfg = HybridConfig { short_max: 8, mega_floor: 32 };
    reset_kernel_profiles();
    let strip = fusedmm_opt_with(
        &a,
        &x,
        &y,
        &ops,
        Blocking::StripMined,
        Some(4),
        PartitionStrategy::NnzBalanced,
    );
    let hybrid = fusedmm_opt_with(
        &a,
        &x,
        &y,
        &ops,
        Blocking::Hybrid(cfg),
        Some(4),
        PartitionStrategy::NnzBalanced,
    );
    assert_eq!(strip.as_slice(), hybrid.as_slice());
    let labels: Vec<&str> = kernel_profiles().iter().map(|p| p.blocking).collect();
    assert!(labels.contains(&"hybrid-mega"), "mega pass missing from profiles: {labels:?}");
}

/// Every (reordering, shards, cache) serving combination with hybrid
/// blocking must answer in the external id space, bit-identical to a
/// plain unreordered engine — reordering and degree-classed kernels
/// are invisible to callers.
#[test]
fn reordered_hybrid_serving_bit_identical() {
    let n = 180;
    let d = 96;
    let a = skewed(n, 5);
    let x = random_features(n, d, 0.5, 31);
    let y = random_features(n, d, 0.5, 32);
    let ops = OpSet::sigmoid_embedding(None);

    let baseline =
        Engine::new(a.clone(), x.clone(), y.clone(), ops.clone(), EngineConfig::default());
    let subsets: Vec<Vec<usize>> = vec![
        (0..n).collect(),
        (0..n).rev().step_by(3).collect(),
        vec![0, 0, 7, n - 1, 7],
        vec![n - 1],
    ];
    let expected: Vec<Dense> = subsets.iter().map(|s| baseline.embed(s).unwrap()).collect();
    let full = baseline.infer_full();

    for reordering in [Reordering::DegreeSort, Reordering::RcmBfs] {
        for nshards in [1usize, 2, 4] {
            for cache in [None, Some(CacheConfig::default())] {
                let label =
                    format!("reordering={reordering:?} shards={nshards} cache={}", cache.is_some());
                let cfg = EngineConfig {
                    blocking: Some(Blocking::Hybrid(HybridConfig { short_max: 8, mega_floor: 64 })),
                    cache,
                    reordering: Some(reordering),
                    ..EngineConfig::default()
                };
                let engine =
                    ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), nshards, cfg);
                assert_eq!(engine.infer_full().as_slice(), full.as_slice(), "{label}: infer_full");
                for (s, want) in subsets.iter().zip(&expected) {
                    // Twice when cached: the second pass serves hits.
                    for round in 0..2 {
                        let got = engine.embed(s).unwrap();
                        assert_eq!(
                            got.as_slice(),
                            want.as_slice(),
                            "{label}: embed round {round} of {} rows",
                            s.len()
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Permutation round trip: composing a reordering's forward and
    /// inverse maps is the identity on ids, dense rows, and the graph
    /// itself.
    #[test]
    fn permutation_compose_inverse_is_identity(
        seed in 0u64..500,
        n in 4usize..64,
        which in 0usize..2,
    ) {
        let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(seed));
        let r = if which == 0 { Reordering::DegreeSort } else { Reordering::RcmBfs };
        let perm = r.compute(&a);
        prop_assert_eq!(perm.len(), n);

        // Ids: to_old ∘ to_new = id and the bulk maps agree.
        let ids: Vec<usize> = (0..n).collect();
        for &u in &ids {
            prop_assert_eq!(perm.to_old(perm.to_new(u)), u);
        }
        prop_assert_eq!(perm.map_to_old(&perm.map_to_new(&ids)), ids);

        // Dense rows: unpermute ∘ permute = id, bitwise.
        let m = random_features(n, 24, 0.5, seed ^ 0xF00D);
        let round = perm.unpermute_rows(&perm.permute_rows(&m));
        prop_assert_eq!(round.as_slice(), m.as_slice());

        // Graph: applying the inverse permutation to the permuted
        // graph restores every row exactly.
        let inverse = Permutation::from_new_of_old(perm.old_of_new().to_vec());
        let back = inverse.permute_csr(&perm.permute_csr(&a));
        for u in 0..n {
            prop_assert_eq!(back.row(u), a.row(u), "row {} after round trip", u);
        }
    }
}
