//! The central correctness claim of the paper (§V-D): fusing SDDMM and
//! SpMM "does not alter the actual computations performed". These tests
//! drive random graphs and features through every execution path —
//! sequential reference, generic parallel, dynamic-strip specialized,
//! register-blocked specialized, and the unfused DGL-style pipeline —
//! and require elementwise agreement, including property-based random
//! exploration with proptest.

use proptest::prelude::*;
use std::sync::Arc;

use fusedmm::baseline::unfused::unfused_pipeline;
use fusedmm::prelude::*;

fn random_graph(n: usize, edges: usize, seed: u64) -> Csr {
    rmat(&RmatConfig::new(n, edges).with_seed(seed))
}

fn all_presets(d: usize) -> Vec<OpSet> {
    vec![
        OpSet::sigmoid_embedding(None),
        OpSet::sigmoid_embedding(Some(Arc::new(SigmoidLut::new(8.0, 1 << 16)))),
        OpSet::fr_model(0.75),
        OpSet::tdist_embedding(),
        OpSet::gcn(),
        OpSet::gnn_mlp(Arc::new(Mlp::seeded(d, 8, d, 5))),
    ]
}

#[test]
fn every_execution_path_agrees_on_generated_dims() {
    for d in [8usize, 32, 64] {
        let a = random_graph(60, 240, d as u64);
        let x = random_features(60, d, 0.5, 1);
        let y = random_features(60, d, 0.5, 2);
        for ops in all_presets(d) {
            let reference = fusedmm_reference(&a, &x, &y, &ops);
            let generic = fusedmm_generic(&a, &x, &y, &ops);
            let opt = fusedmm_opt(&a, &x, &y, &ops);
            let tuned = fusedmm(&a, &x, &y, &ops);
            let unfused = unfused_pipeline(&a, &x, &y, &ops).z;
            // LUT sigmoid is an approximation; allow its table error.
            let tol = if matches!(ops.sop, SOp::SigmoidLut(_)) { 2e-3 } else { 1e-4 };
            for (name, z) in
                [("generic", &generic), ("opt", &opt), ("tuned", &tuned), ("unfused", &unfused)]
            {
                let diff = z.max_abs_diff(&reference);
                assert!(diff < tol, "{name} d={d} pattern {:?}: diff {diff}", ops.pattern);
            }
        }
    }
}

#[test]
fn rectangular_minibatch_slices_agree() {
    use fusedmm::sparse::slice::{batches, gather_rows, slice_rows};
    let a = random_graph(100, 500, 3);
    let d = 16;
    let full_x = random_features(100, d, 0.5, 4);
    let y = random_features(100, d, 0.5, 5);
    let ops = OpSet::sigmoid_embedding(None);
    for batch in batches(100, 32) {
        let mb = slice_rows(&a, &batch);
        let xb = gather_rows(&full_x, &batch);
        let fused = fusedmm_opt(&mb.adj, &xb, &y, &ops);
        let unfused = unfused_pipeline(&mb.adj, &xb, &y, &ops).z;
        assert!(fused.max_abs_diff(&unfused) < 1e-4);
    }
}

#[test]
fn partition_count_does_not_change_results() {
    let a = random_graph(80, 400, 9);
    let d = 32;
    let x = random_features(80, d, 0.5, 6);
    let y = random_features(80, d, 0.5, 7);
    let ops = OpSet::fr_model(0.5);
    let reference = fusedmm_reference(&a, &x, &y, &ops);
    for parts in [1usize, 2, 3, 7, 16, 80] {
        for strategy in [PartitionStrategy::NnzBalanced, PartitionStrategy::RowBalanced] {
            let z = fusedmm::kernel::fusedmm_generic_opts(&a, &x, &y, &ops, Some(parts), strategy);
            assert!(z.max_abs_diff(&reference) < 1e-5, "parts={parts} strategy={strategy:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random custom operator sets: fused == unfused for arbitrary
    /// (standard-op) combinations, not just the named presets.
    #[test]
    fn random_standard_opsets_agree(
        seed in 0u64..1000,
        vop_idx in 0usize..4,
        rop_idx in 0usize..4,
        sop_idx in 0usize..4,
        aop_idx in 0usize..2,
        n in 8usize..40,
        d in 1usize..20,
    ) {
        let vop = [VOp::Add, VOp::Sub, VOp::Mul, VOp::Sel2nd][vop_idx].clone();
        let rop = [ROp::Sum, ROp::Norm, ROp::Max, ROp::Noop][rop_idx].clone();
        let sop = [SOp::Sigmoid, SOp::Relu, SOp::Scale(0.5), SOp::Noop][sop_idx].clone();
        let aop = [AOp::Sum, AOp::Max][aop_idx].clone();
        let ops = OpSet::custom(vop, rop, sop, MOp::Mul, aop);

        let a = random_graph(n, 3 * n, seed);
        let x = random_features(n, d, 0.5, seed ^ 1);
        let y = random_features(n, d, 0.5, seed ^ 2);

        let fused = fusedmm_generic(&a, &x, &y, &ops);
        let unfused = unfused_pipeline(&a, &x, &y, &ops).z;
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        prop_assert!(fused.max_abs_diff(&reference) < 1e-4);
        prop_assert!(unfused.max_abs_diff(&reference) < 1e-4);
    }

    /// The specialized kernels agree with the reference on arbitrary
    /// graphs and any dimension (generated or not).
    #[test]
    fn specialized_kernels_agree_on_any_dim(
        seed in 0u64..1000,
        n in 8usize..48,
        d in 1usize..70,
        pattern in 0usize..4,
    ) {
        let ops = match pattern {
            0 => OpSet::sigmoid_embedding(None),
            1 => OpSet::fr_model(0.3),
            2 => OpSet::tdist_embedding(),
            _ => OpSet::gcn(),
        };
        let a = random_graph(n, 2 * n, seed);
        let x = random_features(n, d, 0.5, seed ^ 3);
        let y = random_features(n, d, 0.5, seed ^ 4);
        let opt = fusedmm_opt(&a, &x, &y, &ops);
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        prop_assert!(opt.max_abs_diff(&reference) < 1e-4,
            "pattern {:?} n={n} d={d}: {}", ops.pattern, opt.max_abs_diff(&reference));
    }
}
