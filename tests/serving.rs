//! Serving-path correctness: the row-subset kernel must agree with the
//! full-graph reference on exactly the requested rows — for random
//! graphs, operator sets, and subsets (empty, duplicated, out of
//! order) — and the engine must preserve that agreement under
//! concurrent, overlapping request traffic.

use proptest::prelude::*;
use std::time::Duration;

use fusedmm::prelude::*;
use fusedmm::serve::score_edges;

fn assert_rows_match(z: &Dense, reference: &Dense, rows: &[usize], tol: f32, label: &str) {
    assert_eq!(z.nrows(), rows.len(), "{label}: one output row per requested row");
    for (i, &u) in rows.iter().enumerate() {
        for k in 0..z.ncols() {
            let (got, want) = (z.get(i, k), reference.get(u, k));
            assert!(
                (got - want).abs() < tol,
                "{label}: row {i} (vertex {u}) lane {k}: {got} vs {want}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn subset_rows_equal_reference_rows(
        seed in 0u64..500,
        n in 8usize..48,
        d in 1usize..40,
        pattern in 0usize..4,
        pick in proptest::collection::vec(0usize..1000, 0..24),
    ) {
        let ops = match pattern {
            0 => OpSet::sigmoid_embedding(None),
            1 => OpSet::fr_model(0.3),
            2 => OpSet::tdist_embedding(),
            _ => OpSet::gcn(),
        };
        let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 1);
        let y = random_features(n, d, 0.5, seed ^ 2);
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        // Arbitrary order, with duplicates, possibly empty.
        let rows: Vec<usize> = pick.into_iter().map(|p| p % n).collect();
        let z = fusedmm_rows(&a, &rows, &x, &y, &ops);
        prop_assert_eq!(z.nrows(), rows.len());
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..d {
                prop_assert!(
                    (z.get(i, k) - reference.get(u, k)).abs() < 1e-5,
                    "pattern {:?} n={} d={} row {} vertex {}",
                    ops.pattern, n, d, i, u
                );
            }
        }
    }

    #[test]
    fn plan_and_direct_row_calls_agree(
        seed in 0u64..200,
        n in 8usize..32,
        d in 1usize..24,
    ) {
        let ops = OpSet::sigmoid_embedding(None);
        let a = rmat(&RmatConfig::new(n, 2 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 5);
        let y = random_features(n, d, 0.5, seed ^ 6);
        let rows: Vec<usize> = (0..n).rev().step_by(2).collect();
        let plan = Plan::prepare(&ops, d);
        let via_plan = plan.execute_rows(&a, &rows, &x, &y, &ops);
        let direct = fusedmm_rows(&a, &rows, &x, &y, &ops);
        prop_assert!(via_plan.max_abs_diff(&direct) < 1e-6);
    }
}

#[test]
fn empty_duplicate_and_reversed_subsets() {
    let n = 30;
    let a = rmat(&RmatConfig::new(n, 120).with_seed(9));
    let x = random_features(n, 16, 0.5, 1);
    let y = random_features(n, 16, 0.5, 2);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &x, &y, &ops);

    let empty = fusedmm_rows(&a, &[], &x, &y, &ops);
    assert_eq!((empty.nrows(), empty.ncols()), (0, 16));

    let dupes = vec![4usize; 7];
    assert_rows_match(&fusedmm_rows(&a, &dupes, &x, &y, &ops), &reference, &dupes, 1e-5, "dupes");

    let reversed: Vec<usize> = (0..n).rev().collect();
    assert_rows_match(
        &fusedmm_rows(&a, &reversed, &x, &y, &ops),
        &reference,
        &reversed,
        1e-5,
        "reversed",
    );
}

#[test]
fn engine_serves_concurrent_overlapping_batches() {
    let n = 120;
    let d = 32;
    let a = rmat(&RmatConfig::new(n, 600).with_seed(77));
    let feats = random_features(n, d, 0.5, 3);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &feats, &feats, &ops);

    let engine = Engine::new(
        a,
        feats.clone(),
        feats,
        ops,
        EngineConfig {
            coalesce_window: Duration::from_micros(20),
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        },
    );

    let threads = 8;
    let rounds = 6;
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = &engine;
            let reference = &reference;
            s.spawn(move || {
                for r in 0..rounds {
                    // Deliberately overlapping subsets across threads.
                    let nodes: Vec<usize> =
                        (0..16).map(|i| (t * 11 + r * 17 + i * 5) % n).collect();
                    let z = engine.embed(&nodes).expect("embed succeeds");
                    assert_rows_match(&z, reference, &nodes, 1e-5, "concurrent embed");
                }
            });
        }
    });

    let m = engine.metrics();
    assert_eq!(m.embed.count, (threads * rounds) as u64);
    assert_eq!(m.rows_requested, (threads * rounds * 16) as u64);
    assert!(m.rows_computed <= m.rows_requested, "dedup never computes more than asked");
    assert!(m.embed.p50 <= m.embed.p99);
    assert!(m.embed_requests_per_sec > 0.0);
}

#[test]
fn engine_edge_scores_match_direct_sddmm() {
    let n = 40;
    let a = rmat(&RmatConfig::new(n, 160).with_seed(5));
    let x = random_features(n, 8, 0.5, 7);
    let y = random_features(n, 8, 0.5, 8);
    let ops = OpSet::sigmoid_embedding(None);
    let pairs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u * 3 + 1) % n)).collect();
    let direct = score_edges(&a, &pairs, &x, &y, &ops);

    let engine = Engine::new(
        a,
        x.clone(),
        y,
        ops,
        EngineConfig { blocking: Some(Blocking::Auto), ..EngineConfig::default() },
    );
    let served = engine.score_edges(&pairs).unwrap();
    assert_eq!(served.len(), direct.len());
    for (i, (s, d)) in served.iter().zip(&direct).enumerate() {
        assert!((s - d).abs() < 1e-6, "pair {i}");
    }
    // Scores are sigmoids: all in (0, 1).
    assert!(served.iter().all(|&s| s > 0.0 && s < 1.0));
}
