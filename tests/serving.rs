//! Serving-path correctness: the row-subset kernel must agree with the
//! full-graph reference on exactly the requested rows — for random
//! graphs, operator sets, and subsets (empty, duplicated, out of
//! order) — the engine must preserve that agreement under concurrent,
//! overlapping request traffic, responses must pin exactly one feature
//! epoch while publishes race them, and a PART1D-sharded engine must be
//! bit-identical to the single engine on the same graph.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fusedmm::prelude::*;
use fusedmm::serve::score_edges;

fn assert_rows_match(z: &Dense, reference: &Dense, rows: &[usize], tol: f32, label: &str) {
    assert_eq!(z.nrows(), rows.len(), "{label}: one output row per requested row");
    for (i, &u) in rows.iter().enumerate() {
        for k in 0..z.ncols() {
            let (got, want) = (z.get(i, k), reference.get(u, k));
            assert!(
                (got - want).abs() < tol,
                "{label}: row {i} (vertex {u}) lane {k}: {got} vs {want}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn subset_rows_equal_reference_rows(
        seed in 0u64..500,
        n in 8usize..48,
        d in 1usize..40,
        pattern in 0usize..4,
        pick in proptest::collection::vec(0usize..1000, 0..24),
    ) {
        let ops = match pattern {
            0 => OpSet::sigmoid_embedding(None),
            1 => OpSet::fr_model(0.3),
            2 => OpSet::tdist_embedding(),
            _ => OpSet::gcn(),
        };
        let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 1);
        let y = random_features(n, d, 0.5, seed ^ 2);
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        // Arbitrary order, with duplicates, possibly empty.
        let rows: Vec<usize> = pick.into_iter().map(|p| p % n).collect();
        let z = fusedmm_rows(&a, &rows, &x, &y, &ops);
        prop_assert_eq!(z.nrows(), rows.len());
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..d {
                prop_assert!(
                    (z.get(i, k) - reference.get(u, k)).abs() < 1e-5,
                    "pattern {:?} n={} d={} row {} vertex {}",
                    ops.pattern, n, d, i, u
                );
            }
        }
    }

    #[test]
    fn plan_and_direct_row_calls_agree(
        seed in 0u64..200,
        n in 8usize..32,
        d in 1usize..24,
    ) {
        let ops = OpSet::sigmoid_embedding(None);
        let a = rmat(&RmatConfig::new(n, 2 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 5);
        let y = random_features(n, d, 0.5, seed ^ 6);
        let rows: Vec<usize> = (0..n).rev().step_by(2).collect();
        let plan = Plan::prepare(&ops, d);
        let via_plan = plan.execute_rows(&a, &rows, &x, &y, &ops);
        let direct = fusedmm_rows(&a, &rows, &x, &y, &ops);
        prop_assert!(via_plan.max_abs_diff(&direct) < 1e-6);
    }
}

#[test]
fn empty_duplicate_and_reversed_subsets() {
    let n = 30;
    let a = rmat(&RmatConfig::new(n, 120).with_seed(9));
    let x = random_features(n, 16, 0.5, 1);
    let y = random_features(n, 16, 0.5, 2);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &x, &y, &ops);

    let empty = fusedmm_rows(&a, &[], &x, &y, &ops);
    assert_eq!((empty.nrows(), empty.ncols()), (0, 16));

    let dupes = vec![4usize; 7];
    assert_rows_match(&fusedmm_rows(&a, &dupes, &x, &y, &ops), &reference, &dupes, 1e-5, "dupes");

    let reversed: Vec<usize> = (0..n).rev().collect();
    assert_rows_match(
        &fusedmm_rows(&a, &reversed, &x, &y, &ops),
        &reference,
        &reversed,
        1e-5,
        "reversed",
    );
}

#[test]
fn engine_serves_concurrent_overlapping_batches() {
    let n = 120;
    let d = 32;
    let a = rmat(&RmatConfig::new(n, 600).with_seed(77));
    let feats = random_features(n, d, 0.5, 3);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &feats, &feats, &ops);

    let engine = Engine::new(
        a,
        feats.clone(),
        feats,
        ops,
        EngineConfig {
            coalesce_window: Duration::from_micros(20),
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        },
    );

    let threads = 8;
    let rounds = 6;
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = &engine;
            let reference = &reference;
            s.spawn(move || {
                for r in 0..rounds {
                    // Deliberately overlapping subsets across threads.
                    let nodes: Vec<usize> =
                        (0..16).map(|i| (t * 11 + r * 17 + i * 5) % n).collect();
                    let z = engine.embed(&nodes).expect("embed succeeds");
                    assert_rows_match(&z, reference, &nodes, 1e-5, "concurrent embed");
                }
            });
        }
    });

    let m = engine.metrics();
    assert_eq!(m.embed.count, (threads * rounds) as u64);
    assert_eq!(m.rows_requested, (threads * rounds * 16) as u64);
    assert!(m.rows_computed <= m.rows_requested, "dedup never computes more than asked");
    assert!(m.embed.p50 <= m.embed.p99);
    assert!(m.embed_requests_per_sec > 0.0);
}

/// Build the snapshot-isolation fixture: a ring graph (every row has
/// exactly one unit-weight edge) under GCN ops, so with features filled
/// with the constant `c`, every lane of every embed row equals `c`
/// exactly (z_u = 1.0 * y_{u+1}). Publishing `c = epoch + 1.0` makes
/// any served row reveal which epoch produced it — and any torn
/// response reveal itself as a mix of constants.
fn ring_fixture(n: usize, d: usize) -> (Csr, Dense, EngineConfig) {
    let mut c = Coo::new(n, n);
    for u in 0..n {
        c.push(u, (u + 1) % n, 1.0);
    }
    let cfg = EngineConfig {
        coalesce_window: Duration::from_micros(20),
        blocking: Some(Blocking::Auto),
        ..EngineConfig::default()
    };
    (c.to_csr(Dedup::Sum), Dense::filled(n, d, 1.0), cfg)
}

/// Assert every lane of every row of `z` equals one single epoch
/// constant from `1.0..=max`, and return it.
fn assert_single_epoch(z: &Dense, max: f32, label: &str) -> f32 {
    let first = z.get(0, 0);
    assert!(
        first >= 1.0 && first <= max && first.fract() == 0.0,
        "{label}: value {first} is not a published epoch constant"
    );
    for i in 0..z.nrows() {
        for k in 0..z.ncols() {
            assert_eq!(
                z.get(i, k),
                first,
                "{label}: row {i} lane {k} mixes epochs ({} vs {first})",
                z.get(i, k)
            );
        }
    }
    first
}

/// The acceptance-criteria concurrency test: readers hammer `embed`
/// while a writer repeatedly publishes; every response must be
/// consistent with exactly one epoch (never a mix), and epochs must be
/// observed monotonically per reader (a later request never sees an
/// older epoch than an earlier one did).
#[test]
fn readers_never_observe_a_torn_epoch_during_publishes() {
    let n = 96;
    let d = 16;
    let publishes = 60usize;
    let (a, feats, cfg) = ring_fixture(n, d);
    let eng = Engine::new(a, feats.clone(), feats, OpSet::gcn(), cfg);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let eng = &eng;
        let done = &done;
        // The writer: publish epoch constants 2.0, 3.0, ...
        s.spawn(move || {
            for e in 0..publishes {
                let c = (e + 2) as f32;
                eng.store().publish(Dense::filled(n, d, c), Dense::filled(n, d, c));
                std::thread::sleep(Duration::from_micros(200));
            }
            done.store(true, Ordering::Release);
        });
        // The readers: overlapping subsets, full speed.
        for t in 0..6usize {
            s.spawn(move || {
                let mut last = 0.0f32;
                let mut round = 0usize;
                while !done.load(Ordering::Acquire) || round == 0 {
                    let nodes: Vec<usize> = (0..12).map(|i| (t * 5 + i * 7 + round) % n).collect();
                    let z = eng.embed(&nodes).expect("embed during publishes");
                    let epoch = assert_single_epoch(
                        &z,
                        (publishes + 1) as f32,
                        &format!("reader {t} round {round}"),
                    );
                    assert!(
                        epoch >= last,
                        "reader {t} went back in time: epoch {epoch} after {last}"
                    );
                    last = epoch;
                    round += 1;
                }
            });
        }
    });
    let m = eng.metrics();
    assert_eq!(m.epoch_swaps, publishes as u64);
    assert_eq!(m.feature_epoch, publishes as u64);
}

/// Same isolation property through the sharded front end: one pinned
/// epoch per request even when the rows span several band engines.
#[test]
fn sharded_responses_never_tear_across_shards_or_epochs() {
    let n = 90;
    let d = 8;
    let publishes = 40usize;
    let (a, feats, cfg) = ring_fixture(n, d);
    let eng = ShardedEngine::new(a, feats.clone(), feats, OpSet::gcn(), 3, cfg);
    assert!(eng.nshards() > 1, "fixture must actually shard");
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let eng = &eng;
        let done = &done;
        s.spawn(move || {
            for e in 0..publishes {
                let c = (e + 2) as f32;
                eng.store().publish(Dense::filled(n, d, c), Dense::filled(n, d, c));
                std::thread::sleep(Duration::from_micros(300));
            }
            done.store(true, Ordering::Release);
        });
        for t in 0..4usize {
            s.spawn(move || {
                let mut round = 0usize;
                while !done.load(Ordering::Acquire) || round == 0 {
                    // Deliberately span every band: stride across 0..n.
                    let nodes: Vec<usize> = (0..9).map(|i| (i * 11 + t + round) % n).collect();
                    let z = eng.embed(&nodes).expect("sharded embed during publishes");
                    assert_single_epoch(
                        &z,
                        (publishes + 1) as f32,
                        &format!("sharded reader {t} round {round}"),
                    );
                    round += 1;
                }
            });
        }
    });
    assert_eq!(eng.metrics().epoch_swaps, publishes as u64);
}

/// The acceptance-criteria equivalence test: a ShardedEngine with 1, 2,
/// and 4 shards returns **bit-identical** results to the single Engine
/// on the same graph, for embed (request order, duplicates), edge
/// scoring, and full inference.
#[test]
fn sharded_engines_are_bit_identical_to_the_single_engine() {
    let n = 150;
    let d = 24;
    let a = rmat(&RmatConfig::new(n, 6 * n).with_seed(21));
    let x = random_features(n, d, 0.5, 11);
    let y = random_features(n, d, 0.5, 12);
    let ops = OpSet::sigmoid_embedding(None);
    let cfg = EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        ..EngineConfig::default()
    };
    let single = Engine::new(a.clone(), x.clone(), y.clone(), ops.clone(), cfg.clone());

    let nodes: Vec<usize> = (0..40).map(|i| (i * 13 + 5) % n).chain([7, 7, 149, 0]).collect();
    let pairs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u * 17 + 3) % n)).collect();
    let z1 = single.embed(&nodes).unwrap();
    let s1 = single.score_edges(&pairs).unwrap();
    let f1 = single.infer_full();

    for shards in [1usize, 2, 4] {
        let sharded =
            ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), shards, cfg.clone());
        let z = sharded.embed(&nodes).unwrap();
        assert_eq!(z, z1, "{shards}-shard embed differs from single engine");
        let sc = sharded.score_edges(&pairs).unwrap();
        assert_eq!(sc, s1, "{shards}-shard scores differ from single engine");
        let f = sharded.infer_full();
        assert_eq!(f, f1, "{shards}-shard inference differs from single engine");
        let m = sharded.metrics();
        assert_eq!(m.per_shard.len(), sharded.nshards());
        // One front-end embed call fans out to at most one request per
        // shard; the merged histogram counts the per-shard requests.
        assert!(m.embed.count >= 1 && m.embed.count <= sharded.nshards() as u64);
        assert_eq!(m.fanout.len(), sharded.nshards());
    }
}

/// Engines sharing one store see a publish atomically: both a plain
/// engine and a sharded one serve the new epoch after one publish call.
#[test]
fn shared_store_updates_every_engine_at_once() {
    let n = 48;
    let d = 8;
    let mut c = Coo::new(n, n);
    for u in 0..n {
        c.push(u, (u + 1) % n, 1.0);
    }
    let a = c.to_csr(Dedup::Sum);
    let store = Arc::new(FeatureStore::new(Dense::filled(n, d, 1.0), Dense::filled(n, d, 1.0)));
    let cfg = EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        ..EngineConfig::default()
    };
    let plain = Engine::with_store(a.clone(), Arc::clone(&store), OpSet::gcn(), cfg.clone());
    let sharded = ShardedEngine::with_store(a, Arc::clone(&store), OpSet::gcn(), 2, cfg);
    store.publish(Dense::filled(n, d, 5.0), Dense::filled(n, d, 5.0));
    assert_eq!(plain.embed(&[3]).unwrap().row(0), &[5.0; 8]);
    assert_eq!(sharded.embed(&[3, 40]).unwrap().row(1), &[5.0; 8]);
    assert_eq!(plain.metrics().feature_epoch, 1);
    assert_eq!(sharded.metrics().feature_epoch, 1);
}

#[test]
fn engine_edge_scores_match_direct_sddmm() {
    let n = 40;
    let a = rmat(&RmatConfig::new(n, 160).with_seed(5));
    let x = random_features(n, 8, 0.5, 7);
    let y = random_features(n, 8, 0.5, 8);
    let ops = OpSet::sigmoid_embedding(None);
    let pairs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u * 3 + 1) % n)).collect();
    let direct = score_edges(&a, &pairs, &x, &y, &ops);

    let engine = Engine::new(
        a,
        x.clone(),
        y,
        ops,
        EngineConfig { blocking: Some(Blocking::Auto), ..EngineConfig::default() },
    );
    let served = engine.score_edges(&pairs).unwrap();
    assert_eq!(served.len(), direct.len());
    for (i, (s, d)) in served.iter().zip(&direct).enumerate() {
        assert!((s - d).abs() < 1e-6, "pair {i}");
    }
    // Scores are sigmoids: all in (0, 1).
    assert!(served.iter().all(|&s| s > 0.0 && s < 1.0));
}
