//! Serving-path correctness: the row-subset kernel must agree with the
//! full-graph reference on exactly the requested rows — for random
//! graphs, operator sets, and subsets (empty, duplicated, out of
//! order) — the engine must preserve that agreement under concurrent,
//! overlapping request traffic, responses must pin exactly one feature
//! epoch while publishes race them, and a PART1D-sharded engine must be
//! bit-identical to the single engine on the same graph.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fusedmm::prelude::*;
use fusedmm::serve::score_edges;

fn assert_rows_match(z: &Dense, reference: &Dense, rows: &[usize], tol: f32, label: &str) {
    assert_eq!(z.nrows(), rows.len(), "{label}: one output row per requested row");
    for (i, &u) in rows.iter().enumerate() {
        for k in 0..z.ncols() {
            let (got, want) = (z.get(i, k), reference.get(u, k));
            assert!(
                (got - want).abs() < tol,
                "{label}: row {i} (vertex {u}) lane {k}: {got} vs {want}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn subset_rows_equal_reference_rows(
        seed in 0u64..500,
        n in 8usize..48,
        d in 1usize..40,
        pattern in 0usize..4,
        pick in proptest::collection::vec(0usize..1000, 0..24),
    ) {
        let ops = match pattern {
            0 => OpSet::sigmoid_embedding(None),
            1 => OpSet::fr_model(0.3),
            2 => OpSet::tdist_embedding(),
            _ => OpSet::gcn(),
        };
        let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 1);
        let y = random_features(n, d, 0.5, seed ^ 2);
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        // Arbitrary order, with duplicates, possibly empty.
        let rows: Vec<usize> = pick.into_iter().map(|p| p % n).collect();
        let z = fusedmm_rows(&a, &rows, &x, &y, &ops);
        prop_assert_eq!(z.nrows(), rows.len());
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..d {
                prop_assert!(
                    (z.get(i, k) - reference.get(u, k)).abs() < 1e-5,
                    "pattern {:?} n={} d={} row {} vertex {}",
                    ops.pattern, n, d, i, u
                );
            }
        }
    }

    #[test]
    fn plan_and_direct_row_calls_agree(
        seed in 0u64..200,
        n in 8usize..32,
        d in 1usize..24,
    ) {
        let ops = OpSet::sigmoid_embedding(None);
        let a = rmat(&RmatConfig::new(n, 2 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 5);
        let y = random_features(n, d, 0.5, seed ^ 6);
        let rows: Vec<usize> = (0..n).rev().step_by(2).collect();
        let plan = Plan::prepare(&ops, d);
        let via_plan = plan.execute_rows(&a, &rows, &x, &y, &ops);
        let direct = fusedmm_rows(&a, &rows, &x, &y, &ops);
        prop_assert!(via_plan.max_abs_diff(&direct) < 1e-6);
    }
}

#[test]
fn empty_duplicate_and_reversed_subsets() {
    let n = 30;
    let a = rmat(&RmatConfig::new(n, 120).with_seed(9));
    let x = random_features(n, 16, 0.5, 1);
    let y = random_features(n, 16, 0.5, 2);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &x, &y, &ops);

    let empty = fusedmm_rows(&a, &[], &x, &y, &ops);
    assert_eq!((empty.nrows(), empty.ncols()), (0, 16));

    let dupes = vec![4usize; 7];
    assert_rows_match(&fusedmm_rows(&a, &dupes, &x, &y, &ops), &reference, &dupes, 1e-5, "dupes");

    let reversed: Vec<usize> = (0..n).rev().collect();
    assert_rows_match(
        &fusedmm_rows(&a, &reversed, &x, &y, &ops),
        &reference,
        &reversed,
        1e-5,
        "reversed",
    );
}

#[test]
fn engine_serves_concurrent_overlapping_batches() {
    let n = 120;
    let d = 32;
    let a = rmat(&RmatConfig::new(n, 600).with_seed(77));
    let feats = random_features(n, d, 0.5, 3);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &feats, &feats, &ops);

    let engine = Engine::new(
        a,
        feats.clone(),
        feats,
        ops,
        EngineConfig {
            coalesce_window: Duration::from_micros(20),
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        },
    );

    let threads = 8;
    let rounds = 6;
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = &engine;
            let reference = &reference;
            s.spawn(move || {
                for r in 0..rounds {
                    // Deliberately overlapping subsets across threads.
                    let nodes: Vec<usize> =
                        (0..16).map(|i| (t * 11 + r * 17 + i * 5) % n).collect();
                    let z = engine.embed(&nodes).expect("embed succeeds");
                    assert_rows_match(&z, reference, &nodes, 1e-5, "concurrent embed");
                }
            });
        }
    });

    let m = engine.metrics();
    assert_eq!(m.embed.count, (threads * rounds) as u64);
    assert_eq!(m.rows_requested, (threads * rounds * 16) as u64);
    assert!(m.rows_computed <= m.rows_requested, "dedup never computes more than asked");
    assert!(m.embed.p50 <= m.embed.p99);
    assert!(m.embed_requests_per_sec > 0.0);
}

/// Build the snapshot-isolation fixture: a ring graph (every row has
/// exactly one unit-weight edge) under GCN ops, so with features filled
/// with the constant `c`, every lane of every embed row equals `c`
/// exactly (z_u = 1.0 * y_{u+1}). Publishing `c = epoch + 1.0` makes
/// any served row reveal which epoch produced it — and any torn
/// response reveal itself as a mix of constants.
fn ring_fixture(n: usize, d: usize) -> (Csr, Dense, EngineConfig) {
    let mut c = Coo::new(n, n);
    for u in 0..n {
        c.push(u, (u + 1) % n, 1.0);
    }
    let cfg = EngineConfig {
        coalesce_window: Duration::from_micros(20),
        blocking: Some(Blocking::Auto),
        ..EngineConfig::default()
    };
    (c.to_csr(Dedup::Sum), Dense::filled(n, d, 1.0), cfg)
}

/// Assert every lane of every row of `z` equals one single epoch
/// constant from `1.0..=max`, and return it.
fn assert_single_epoch(z: &Dense, max: f32, label: &str) -> f32 {
    let first = z.get(0, 0);
    assert!(
        first >= 1.0 && first <= max && first.fract() == 0.0,
        "{label}: value {first} is not a published epoch constant"
    );
    for i in 0..z.nrows() {
        for k in 0..z.ncols() {
            assert_eq!(
                z.get(i, k),
                first,
                "{label}: row {i} lane {k} mixes epochs ({} vs {first})",
                z.get(i, k)
            );
        }
    }
    first
}

/// The acceptance-criteria concurrency test: readers hammer `embed`
/// while a writer repeatedly publishes; every response must be
/// consistent with exactly one epoch (never a mix), and epochs must be
/// observed monotonically per reader (a later request never sees an
/// older epoch than an earlier one did).
#[test]
fn readers_never_observe_a_torn_epoch_during_publishes() {
    let n = 96;
    let d = 16;
    let publishes = 60usize;
    let (a, feats, cfg) = ring_fixture(n, d);
    let eng = Engine::new(a, feats.clone(), feats, OpSet::gcn(), cfg);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let eng = &eng;
        let done = &done;
        // The writer: publish epoch constants 2.0, 3.0, ...
        s.spawn(move || {
            for e in 0..publishes {
                let c = (e + 2) as f32;
                eng.store().publish(Dense::filled(n, d, c), Dense::filled(n, d, c));
                std::thread::sleep(Duration::from_micros(200));
            }
            done.store(true, Ordering::Release);
        });
        // The readers: overlapping subsets, full speed.
        for t in 0..6usize {
            s.spawn(move || {
                let mut last = 0.0f32;
                let mut round = 0usize;
                while !done.load(Ordering::Acquire) || round == 0 {
                    let nodes: Vec<usize> = (0..12).map(|i| (t * 5 + i * 7 + round) % n).collect();
                    let z = eng.embed(&nodes).expect("embed during publishes");
                    let epoch = assert_single_epoch(
                        &z,
                        (publishes + 1) as f32,
                        &format!("reader {t} round {round}"),
                    );
                    assert!(
                        epoch >= last,
                        "reader {t} went back in time: epoch {epoch} after {last}"
                    );
                    last = epoch;
                    round += 1;
                }
            });
        }
    });
    let m = eng.metrics();
    assert_eq!(m.epoch_swaps, publishes as u64);
    assert_eq!(m.feature_epoch, publishes as u64);
}

/// Same isolation property through the sharded front end: one pinned
/// epoch per request even when the rows span several band engines.
#[test]
fn sharded_responses_never_tear_across_shards_or_epochs() {
    let n = 90;
    let d = 8;
    let publishes = 40usize;
    let (a, feats, cfg) = ring_fixture(n, d);
    let eng = ShardedEngine::new(a, feats.clone(), feats, OpSet::gcn(), 3, cfg);
    assert!(eng.nshards() > 1, "fixture must actually shard");
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let eng = &eng;
        let done = &done;
        s.spawn(move || {
            for e in 0..publishes {
                let c = (e + 2) as f32;
                eng.store().publish(Dense::filled(n, d, c), Dense::filled(n, d, c));
                std::thread::sleep(Duration::from_micros(300));
            }
            done.store(true, Ordering::Release);
        });
        for t in 0..4usize {
            s.spawn(move || {
                let mut round = 0usize;
                while !done.load(Ordering::Acquire) || round == 0 {
                    // Deliberately span every band: stride across 0..n.
                    let nodes: Vec<usize> = (0..9).map(|i| (i * 11 + t + round) % n).collect();
                    let z = eng.embed(&nodes).expect("sharded embed during publishes");
                    assert_single_epoch(
                        &z,
                        (publishes + 1) as f32,
                        &format!("sharded reader {t} round {round}"),
                    );
                    round += 1;
                }
            });
        }
    });
    assert_eq!(eng.metrics().epoch_swaps, publishes as u64);
}

/// The acceptance-criteria equivalence test: a ShardedEngine with 1, 2,
/// and 4 shards returns **bit-identical** results to the single Engine
/// on the same graph, for embed (request order, duplicates), edge
/// scoring, and full inference.
#[test]
fn sharded_engines_are_bit_identical_to_the_single_engine() {
    let n = 150;
    let d = 24;
    let a = rmat(&RmatConfig::new(n, 6 * n).with_seed(21));
    let x = random_features(n, d, 0.5, 11);
    let y = random_features(n, d, 0.5, 12);
    let ops = OpSet::sigmoid_embedding(None);
    let cfg = EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        ..EngineConfig::default()
    };
    let single = Engine::new(a.clone(), x.clone(), y.clone(), ops.clone(), cfg.clone());

    let nodes: Vec<usize> = (0..40).map(|i| (i * 13 + 5) % n).chain([7, 7, 149, 0]).collect();
    let pairs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u * 17 + 3) % n)).collect();
    let z1 = single.embed(&nodes).unwrap();
    let s1 = single.score_edges(&pairs).unwrap();
    let f1 = single.infer_full();

    for shards in [1usize, 2, 4] {
        let sharded =
            ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), shards, cfg.clone());
        let z = sharded.embed(&nodes).unwrap();
        assert_eq!(z, z1, "{shards}-shard embed differs from single engine");
        let sc = sharded.score_edges(&pairs).unwrap();
        assert_eq!(sc, s1, "{shards}-shard scores differ from single engine");
        let f = sharded.infer_full();
        assert_eq!(f, f1, "{shards}-shard inference differs from single engine");
        let m = sharded.metrics();
        assert_eq!(m.per_shard.len(), sharded.nshards());
        // One front-end embed call fans out to at most one request per
        // shard; the merged histogram counts the per-shard requests.
        assert!(m.embed.count >= 1 && m.embed.count <= sharded.nshards() as u64);
        assert_eq!(m.fanout.len(), sharded.nshards());
    }
}

/// Engines sharing one store see a publish atomically: both a plain
/// engine and a sharded one serve the new epoch after one publish call.
#[test]
fn shared_store_updates_every_engine_at_once() {
    let n = 48;
    let d = 8;
    let mut c = Coo::new(n, n);
    for u in 0..n {
        c.push(u, (u + 1) % n, 1.0);
    }
    let a = c.to_csr(Dedup::Sum);
    let store = Arc::new(FeatureStore::new(Dense::filled(n, d, 1.0), Dense::filled(n, d, 1.0)));
    let cfg = EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        ..EngineConfig::default()
    };
    let plain = Engine::with_store(a.clone(), Arc::clone(&store), OpSet::gcn(), cfg.clone());
    let sharded = ShardedEngine::with_store(a, Arc::clone(&store), OpSet::gcn(), 2, cfg);
    store.publish(Dense::filled(n, d, 5.0), Dense::filled(n, d, 5.0));
    assert_eq!(plain.embed(&[3]).unwrap().row(0), &[5.0; 8]);
    assert_eq!(sharded.embed(&[3, 40]).unwrap().row(1), &[5.0; 8]);
    assert_eq!(plain.metrics().feature_epoch, 1);
    assert_eq!(sharded.metrics().feature_epoch, 1);
}

/// Either a single engine or a sharded one, behind one request surface
/// — so the cache-equivalence property below can sweep 1/2/4-shard
/// topologies with the same script.
enum AnyEngine {
    Single(Engine),
    Sharded(ShardedEngine),
}

impl AnyEngine {
    fn build(a: Csr, x: Dense, y: Dense, shards: usize, cache: Option<CacheConfig>) -> AnyEngine {
        AnyEngine::build_with(
            a,
            x,
            y,
            shards,
            cache,
            OpSet::sigmoid_embedding(None),
            Duration::ZERO,
        )
    }

    fn build_with(
        a: Csr,
        x: Dense,
        y: Dense,
        shards: usize,
        cache: Option<CacheConfig>,
        ops: OpSet,
        coalesce_window: Duration,
    ) -> AnyEngine {
        let cfg = EngineConfig {
            coalesce_window,
            blocking: Some(Blocking::Auto),
            cache,
            ..EngineConfig::default()
        };
        if shards <= 1 {
            AnyEngine::Single(Engine::new(a, x, y, ops, cfg))
        } else {
            AnyEngine::Sharded(ShardedEngine::new(a, x, y, ops, shards, cfg))
        }
    }

    fn embed(&self, nodes: &[usize]) -> Dense {
        match self {
            AnyEngine::Single(e) => e.embed(nodes).expect("embed"),
            AnyEngine::Sharded(e) => e.embed(nodes).expect("sharded embed"),
        }
    }

    fn embed_begin(&self, nodes: &[usize]) -> Ticket<Dense> {
        match self {
            AnyEngine::Single(e) => e.embed_begin(nodes).expect("embed_begin"),
            AnyEngine::Sharded(e) => e.embed_begin(nodes).expect("sharded embed_begin"),
        }
    }

    fn score(&self, pairs: &[(usize, usize)]) -> Vec<f32> {
        match self {
            AnyEngine::Single(e) => e.score_edges(pairs).expect("score"),
            AnyEngine::Sharded(e) => e.score_edges(pairs).expect("sharded score"),
        }
    }

    fn store(&self) -> &FeatureStore {
        match self {
            AnyEngine::Single(e) => e.store(),
            AnyEngine::Sharded(e) => e.store(),
        }
    }

    /// Rows the dispatcher(s) actually computed — for a sharded engine,
    /// summed over the band engines (the front end dispatches nothing
    /// itself).
    fn rows_computed(&self) -> u64 {
        match self {
            AnyEngine::Single(e) => e.metrics().rows_computed,
            AnyEngine::Sharded(e) => e.metrics().per_shard.iter().map(|m| m.rows_computed).sum(),
        }
    }

    fn cache_metrics(&self) -> CacheMetrics {
        match self {
            AnyEngine::Single(e) => e.cache_metrics().expect("cache enabled"),
            AnyEngine::Sharded(e) => e.cache_metrics().expect("cache enabled"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The acceptance-criteria equivalence property: a cache-enabled
    /// engine is **bit-identical** to a cache-disabled one under random
    /// interleavings of `publish`, `delta_update`, `embed`, and
    /// `score_edges` — for single, 2-shard, and 4-shard topologies.
    /// Embeds deliberately revisit overlapping hot subsets so warm hits,
    /// post-delta partial invalidation, and post-publish flushes are all
    /// exercised, and each engine pair drives its own store through the
    /// identical write sequence.
    #[test]
    fn cached_engine_is_bit_identical_under_write_interleavings(
        seed in 0u64..400,
        shards_pick in 0usize..3,
        script in proptest::collection::vec((0usize..5, 0u64..10_000), 4..16),
    ) {
        let n = 40;
        let d = 8;
        let shards = [1usize, 2, 4][shards_pick];
        let a = rmat(&RmatConfig::new(n, 4 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 21);
        let y = random_features(n, d, 0.5, seed ^ 22);
        let plain = AnyEngine::build(a.clone(), x.clone(), y.clone(), shards, None);
        // A tight budget (a few hundred rows) so eviction runs too.
        let cached = AnyEngine::build(a, x, y, shards, Some(CacheConfig {
            byte_budget: 64 << 10,
            segments: 4,
        }));
        for (step, &(op, op_seed)) in script.iter().enumerate() {
            match op {
                // Publish: identical fresh matrices to both stores.
                0 => {
                    let fx = random_features(n, d, 0.5, op_seed ^ 0xA5);
                    let fy = random_features(n, d, 0.5, op_seed ^ 0x5A);
                    plain.store().publish(fx.clone(), fy.clone());
                    cached.store().publish(fx, fy);
                }
                // Delta: identical row patch to both stores.
                1 => {
                    let rows: Vec<usize> = (0..1 + (op_seed as usize % 4))
                        .map(|i| (op_seed as usize + i * 7) % n)
                        .collect();
                    let rows = {
                        let mut r = rows;
                        r.sort_unstable();
                        r.dedup();
                        r
                    };
                    let px = random_features(rows.len(), d, 0.5, op_seed ^ 0x77);
                    let py = random_features(rows.len(), d, 0.5, op_seed ^ 0x99);
                    plain.store().delta_update(&rows, &px, &py);
                    cached.store().delta_update(&rows, &px, &py);
                }
                // Score a pair sweep: must agree bit-for-bit.
                2 => {
                    let pairs: Vec<(usize, usize)> = (0..10)
                        .map(|i| ((op_seed as usize + i * 3) % n, (op_seed as usize + i * 11) % n))
                        .collect();
                    prop_assert_eq!(plain.score(&pairs), cached.score(&pairs),
                        "score diverged at step {} (shards={})", step, shards);
                }
                // Embed overlapping hot subsets (two ops map here, so
                // reads dominate the script and revisit warm rows).
                _ => {
                    let nodes: Vec<usize> = (0..12)
                        .map(|i| ((op_seed as usize % 5) * 3 + i * 2) % n)
                        .collect();
                    prop_assert_eq!(plain.embed(&nodes), cached.embed(&nodes),
                        "embed diverged at step {} (shards={})", step, shards);
                }
            }
        }
        // Final full sweep: every row agrees after the whole script.
        let all: Vec<usize> = (0..n).collect();
        prop_assert_eq!(plain.embed(&all), cached.embed(&all),
            "final sweep diverged (shards={})", shards);
    }
}

/// Concurrent version of the equivalence property: readers hammer a
/// *cached* engine while a writer interleaves publishes and delta
/// updates. Every recorded epoch's full expected output is known (ring
/// graph under GCN: `z_u = y_{u+1}`), so each response must match one
/// recorded epoch exactly — a stale cache hit, torn response, or
/// missed invalidation shows up as a row from the wrong epoch.
#[test]
fn cached_responses_are_epoch_consistent_under_concurrent_writes() {
    for shards in [1usize, 4] {
        let n = 48;
        let d = 4;
        let (a, feats, mut cfg) = ring_fixture(n, d);
        cfg.cache = Some(CacheConfig::default());
        let eng = if shards == 1 {
            AnyEngine::Single(Engine::new(a, feats.clone(), feats, OpSet::gcn(), cfg))
        } else {
            AnyEngine::Sharded(ShardedEngine::new(
                a,
                feats.clone(),
                feats,
                OpSet::gcn(),
                shards,
                cfg,
            ))
        };
        // history[e] = the Y matrix of epoch e (z_u = y_{u+1} exactly).
        let history = std::sync::Mutex::new(vec![Dense::filled(n, d, 1.0)]);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let eng = &eng;
            let history = &history;
            let done = &done;
            s.spawn(move || {
                for e in 1..=50u64 {
                    let prev = history.lock().unwrap().last().unwrap().clone();
                    if e % 3 == 0 {
                        // Whole-matrix publish.
                        let fresh = Dense::filled(n, d, e as f32 + 1.0);
                        history.lock().unwrap().push(fresh.clone());
                        eng.store().publish(fresh.clone(), fresh);
                    } else {
                        // Delta patch of a couple of rows.
                        let rows = [(e as usize * 5) % n, (e as usize * 5 + 13) % n];
                        let rows = if rows[0] == rows[1] { vec![rows[0]] } else { rows.to_vec() };
                        let patch = Dense::filled(rows.len(), d, -(e as f32));
                        let mut next = prev;
                        for &u in &rows {
                            next.row_mut(u).fill(-(e as f32));
                        }
                        history.lock().unwrap().push(next);
                        eng.store().delta_update(&rows, &patch, &patch);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                done.store(true, Ordering::Release);
            });
            for t in 0..4usize {
                s.spawn(move || {
                    let mut last_epoch = 0usize;
                    let mut round = 0usize;
                    while !done.load(Ordering::Acquire) || round == 0 {
                        let nodes: Vec<usize> =
                            (0..10).map(|i| (t * 3 + i * 5 + round) % n).collect();
                        let z = eng.embed(&nodes);
                        // The response must equal one recorded epoch's
                        // expected rows, and epochs advance per reader.
                        let snap = history.lock().unwrap().clone();
                        let matched = (last_epoch..snap.len()).find(|&e| {
                            nodes
                                .iter()
                                .enumerate()
                                .all(|(i, &u)| z.row(i) == snap[e].row((u + 1) % n))
                        });
                        match matched {
                            Some(e) => last_epoch = e,
                            None => panic!(
                                "reader {t} round {round} (shards={shards}): response \
                                 matches no epoch in [{last_epoch}, {})",
                                snap.len()
                            ),
                        }
                        round += 1;
                    }
                });
            }
        });
        // The cache must have both served hits and been invalidated.
        let m = match &eng {
            AnyEngine::Single(e) => e.cache_metrics().unwrap(),
            AnyEngine::Sharded(e) => e.cache_metrics().unwrap(),
        };
        assert!(m.hits > 0, "concurrent run never hit the cache (shards={shards})");
        assert!(
            m.flushes > 0 && m.invalidated_rows > 0,
            "writer interleaved both invalidation kinds (shards={shards})"
        );
    }
}

/// The acceptance-criteria ticket-equivalence test: `embed_begin` +
/// harvest (in any order, by any method) returns exactly what the
/// blocking `embed` returns, for single and 1/2/4-shard engines, with
/// and without the result cache.
#[test]
fn tickets_are_bit_identical_to_blocking_embed_across_topologies() {
    let n = 120;
    let d = 16;
    let a = rmat(&RmatConfig::new(n, 5 * n).with_seed(33));
    let x = random_features(n, d, 0.5, 31);
    let y = random_features(n, d, 0.5, 32);
    for shards in [1usize, 2, 4] {
        for cache in [None, Some(CacheConfig::default())] {
            let eng = AnyEngine::build(a.clone(), x.clone(), y.clone(), shards, cache);
            let twin = AnyEngine::build(a.clone(), x.clone(), y.clone(), shards, None);
            // Overlapping node sets spanning every band, duplicates
            // included; launch the whole window before harvesting.
            let requests: Vec<Vec<usize>> = (0..12)
                .map(|r| (0..10).map(|i| (r * 13 + i * 7) % n).chain([0, n - 1]).collect())
                .collect();
            let mut tickets: Vec<Ticket<Dense>> =
                requests.iter().map(|nodes| eng.embed_begin(nodes)).collect();
            // Harvest out of order, alternating methods: reverse-order
            // wait, poll loop, and deadline waits.
            let mut results: Vec<Option<Dense>> = (0..tickets.len()).map(|_| None).collect();
            for i in (8..12).rev() {
                results[i] = Some(tickets.pop().unwrap().wait().expect("wait"));
            }
            for (i, mut t) in tickets.drain(..).enumerate() {
                let z = if i % 2 == 0 {
                    loop {
                        if let Some(z) = t.poll() {
                            break z.expect("poll");
                        }
                        std::thread::yield_now();
                    }
                } else {
                    let deadline = std::time::Instant::now() + Duration::from_secs(30);
                    t.wait_deadline(deadline).expect("deadline not reached").expect("harvest")
                };
                results[i] = Some(z);
            }
            for (nodes, z) in requests.iter().zip(&results) {
                assert_eq!(
                    z.as_ref().expect("harvested"),
                    &twin.embed(nodes),
                    "ticketed result diverged from blocking embed \
                     (shards={shards}, cache={})",
                    if cache.is_some() { "on" } else { "off" }
                );
            }
        }
    }
}

/// The acceptance-criteria coalescing test: ≥2 concurrent misses on
/// the same vertex register against one in-flight entry — exactly one
/// row computation serves all three requests, bit-identically.
#[test]
fn coalesced_waiters_trigger_exactly_one_row_computation() {
    let n = 30;
    let d = 8;
    let a = rmat(&RmatConfig::new(n, 4 * n).with_seed(17));
    let x = random_features(n, d, 0.5, 41);
    let y = random_features(n, d, 0.5, 42);
    let ops = OpSet::sigmoid_embedding(None);
    let reference = fusedmm_reference(&a, &x, &y, &ops);
    for shards in [1usize, 3] {
        // A long coalesce window holds the dispatcher's batch open, so
        // the second and third tickets are guaranteed to find node 7
        // still in flight (routing happens at begin time, before any
        // fill can land).
        let eng = AnyEngine::build_with(
            a.clone(),
            x.clone(),
            y.clone(),
            shards,
            Some(CacheConfig::default()),
            ops.clone(),
            Duration::from_millis(150),
        );
        let t1 = eng.embed_begin(&[7]);
        let t2 = eng.embed_begin(&[7]);
        let t3 = eng.embed_begin(&[7]);
        let (z1, z2, z3) = (t1.wait().unwrap(), t2.wait().unwrap(), t3.wait().unwrap());
        assert_eq!(z1, z2, "coalesced fill must be bit-identical (shards={shards})");
        assert_eq!(z1, z3);
        for k in 0..d {
            assert!(
                (z1.get(0, k) - reference.get(7, k)).abs() < 1e-5,
                "lane {k} diverges from the reference (shards={shards})"
            );
        }
        assert_eq!(
            eng.rows_computed(),
            1,
            "exactly one enqueue computed the row (shards={shards})"
        );
        let m = eng.cache_metrics();
        assert_eq!(m.misses, 3, "all three requests missed (shards={shards})");
        assert_eq!(m.coalesced_misses, 2, "two waiters coalesced (shards={shards})");
        assert_eq!(m.inserts, 1, "the single fill was admitted once (shards={shards})");
        assert_eq!(m.inflight_rows, 0, "registration resolved (shards={shards})");
    }
}

/// Ticketed readers under hammering publishes: every harvested
/// response reflects exactly one epoch (never torn), and the epochs a
/// reader's tickets pin are monotone in *begin* order even when the
/// window is harvested in reverse.
#[test]
fn ticket_windows_pin_monotonic_untorn_epochs_under_publishes() {
    for shards in [1usize, 3] {
        let n = 90;
        let d = 8;
        let publishes = 30usize;
        let (a, feats, cfg) = ring_fixture(n, d);
        let eng = AnyEngine::build_with(
            a,
            feats.clone(),
            feats,
            shards,
            None,
            OpSet::gcn(),
            cfg.coalesce_window,
        );
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let eng = &eng;
            let done = &done;
            s.spawn(move || {
                for e in 0..publishes {
                    let c = (e + 2) as f32;
                    eng.store().publish(Dense::filled(n, d, c), Dense::filled(n, d, c));
                    std::thread::sleep(Duration::from_micros(300));
                }
                done.store(true, Ordering::Release);
            });
            for t in 0..4usize {
                s.spawn(move || {
                    let mut last = 0.0f32;
                    let mut round = 0usize;
                    while !done.load(Ordering::Acquire) || round == 0 {
                        // Launch a whole window before harvesting any
                        // of it, then harvest in reverse order.
                        let window: Vec<(usize, Ticket<Dense>)> = (0..6)
                            .map(|w| {
                                let nodes: Vec<usize> =
                                    (0..8).map(|i| (t * 5 + w + i * 7 + round) % n).collect();
                                (w, eng.embed_begin(&nodes))
                            })
                            .collect();
                        let mut epochs = [0.0f32; 6];
                        for (w, ticket) in window.into_iter().rev() {
                            let z = ticket.wait().expect("ticket during publishes");
                            epochs[w] = assert_single_epoch(
                                &z,
                                (publishes + 1) as f32,
                                &format!("reader {t} round {round} window {w} shards {shards}"),
                            );
                        }
                        // Begin order pinned the epochs, so they must
                        // be monotone in that order — and never go
                        // below what this reader already observed.
                        for w in 0..6 {
                            assert!(
                                epochs[w] >= last,
                                "reader {t} window {w}: epoch {} after {last} (shards={shards})",
                                epochs[w]
                            );
                            last = epochs[w];
                        }
                        round += 1;
                    }
                });
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance-criteria coalescing property: under sequential
    /// interleavings of `publish`, `delta_update`, `embed_begin` on
    /// overlapping hot sets, and out-of-order harvests, (a) every
    /// ticket resolves bit-identically to an uncached blocking engine
    /// driven through the identical write sequence, and (b) each
    /// coalesced vertex is computed **exactly once per validity
    /// window**: the cached engine's dispatched row count equals the
    /// model's count of (vertex, epoch-window) first-misses.
    #[test]
    fn coalesced_misses_compute_exactly_once_per_epoch(
        shards_pick in 0usize..3,
        script in proptest::collection::vec((0usize..8, 0u64..10_000), 6..24),
    ) {
        let n = 24;
        let d = 4;
        let shards = [1usize, 2, 4][shards_pick];
        // Ring graph under GCN: z_u = y_{u+1}, and a delta patching v
        // invalidates exactly {v, v-1} — a touch set the model below
        // can mirror.
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, d, |r, k| (r * d + k) as f32);
        let plain = AnyEngine::build_with(
            a.clone(), feats.clone(), feats.clone(), shards, None,
            OpSet::gcn(), Duration::ZERO,
        );
        // A budget far above n rows, so eviction never perturbs the
        // exactly-once model.
        let cached = AnyEngine::build_with(
            a, feats.clone(), feats, shards,
            Some(CacheConfig::default()), OpSet::gcn(), Duration::ZERO,
        );
        // Model: `covered[u]` is true while some computation of row u
        // (resident or still in flight) is valid at the current epoch.
        // A begin on an uncovered vertex is the one that computes it.
        let mut covered = vec![false; n];
        let mut expected_computes = 0u64;
        let mut open: Vec<(Ticket<Dense>, Dense)> = Vec::new();
        for &(op, s) in &script {
            match op {
                // Publish: everything invalid.
                0 => {
                    let v = (s % 97) as f32 + 1.0;
                    plain.store().publish(Dense::filled(n, d, v), Dense::filled(n, d, v));
                    cached.store().publish(Dense::filled(n, d, v), Dense::filled(n, d, v));
                    covered.iter_mut().for_each(|c| *c = false);
                }
                // Delta: rows and their ring in-neighbors invalid.
                1 => {
                    let mut rows: Vec<usize> = (0..1 + (s as usize % 3))
                        .map(|i| (s as usize + i * 5) % n)
                        .collect();
                    rows.sort_unstable();
                    rows.dedup();
                    let patch = Dense::filled(rows.len(), d, -((s % 53) as f32) - 1.0);
                    plain.store().delta_update(&rows, &patch, &patch);
                    cached.store().delta_update(&rows, &patch, &patch);
                    for &r in &rows {
                        covered[r] = false;
                        covered[(r + n - 1) % n] = false;
                    }
                }
                // Harvest one open ticket (reads below dominate).
                2 => {
                    if let Some((ticket, expected)) = open.pop() {
                        prop_assert_eq!(ticket.wait().unwrap(), expected,
                            "early harvest diverged (shards={})", shards);
                    }
                }
                // Begin a ticket on an overlapping hot subset.
                _ => {
                    let base = (s as usize % 5) * 3;
                    let nodes: Vec<usize> =
                        (0..8).map(|i| (base + i * 2) % n).collect();
                    // The uncached twin, driven through the identical
                    // writes, fixes the expected bits at begin time.
                    let expected = plain.embed(&nodes);
                    let mut unique = nodes.clone();
                    unique.sort_unstable();
                    unique.dedup();
                    for &u in &unique {
                        if !covered[u] {
                            covered[u] = true;
                            expected_computes += 1;
                        }
                    }
                    open.push((cached.embed_begin(&nodes), expected));
                }
            }
        }
        for (ticket, expected) in open {
            prop_assert_eq!(ticket.wait().unwrap(), expected,
                "late harvest diverged (shards={})", shards);
        }
        prop_assert_eq!(cached.rows_computed(), expected_computes,
            "every coalesced vertex computed exactly once per validity window \
             (shards={})", shards);
    }
}

#[test]
fn engine_edge_scores_match_direct_sddmm() {
    let n = 40;
    let a = rmat(&RmatConfig::new(n, 160).with_seed(5));
    let x = random_features(n, 8, 0.5, 7);
    let y = random_features(n, 8, 0.5, 8);
    let ops = OpSet::sigmoid_embedding(None);
    let pairs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u * 3 + 1) % n)).collect();
    let direct = score_edges(&a, &pairs, &x, &y, &ops);

    let engine = Engine::new(
        a,
        x.clone(),
        y,
        ops,
        EngineConfig { blocking: Some(Blocking::Auto), ..EngineConfig::default() },
    );
    let served = engine.score_edges(&pairs).unwrap();
    assert_eq!(served.len(), direct.len());
    for (i, (s, d)) in served.iter().zip(&direct).enumerate() {
        assert!((s - d).abs() < 1e-6, "pair {i}");
    }
    // Scores are sigmoids: all in (0, 1).
    assert!(served.iter().all(|&s| s > 0.0 && s < 1.0));
}
