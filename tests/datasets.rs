//! Integration checks on the dataset registry: every Table V stand-in
//! can be generated (at test scale), matches its spec's average degree,
//! and feeds the kernel without shape trouble.

use fusedmm::prelude::*;

/// Small per-dataset scales so the full registry stays fast in CI.
fn test_scale(ds: Dataset) -> f64 {
    match ds {
        Dataset::Cora => 0.5,
        Dataset::Harvard => 0.02,
        Dataset::Pubmed => 0.1,
        Dataset::Flickr => 0.01,
        Dataset::Ogbprotein => 0.002,
        Dataset::Amazon => 0.003,
        Dataset::Youtube => 0.001,
        Dataset::Orkut => 0.0005,
    }
}

#[test]
fn every_standin_generates_and_matches_degree() {
    for ds in Dataset::all() {
        let g = ds.standin_scaled(test_scale(ds));
        assert!(g.nrows() > 0, "{ds}: empty stand-in");
        let got = g.avg_degree();
        let want = ds.target_degree(g.nrows());
        assert!((got - want).abs() / want < 0.35, "{ds}: avg degree {got:.2} vs paper {want:.2}");
    }
}

#[test]
fn every_standin_runs_through_the_kernel() {
    let ops = OpSet::sigmoid_embedding(None);
    for ds in Dataset::all() {
        let g = ds.standin_scaled(test_scale(ds));
        let d = 16;
        let x = random_features(g.nrows(), d, 0.5, 1);
        let y = random_features(g.ncols(), d, 0.5, 2);
        let z = fusedmm_opt(&g, &x, &y, &ops);
        assert_eq!(z.nrows(), g.nrows(), "{ds}");
        assert!(z.as_slice().iter().all(|v| v.is_finite()), "{ds}: non-finite output");
    }
}

#[test]
fn labeled_standins_are_assortative() {
    for ds in [Dataset::Cora, Dataset::Pubmed] {
        let g = ds.labeled_standin(test_scale(ds)).unwrap();
        assert_eq!(g.k, ds.num_classes().unwrap());
        assert!(
            g.within_community_edge_fraction() > 0.6,
            "{ds}: within fraction {}",
            g.within_community_edge_fraction()
        );
    }
}

#[test]
fn specs_are_the_paper_table() {
    // Spot-check the Table V constants (full table asserted in unit
    // tests of the graph crate).
    assert_eq!(Dataset::Youtube.spec().vertices, 1_138_499);
    assert_eq!(Dataset::Harvard.spec().edges, 824_617);
    assert!((Dataset::Ogbprotein.spec().avg_degree - 597.0).abs() < 1e-9);
}

#[test]
fn standins_differ_across_datasets() {
    let a = Dataset::Youtube.standin_scaled(0.001);
    let b = Dataset::Amazon.standin_scaled(0.003);
    assert_ne!(a.nnz(), 0);
    assert_ne!(b.nnz(), 0);
    assert_ne!((a.nrows(), a.nnz()), (b.nrows(), b.nnz()));
}
