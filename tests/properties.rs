//! Property-based tests on the substrate invariants DESIGN.md lists:
//! format round-trips, PART1D balance, SIMD-vs-scalar agreement, and
//! generator guarantees.

use proptest::prelude::*;

use fusedmm::kernel::part::{Partition, PartitionStrategy};
use fusedmm::kernel::simd;
use fusedmm::prelude::*;
use fusedmm::sparse::slice::slice_rows;

/// Strategy: a random COO matrix with shape up to 40×40.
fn arb_coo() -> impl Strategy<Value = Coo> {
    (2usize..40, 2usize..40).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -5.0f32..5.0), 0..120)
            .prop_map(move |entries| Coo::from_entries(r, c, entries).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_coo_round_trip(coo in arb_coo()) {
        let csr = coo.to_csr(Dedup::Sum);
        let back = csr.to_coo().to_csr(Dedup::Sum);
        prop_assert_eq!(&csr, &back);
    }

    #[test]
    fn csc_round_trip(coo in arb_coo()) {
        let csr = coo.to_csr(Dedup::Sum);
        prop_assert_eq!(&csr.to_csc().to_csr(), &csr);
    }

    #[test]
    fn transpose_involutive(coo in arb_coo()) {
        let csr = coo.to_csr(Dedup::Sum);
        prop_assert_eq!(&csr.transpose().transpose(), &csr);
    }

    #[test]
    fn rows_sorted_and_in_range(coo in arb_coo()) {
        let csr = coo.to_csr(Dedup::Sum);
        for u in 0..csr.nrows() {
            let (cols, _) = csr.row(u);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {u} not strictly sorted");
            prop_assert!(cols.iter().all(|&c| c < csr.ncols()));
        }
    }

    #[test]
    fn dedup_sum_preserves_total_mass(coo in arb_coo()) {
        let raw_sum: f64 = coo.entries().iter().map(|&(_, _, v)| v as f64).sum();
        let csr = coo.to_csr(Dedup::Sum);
        let csr_sum: f64 = csr.values().iter().map(|&v| v as f64).sum();
        prop_assert!((raw_sum - csr_sum).abs() < 1e-3);
    }

    #[test]
    fn part1d_covers_rows_and_balances(
        coo in arb_coo(),
        parts in 1usize..12,
    ) {
        let csr = coo.to_csr(Dedup::Sum);
        let p = Partition::part1d(&csr, parts, PartitionStrategy::NnzBalanced);
        // coverage: contiguous, complete
        prop_assert_eq!(p.boundaries()[0], 0);
        prop_assert_eq!(*p.boundaries().last().unwrap(), csr.nrows());
        let covered: usize = (0..p.len()).map(|i| p.rows(i).len()).sum();
        prop_assert_eq!(covered, csr.nrows());
        // balance: each part within ideal + heaviest row
        if csr.nnz() > 0 {
            let ideal = csr.nnz() as f64 / p.len() as f64;
            for i in 0..p.len() {
                prop_assert!(
                    p.part_nnz(&csr, i) as f64 <= ideal + csr.max_degree() as f64 + 1.0
                );
            }
        }
    }

    #[test]
    fn row_slice_preserves_entries(coo in arb_coo(), pick in proptest::collection::vec(0usize..1000, 1..10)) {
        let csr = coo.to_csr(Dedup::Sum);
        let vertices: Vec<usize> = pick.into_iter().map(|p| p % csr.nrows()).collect();
        let mb = slice_rows(&csr, &vertices);
        for (i, &u) in vertices.iter().enumerate() {
            prop_assert_eq!(mb.adj.row(i), csr.row(u), "slice row {} != source row {}", i, u);
        }
    }

    #[test]
    fn simd_dot_axpy_sqdist_match_scalar(
        x in proptest::collection::vec(-3.0f32..3.0, 1..64),
        seed in 0u64..100,
    ) {
        let n = x.len();
        let y: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 13) as f32 * 0.3 - 1.5).collect();
        let dot_scalar: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert!((simd::dot(&x, &y) - dot_scalar).abs() < 1e-2);

        let sq_scalar: f32 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        prop_assert!((simd::sqdist(&x, &y) - sq_scalar).abs() < 1e-2);

        let mut z = vec![0.5f32; n];
        let mut z_ref = z.clone();
        simd::axpy(0.7, &y, &mut z);
        for (zr, &yi) in z_ref.iter_mut().zip(&y) { *zr += 0.7 * yi; }
        for (a, b) in z.iter().zip(&z_ref) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn erdos_renyi_invariants(n in 4usize..60, seed in 0u64..50) {
        let m = n; // sparse enough
        let g = erdos_renyi(n, m, seed);
        prop_assert_eq!(g.nnz(), 2 * m);
        for (r, c, v) in g.iter() {
            prop_assert_ne!(r, c);
            prop_assert_eq!(v, 1.0);
            prop_assert_eq!(g.get(c, r), Some(1.0));
        }
    }

    #[test]
    fn rmat_respects_bounds(n in 16usize..200, seed in 0u64..50) {
        let g = rmat(&RmatConfig::new(n, 2 * n).with_seed(seed));
        prop_assert_eq!(g.nrows(), n);
        for (r, c, _) in g.iter() {
            prop_assert!(r < n && c < n && r != c);
        }
    }

    #[test]
    fn sigmoid_lut_error_bound(resolution in 64usize..4096) {
        let lut = SigmoidLut::new(8.0, resolution);
        // nearest-entry lookup error <= step * max-slope (1/4) + eps
        let step = 16.0 / (resolution - 1) as f32;
        prop_assert!(lut.max_error_within_bound() <= step * 0.25 + 1e-4);
    }
}

#[test]
fn matrix_market_round_trip_on_random_graph() {
    use fusedmm::sparse::io::{read_matrix_market, write_matrix_market};
    let g = rmat(&RmatConfig::new(64, 200).with_seed(8));
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &g).unwrap();
    let back = read_matrix_market(&buf[..]).unwrap().to_csr(Dedup::Sum);
    assert_eq!(back, g);
}

// ---------------------------------------------------------------------------
// SIMD backend and kernel blocking agreement (the ISA dispatch sweep)
// ---------------------------------------------------------------------------

/// The dimensions the dispatch rework targets: generated const dims
/// (8), strip-minable serving dims (24/48/96/192/384) — all multiples
/// of 8 so every blocking level below is eligible. On an AVX-512
/// machine the whole sweep runs with 16-lane kernels as the active
/// backend, so these cases double as the AVX-512 agreement sweep.
const SWEEP_DIMS: [usize; 6] = [8, 24, 48, 96, 192, 384];

/// Odd dimensions the strip-mined family rejects; only the plan-time
/// specialized table (masked-tail panels) and the dyn/generic levels
/// accept them.
const ODD_DIMS: [usize; 2] = [7, 100];

fn sweep_features(n: usize, d: usize, seed: u64) -> Dense {
    Dense::from_fn(n, d, |r, c| (((r * 131 + c * 17) as f32 + seed as f32) * 0.013).sin() * 0.3)
}

/// Clamp an arbitrary COO into a 40×40 square with positive weights —
/// the graph shape the kernel-agreement sweeps run on.
fn square_graph(coo: &Coo) -> Csr {
    let mut square = Coo::new(40, 40);
    for &(r, c, v) in coo.entries() {
        if r < 40 && c < 40 {
            square.push(r, c, v.abs().clamp(0.1, 1.0));
        }
    }
    square.to_csr(Dedup::Sum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simd_backends_match_scalar_within_1e5(seed in 0u64..500) {
        use fusedmm::kernel::simd::{axpy_with, dot_with, sqdist_with};
        for d in SWEEP_DIMS.into_iter().chain(ODD_DIMS) {
            let x: Vec<f32> =
                (0..d).map(|i| (((i as u64 * 29 + seed) % 97) as f32 * 0.01).sin() * 0.5).collect();
            let y: Vec<f32> =
                (0..d).map(|i| (((i as u64 * 43 + seed) % 89) as f32 * 0.011).cos() * 0.5).collect();
            let dot_ref = dot_with(Backend::Scalar, &x, &y);
            let sq_ref = sqdist_with(Backend::Scalar, &x, &y);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                prop_assert!((dot_with(b, &x, &y) - dot_ref).abs() < 1e-5, "dot {b} d={d}");
                prop_assert!((sqdist_with(b, &x, &y) - sq_ref).abs() < 1e-5, "sqdist {b} d={d}");
                let mut z = vec![0.1f32; d];
                let mut z_ref = vec![0.1f32; d];
                axpy_with(b, 0.8, &y, &mut z);
                axpy_with(Backend::Scalar, 0.8, &y, &mut z_ref);
                for k in 0..d {
                    prop_assert!((z[k] - z_ref[k]).abs() < 1e-5, "axpy {b} d={d} lane {k}");
                }
            }
        }
    }

    #[test]
    fn blocking_levels_agree_across_serving_dims(coo in arb_coo(), seed in 0u64..100) {
        use fusedmm::kernel::fusedmm_opt_with;
        use fusedmm::kernel::genkern::GENERATED_DIMS;
        let a = square_graph(&coo);
        for d in SWEEP_DIMS {
            let x = sweep_features(40, d, seed);
            let y = sweep_features(40, d, seed + 7);
            for (ops, tol) in [
                (OpSet::sigmoid_embedding(None), 1e-5f32),
                (OpSet::gcn(), 1e-5),
                (OpSet::tdist_embedding(), 1e-5),
                // sqrt amplifies association differences near zero
                (OpSet::fr_model(0.4), 1e-4),
            ] {
                let reference = fusedmm_reference(&a, &x, &y, &ops);
                let scale = 1.0 + reference.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let mut blockings =
                    vec![Blocking::Auto, Blocking::DynStrips, Blocking::StripMined];
                if GENERATED_DIMS.contains(&d) {
                    blockings.push(Blocking::RegisterBlocked);
                }
                for blocking in blockings {
                    let z = fusedmm_opt_with(
                        &a, &x, &y, &ops, blocking, Some(3), PartitionStrategy::NnzBalanced,
                    );
                    prop_assert!(
                        z.max_abs_diff(&reference) < tol * scale,
                        "{:?} {:?} d={}: diff {}",
                        ops.pattern, blocking, d, z.max_abs_diff(&reference)
                    );
                }
            }
        }
    }

    /// The plan-time specialized table and the hybrid executor accept
    /// every dimension — including odd ones the strip family rejects —
    /// and agree with the naive reference for every candidate shape on
    /// the active (on this machine: widest available) backend.
    #[test]
    fn specialized_table_and_hybrid_cover_odd_dims(coo in arb_coo(), seed in 0u64..100) {
        use fusedmm::kernel::fusedmm_opt_with;
        use fusedmm::kernel::genkern::candidate_specs;
        use fusedmm::kernel::simd::active_backend;
        let a = square_graph(&coo);
        let lanes = active_backend().lanes();
        for d in SWEEP_DIMS.into_iter().chain(ODD_DIMS) {
            let x = sweep_features(40, d, seed);
            let y = sweep_features(40, d, seed + 7);
            for (ops, tol) in [
                (OpSet::sigmoid_embedding(None), 1e-5f32),
                (OpSet::gcn(), 1e-5),
                (OpSet::fr_model(0.4), 1e-4),
            ] {
                let reference = fusedmm_reference(&a, &x, &y, &ops);
                let scale = 1.0 + reference.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let mut blockings: Vec<Blocking> = candidate_specs(lanes, d, true)
                    .into_iter()
                    .map(Blocking::Specialized)
                    .collect();
                // Hybrid routes through the same specialized shapes per
                // degree class (short/strip/mega) at strip *and* dyn
                // resolved levels, so odd d exercises its masked tails.
                blockings.push(Blocking::Hybrid(HybridConfig::default()));
                for blocking in blockings {
                    let z = fusedmm_opt_with(
                        &a, &x, &y, &ops, blocking, Some(3), PartitionStrategy::NnzBalanced,
                    );
                    prop_assert!(
                        z.max_abs_diff(&reference) < tol * scale,
                        "{:?} {:?} d={}: diff {}",
                        ops.pattern, blocking, d, z.max_abs_diff(&reference)
                    );
                }
            }
        }
    }
}

#[test]
fn active_backend_is_reported_and_available() {
    let report = fusedmm::kernel::cpu_features();
    assert!(report.backend.is_available());
    // FUSEDMM_FORCE_SCALAR must pin the scalar backend (exercised as a
    // dedicated CI matrix arm; here we only check consistency).
    if report.forced_scalar {
        assert_eq!(report.backend, Backend::Scalar);
    }
}
