//! Resilience under overload and injected faults: the serving engines
//! must never hang a ticket, must reconcile their request counters
//! exactly (`begun == harvested + degraded + shed + failed +
//! abandoned`), and must keep Exact-tier responses bit-identical to a
//! fault-free run — even while the fault plan panics kernel launches,
//! delays cache fills, and poisons a cache segment, and the admission
//! policy sheds a 4× overload.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusedmm::kernel::Partition;
use fusedmm::prelude::*;

/// A config immune to the chaos environment: unlimited admission, no
/// injection — the bit-identity baseline.
fn fault_free_config() -> EngineConfig {
    EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        admission: Some(AdmissionPolicy::unlimited()),
        fault: Some(Arc::new(FaultPlan::disabled())),
        ..EngineConfig::default()
    }
}

#[test]
fn every_launch_panicking_resolves_typed_not_hung() {
    quiet_injected_panics();
    let n = 32;
    let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(9));
    let x = random_features(n, 6, 0.5, 1);
    let y = random_features(n, 6, 0.5, 2);
    let eng = Engine::new(
        a,
        x,
        y,
        OpSet::sigmoid_embedding(None),
        EngineConfig {
            fault: Some(Arc::new(FaultPlan::parse("panic_every=1").unwrap())),
            ..fault_free_config()
        },
    );
    // Every launch panics, including the one-shot healthy-path retry:
    // the request must resolve with a typed error, never hang.
    assert_eq!(eng.embed(&[3, 7]), Err(ServeError::PartFailed { shard: None }));
    let m = eng.metrics();
    assert_eq!(m.requests_failed, 1);
    assert!(m.panics_caught >= 2, "original launch and its retry both panicked");
    assert_eq!(
        m.requests_begun,
        m.requests_harvested
            + m.requests_degraded
            + m.requests_shed
            + m.requests_failed
            + m.requests_abandoned
    );
}

#[test]
fn wait_any_drains_an_overloaded_window_across_shards() {
    let n = 96;
    let d = 8;
    let a = rmat(&RmatConfig::new(n, 4 * n).with_seed(11));
    let x = random_features(n, d, 0.5, 3);
    let y = random_features(n, d, 0.5, 4);
    let ops = OpSet::sigmoid_embedding(None);
    let single = Engine::new(a.clone(), x.clone(), y.clone(), ops.clone(), fault_free_config());
    let eng = ShardedEngine::new(a, x, y, ops, 3, fault_free_config());
    let windows: Vec<Vec<usize>> =
        (0..12).map(|i| vec![(i * 17) % n, (i * 5 + 3) % n, (i * 29 + 7) % n]).collect();
    let mut tix: Vec<Ticket<Dense>> = windows.iter().map(|w| eng.embed_begin(w).unwrap()).collect();
    let mut drained = 0;
    while let Some(i) = wait_any(&mut tix) {
        let z = tix[i].poll().expect("wait_any returns ready tickets").unwrap();
        assert_eq!(z, single.embed(&windows[i]).unwrap(), "window {i} bit-identical");
        drained += 1;
    }
    assert_eq!(drained, windows.len(), "every ticket completed exactly once");
}

#[test]
fn sharded_deadline_expiry_is_typed_and_counted() {
    let n = 48;
    let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(5));
    let feats = random_features(n, 4, 0.5, 6);
    let eng = ShardedEngine::new(
        a,
        feats.clone(),
        feats,
        OpSet::gcn(),
        2,
        EngineConfig { coalesce_window: Duration::from_millis(50), ..fault_free_config() },
    );
    let opts = EmbedOptions::with_deadline(Instant::now() + Duration::from_millis(5));
    let t = eng.embed_begin_opts(&[1, 47], opts).unwrap();
    assert_eq!(t.wait().map(|r| r.rows), Err(ServeError::DeadlineExpired));
    let m = eng.metrics();
    assert_eq!(m.requests_failed, 1);
    assert!(m.expired_dropped >= 1, "a band dispatcher dropped the expired piece");
}

/// Transport chaos: serve through real unix sockets whose coordinator
/// side severs the connection every Nth request frame and delays every
/// frame write — every request must resolve (typed `PartFailed` while
/// the link is down, never a hang), the front-end ledger must
/// reconcile exactly, every successful Exact response must stay
/// bit-identical to the fault-free in-process engine, and the
/// transport must keep reconnecting (with epoch-log catch-up) for the
/// whole run.
#[test]
fn transport_disconnect_chaos_resolves_every_request_and_reconciles() {
    let (n, d, nshards) = (96, 8, 2);
    let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(9));
    let x = random_features(n, d, 0.5, 1);
    let y = random_features(n, d, 0.5, 2);
    let ops = OpSet::sigmoid_embedding(None);

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let paths: Vec<std::path::PathBuf> =
        (0..nshards).map(|s| dir.join(format!("fusedmm-chaos-{pid}-{s}.sock"))).collect();
    let servers: Vec<_> = (0..nshards)
        .map(|s| {
            let band = Partition::part1d(&a, nshards, PartitionStrategy::NnzBalanced).rows(s);
            let engine = WorkerEngine::new(
                &a,
                band,
                s,
                Dense::zeros(n, d),
                Dense::zeros(n, d),
                ops.clone(),
                EngineConfig { cache: Some(CacheConfig::default()), ..fault_free_config() },
            );
            WorkerServer::serve_unix(Arc::new(engine), &paths[s]).expect("bind chaos worker")
        })
        .collect();

    let mut rpc_config = RpcConfig::new(paths.clone());
    rpc_config.fault =
        Some(Arc::new(FaultPlan::parse("drop_conn_every=5,delay_frame_us=200").unwrap()));
    let transport = RpcTransport::connect(rpc_config).expect("connect chaos workers");
    let remote =
        RemoteShardedEngine::new(x.clone(), y.clone(), transport.clone(), fault_free_config());
    let fault_free = ShardedEngine::new(a, x, y, ops, nshards, fault_free_config());

    let (mut ok, mut failed) = (0u64, 0u64);
    for i in 0..40usize {
        // A delta every 10th request keeps the replicated log moving
        // while connections churn — reconnects must catch up.
        if i % 10 == 5 {
            let rows = vec![i % n, (i * 3 + 1) % n];
            let patch = Dense::from_fn(rows.len(), d, |r, k| (i + r * 3 + k) as f32 * 0.01);
            let re = remote.delta_update(&rows, &patch, &patch);
            let le = fault_free.store().delta_update(&rows, &patch, &patch);
            assert_eq!(re, le, "both sides mint the same epoch");
        }
        let nodes = vec![(i * 17) % n, (i * 5 + 3) % n, (i * 29 + 7) % n];
        match remote.embed(&nodes) {
            Ok(rows) => {
                assert_eq!(
                    rows,
                    fault_free.embed(&nodes).unwrap(),
                    "request {i}: surviving Exact response bit-identical"
                );
                ok += 1;
            }
            // The link was down or died mid-request: typed, not hung.
            Err(ServeError::PartFailed { .. }) => {
                failed += 1;
                // Give the manager a beat to re-establish the link.
                std::thread::sleep(Duration::from_millis(30));
            }
            Err(e) => panic!("request {i}: unexpected error under transport chaos: {e}"),
        }
    }
    assert!(ok > 0, "some requests survive the chaos (got {ok} ok / {failed} failed)");
    assert!(failed > 0, "drop_conn_every=5 fails some requests (got {ok} ok / {failed} failed)");
    let reconnects: u64 = (0..nshards).map(|s| transport.reconnects(s)).sum();
    assert!(reconnects > 0, "severed links were re-established");

    let m = remote.metrics();
    assert_eq!(m.requests_begun, 40);
    assert_eq!(
        m.requests_begun,
        m.requests_harvested
            + m.requests_degraded
            + m.requests_shed
            + m.requests_failed
            + m.requests_abandoned,
        "remote ledger reconciles exactly under transport chaos: {m}"
    );
    assert_eq!(m.requests_harvested, ok);
    assert_eq!(m.requests_failed, failed);

    drop(remote);
    drop(servers);
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The chaos invariant: a 4× admission-cap overload of mixed
    /// tiers and random deadlines, against an engine whose fault plan
    /// panics every 3rd launch, delays fills, and poisons a cache
    /// segment — every ticket resolves (no hang), the counters
    /// reconcile exactly, and every non-degraded Exact response is
    /// bit-identical to the fault-free engine.
    #[test]
    fn overloaded_chaotic_serving_never_hangs_and_reconciles(
        seed in 0u64..64,
        picks in proptest::collection::vec((0usize..1000, 0u8..4, 0u8..3), 32..33),
    ) {
        quiet_injected_panics();
        let n = 96;
        let d = 8;
        let a = rmat(&RmatConfig::new(n, 4 * n).with_seed(seed));
        let x = random_features(n, d, 0.5, seed ^ 1);
        let y = random_features(n, d, 0.5, seed ^ 2);
        let ops = OpSet::sigmoid_embedding(None);
        let fault_free =
            ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), 3, fault_free_config());
        let cap = 8u64;
        let eng = ShardedEngine::new(
            a,
            x,
            y,
            ops,
            3,
            EngineConfig {
                coalesce_window: Duration::ZERO,
                blocking: Some(Blocking::Auto),
                cache: Some(CacheConfig::default()),
                admission: Some(AdmissionPolicy {
                    max_inflight: cap as usize,
                    max_queued_rows: 256,
                    degrade_fraction: 0.75,
                }),
                fault: Some(Arc::new(
                    FaultPlan::parse("panic_every=3,delay_fill_us=100,poison_segment=1").unwrap(),
                )),
                ..EngineConfig::default()
            },
        );
        let mut metas: Vec<Vec<usize>> = Vec::new();
        let mut tix: Vec<Ticket<EmbedResponse>> = Vec::new();
        let mut shed_local = 0u64;
        for (i, &(node, tier, dl)) in picks.iter().enumerate() {
            let nodes = vec![node % n, (node * 7 + i) % n];
            let opts = match tier {
                0 => EmbedOptions::default(),
                1 => EmbedOptions::with_quality(Quality::TopKNeighbors(2)),
                2 => EmbedOptions::with_quality(Quality::CachedOnly),
                _ => EmbedOptions::with_deadline(
                    Instant::now() + Duration::from_millis(dl as u64 * 5),
                ),
            };
            match eng.embed_begin_opts(&nodes, opts) {
                Ok(t) => {
                    metas.push(nodes);
                    tix.push(t);
                }
                Err(ServeError::Shed { inflight, .. }) => {
                    prop_assert!(inflight >= cap, "shed only at or past the cap");
                    shed_local += 1;
                }
                // A zero-millisecond deadline expires before admission
                // finishes: an eager typed failure, not a hang.
                Err(ServeError::DeadlineExpired) => {}
                Err(e) => prop_assert!(false, "unexpected eager error: {e:?}"),
            }
        }
        // Exercise the O(1) wakeup path once, then drain the window
        // with a bounded wait: no ticket may hang.
        let mut results: Vec<Option<Result<EmbedResponse, ServeError>>> = Vec::new();
        results.resize_with(tix.len(), || None);
        if let Some(i) = wait_any(&mut tix) {
            results[i] = Some(tix[i].poll().expect("ready after wait_any"));
        }
        for (i, t) in tix.iter_mut().enumerate() {
            if !t.is_live() {
                continue;
            }
            let r = t
                .wait_deadline(Instant::now() + Duration::from_secs(20))
                .expect("no ticket hangs under chaos");
            results[i] = Some(r);
        }
        for (i, r) in results.into_iter().enumerate() {
            match r.expect("every ticket was harvested") {
                Ok(resp) => match resp.quality {
                    Quality::Exact => {
                        prop_assert!(!resp.any_degraded(), "Exact responses carry no marks");
                        prop_assert_eq!(
                            &resp.rows,
                            &fault_free.embed(&metas[i]).unwrap(),
                            "Exact-tier response {} bit-identical to the fault-free run",
                            i
                        );
                    }
                    Quality::TopKNeighbors(_) => {
                        prop_assert!(resp.served_degraded.iter().all(|&b| b));
                    }
                    Quality::CachedOnly => {
                        // Every row is either a marked zero (miss) or
                        // bit-identical to the fault-free exact row.
                        let exact = fault_free.embed(&metas[i]).unwrap();
                        for (row, &mark) in resp.served_degraded.iter().enumerate() {
                            if mark {
                                prop_assert!(
                                    resp.rows.row(row).iter().all(|&v| v == 0.0),
                                    "a degraded CachedOnly row is zeroed"
                                );
                            } else {
                                prop_assert_eq!(resp.rows.row(row), exact.row(row));
                            }
                        }
                    }
                },
                Err(ServeError::PartFailed { .. }) | Err(ServeError::DeadlineExpired) => {}
                Err(e) => prop_assert!(false, "unexpected harvest error: {e:?}"),
            }
        }
        drop(tix);
        let m = eng.metrics();
        prop_assert_eq!(m.requests_begun, picks.len() as u64, "every request counted begun");
        prop_assert_eq!(m.requests_shed, shed_local);
        prop_assert_eq!(
            m.requests_begun,
            m.requests_harvested
                + m.requests_degraded
                + m.requests_shed
                + m.requests_failed
                + m.requests_abandoned,
            "reconciliation is exact: {}",
            m
        );
    }
}
