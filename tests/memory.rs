//! The paper's memory story (§II "The need for a fused kernel", §IV-C,
//! Fig. 10b) verified end to end: the unfused pipeline's intermediate
//! storage follows the 12·nnz·msg_dim model, grows linearly in d for
//! vector-message patterns, and the fused kernel allocates only the
//! output (plus O(d) scratch per thread).

use fusedmm::baseline::unfused::unfused_pipeline;
use fusedmm::prelude::*;
use fusedmm::sparse::{fusedmm_bytes, unfused_intermediate_bytes};

fn workload(n: usize, d: usize) -> (Csr, Dense, Dense) {
    let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(5));
    let x = random_features(n, d, 0.5, 1);
    let y = random_features(n, d, 0.5, 2);
    (a, x, y)
}

#[test]
fn fr_intermediate_matches_paper_model() {
    let (a, x, y) = workload(100, 64);
    let out = unfused_pipeline(&a, &x, &y, &OpSet::fr_model(1.0));
    // d-vector H (12·nnz·d) + norm scalars + scaled scalars (12·nnz each)
    let expected =
        unfused_intermediate_bytes(a.nnz(), 64) + 2 * unfused_intermediate_bytes(a.nnz(), 1);
    assert_eq!(out.intermediate_bytes, expected);
}

#[test]
fn embedding_intermediate_is_d_independent() {
    let (a, x32, y32) = workload(100, 32);
    let (_, x256, y256) = workload(100, 256);
    let ops = OpSet::sigmoid_embedding(None);
    let small = unfused_pipeline(&a, &x32, &y32, &ops).intermediate_bytes;
    let large = unfused_pipeline(&a, &x256, &y256, &ops).intermediate_bytes;
    assert_eq!(small, large, "scalar-message H must not scale with d");
}

#[test]
fn fr_intermediate_scales_linearly_in_d() {
    let (a, _, _) = workload(100, 1);
    let mut prev = 0usize;
    for d in [16usize, 32, 64, 128] {
        let x = random_features(100, d, 0.5, 1);
        let y = random_features(100, d, 0.5, 2);
        let bytes = unfused_pipeline(&a, &x, &y, &OpSet::fr_model(1.0)).intermediate_bytes;
        if prev > 0 {
            let fixed = 2 * unfused_intermediate_bytes(a.nnz(), 1);
            assert_eq!(bytes - fixed, 2 * (prev - fixed), "doubling d must double H");
        }
        prev = bytes;
    }
}

#[test]
fn operand_model_matches_components() {
    // §IV-C: total = 8md + 4nd + 12nnz.
    let (a, x, y) = workload(50, 16);
    let z = Dense::zeros(a.nrows(), 16);
    let components = x.storage_bytes() + z.storage_bytes() + y.storage_bytes() + 12 * a.nnz();
    assert_eq!(fusedmm_bytes(a.nrows(), a.ncols(), a.nnz(), 16), components);
}

#[test]
fn unfused_fr_dominates_fused_operands_at_high_d() {
    // The OOM mechanism: at large d the intermediate alone exceeds all
    // fused operands combined.
    let (a, _, _) = workload(200, 1);
    let d = 512;
    let h = unfused_intermediate_bytes(a.nnz(), d);
    let operands = fusedmm_bytes(a.nrows(), a.ncols(), a.nnz(), d);
    assert!(
        h > operands,
        "H ({h} bytes) should exceed operand storage ({operands} bytes) at d={d}"
    );
}

#[test]
fn fused_kernel_output_is_only_m_by_d() {
    // Indirect but deterministic check: the fused kernel's result is
    // exactly m×d and no Z-sized scratch survives (the kernel returns
    // one Dense; nothing else escapes).
    let (a, x, y) = workload(64, 48);
    let z = fusedmm_opt(&a, &x, &y, &OpSet::fr_model(1.0));
    assert_eq!(z.storage_bytes(), 4 * 64 * 48);
}
