//! Documentation guards: every `FUSEDMM_*` environment variable the
//! workspace reads must be documented in `docs/TUNING.md`, and every
//! relative markdown link in `README.md` / `docs/*.md` must resolve.
//!
//! These are grep-level checks on the source tree, so a new knob (or a
//! renamed doc file) fails CI until the documentation catches up.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Variables that appear as string literals but are deliberately not
/// user-facing knobs.
const ALLOWLIST: &[&str] = &[
    // Test fixture asserting the env_usize default fallback.
    "FUSEDMM_DOES_NOT_EXIST",
];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the façade crate IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(root: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(root).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if path.is_dir() {
            // Vendored stand-ins and build output are not ours to
            // document; .git is noise.
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Every FUSEDMM-prefixed string literal in `text` — quoted
/// occurrences are exactly the ones that reach `std::env::var`, while
/// prose mentions in doc comments are unquoted and skipped.
fn quoted_vars(text: &str, vars: &mut BTreeSet<String>) {
    for (i, _) in text.match_indices("\"FUSEDMM_") {
        let rest = &text[i + 1..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        // A trailing underscore means a prefix fragment (e.g. a
        // family mention like "FUSEDMM_ADMIT_"), not a variable.
        if name.len() > "FUSEDMM_".len() && !name.ends_with('_') {
            vars.insert(name);
        }
    }
}

#[test]
fn every_env_var_read_is_documented_in_tuning_md() {
    let root = repo_root();
    let tuning = fs::read_to_string(root.join("docs/TUNING.md"))
        .expect("docs/TUNING.md must exist — it is the env-var reference");
    let mut files = Vec::new();
    rust_sources(&root, &mut files);
    assert!(files.len() > 50, "source scan looks broken: {} files", files.len());
    let mut vars = BTreeSet::new();
    for file in &files {
        quoted_vars(&fs::read_to_string(file).unwrap(), &mut vars);
    }
    assert!(
        vars.contains("FUSEDMM_FORCE_SCALAR") && vars.contains("FUSEDMM_FAULT_PLAN"),
        "scan failed to find known variables: {vars:?}"
    );
    let undocumented: Vec<&String> = vars
        .iter()
        .filter(|v| !ALLOWLIST.contains(&v.as_str()) && !tuning.contains(&format!("`{v}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "environment variables read in the workspace but missing from docs/TUNING.md \
         (add a table row, or extend the allowlist in tests/docs.rs if it is not a \
         user-facing knob): {undocumented:?}"
    );
}

/// Relative links out of `](...)` markdown syntax; absolute URLs and
/// in-page anchors are skipped.
fn relative_links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, _) in text.match_indices("](") {
        let rest = &text[i + 2..];
        let Some(end) = rest.find(')') else { continue };
        let target = rest[..end].trim();
        if target.is_empty()
            || target.starts_with('#')
            || target.contains("://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        // Strip an anchor and any title suffix (`path "title"`).
        let path = target.split(['#', ' ']).next().unwrap();
        if !path.is_empty() {
            out.push(path.to_string());
        }
    }
    out
}

#[test]
fn markdown_links_in_readme_and_docs_resolve() {
    let root = repo_root();
    let mut pages = vec![root.join("README.md")];
    for entry in fs::read_dir(root.join("docs")).expect("docs/ directory") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            pages.push(path);
        }
    }
    assert!(pages.len() >= 3, "expected README + at least two docs pages: {pages:?}");
    let mut broken = Vec::new();
    for page in &pages {
        let text = fs::read_to_string(page).unwrap();
        let base = page.parent().unwrap();
        for link in relative_links(&text) {
            if !base.join(&link).exists() {
                broken.push(format!("{}: {link}", page.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative markdown links: {broken:?}");
}
