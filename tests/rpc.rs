//! Multi-process shard serving, exercised in-process: the wire codec
//! must be total (any byte slice decodes to a message or a typed
//! error, never a panic, never a wild allocation) and an exact inverse
//! of `encode`; and a `RemoteShardedEngine` gathering its parts from
//! `WorkerServer`s over real unix sockets must be **bit-identical** to
//! the in-process `ShardedEngine` on the same graph — at every epoch,
//! including after a worker is killed, misses an epoch, and a fresh
//! replica catches up from the replicated log's snapshot.

use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusedmm::kernel::Partition;
use fusedmm::prelude::*;
use fusedmm::rpc::proto::WireError;
use fusedmm::rpc::{decode, read_frame, write_frame, DecodeError, Frame, FrameError, Msg};
use fusedmm::serve::Quality;

// ---------------------------------------------------------------------
// Codec totality and round-trip.
// ---------------------------------------------------------------------

/// Build one message of each wire kind from generated raw material.
/// `vals` is cycled so any `(rows, cols)` shape is fillable.
fn build_msg(variant: usize, nums: &[u64], vals: &[f32], dims: (usize, usize), tag: usize) -> Msg {
    let (r, c) = dims;
    let dense = |r: usize, c: usize| {
        Dense::from_fn(
            r,
            c,
            |i, j| if vals.is_empty() { 0.0 } else { vals[(i * c + j) % vals.len()] },
        )
    };
    let num = |i: usize| nums.get(i).copied().unwrap_or(7 * i as u64 + 1);
    match variant {
        0 => Msg::Hello {
            proto_version: num(0) as u32,
            shard: num(1) as u32,
            band_start: num(2),
            band_len: num(3),
            y_rows: num(4),
            d: num(5) as u32,
            epoch: num(6),
            fresh: tag.is_multiple_of(2),
            backend: format!("backend-{}", num(7)),
        },
        1 => Msg::Embed {
            epoch: num(0),
            quality: match tag % 3 {
                0 => Quality::Exact,
                1 => Quality::TopKNeighbors(num(1) as u32 as usize),
                _ => Quality::CachedOnly,
            },
            deadline_us: tag.is_multiple_of(2).then(|| num(2)),
            nodes: nums.to_vec(),
        },
        2 => Msg::EmbedOk { rows: dense(r, c) },
        3 => Msg::PartErr {
            err: match tag % 4 {
                0 => WireError::Expired,
                1 => WireError::Panicked,
                2 => WireError::EpochUnavailable,
                _ => WireError::Other(format!("detail {}", num(0))),
            },
        },
        4 => Msg::Score {
            epoch: num(0),
            pairs: nums.iter().map(|&u| (u, u.wrapping_mul(3))).collect(),
        },
        5 => Msg::ScoreOk { scores: vals.to_vec() },
        6 => Msg::Epoch(match tag % 3 {
            0 => EpochRecord::Publish { epoch: num(0), x: dense(r, c), y: dense(c, r) },
            1 => EpochRecord::Delta {
                epoch: num(0),
                rows: nums.iter().map(|&u| u as usize).collect(),
                x_rows: dense(nums.len(), c),
                y_rows: dense(nums.len(), c),
            },
            _ => EpochRecord::Snapshot { epoch: num(0), x: dense(r, c), y: dense(c, r) },
        }),
        _ => Msg::EpochAck { epoch: num(0) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `decode(kind, encode(msg)) == msg` for every message kind, the
    /// re-encoding is byte-identical (the codec is canonical), every
    /// strict prefix fails typed, and trailing junk is rejected.
    #[test]
    fn codec_round_trips_and_rejects_mutations(
        variant in 0usize..8,
        nums in proptest::collection::vec(0u64..1_000_000, 0..10),
        vals in proptest::collection::vec(-1.0e5f32..1.0e5, 1..40),
        dims in (0usize..5, 0usize..5),
        tag in 0usize..12,
    ) {
        let msg = build_msg(variant, &nums, &vals, dims, tag);
        let payload = msg.encode();
        let back = decode(msg.kind(), &payload);
        prop_assert_eq!(back.as_ref(), Ok(&msg), "decode inverts encode");
        prop_assert_eq!(back.expect("decoded").encode(), payload.clone(), "canonical re-encoding");

        // Every strict prefix must fail with a typed error (the frame
        // layer guarantees whole payloads; the codec must still never
        // accept a truncation).
        for cut in 0..payload.len() {
            prop_assert!(
                decode(msg.kind(), &payload[..cut]).is_err(),
                "prefix of {} bytes (of {}) decoded for kind {}", cut, payload.len(), msg.kind()
            );
        }
        let mut padded = payload;
        padded.push(0);
        prop_assert_eq!(decode(msg.kind(), &padded), Err(DecodeError::Trailing));
    }

    /// Arbitrary bytes under an arbitrary kind either decode (and then
    /// re-encode canonically) or fail typed — never panic, including
    /// on garbage element counts, which must not size an allocation.
    #[test]
    fn codec_is_total_on_garbage(
        kind in 0usize..256,
        bytes in proptest::collection::vec(0usize..256, 0..64),
        huge_count in 0u64..u64::MAX,
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        if let Ok(msg) = decode(kind as u8, &bytes) {
            prop_assert_eq!(msg.encode(), bytes.clone(), "accepted garbage must be canonical");
        }
        // A count field promising more elements than the payload holds
        // is rejected before any Vec is sized.
        let mut evil = huge_count.to_le_bytes().to_vec();
        evil.extend_from_slice(&bytes);
        let _ = decode(6, &evil); // KIND_SCORE_OK: leading count
        let mut evil_score = 0u64.to_le_bytes().to_vec();
        evil_score.extend_from_slice(&huge_count.to_le_bytes());
        prop_assert!(matches!(
            decode(5, &evil_score), // KIND_SCORE: epoch then pair count
            Err(DecodeError::BadCount(_)) | Err(DecodeError::Eof) | Ok(_)
        ));
    }

    /// The framing layer is total on arbitrary streams: truncated,
    /// oversized, or garbage input yields a frame or a typed error.
    #[test]
    fn framing_is_total_on_garbage_streams(
        bytes in proptest::collection::vec(0usize..256, 0..96),
        request_id in 0u64..u64::MAX,
        kind in 0usize..256,
        payload in proptest::collection::vec(0usize..256, 0..48),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        match read_frame(&mut Cursor::new(&bytes)) {
            Ok(_) | Err(FrameError::Io(_)) | Err(FrameError::Closed) | Err(FrameError::BadLength(_)) => {}
        }

        // And a well-formed frame round-trips bit-exactly.
        let frame = Frame {
            request_id,
            kind: kind as u8,
            payload: payload.into_iter().map(|b| b as u8).collect(),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("vec write");
        let back = read_frame(&mut Cursor::new(&wire)).expect("round trip");
        prop_assert_eq!(back.request_id, frame.request_id);
        prop_assert_eq!(back.kind, frame.kind);
        prop_assert_eq!(back.payload, frame.payload);
    }
}

// ---------------------------------------------------------------------
// Loopback bit-identity: RemoteShardedEngine over real unix sockets
// versus the in-process ShardedEngine.
// ---------------------------------------------------------------------

fn engine_config() -> EngineConfig {
    EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        admission: Some(AdmissionPolicy::unlimited()),
        fault: Some(Arc::new(FaultPlan::disabled())),
        ..EngineConfig::default()
    }
}

/// Host one shard's band behind a fresh replica (boot features are
/// zeros — the coordinator must seed it from a log snapshot) on a unix
/// socket.
fn boot_worker(
    a: &Csr,
    shard: usize,
    nshards: usize,
    d: usize,
    path: &std::path::Path,
) -> fusedmm::rpc::WorkerServer {
    let band = Partition::part1d(a, nshards, PartitionStrategy::NnzBalanced).rows(shard);
    let engine = WorkerEngine::new(
        a,
        band,
        shard,
        Dense::zeros(a.nrows(), d),
        Dense::zeros(a.ncols(), d),
        OpSet::sigmoid_embedding(None),
        engine_config(),
    );
    fusedmm::rpc::WorkerServer::serve_unix(Arc::new(engine), path).expect("bind worker socket")
}

/// Embed with a retry budget: requests racing a worker reconnect fail
/// typed; the caller's contract is retry-or-degrade, never corruption.
fn embed_eventually(remote: &RemoteShardedEngine, nodes: &[usize]) -> Dense {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match remote.embed(nodes) {
            Ok(rows) => return rows,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => panic!("embed never recovered: {e}"),
        }
    }
}

#[test]
fn remote_engine_is_bit_identical_over_sockets_and_survives_worker_restart() {
    let (n, d, nshards) = (150, 8, 2);
    let a = rmat(&RmatConfig::new(n, 3 * n).with_seed(9));
    let x = random_features(n, d, 0.5, 1);
    let y = random_features(n, d, 0.5, 2);
    let ops = OpSet::sigmoid_embedding(None);

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let paths: Vec<std::path::PathBuf> =
        (0..nshards).map(|s| dir.join(format!("fusedmm-rpc-test-{pid}-{s}.sock"))).collect();
    let mut servers: Vec<_> =
        (0..nshards).map(|s| boot_worker(&a, s, nshards, d, &paths[s])).collect();

    let mut rpc_config = RpcConfig::new(paths.clone());
    rpc_config.fault = Some(Arc::new(FaultPlan::disabled()));
    let transport = RpcTransport::connect(rpc_config).expect("connect loopback workers");
    let remote = RemoteShardedEngine::new(x.clone(), y.clone(), transport.clone(), engine_config());
    let local = ShardedEngine::new(a.clone(), x, y, ops, nshards, engine_config());
    assert_eq!(remote.boundaries(), local.boundaries());

    let windows: Vec<Vec<usize>> =
        vec![vec![0, n - 1, n / 2, 0], (0..n).step_by(5).collect(), (0..n).collect()];
    let check = |tag: &str| {
        for w in &windows {
            assert_eq!(
                embed_eventually(&remote, w),
                local.embed(w).expect("local embed"),
                "remote and in-process rows diverge: {tag}"
            );
        }
    };
    check("epoch 0 (snapshot-seeded fresh replicas)");

    // Delta, then publish — both sides mint the same epochs.
    let rows = vec![0, n / 2, n - 1];
    let px = Dense::from_fn(rows.len(), d, |r, k| (r * 5 + k) as f32 * 0.017);
    let py = Dense::from_fn(rows.len(), d, |r, k| (r + k * 2) as f32 * 0.011);
    assert_eq!(remote.delta_update(&rows, &px, &py), 1);
    assert_eq!(local.store().delta_update(&rows, &px, &py), 1);
    check("epoch 1 (delta)");

    let x2 = Dense::from_fn(n, d, |r, k| ((r * 3 + k) as f32 * 0.02).sin());
    let y2 = Dense::from_fn(n, d, |r, k| ((r + 2 * k) as f32 * 0.04).cos());
    assert_eq!(remote.publish(x2.clone(), y2.clone()), 2);
    assert_eq!(local.store().publish(x2, y2), 2);
    check("epoch 2 (publish)");

    // Kill worker 0's process stand-in, ship an epoch it cannot see,
    // then boot a *fresh* replica on the same socket: the replicated
    // log must carry it to identity via snapshot + catch-up.
    let reconnects_before = transport.reconnects(0);
    servers[0].stop();
    assert_eq!(remote.delta_update(&rows, &py, &px), 3);
    assert_eq!(local.store().delta_update(&rows, &py, &px), 3);
    servers[0] = boot_worker(&a, 0, nshards, d, &paths[0]);

    let deadline = Instant::now() + Duration::from_secs(30);
    while transport.reconnects(0) == reconnects_before {
        assert!(Instant::now() < deadline, "worker 0 never reconnected");
        std::thread::sleep(Duration::from_millis(20));
    }
    check("epoch 3 (after kill + fresh replica + log catch-up)");
    assert!(transport.reconnects(0) > reconnects_before, "reconnect counter advanced");

    // Scores cross the same transport, same bit-identity bar.
    let pairs: Vec<(usize, usize)> = (0..n).step_by(4).map(|u| (u, (u * 7 + 1) % n)).collect();
    assert_eq!(
        remote.score_edges(&pairs).expect("remote scores"),
        local.score_edges(&pairs).expect("local scores"),
    );

    // Every ticket resolved; the ledger reconciles exactly.
    let m = remote.metrics();
    assert_eq!(
        m.requests_begun,
        m.requests_harvested
            + m.requests_degraded
            + m.requests_shed
            + m.requests_failed
            + m.requests_abandoned,
        "remote front-end ledger reconciles: {m:?}"
    );
    assert_eq!(m.feature_epoch, 3);

    drop(remote);
    drop(servers);
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}
