//! Boundary and failure-injection tests: degenerate graphs, extreme
//! shapes, adversarial values. The fused kernel must behave like the
//! reference on all of them — the paper's generality claim stress-tested
//! where real-world loaders actually break.

use std::sync::Arc;

use fusedmm::baseline::unfused::unfused_pipeline;
use fusedmm::prelude::*;

fn presets() -> Vec<OpSet> {
    vec![
        OpSet::sigmoid_embedding(None),
        OpSet::fr_model(0.5),
        OpSet::tdist_embedding(),
        OpSet::gcn(),
    ]
}

#[test]
fn empty_graph_yields_zero_output() {
    let a = Csr::empty(10, 10);
    let x = random_features(10, 8, 0.5, 1);
    let y = random_features(10, 8, 0.5, 2);
    for ops in presets() {
        let z = fusedmm_opt(&a, &x, &y, &ops);
        assert!(z.as_slice().iter().all(|&v| v == 0.0), "{:?}", ops.pattern);
    }
}

#[test]
fn single_vertex_graph() {
    let mut c = Coo::new(1, 1);
    c.push(0, 0, 2.0); // a self loop
    let a = c.to_csr(Dedup::Last);
    let x = Dense::filled(1, 4, 0.5);
    let y = Dense::filled(1, 4, 0.25);
    for ops in presets() {
        let z = fusedmm_opt(&a, &x, &y, &ops);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&r) < 1e-6, "{:?}", ops.pattern);
    }
}

#[test]
fn one_dimensional_features() {
    let a = erdos_renyi(20, 40, 1);
    let x = random_features(20, 1, 0.5, 2);
    let y = random_features(20, 1, 0.5, 3);
    for ops in presets() {
        let fused = fusedmm_opt(&a, &x, &y, &ops);
        let unf = unfused_pipeline(&a, &x, &y, &ops).z;
        assert!(fused.max_abs_diff(&unf) < 1e-5, "{:?}", ops.pattern);
    }
}

#[test]
fn star_graph_hub_degree_equals_rows() {
    // One vertex adjacent to everyone: the worst case for row-balanced
    // partitioning and a stress for the accumulator.
    let n = 200;
    let mut c = Coo::new(n, n);
    for v in 1..n {
        c.push(0, v, 1.0);
    }
    let a = c.to_csr(Dedup::Last);
    let x = random_features(n, 16, 0.5, 4);
    let y = random_features(n, 16, 0.5, 5);
    for ops in presets() {
        let z = fusedmm_opt(&a, &x, &y, &ops);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&r) < 1e-3, "{:?} diff {}", ops.pattern, z.max_abs_diff(&r));
        // rows 1.. are all isolated
        for u in 1..n {
            assert!(z.row(u).iter().all(|&v| v == 0.0));
        }
    }
}

#[test]
fn extreme_feature_magnitudes_stay_finite_for_sigmoid() {
    // Logits far outside [-8, 8]: the exact sigmoid saturates, the LUT
    // clamps; neither may produce NaN/inf.
    let a = erdos_renyi(10, 20, 2);
    let x = Dense::filled(10, 8, 100.0);
    let y = Dense::filled(10, 8, 100.0);
    for ops in [
        OpSet::sigmoid_embedding(None),
        OpSet::sigmoid_embedding(Some(Arc::new(SigmoidLut::default_table()))),
    ] {
        let z = fusedmm_opt(&a, &x, &y, &ops);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn negative_and_zero_edge_weights() {
    let mut c = Coo::new(3, 3);
    c.push(0, 1, -2.0);
    c.push(0, 2, 0.0); // explicit zero stays a stored entry
    c.push(1, 0, 1.0);
    let a = c.to_csr(Dedup::Last);
    let y = Dense::from_fn(3, 2, |r, _| (r + 1) as f32);
    let x = Dense::zeros(3, 2);
    let z = fusedmm_opt(&a, &x, &y, &OpSet::gcn());
    // z0 = -2*y1 + 0*y2 = (-4, -4)
    assert_eq!(z.row(0), &[-4.0, -4.0]);
}

#[test]
fn wide_rectangular_slice() {
    // 1 batch row against many source vertices.
    let n = 500;
    let mut c = Coo::new(1, n);
    for v in (0..n).step_by(7) {
        c.push(0, v, 1.0);
    }
    let a = c.to_csr(Dedup::Last);
    let x = random_features(1, 24, 0.5, 6);
    let y = random_features(n, 24, 0.5, 7);
    for ops in presets() {
        let z = fusedmm_opt(&a, &x, &y, &ops);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&r) < 1e-3, "{:?}", ops.pattern);
    }
}

#[test]
fn more_partitions_than_rows() {
    let a = erdos_renyi(5, 6, 3);
    let x = random_features(5, 8, 0.5, 8);
    let y = random_features(5, 8, 0.5, 9);
    let ops = OpSet::sigmoid_embedding(None);
    let z = fusedmm::kernel::fusedmm_generic_opts(
        &a,
        &x,
        &y,
        &ops,
        Some(64),
        PartitionStrategy::NnzBalanced,
    );
    let r = fusedmm_reference(&a, &x, &y, &ops);
    assert!(z.max_abs_diff(&r) < 1e-6);
}

#[test]
fn custom_op_returning_constants() {
    // A VOP that ignores its inputs entirely.
    let a = erdos_renyi(12, 20, 5);
    let x = random_features(12, 4, 0.5, 10);
    let y = random_features(12, 4, 0.5, 11);
    let ops = OpSet::custom(
        VOp::Custom(Arc::new(|_x, _y, _a, out| out.fill(1.0))),
        ROp::Sum, // = d
        SOp::Noop,
        MOp::Noop, // broadcast the scalar
        AOp::Sum,
    );
    let z = fusedmm_generic(&a, &x, &y, &ops);
    for u in 0..12 {
        let deg = a.row_nnz(u) as f32;
        let want = deg * 4.0; // each edge contributes the scalar d = 4
        assert!(z.row(u).iter().all(|&v| (v - want).abs() < 1e-5));
    }
}

#[test]
fn duplicate_heavy_coo_input() {
    // Many duplicates of one entry must collapse deterministically.
    let mut c = Coo::new(2, 2);
    for i in 0..100 {
        c.push(0, 1, i as f32);
    }
    let summed = c.to_csr(Dedup::Sum);
    assert_eq!(summed.nnz(), 1);
    assert_eq!(summed.get(0, 1), Some((0..100).sum::<i32>() as f32));
    let last = c.to_csr(Dedup::Last);
    assert_eq!(last.get(0, 1), Some(99.0));
}

#[test]
fn sage_and_tdist_on_degenerate_graphs() {
    use fusedmm::apps::gcn::Activation;
    use fusedmm::apps::sage::{row_normalize, SageLayer};
    // Graph with an isolated vertex and a self loop.
    let mut c = Coo::new(4, 4);
    c.push(0, 0, 1.0);
    c.push(1, 2, 1.0);
    let a = c.to_csr(Dedup::Last);
    let x = random_features(4, 8, 0.5, 12);
    let z = fusedmm_opt(&a, &x, &x, &OpSet::tdist_embedding());
    // self loop: dist = 0 -> h = 1 -> z_0 = x_0
    for k in 0..8 {
        assert!((z.get(0, k) - x.get(0, k)).abs() < 1e-6);
    }
    let layer = SageLayer::new(8, 4, Activation::Linear, 1);
    let out = layer.forward(&row_normalize(&a), &x);
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}
