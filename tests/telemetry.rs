//! Telemetry exactness: one registry snapshot must reconcile — to the
//! unit — with the traffic driven through the serving engines under
//! concurrent ticketed load (requests begun == harvested + abandoned,
//! cache hits + misses == row lookups, registry == `metrics()`, no
//! lost updates), across 1/2/4 shards with the result cache off and
//! on; the Prometheus exposition must round-trip through the
//! text-format parser value-exactly; and a fully-sampled trace must be
//! a forest of well-formed trees (every span closed, exactly one root
//! per request, parents precede children, no cross-request links).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::Duration;

use fusedmm::perf::registry::{parse_prometheus, MetricValue};
use fusedmm::prelude::*;

const CLIENTS: usize = 4;
const REQUESTS: usize = 42;
const BATCH: usize = 12;
/// Clients drop (abandon) tickets where `r % ABANDON_EVERY == 3`.
const ABANDON_EVERY: usize = 7;

fn graph(n: usize) -> Csr {
    rmat(&RmatConfig::new(n, 6 * n).with_seed(9))
}

fn config(cached: bool) -> EngineConfig {
    EngineConfig {
        coalesce_window: Duration::from_micros(50),
        cache: cached.then(CacheConfig::default),
        ..EngineConfig::default()
    }
}

/// Either front end behind one ticketed surface, so the reconciliation
/// hammer sweeps single and sharded engines with the same loop.
enum Front {
    Single(Engine),
    Sharded(ShardedEngine),
}

impl Front {
    fn build(n: usize, shards: usize, cached: bool) -> Front {
        let a = graph(n);
        let x = random_features(n, 16, 0.5, 3);
        let y = random_features(n, 16, 0.5, 4);
        let ops = OpSet::sigmoid_embedding(None);
        if shards <= 1 {
            Front::Single(Engine::new(a, x, y, ops, config(cached)))
        } else {
            Front::Sharded(ShardedEngine::new(a, x, y, ops, shards, config(cached)))
        }
    }

    fn begin(&self, nodes: &[usize]) -> Ticket<Dense> {
        match self {
            Front::Single(e) => e.embed_begin(nodes).expect("begin"),
            Front::Sharded(e) => e.embed_begin(nodes).expect("sharded begin"),
        }
    }

    fn register(&self, registry: &MetricsRegistry) {
        match self {
            Front::Single(e) => e.register_metrics(registry, &[]),
            // The front-end collector registers first, so unlabeled
            // queries below resolve to front-end samples, not a
            // shard's.
            Front::Sharded(e) => e.register_metrics(registry),
        }
    }

    /// (begun, harvested, abandoned) from the engine's own `metrics()`
    /// — the values the registry must agree with exactly.
    fn request_stats(&self) -> (u64, u64, u64) {
        match self {
            Front::Single(e) => {
                let m = e.metrics();
                (m.requests_begun, m.requests_harvested, m.requests_abandoned)
            }
            Front::Sharded(e) => {
                let m = e.metrics();
                (m.requests_begun, m.requests_harvested, m.requests_abandoned)
            }
        }
    }

    fn cache_metrics(&self) -> Option<CacheMetrics> {
        match self {
            Front::Single(e) => e.metrics().cache,
            Front::Sharded(e) => e.cache_metrics(),
        }
    }
}

/// Drive `CLIENTS x REQUESTS` ticketed requests of `BATCH` overlapping
/// nodes through `front`, harvesting through a depth-8 window and
/// deliberately dropping every `ABANDON_EVERY`-th ticket unharvested.
/// Returns (requests issued, rows requested, tickets abandoned).
fn hammer(front: &Front, n: usize) -> (u64, u64, u64) {
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut window: VecDeque<(usize, Ticket<Dense>)> = VecDeque::new();
                for r in 0..REQUESTS {
                    // Hot overlap across clients so cache hits,
                    // misses, and coalescing all occur.
                    let nodes: Vec<usize> =
                        (0..BATCH).map(|i| ((c % 2) * 349 + r * 97 + i * 13) % n).collect();
                    window.push_back((r, front.begin(&nodes)));
                    if window.len() >= 8 {
                        let (r, ticket) = window.pop_front().expect("window non-empty");
                        if r % ABANDON_EVERY == 3 {
                            drop(ticket);
                        } else {
                            std::hint::black_box(ticket.wait().expect("harvest"));
                        }
                    }
                }
                for (r, ticket) in window {
                    if r % ABANDON_EVERY == 3 {
                        drop(ticket);
                    } else {
                        std::hint::black_box(ticket.wait().expect("drain"));
                    }
                }
            });
        }
    });
    let issued = (CLIENTS * REQUESTS) as u64;
    let rows = issued * BATCH as u64;
    let abandoned = (CLIENTS * (0..REQUESTS).filter(|r| r % ABANDON_EVERY == 3).count()) as u64;
    (issued, rows, abandoned)
}

#[test]
fn registry_counters_reconcile_exactly_across_shards_and_cache() {
    let n = 600;
    for shards in [1usize, 2, 4] {
        for cached in [false, true] {
            let front = Front::build(n, shards, cached);
            let registry = MetricsRegistry::new();
            front.register(&registry);
            let (issued, rows, abandoned) = hammer(&front, n);

            let (begun, harvested, stats_abandoned) = front.request_stats();
            let label = format!("shards={shards} cache={cached}");
            assert_eq!(begun, issued, "{label}: every issued request was begun");
            if cached {
                // A dropped ticket that resolved at creation (full
                // cache hit) was already harvested, so only pending
                // drops abandon.
                assert!(stats_abandoned <= abandoned, "{label}: abandoned <= dropped tickets");
            } else {
                assert_eq!(stats_abandoned, abandoned, "{label}: abandoned == dropped tickets");
            }
            assert_eq!(
                begun,
                harvested + stats_abandoned,
                "{label}: requests in == harvested + abandoned once all tickets resolved"
            );

            // The registry sees the same atomics — value-exact, no
            // lost updates.
            let snap = registry.snapshot();
            assert_eq!(snap.counter("fusedmm_requests_begun_total", &[]), Some(begun), "{label}");
            assert_eq!(
                snap.counter("fusedmm_requests_harvested_total", &[]),
                Some(harvested),
                "{label}"
            );
            assert_eq!(
                snap.counter("fusedmm_requests_abandoned_total", &[]),
                Some(stats_abandoned),
                "{label}"
            );

            if cached {
                let m = front.cache_metrics().expect("cache enabled");
                // Every requested row is exactly one lookup hit or
                // miss; late hits re-count a fill-raced miss as a hit
                // at routing, so they are subtracted.
                assert_eq!(
                    m.hits - m.late_hits + m.misses,
                    rows,
                    "{label}: cache hits + misses reconcile with rows looked up"
                );
                assert_eq!(snap.counter("fusedmm_cache_hits_total", &[]), Some(m.hits), "{label}");
                assert_eq!(
                    snap.counter("fusedmm_cache_misses_total", &[]),
                    Some(m.misses),
                    "{label}"
                );
                assert!(m.coalesced_misses <= m.misses, "{label}");
            } else {
                assert!(snap.counter("fusedmm_cache_hits_total", &[]).is_none(), "{label}");
            }

            // Sharded deployments expose every band's dispatcher
            // counters under shard labels; rows flow only through
            // bands, so the shard-tagged sum covers all computed rows.
            if let Front::Sharded(e) = &front {
                let m = e.metrics();
                let mut shard_rows = 0;
                for s in 0..e.nshards() {
                    let tag = s.to_string();
                    shard_rows += snap
                        .counter("fusedmm_rows_computed_total", &[("shard", &tag)])
                        .expect("per-shard rows sample");
                }
                let engine_rows: u64 = m.per_shard.iter().map(|s| s.rows_computed).sum();
                assert_eq!(shard_rows, engine_rows, "{label}: registry == per-shard metrics");
            }
        }
    }
}

#[test]
fn prometheus_exposition_round_trips_value_exactly() {
    let front = Front::build(400, 2, true);
    let registry = MetricsRegistry::new();
    front.register(&registry);
    register_kernel_profiles(&registry);
    hammer(&front, 400);

    let snap = registry.snapshot();
    let text = snap.to_prometheus();
    let parsed = parse_prometheus(&text).expect("exposition parses");
    assert!(!parsed.is_empty());

    // Every counter and gauge survives the text round trip with its
    // exact value and full label set (histograms/ratios explode into
    // quantile series, checked by the perf crate's own tests).
    let by_key: HashMap<(String, BTreeSet<(String, String)>), f64> = parsed
        .into_iter()
        .map(|p| ((p.name.clone(), p.labels.iter().cloned().collect()), p.value))
        .collect();
    let mut checked = 0;
    for s in &snap.samples {
        let want = match s.value {
            MetricValue::Counter(v) => v as f64,
            MetricValue::Gauge(v) => v,
            _ => continue,
        };
        let key = (s.name.clone(), s.labels.iter().cloned().collect());
        let got = by_key.get(&key).unwrap_or_else(|| panic!("{} missing from exposition", s.name));
        assert_eq!(*got, want, "{} value drifted through the text format", s.name);
        checked += 1;
    }
    assert!(checked > 20, "expected a rich sample set, checked only {checked}");
}

#[test]
fn sampled_traces_form_well_formed_per_request_trees() {
    let n = 500;
    let tracer = Tracer::new(1.0, 8192);
    let a = graph(n);
    let x = random_features(n, 16, 0.5, 5);
    let y = random_features(n, 16, 0.5, 6);
    let engine = ShardedEngine::new(
        a,
        x,
        y,
        OpSet::sigmoid_embedding(None),
        2,
        EngineConfig { tracer: Some(tracer.clone()), ..config(true) },
    );
    // Concurrent ticketed traffic, all harvested, every request traced.
    std::thread::scope(|s| {
        for c in 0..3usize {
            let engine = &engine;
            s.spawn(move || {
                for r in 0..20usize {
                    let nodes: Vec<usize> =
                        (0..8).map(|i| (c * 211 + r * 61 + i * 7) % n).collect();
                    engine.embed_begin(&nodes).expect("begin").wait().expect("harvest");
                }
            });
        }
    });

    let spans = tracer.spans();
    assert!(!spans.is_empty(), "rate-1.0 tracer recorded nothing");
    // Index spans per trace; every span is closed by construction
    // (records carry both timestamps).
    let mut traces: HashMap<u64, Vec<&fusedmm::perf::trace::SpanRecord>> = HashMap::new();
    for s in &spans {
        assert!(s.end_ns >= s.start_ns, "span {} closed before it started", s.span);
        traces.entry(s.trace).or_default().push(s);
    }
    for (trace, spans) in &traces {
        let roots: Vec<_> = spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(roots.len(), 1, "trace {trace} must have exactly one root");
        let root = roots[0];
        assert!(matches!(root.kind.label(), "embed"), "trace {trace} rooted at {:?}", root.kind);
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
        assert_eq!(ids.len(), spans.len(), "trace {trace} has duplicate span ids");
        let by_id: HashMap<u64, &&fusedmm::perf::trace::SpanRecord> =
            spans.iter().map(|s| (s.span, s)).collect();
        for s in spans {
            if s.parent == 0 {
                continue;
            }
            // Parents resolve within the same trace — no
            // cross-request leakage — and precede their children.
            let parent = by_id
                .get(&s.parent)
                .unwrap_or_else(|| panic!("trace {trace}: span {} orphaned", s.span));
            assert!(
                parent.start_ns <= s.start_ns,
                "trace {trace}: parent {} starts after child {}",
                parent.span,
                s.span
            );
            // Everything a request does happens inside its root span.
            assert!(
                s.start_ns >= root.start_ns && s.end_ns <= root.end_ns,
                "trace {trace}: span {} escapes its root's lifetime",
                s.span
            );
        }
    }
    // The chrome://tracing dump serializes every recorded span.
    let json = tracer.chrome_json();
    assert_eq!(json.matches("\"ph\": \"X\"").count(), spans.len());
}
