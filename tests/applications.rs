//! Integration tests over the end-to-end applications: the paper's
//! §V-D claims at test scale — backends agree, training converges,
//! embeddings classify, GCN aggregates, layout separates.

use fusedmm::apps::classify::{ClassifierConfig, SoftmaxRegression};
use fusedmm::apps::force2vec::{Backend, Force2Vec, Force2VecConfig};
use fusedmm::apps::frlayout::{FrLayout, FrLayoutConfig};
use fusedmm::apps::gcn::{normalize_adjacency, Gcn2};
use fusedmm::apps::gnn_mlp::GnnMlpLayer;
use fusedmm::apps::metrics::{accuracy, f1_micro};
use fusedmm::prelude::*;

fn cfg(backend: Backend, epochs: usize) -> Force2VecConfig {
    Force2VecConfig { dim: 32, batch_size: 32, epochs, lr: 0.03, negatives: 4, seed: 11, backend }
}

#[test]
fn force2vec_backends_reach_identical_embeddings() {
    // The Table VIII setup at toy scale: same seed, three backends,
    // same trajectory.
    let g = planted_partition(80, 3, 6.0, 1.0, 2).adj;
    let fused = Force2Vec::new(g.clone(), cfg(Backend::Fused, 4)).train();
    let unfused = Force2Vec::new(g.clone(), cfg(Backend::Unfused, 4)).train();
    let dense = Force2Vec::new(g, cfg(Backend::DenseTensor, 4)).train();
    assert!(fused.embedding.max_abs_diff(&unfused.embedding) < 5e-3);
    assert!(fused.embedding.max_abs_diff(&dense.embedding) < 5e-3);
}

#[test]
fn fused_embedding_classifies_planted_communities() {
    // The accuracy experiment: embeddings -> logistic regression -> F1.
    let g = planted_partition(120, 3, 8.0, 1.0, 4);
    let result = Force2Vec::new(g.adj.clone(), cfg(Backend::Fused, 40)).train();
    let (train, test) = g.train_test_split(0.5, 9);
    let model = SoftmaxRegression::train(
        &result.embedding,
        &g.labels,
        &train,
        g.k,
        &ClassifierConfig::default(),
    );
    let pred = model.predict(&result.embedding, &test);
    let truth: Vec<usize> = test.iter().map(|&v| g.labels[v]).collect();
    let f1 = f1_micro(&truth, &pred, g.k);
    assert!(f1 > 0.6, "F1 {f1} too low for a strongly assortative graph");
    // single-label micro-F1 == accuracy
    assert!((f1 - accuracy(&truth, &pred)).abs() < 1e-12);
}

#[test]
fn fused_and_unfused_training_give_equal_f1() {
    // §V-D: "the original Force2Vec and FusedMM-based Force2Vec both
    // achieve the same F1-micro scores".
    let g = planted_partition(90, 3, 8.0, 1.0, 6);
    let (train, test) = g.train_test_split(0.5, 3);
    let truth: Vec<usize> = test.iter().map(|&v| g.labels[v]).collect();
    let mut scores = Vec::new();
    for backend in [Backend::Fused, Backend::Unfused] {
        let emb = Force2Vec::new(g.adj.clone(), cfg(backend, 20)).train().embedding;
        let model =
            SoftmaxRegression::train(&emb, &g.labels, &train, g.k, &ClassifierConfig::default());
        let pred = model.predict(&emb, &test);
        scores.push(f1_micro(&truth, &pred, g.k));
    }
    assert!(
        (scores[0] - scores[1]).abs() < 1e-9,
        "fused F1 {} != unfused F1 {}",
        scores[0],
        scores[1]
    );
}

#[test]
fn gcn_stack_runs_on_dataset_standin() {
    let adj = Dataset::Cora.standin_scaled(0.1);
    let a_norm = normalize_adjacency(&adj);
    let x = random_features(adj.nrows(), 16, 0.5, 3);
    let net = Gcn2::new(16, 8, 7, 21);
    let logits = net.forward(&a_norm, &x);
    assert_eq!(logits.nrows(), adj.nrows());
    assert_eq!(logits.ncols(), 7);
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn gnn_mlp_layer_stacks() {
    let adj = Dataset::Pubmed.standin_scaled(0.01);
    let layer = GnnMlpLayer::seeded(8, 16, 5);
    let x = random_features(adj.nrows(), 8, 0.5, 4);
    let h1 = layer.forward(&adj, &x);
    let h2 = layer.forward(&adj, &h1);
    assert_eq!(h2.nrows(), adj.nrows());
    assert!(h2.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn layout_converges_on_standin() {
    let adj = Dataset::Cora.standin_scaled(0.05);
    let cfg = FrLayoutConfig { iterations: 20, ..Default::default() };
    let r = FrLayout::new(adj, cfg).run();
    assert!(r.positions.as_slice().iter().all(|v| v.is_finite()));
    assert!(r.mean_displacement.last().unwrap() < r.mean_displacement.first().unwrap());
}

#[test]
fn training_loss_monotone_tendency() {
    // Not strictly monotone (SGD), but the tail must be below the head.
    let g = planted_partition(100, 2, 7.0, 1.0, 12).adj;
    let r = Force2Vec::new(g, cfg(Backend::Fused, 12)).train();
    let head: f64 = r.losses[..3].iter().sum::<f64>() / 3.0;
    let tail: f64 = r.losses[r.losses.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(tail < head, "loss head {head} -> tail {tail}");
}
