//! Criterion benches backing Table VI: DGL (unfused) vs FusedMM
//! (generic) vs FusedMMopt (specialized) for the three kernel patterns
//! at d = 128 on a Youtube stand-in. The repro-table6 binary runs the
//! full graph × dimension sweep; these give statistically tight
//! relative numbers on one representative cell per pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::{fusedmm_generic, fusedmm_opt};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

fn bench_patterns(c: &mut Criterion) {
    let w = kernel_workload_scaled(Dataset::Youtube, 128, 0.004);
    let patterns: Vec<(&str, OpSet)> = vec![
        ("embedding", OpSet::sigmoid_embedding(None)),
        ("fr", OpSet::fr_model(1.0)),
        ("gcn", OpSet::gcn()),
    ];
    let mut g = c.benchmark_group("table6_d128_youtube");
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_millis(1500));
    g.sample_size(10);
    for (name, ops) in &patterns {
        g.bench_with_input(BenchmarkId::new("dgl_unfused", name), ops, |b, ops| {
            b.iter(|| black_box(unfused_pipeline(&w.adj, &w.x, &w.y, ops)));
        });
        g.bench_with_input(BenchmarkId::new("fusedmm_generic", name), ops, |b, ops| {
            b.iter(|| black_box(fusedmm_generic(&w.adj, &w.x, &w.y, ops)));
        });
        g.bench_with_input(BenchmarkId::new("fusedmm_opt", name), ops, |b, ops| {
            b.iter(|| black_box(fusedmm_opt(&w.adj, &w.x, &w.y, ops)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
