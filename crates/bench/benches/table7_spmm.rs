//! Criterion benches backing Table VII: the inspector-executor SpMM
//! (MKL stand-in) vs FusedMM's GCN/SpMM specialization at d = 128.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_baseline::iespmm::IeSpmm;
use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::fusedmm_opt;
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

fn bench_spmm(c: &mut Criterion) {
    let w = kernel_workload_scaled(Dataset::Youtube, 128, 0.004);
    let ops = OpSet::gcn();
    let ie = IeSpmm::inspect(&w.adj, None);
    let mut g = c.benchmark_group("table7_spmm_d128");
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_millis(1500));
    g.sample_size(10);
    g.bench_function("mkl_ie_executor", |b| {
        b.iter(|| black_box(ie.execute(&w.y)));
    });
    g.bench_function("mkl_ie_inspect_plus_execute", |b| {
        b.iter(|| {
            let ie = IeSpmm::inspect(&w.adj, None);
            black_box(ie.execute(&w.y))
        });
    });
    g.bench_function("fusedmm_spmm_specialization", |b| {
        b.iter(|| black_box(fusedmm_opt(&w.adj, &w.x, &w.y, &ops)));
    });
    g.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
