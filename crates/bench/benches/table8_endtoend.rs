//! Criterion benches backing Table VIII: one Force2Vec training epoch
//! per backend (PyTorch-style dense, DGL-style unfused, FusedMM) on a
//! Cora stand-in at d = 128.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_apps::force2vec::{Backend, Force2Vec, Force2VecConfig};
use fusedmm_graph::datasets::Dataset;

fn bench_epoch(c: &mut Criterion) {
    let g = Dataset::Cora.labeled_standin(0.4).unwrap().adj;
    let mut group = c.benchmark_group("table8_epoch_cora");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for backend in [Backend::DenseTensor, Backend::Unfused, Backend::Fused] {
        let cfg = Force2VecConfig {
            dim: 128,
            batch_size: 256,
            epochs: 1,
            lr: 0.02,
            negatives: 5,
            seed: 3,
            backend,
        };
        let trainer = Force2Vec::new(g.clone(), cfg);
        group.bench_with_input(
            BenchmarkId::new("one_epoch", format!("{backend:?}")),
            &trainer,
            |b, t| {
                b.iter(|| black_box(t.train()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
