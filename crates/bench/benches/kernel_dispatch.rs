//! Kernel dispatch bench: blocking level × SIMD backend at the
//! serving-typical dimensions.
//!
//! The const-generic register-blocked kernels only exist for
//! `GENERATED_DIMS`; the dimensions real embedding services run
//! (d = 48/96/192/384) used to fall back to the dynamic-strip kernel.
//! This bench measures what the strip-mined family (8-lane panels,
//! register-resident accumulators across the neighbor loop) buys over
//! that fallback, per pattern — the acceptance gate is `strip_mined`
//! beating `dyn_strips` at d = 96 and d = 192 on the SpMM and
//! sigmoid-embedding patterns. The `register_blocked` row appears only
//! at generated dimensions for context.
//!
//! The header line records the detected CPU features and chosen
//! backend; set `FUSEDMM_FORCE_SCALAR=1` to measure the portable
//! fallback on the same machine.
//!
//! Run: `cargo bench --bench kernel_dispatch`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::genkern::GENERATED_DIMS;
use fusedmm_core::{cpu_features, fusedmm_opt_with, Blocking, PartitionStrategy};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

// 48/96/192/384 are the strip-only serving dims; 64 is a generated
// dimension, included so the register_blocked row appears for context.
const DIMS: [usize; 5] = [48, 64, 96, 192, 384];

fn bench_pattern(c: &mut Criterion, pattern_name: &str, ops: &OpSet) {
    for &d in &DIMS {
        // Scale the graph down as d grows so each configuration stays
        // in a comparable time budget.
        let w = kernel_workload_scaled(Dataset::Youtube, d, 0.004 * 96.0 / d as f64);
        let mut g = c.benchmark_group(format!("kernel_dispatch_{pattern_name}_d{d}"));
        g.warm_up_time(Duration::from_millis(500));
        g.measurement_time(Duration::from_millis(4000));
        g.sample_size(48);
        let mut levels =
            vec![("dyn_strips", Blocking::DynStrips), ("strip_mined", Blocking::StripMined)];
        if GENERATED_DIMS.contains(&d) {
            levels.push(("register_blocked", Blocking::RegisterBlocked));
        }
        for (name, blocking) in levels {
            g.bench_function(name, |b| {
                b.iter(|| {
                    // Single partition: measure the kernels themselves,
                    // not rayon fork-join jitter.
                    black_box(fusedmm_opt_with(
                        &w.adj,
                        &w.x,
                        &w.y,
                        ops,
                        blocking,
                        Some(1),
                        PartitionStrategy::NnzBalanced,
                    ))
                });
            });
        }
        g.finish();
    }
}

fn bench_spmm(c: &mut Criterion) {
    bench_pattern(c, "spmm", &OpSet::gcn());
}

fn bench_sigmoid_embed(c: &mut Criterion) {
    bench_pattern(c, "embed", &OpSet::sigmoid_embedding(None));
}

fn bench_tdist(c: &mut Criterion) {
    bench_pattern(c, "tdist", &OpSet::tdist_embedding());
}

fn print_header(_c: &mut Criterion) {
    println!("{}", cpu_features());
}

criterion_group!(benches, print_header, bench_spmm, bench_sigmoid_embed, bench_tdist);
criterion_main!(benches);
