//! Kernel dispatch bench: blocking level × SIMD backend at the
//! serving-typical dimensions.
//!
//! The const-generic register-blocked kernels only exist for
//! `GENERATED_DIMS`; the dimensions real embedding services run
//! (d = 48/96/192/384) used to fall back to the dynamic-strip kernel.
//! This bench measures what the strip-mined family (vector-width
//! panels, register-resident accumulators across the neighbor loop)
//! buys over that fallback, per pattern, and what the plan-time
//! `specialized` table (tuner-chosen panel count and h-chunk, masked
//! tails) buys on top — the acceptance gates are `strip_mined`
//! beating `dyn_strips` at d = 96 and d = 192 on the SpMM and
//! sigmoid-embedding patterns, and `specialized` matching or beating
//! `dyn_strips` at every probed d (strictly at the odd d = 100, where
//! the strip family does not apply and dyn strips pay an unfused
//! scalar tail per neighbor). The `register_blocked` row appears only
//! at generated dimensions for context.
//!
//! The header line records the detected CPU features and chosen
//! backend (on an AVX-512 machine the 16-lane kernels); set
//! `FUSEDMM_FORCE_SCALAR=1` or `FUSEDMM_FORCE_BACKEND=avx2` to
//! measure the narrower paths on the same machine.
//!
//! Run: `cargo bench --bench kernel_dispatch`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::genkern::{strip_minable, GENERATED_DIMS};
use fusedmm_core::{cpu_features, fusedmm_opt_with, global_tuner, Blocking, PartitionStrategy};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

// 48/96/192/384 are the strip-only serving dims; 64 is a generated
// dimension, included so the register_blocked row appears for context;
// 100 is odd, so only the dyn and specialized levels accept it.
const DIMS: [usize; 6] = [48, 64, 96, 100, 192, 384];

fn bench_pattern(c: &mut Criterion, pattern_name: &str, ops: &OpSet) {
    for &d in &DIMS {
        // Scale the graph down as d grows so each configuration stays
        // in a comparable time budget.
        let w = kernel_workload_scaled(Dataset::Youtube, d, 0.004 * 96.0 / d as f64);
        let mut g = c.benchmark_group(format!("kernel_dispatch_{pattern_name}_d{d}"));
        g.warm_up_time(Duration::from_millis(500));
        g.measurement_time(Duration::from_millis(4000));
        g.sample_size(48);
        // The tuner probes the shape grid once per (pattern, d) and
        // caches; the bench then measures the winning shape.
        let spec = global_tuner().spec_for(ops, d);
        let mut levels =
            vec![("dyn_strips", Blocking::DynStrips), ("specialized", Blocking::Specialized(spec))];
        if strip_minable(d) {
            levels.push(("strip_mined", Blocking::StripMined));
        }
        if GENERATED_DIMS.contains(&d) {
            levels.push(("register_blocked", Blocking::RegisterBlocked));
        }
        for (name, blocking) in levels {
            g.bench_function(name, |b| {
                b.iter(|| {
                    // Single partition: measure the kernels themselves,
                    // not rayon fork-join jitter.
                    black_box(fusedmm_opt_with(
                        &w.adj,
                        &w.x,
                        &w.y,
                        ops,
                        blocking,
                        Some(1),
                        PartitionStrategy::NnzBalanced,
                    ))
                });
            });
        }
        g.finish();
    }
}

fn bench_spmm(c: &mut Criterion) {
    bench_pattern(c, "spmm", &OpSet::gcn());
}

fn bench_sigmoid_embed(c: &mut Criterion) {
    bench_pattern(c, "embed", &OpSet::sigmoid_embedding(None));
}

fn bench_tdist(c: &mut Criterion) {
    bench_pattern(c, "tdist", &OpSet::tdist_embedding());
}

fn print_header(_c: &mut Criterion) {
    println!("{}", cpu_features());
}

criterion_group!(benches, print_header, bench_spmm, bench_sigmoid_embed, bench_tdist);
criterion_main!(benches);
