//! Serving-throughput benchmark: concurrent clients issuing node-subset
//! embedding requests through the engine's micro-batcher, swept over
//! request batch sizes {1, 16, 256}, over 1/2/4-shard PART1D engines,
//! under publish-while-serving (reader p99 across epoch swaps), over
//! zipf-skewed hot-repeat traffic with the result cache on/off (hit
//! ratio and p50/p99 per cell), and — open-loop — over ticketed
//! (`embed_begin`) in-flight windows swept across depth × shards ×
//! cache, with coalesced-miss and peak-in-flight counters per cell.
//! An overload point (offered depth ≫ admission cap) reports shed
//! rate, degraded rate, and served p99 with admission control off vs
//! on, and a degraded-tier sweep reports the `TopKNeighbors(k)`
//! max-abs error against the exact embedding per k.
//!
//! Reports requests/sec, deduplicated rows/sec, and the p50/p99
//! end-to-end request latency recorded by the engine's histogram.
//!
//! Knobs: `FUSEDMM_SERVE_N` (vertices), `FUSEDMM_SERVE_D` (dimension),
//! `FUSEDMM_SERVE_CLIENTS`, `FUSEDMM_SERVE_REQS` (requests per client),
//! `FUSEDMM_CACHE_MB` (cache budget for the cache sweep),
//! `FUSEDMM_BENCH_JSON` (write the whole report as JSON to this path —
//! the bench-smoke CI job archives it as a workflow artifact).
//!
//! Run: `cargo bench --bench serving_throughput`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusedmm_bench::report::{run_meta, JsonReport, Table};
use fusedmm_bench::workloads::{env_usize, ZipfSampler};
use fusedmm_core::kernel_profiles;
use fusedmm_graph::features::random_features;
use fusedmm_graph::rmat::{rmat, RmatConfig};
use fusedmm_ops::OpSet;
use fusedmm_perf::flops::flops_per_edge;
use fusedmm_perf::roofline::arithmetic_intensity;
use fusedmm_perf::stream::stream_triad;
use fusedmm_serve::{
    wait_any, AdmissionPolicy, CacheConfig, EmbedOptions, EmbedResponse, Engine, EngineConfig,
    FaultPlan, Quality, ServeError, ShardedEngine, Ticket, Tracer,
};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

const BATCH_SIZES: [usize; 3] = [1, 16, 256];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Zipf exponents for the cache sweep: uniform, moderate, web-style.
const ZIPF_SKEWS: [f64; 3] = [0.0, 0.8, 1.2];
/// In-flight window depths for the open-loop ticket sweep.
const INFLIGHT_DEPTHS: [usize; 3] = [1, 16, 128];

fn config() -> EngineConfig {
    // Unlimited admission and no injection: the steady-state sweeps
    // must not be perturbed by a chaos environment
    // (FUSEDMM_ADMIT_* / FUSEDMM_FAULT_PLAN); only the dedicated
    // overload sweep opts into admission control, explicitly.
    EngineConfig {
        coalesce_window: Duration::from_micros(100),
        admission: Some(AdmissionPolicy::unlimited()),
        fault: Some(Arc::new(FaultPlan::disabled())),
        ..EngineConfig::default()
    }
}

fn drive_clients(
    clients: usize,
    requests_per_client: usize,
    batch: usize,
    n: usize,
    embed: impl Fn(&[usize]) -> Dense + Sync,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let embed = &embed;
            s.spawn(move || {
                for r in 0..requests_per_client {
                    let nodes: Vec<usize> =
                        (0..batch).map(|i| (c * 7919 + r * 104_729 + i * 31) % n).collect();
                    std::hint::black_box(embed(&nodes));
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

fn batch_size_sweep(a: &Csr, feats: &Dense, n: usize, clients: usize, requests: usize) -> Table {
    let mut table = Table::new(&[
        "Batch",
        "Requests",
        "req/s",
        "rows/s (deduped)",
        "p50 (us)",
        "p99 (us)",
        "max (us)",
        "kernel launches",
    ]);
    for batch in BATCH_SIZES {
        // Fresh engine per batch size so the histogram isolates one
        // configuration; the autotuned plan is cached process-wide, so
        // only the first engine pays the probe.
        let engine = Engine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            config(),
        );
        let elapsed = drive_clients(clients, requests, batch, n, |nodes| {
            engine.embed(nodes).expect("embed request")
        });
        let m = engine.metrics();
        table.row(vec![
            batch.to_string(),
            format!("{}", m.embed.count),
            format!("{:.0}", (clients * requests) as f64 / elapsed),
            format!("{:.0}", m.rows_computed as f64 / elapsed),
            format!("{:.0}", m.embed.p50.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.p99.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.max.as_secs_f64() * 1e6),
            m.batches_dispatched.to_string(),
        ]);
    }
    table.print();
    println!("\nShape to verify: rows/s rises with batch size while the micro-batcher's");
    println!("kernel launches stay well below the request count.\n");
    table
}

fn shard_sweep(a: &Csr, feats: &Dense, n: usize, clients: usize, requests: usize) -> Table {
    let batch = 64;
    let mut table = Table::new(&[
        "Shards",
        "req/s",
        "merged p50 (us)",
        "merged p99 (us)",
        "embed p99/shard (us)",
    ]);
    for shards in SHARD_COUNTS {
        let engine = ShardedEngine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            shards,
            config(),
        );
        let elapsed = drive_clients(clients, requests, batch, n, |nodes| {
            engine.embed(nodes).expect("sharded embed")
        });
        let m = engine.metrics();
        // Each shard engine's own embed histogram (enqueue → batch
        // completion) is the unskewed per-shard latency; the front
        // end's fanout metric traces gather order, not compute.
        let per_shard: Vec<String> =
            m.per_shard.iter().map(|s| format!("{:.0}", s.embed.p99.as_secs_f64() * 1e6)).collect();
        table.row(vec![
            shards.to_string(),
            format!("{:.0}", (clients * requests) as f64 / elapsed),
            format!("{:.0}", m.embed.p50.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.p99.as_secs_f64() * 1e6),
            per_shard.join("/"),
        ]);
    }
    table.print();
    println!("\nShape to verify: the nnz-balanced cut keeps per-shard embed p99s close");
    println!("to each other (no straggler band).\n");
    table
}

fn publish_while_serving(
    a: &Csr,
    feats: &Dense,
    n: usize,
    clients: usize,
    requests: usize,
) -> Table {
    let d = feats.ncols();
    let batch = 64;
    let mut table =
        Table::new(&["Publishes", "req/s", "p50 (us)", "p99 (us)", "max (us)", "epochs served"]);
    for publish_every in [None, Some(Duration::from_millis(5)), Some(Duration::from_millis(1))] {
        let engine = Engine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            config(),
        );
        let stop = AtomicBool::new(false);
        let mut elapsed = 0.0;
        std::thread::scope(|s| {
            if let Some(every) = publish_every {
                let store = engine.store().clone();
                let stop = &stop;
                let base = feats.clone();
                s.spawn(move || {
                    let mut k = 0u32;
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(every);
                        let scale = 1.0 + (k % 16) as f32 * 0.001;
                        let fresh = Dense::from_fn(n, d, |r, c| base.get(r, c) * scale);
                        store.publish(fresh.clone(), fresh);
                        k += 1;
                    }
                });
            }
            elapsed = drive_clients(clients, requests, batch, n, |nodes| {
                engine.embed(nodes).expect("embed during publishes")
            });
            stop.store(true, Ordering::Release);
        });
        let m = engine.metrics();
        table.row(vec![
            match publish_every {
                None => "none".into(),
                Some(e) => format!("every {:?}", e),
            },
            format!("{:.0}", (clients * requests) as f64 / elapsed),
            format!("{:.0}", m.embed.p50.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.p99.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.max.as_secs_f64() * 1e6),
            format!("{}", m.epoch_swaps + 1),
        ]);
    }
    table.print();
    println!("\nShape to verify: reader p99 moves little as publish frequency rises —");
    println!("the RCU swap keeps the read hot path lock-brief, and batches pin their");
    println!("epoch instead of waiting out a publish.");
    table
}

fn cache_sweep(a: &Csr, feats: &Dense, n: usize, clients: usize, requests: usize) -> Table {
    let batch = 64;
    let cache_mb = env_usize("FUSEDMM_CACHE_MB", 256);
    let mut table = Table::new(&[
        "Skew",
        "Cache",
        "req/s",
        "hit ratio",
        "p50 (us)",
        "p99 (us)",
        "rows computed",
    ]);
    for skew in ZIPF_SKEWS {
        for cached in [false, true] {
            let cfg =
                EngineConfig { cache: cached.then(|| CacheConfig::with_mb(cache_mb)), ..config() };
            let engine = Engine::new(
                a.clone(),
                feats.clone(),
                feats.clone(),
                OpSet::sigmoid_embedding(None),
                cfg,
            );
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for c in 0..clients {
                    let engine = &engine;
                    s.spawn(move || {
                        // Every client draws from the same popularity
                        // distribution (different seeds), so hot nodes
                        // repeat within and across clients.
                        let mut zipf = ZipfSampler::new(n, skew, 0xC0FFEE + c as u64);
                        for _ in 0..requests {
                            let nodes = zipf.batch(batch);
                            std::hint::black_box(engine.embed(&nodes).expect("zipf embed"));
                        }
                    });
                }
            });
            let elapsed = t0.elapsed().as_secs_f64();
            let m = engine.metrics();
            let hit = match m.cache {
                Some(c) => format!("{:.1}%", c.overall_hit_ratio() * 100.0),
                None => "-".into(),
            };
            table.row(vec![
                format!("{skew:.1}"),
                if cached { "on".into() } else { "off".into() },
                format!("{:.0}", (clients * requests) as f64 / elapsed),
                hit,
                format!("{:.0}", m.embed.p50.as_secs_f64() * 1e6),
                format!("{:.0}", m.embed.p99.as_secs_f64() * 1e6),
                m.rows_computed.to_string(),
            ]);
        }
    }
    table.print();
    println!("\nShape to verify: hit ratio, the cache-on p50 win, and the drop in rows");
    println!("computed all grow with skew — at s=1.2 most rows come from memory, while");
    println!("at s=0.0 (uniform) the cache only helps once the set fits its budget.");
    table
}

/// Either front end behind the ticketed request surface, so the
/// open-loop sweep can drive single and sharded engines with one loop.
enum AnyServe {
    Single(Engine),
    Sharded(ShardedEngine),
}

impl AnyServe {
    fn build(a: &Csr, feats: &Dense, shards: usize, cache: Option<CacheConfig>) -> AnyServe {
        let cfg = EngineConfig { cache, ..config() };
        let ops = OpSet::sigmoid_embedding(None);
        if shards <= 1 {
            AnyServe::Single(Engine::new(a.clone(), feats.clone(), feats.clone(), ops, cfg))
        } else {
            AnyServe::Sharded(ShardedEngine::new(
                a.clone(),
                feats.clone(),
                feats.clone(),
                ops,
                shards,
                cfg,
            ))
        }
    }

    fn embed_begin(&self, nodes: &[usize]) -> Ticket<Dense> {
        match self {
            AnyServe::Single(e) => e.embed_begin(nodes).expect("embed_begin"),
            AnyServe::Sharded(e) => e.embed_begin(nodes).expect("sharded embed_begin"),
        }
    }

    /// (merged p50 us, merged p99 us, peak in-flight, coalesced misses)
    fn observed(&self) -> (f64, f64, u64, Option<u64>) {
        match self {
            AnyServe::Single(e) => {
                let m = e.metrics();
                (
                    m.embed.p50.as_secs_f64() * 1e6,
                    m.embed.p99.as_secs_f64() * 1e6,
                    m.inflight_peak,
                    m.cache.map(|c| c.coalesced_misses),
                )
            }
            AnyServe::Sharded(e) => {
                let m = e.metrics();
                (
                    m.embed.p50.as_secs_f64() * 1e6,
                    m.embed.p99.as_secs_f64() * 1e6,
                    m.inflight_peak,
                    m.cache.map(|c| c.coalesced_misses),
                )
            }
        }
    }
}

/// Open-loop ticketed serving: every client keeps a window of `depth`
/// un-harvested tickets open, harvesting the oldest only when the
/// window fills — the non-blocking front end's intended shape. Swept
/// over in-flight depth × shard count × cache on/off.
fn inflight_sweep(a: &Csr, feats: &Dense, n: usize, clients: usize, requests: usize) -> Table {
    let batch = 16;
    let cache_mb = env_usize("FUSEDMM_CACHE_MB", 256);
    let mut table = Table::new(&[
        "Shards",
        "Cache",
        "Depth",
        "req/s",
        "p50 (us)",
        "p99 (us)",
        "peak in-flight",
        "coalesced",
    ]);
    for shards in [1usize, 4] {
        for cached in [false, true] {
            for depth in INFLIGHT_DEPTHS {
                let engine = AnyServe::build(
                    a,
                    feats,
                    shards,
                    cached.then(|| CacheConfig::with_mb(cache_mb)),
                );
                let t0 = Instant::now();
                std::thread::scope(|s| {
                    for c in 0..clients {
                        let engine = &engine;
                        s.spawn(move || {
                            // `wait_any` parks on the whole window and
                            // harvests whichever ticket completes first
                            // (O(1) wakeup work per completion) — no
                            // poll loop, no head-of-line blocking on
                            // the oldest ticket.
                            let mut window: Vec<Ticket<Dense>> = Vec::new();
                            for r in 0..requests {
                                // Overlapping hot subsets across
                                // clients, so concurrent misses on the
                                // same node exercise coalescing.
                                let nodes: Vec<usize> = (0..batch)
                                    .map(|i| ((c % 2) * 449 + r * 131 + i * 17) % n)
                                    .collect();
                                window.push(engine.embed_begin(&nodes));
                                if window.len() >= depth {
                                    let i = wait_any(&mut window).expect("window has live tickets");
                                    let done = window.swap_remove(i);
                                    std::hint::black_box(done.wait().expect("harvest"));
                                }
                            }
                            while let Some(i) = wait_any(&mut window) {
                                let done = window.swap_remove(i);
                                std::hint::black_box(done.wait().expect("drain"));
                            }
                        });
                    }
                });
                let elapsed = t0.elapsed().as_secs_f64();
                let (p50, p99, peak, coalesced) = engine.observed();
                table.row(vec![
                    shards.to_string(),
                    if cached { "on".into() } else { "off".into() },
                    depth.to_string(),
                    format!("{:.0}", (clients * requests) as f64 / elapsed),
                    format!("{p50:.0}"),
                    format!("{p99:.0}"),
                    peak.to_string(),
                    coalesced.map_or("-".into(), |c| c.to_string()),
                ]);
            }
        }
    }
    table.print();
    println!("\nShape to verify: req/s climbs with depth (the dispatcher batches a full");
    println!("window per launch) while blocking-equivalent depth 1 sets the floor; with");
    println!("the cache on, deeper windows raise coalesced counts instead of recomputing.");
    table
}

/// Overload point: offered load far past the admission cap (window
/// depth = 8 x cap per client), with admission control off vs on. With
/// it off, every request queues and the tail latency is the queue;
/// with it on, the ladder answers part of the load from the cache
/// (degraded) and sheds the rest at the door, keeping the served p99
/// flat. Shed and degraded rates come from the engine's own counters.
fn overload_sweep(a: &Csr, feats: &Dense, n: usize, clients: usize) -> Table {
    let batch = 16;
    let cap = 32usize;
    let depth = 8 * cap;
    let requests = 4 * depth;
    let cache_mb = env_usize("FUSEDMM_CACHE_MB", 256);
    let mut table = Table::new(&[
        "Admission",
        "offered",
        "shed %",
        "degraded %",
        "served p99 (us)",
        "served req/s",
    ]);
    // Three policies: accept-everything, hard cap alone (shed-only,
    // degrade rung disabled), and the full ladder (degrade at 75% of
    // the cap, shed at the cap).
    let policies = [
        ("off", AdmissionPolicy::unlimited()),
        (
            "cap 32, shed-only",
            AdmissionPolicy { max_inflight: cap, max_queued_rows: 0, degrade_fraction: 1.0 },
        ),
        (
            "cap 32, degrade 75%",
            AdmissionPolicy { max_inflight: cap, max_queued_rows: 0, degrade_fraction: 0.75 },
        ),
    ];
    for (label, policy) in policies {
        let engine = Engine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            EngineConfig {
                cache: Some(CacheConfig::with_mb(cache_mb)),
                admission: Some(policy),
                ..config()
            },
        );
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let engine = &engine;
                s.spawn(move || {
                    let mut window: Vec<Ticket<EmbedResponse>> = Vec::new();
                    for r in 0..requests {
                        let nodes: Vec<usize> =
                            (0..batch).map(|i| (c * 7919 + r * 131 + i * 17) % n).collect();
                        match engine.embed_begin_opts(&nodes, EmbedOptions::default()) {
                            Ok(t) => window.push(t),
                            // Shed at the door is the policy working;
                            // the engine counted it.
                            Err(ServeError::Shed { .. }) => {}
                            Err(e) => panic!("unexpected eager error: {e:?}"),
                        }
                        if window.len() >= depth {
                            let i = wait_any(&mut window).expect("window has live tickets");
                            let done = window.swap_remove(i);
                            std::hint::black_box(done.wait().expect("overload harvest"));
                        }
                    }
                    while let Some(i) = wait_any(&mut window) {
                        let done = window.swap_remove(i);
                        std::hint::black_box(done.wait().expect("overload drain"));
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let m = engine.metrics();
        let offered = m.requests_begun;
        let served = m.requests_harvested + m.requests_degraded;
        table.row(vec![
            label.into(),
            offered.to_string(),
            format!("{:.1}%", m.requests_shed as f64 / offered as f64 * 100.0),
            format!("{:.1}%", m.requests_degraded as f64 / offered as f64 * 100.0),
            format!("{:.0}", m.embed.p99.as_secs_f64() * 1e6),
            format!("{:.0}", served as f64 / elapsed),
        ]);
    }
    table.print();
    println!("\nShape to verify: with admission off everything is served but the p99 is");
    println!("the whole queue; with the ladder on, shed + degraded absorb the excess and");
    println!("the served p99 collapses toward the uncongested latency.");
    table
}

/// Degraded-tier accuracy: `TopKNeighbors(k)` truncates each row's
/// neighbor list to its k heaviest edges before the kernel runs — this
/// sweep measures the resulting error against the exact embedding, per
/// k, on one engine (so both tiers share one plan and one epoch).
fn topk_error_sweep(a: &Csr, feats: &Dense, n: usize) -> Table {
    let engine = Engine::new(
        a.clone(),
        feats.clone(),
        feats.clone(),
        OpSet::sigmoid_embedding(None),
        config(),
    );
    let nodes: Vec<usize> = (0..256).map(|i| (i * 131) % n).collect();
    let exact = engine.embed(&nodes).expect("exact embed");
    let mut table = Table::new(&["k", "max |err|", "mean |err|", "rows marked degraded"]);
    for k in [2usize, 4, 8, 16] {
        let resp = engine
            .embed_begin_opts(&nodes, EmbedOptions::with_quality(Quality::TopKNeighbors(k)))
            .expect("topk begin")
            .wait()
            .expect("topk embed");
        assert!(
            resp.served_degraded.iter().all(|&b| b),
            "every TopKNeighbors row carries its degraded mark"
        );
        let mut max_err = 0f64;
        let mut sum_err = 0f64;
        for r in 0..resp.rows.nrows() {
            for c in 0..resp.rows.ncols() {
                let e = (resp.rows.get(r, c) - exact.get(r, c)).abs() as f64;
                max_err = max_err.max(e);
                sum_err += e;
            }
        }
        let mean = sum_err / (resp.rows.nrows() * resp.rows.ncols()) as f64;
        table.row(vec![
            k.to_string(),
            format!("{max_err:.3e}"),
            format!("{mean:.3e}"),
            format!("{}/{}", resp.served_degraded.len(), nodes.len()),
        ]);
    }
    table.print();
    println!("\nShape to verify: max |err| falls monotonically as k grows — each extra");
    println!("retained neighbor closes the gap to the exact aggregation.");
    table
}

/// Overhead guard: the same closed-loop workload with tracing disabled
/// vs sampled on (1 request in 64), interleaved twice per mode with
/// best-of taken, so telemetry cannot silently tax the serving hot
/// path. Asserts the sampled p50 stays within 5% of the disabled p50
/// (plus 50 us absolute slack for smoke-scale noise).
fn telemetry_overhead(a: &Csr, feats: &Dense, n: usize, clients: usize, requests: usize) -> Table {
    let batch = 16;
    let run = |tracer: Arc<Tracer>| {
        let engine = Engine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            EngineConfig { tracer: Some(tracer), ..config() },
        );
        let elapsed = drive_clients(clients, requests, batch, n, |nodes| {
            engine.embed(nodes).expect("overhead embed")
        });
        let m = engine.metrics();
        (m.embed.p50.as_secs_f64() * 1e6, (clients * requests) as f64 / elapsed)
    };
    // Warm up the plan cache and allocator outside the measurement.
    let _ = run(Tracer::disabled());
    let mut off = (f64::INFINITY, 0f64);
    let mut on = (f64::INFINITY, 0f64);
    for _ in 0..2 {
        let r = run(Tracer::disabled());
        if r.0 < off.0 {
            off = r;
        }
        let r = run(Tracer::new(1.0 / 64.0, 4096));
        if r.0 < on.0 {
            on = r;
        }
    }
    let regression = (on.0 - off.0) / off.0 * 100.0;
    let mut table = Table::new(&["Tracing", "req/s", "p50 (us)", "p50 regression"]);
    table.row(vec!["off".into(), format!("{:.0}", off.1), format!("{:.0}", off.0), "-".into()]);
    table.row(vec![
        "1/64 sampled".into(),
        format!("{:.0}", on.1),
        format!("{:.0}", on.0),
        format!("{regression:+.1}%"),
    ]);
    table.print();
    let slack = off.0 * 0.05 + 50.0;
    assert!(
        on.0 <= off.0 + slack,
        "sampled tracing regressed embed p50 by {regression:.1}% ({:.0} us -> {:.0} us), \
         beyond the 5% + 50 us guard",
        off.0,
        on.0,
    );
    println!("\nGuard: sampled tracing held the p50 within 5% (+50 us slack) of tracing-off.\n");
    table
}

/// Achieved vs roofline GFLOP/s per kernel shape the dispatcher
/// launched anywhere in this process — the per-`(op, d, backend,
/// blocking)` accounting recorded by `core::dispatch`. The roof is
/// `STREAM bandwidth x AI(d, delta)` (paper Eq. 4) with `delta` taken
/// per shape from its accumulated edges/rows.
fn kernel_roofline() -> Table {
    let bw = stream_triad(8 << 20, 3).gbytes_per_sec;
    println!("STREAM triad bandwidth: {bw:.1} GB/s\n");
    let mut table = Table::new(&[
        "op",
        "d",
        "backend",
        "blocking",
        "launches",
        "rows",
        "avg deg",
        "GFLOP/s",
        "roofline",
        "efficiency",
    ]);
    for p in kernel_profiles() {
        let secs = p.elapsed.as_secs_f64();
        if p.rows == 0 || p.edges == 0 || secs <= 0.0 {
            continue;
        }
        let avg_degree = p.edges as f64 / p.rows as f64;
        let gflops = p.edges as f64 * flops_per_edge(p.pattern, p.d) as f64 / secs / 1e9;
        let roof = bw * arithmetic_intensity(p.d, avg_degree);
        table.row(vec![
            p.pattern.name().to_string(),
            p.d.to_string(),
            p.backend.label().to_string(),
            p.blocking.to_string(),
            p.calls.to_string(),
            p.rows.to_string(),
            format!("{avg_degree:.1}"),
            format!("{gflops:.2}"),
            format!("{roof:.2}"),
            format!("{:.0}%", gflops / roof * 100.0),
        ]);
    }
    table.print();
    println!("\nShape to verify: every shape sits under its bandwidth-bound roof; serving");
    println!("launches (small row subsets, latency-bound) land well below the batch roof.");
    table
}

fn main() {
    let n = env_usize("FUSEDMM_SERVE_N", 20_000);
    let d = env_usize("FUSEDMM_SERVE_D", 64);
    let clients = env_usize("FUSEDMM_SERVE_CLIENTS", 8);
    let requests_per_client = env_usize("FUSEDMM_SERVE_REQS", 64);

    let a = rmat(&RmatConfig::new(n, 8 * n).with_seed(1));
    let feats = random_features(n, d, 0.5, 2);
    println!(
        "serving throughput — {} vertices, {} edges, d={d}, {clients} clients x {requests_per_client} requests\n",
        a.nrows(),
        a.nnz()
    );

    let mut report = JsonReport::new();

    let meta = run_meta();
    meta.print();
    println!();
    report.section("meta", &meta);

    println!("== batch-size sweep (single engine) ==");
    report.section("batch_size", &batch_size_sweep(&a, &feats, n, clients, requests_per_client));

    println!("== PART1D shard sweep (batch 64) ==");
    report.section("shards", &shard_sweep(&a, &feats, n, clients, requests_per_client));

    println!("== publish-while-serving (batch 64) ==");
    report.section(
        "publish_while_serving",
        &publish_while_serving(&a, &feats, n, clients, requests_per_client),
    );

    println!("== zipf skew x result cache (batch 64) ==");
    report.section("zipf_cache", &cache_sweep(&a, &feats, n, clients, requests_per_client));

    println!("\n== open-loop ticketed serving: in-flight depth x shards x cache (batch 16) ==");
    report.section("inflight", &inflight_sweep(&a, &feats, n, clients, requests_per_client));

    println!("\n== overload point: admission off vs on (batch 16, depth 8x cap) ==");
    report.section("overload", &overload_sweep(&a, &feats, n, clients));

    println!("\n== TopKNeighbors degraded-tier error vs exact ==");
    report.section("topk_error", &topk_error_sweep(&a, &feats, n));

    println!("\n== telemetry overhead guard (batch 16) ==");
    report.section(
        "telemetry_overhead",
        &telemetry_overhead(&a, &feats, n, clients, requests_per_client),
    );

    println!("\n== kernel shapes: achieved vs roofline ==");
    report.section("kernel_roofline", &kernel_roofline());

    if let Some(path) = JsonReport::env_path() {
        report.write(&path).expect("write FUSEDMM_BENCH_JSON report");
        println!("\nJSON report written to {}", path.display());
    }
}
