//! Serving-throughput benchmark: concurrent clients issuing node-subset
//! embedding requests through the engine's micro-batcher, swept over
//! request batch sizes {1, 16, 256}.
//!
//! Reports requests/sec, deduplicated rows/sec, and the p50/p99
//! end-to-end request latency recorded by the engine's histogram.
//!
//! Knobs: `FUSEDMM_SERVE_N` (vertices), `FUSEDMM_SERVE_D` (dimension),
//! `FUSEDMM_SERVE_CLIENTS`, `FUSEDMM_SERVE_REQS` (requests per client).
//!
//! Run: `cargo bench --bench serving_throughput`

use std::time::{Duration, Instant};

use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::env_usize;
use fusedmm_graph::features::random_features;
use fusedmm_graph::rmat::{rmat, RmatConfig};
use fusedmm_ops::OpSet;
use fusedmm_serve::{Engine, EngineConfig};

const BATCH_SIZES: [usize; 3] = [1, 16, 256];

fn main() {
    let n = env_usize("FUSEDMM_SERVE_N", 20_000);
    let d = env_usize("FUSEDMM_SERVE_D", 64);
    let clients = env_usize("FUSEDMM_SERVE_CLIENTS", 8);
    let requests_per_client = env_usize("FUSEDMM_SERVE_REQS", 64);

    let a = rmat(&RmatConfig::new(n, 8 * n).with_seed(1));
    let feats = random_features(n, d, 0.5, 2);
    println!(
        "serving throughput — {} vertices, {} edges, d={d}, {clients} clients x {requests_per_client} requests\n",
        a.nrows(),
        a.nnz()
    );

    let mut table = Table::new(&[
        "Batch",
        "Requests",
        "req/s",
        "rows/s (deduped)",
        "p50 (us)",
        "p99 (us)",
        "max (us)",
        "kernel launches",
    ]);

    for batch in BATCH_SIZES {
        // Fresh engine per batch size so the histogram isolates one
        // configuration; the autotuned plan is cached process-wide, so
        // only the first engine pays the probe.
        let engine = Engine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            EngineConfig { coalesce_window: Duration::from_micros(100), ..EngineConfig::default() },
        );

        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let engine = &engine;
                s.spawn(move || {
                    for r in 0..requests_per_client {
                        let nodes: Vec<usize> =
                            (0..batch).map(|i| (c * 7919 + r * 104_729 + i * 31) % n).collect();
                        let z = engine.embed(&nodes).expect("embed request");
                        std::hint::black_box(z);
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();

        let m = engine.metrics();
        let total_requests = (clients * requests_per_client) as f64;
        table.row(vec![
            batch.to_string(),
            format!("{}", m.embed.count),
            format!("{:.0}", total_requests / elapsed),
            format!("{:.0}", m.rows_computed as f64 / elapsed),
            format!("{:.0}", m.embed.p50.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.p99.as_secs_f64() * 1e6),
            format!("{:.0}", m.embed.max.as_secs_f64() * 1e6),
            m.batches_dispatched.to_string(),
        ]);
    }

    table.print();
    println!("\nShape to verify: rows/s rises with batch size while the micro-batcher's");
    println!("kernel launches stay well below the request count.");
}
