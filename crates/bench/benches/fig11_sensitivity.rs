//! Criterion benches backing Fig. 11: (a) speedup sensitivity to the
//! average degree on RMAT graphs, (b) kernel time sensitivity to the
//! feature dimension on a Flickr stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::fusedmm_opt;
use fusedmm_graph::datasets::Dataset;
use fusedmm_graph::features::random_features;
use fusedmm_graph::rmat::{rmat, RmatConfig};
use fusedmm_ops::OpSet;

fn bench_degree_sweep(c: &mut Criterion) {
    let n = 4000;
    let d = 128;
    let ops = OpSet::sigmoid_embedding(None);
    let mut g = c.benchmark_group("fig11a_degree");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    for deg in [10usize, 40, 100] {
        let adj = rmat(&RmatConfig::new(n, n * deg / 2).with_seed(deg as u64));
        let x = random_features(n, d, 0.5, 1);
        let y = random_features(n, d, 0.5, 2);
        g.bench_with_input(BenchmarkId::new("fusedmm", deg), &deg, |b, _| {
            b.iter(|| black_box(fusedmm_opt(&adj, &x, &y, &ops)));
        });
        g.bench_with_input(BenchmarkId::new("dgl_unfused", deg), &deg, |b, _| {
            b.iter(|| black_box(unfused_pipeline(&adj, &x, &y, &ops)));
        });
    }
    g.finish();
}

fn bench_dimension_sweep(c: &mut Criterion) {
    let ops = OpSet::sigmoid_embedding(None);
    let mut g = c.benchmark_group("fig11b_dimension");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    for d in [64usize, 256, 1024] {
        let w = kernel_workload_scaled(Dataset::Flickr, d, 0.02);
        g.bench_with_input(BenchmarkId::new("fusedmm", d), &w, |b, w| {
            b.iter(|| black_box(fusedmm_opt(&w.adj, &w.x, &w.y, &ops)));
        });
        g.bench_with_input(BenchmarkId::new("dgl_unfused", d), &w, |b, w| {
            b.iter(|| black_box(unfused_pipeline(&w.adj, &w.x, &w.y, &ops)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_degree_sweep, bench_dimension_sweep);
criterion_main!(benches);
