//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * register blocking (const-dimension kernels) vs dynamic strips vs
//!   the generic five-step path — isolating the paper's §IV-A win;
//! * nnz-balanced PART1D vs naive row partitioning on a skewed graph —
//!   isolating the load-balancing scheme of §III-C;
//! * lookup-table vs exact sigmoid — the Force2Vec-style SOP shortcut;
//! * 32-bit index narrowing in the inspector-executor SpMM (vs the
//!   plain 64-bit-index fused SpMM path at the same blocking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::{fusedmm_opt_with, Blocking, PartitionStrategy};
use fusedmm_graph::datasets::Dataset;
use fusedmm_graph::features::random_features;
use fusedmm_graph::rmat::{rmat, RmatConfig};
use fusedmm_ops::{OpSet, SigmoidLut};

fn bench_register_blocking(c: &mut Criterion) {
    let w = kernel_workload_scaled(Dataset::Youtube, 128, 0.004);
    let ops = OpSet::sigmoid_embedding(None);
    let mut g = c.benchmark_group("ablation_blocking");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    for (name, blocking) in [
        ("register_blocked", Blocking::RegisterBlocked),
        ("dyn_strips", Blocking::DynStrips),
        ("generic", Blocking::Generic),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(fusedmm_opt_with(
                    &w.adj,
                    &w.x,
                    &w.y,
                    &ops,
                    blocking,
                    None,
                    PartitionStrategy::NnzBalanced,
                ))
            });
        });
    }
    g.finish();
}

fn bench_partition_strategy(c: &mut Criterion) {
    // Skewed RMAT so the strategies actually differ.
    let n = 8000;
    let adj = rmat(&RmatConfig::new(n, n * 10).with_seed(5));
    let d = 128;
    let x = random_features(n, d, 0.5, 1);
    let y = random_features(n, d, 0.5, 2);
    let ops = OpSet::sigmoid_embedding(None);
    let mut g = c.benchmark_group("ablation_partition");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    for (name, strategy) in [
        ("nnz_balanced", PartitionStrategy::NnzBalanced),
        ("row_balanced", PartitionStrategy::RowBalanced),
    ] {
        g.bench_with_input(BenchmarkId::new("embedding", name), &strategy, |b, &s| {
            b.iter(|| black_box(fusedmm_opt_with(&adj, &x, &y, &ops, Blocking::Auto, None, s)));
        });
    }
    g.finish();
}

fn bench_sigmoid_lut(c: &mut Criterion) {
    let w = kernel_workload_scaled(Dataset::Youtube, 128, 0.004);
    let exact = OpSet::sigmoid_embedding(None);
    let lut = OpSet::sigmoid_embedding(Some(Arc::new(SigmoidLut::default_table())));
    let mut g = c.benchmark_group("ablation_sigmoid");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    g.bench_function("exact", |b| {
        b.iter(|| {
            black_box(fusedmm_opt_with(
                &w.adj,
                &w.x,
                &w.y,
                &exact,
                Blocking::Auto,
                None,
                PartitionStrategy::NnzBalanced,
            ))
        });
    });
    g.bench_function("lut", |b| {
        b.iter(|| {
            black_box(fusedmm_opt_with(
                &w.adj,
                &w.x,
                &w.y,
                &lut,
                Blocking::Auto,
                None,
                PartitionStrategy::NnzBalanced,
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_register_blocking, bench_partition_strategy, bench_sigmoid_lut);
criterion_main!(benches);
