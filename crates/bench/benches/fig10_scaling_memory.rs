//! Criterion benches backing Fig. 10: (a) the embedding kernel under
//! explicit partition counts (strong-scaling path), and (b) the
//! allocation asymmetry of unfused-FR vs fused-FR as d grows (the
//! timing proxy for the memory experiment; exact peak-heap numbers
//! come from the repro-fig10b binary's counting allocator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_bench::workloads::kernel_workload_scaled;
use fusedmm_core::{fusedmm_opt, fusedmm_opt_with, Blocking, PartitionStrategy};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

fn bench_partitions(c: &mut Criterion) {
    let w = kernel_workload_scaled(Dataset::Orkut, 128, 0.002);
    let ops = OpSet::sigmoid_embedding(None);
    let mut g = c.benchmark_group("fig10a_partitions");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    for parts in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("embedding", parts), &parts, |b, &p| {
            b.iter(|| {
                black_box(fusedmm_opt_with(
                    &w.adj,
                    &w.x,
                    &w.y,
                    &ops,
                    Blocking::Auto,
                    Some(p),
                    PartitionStrategy::NnzBalanced,
                ))
            });
        });
    }
    g.finish();
}

fn bench_fr_memory_asymmetry(c: &mut Criterion) {
    let ops = OpSet::fr_model(1.0);
    let mut g = c.benchmark_group("fig10b_fr_alloc");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1200));
    g.sample_size(10);
    for d in [32usize, 128] {
        let w = kernel_workload_scaled(Dataset::Ogbprotein, d, 1.0 / 480.0);
        g.bench_with_input(BenchmarkId::new("dgl_unfused", d), &w, |b, w| {
            b.iter(|| black_box(unfused_pipeline(&w.adj, &w.x, &w.y, &ops)));
        });
        g.bench_with_input(BenchmarkId::new("fusedmm", d), &w, |b, w| {
            b.iter(|| black_box(fusedmm_opt(&w.adj, &w.x, &w.y, &ops)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partitions, bench_fr_memory_asymmetry);
criterion_main!(benches);
