//! Paper-style table printing for the repro binaries.

use crate::methods::CellResult;

/// One-row table identifying a benchmark run: git commit, CPU
/// architecture and detected ISA features, the SIMD backend the
/// process executes, and the rayon pool width. Benches prepend it as a
/// `meta` section of their [`JsonReport`] so artifacts uploaded by CI
/// are comparable across commits and machines.
pub fn run_meta() -> Table {
    let sha = std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "--short=12", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown".into());
    let cpu = fusedmm_core::cpu_features();
    let features = cpu
        .detected
        .iter()
        .map(|(name, present)| format!("{name}={}", if *present { "yes" } else { "no" }))
        .collect::<Vec<_>>()
        .join(" ");
    let mut table = Table::new(&["git", "arch", "features", "backend", "threads"]);
    table.row(vec![
        sha,
        cpu.arch.to_string(),
        if features.is_empty() { "-".into() } else { features },
        format!("{}{}", cpu.backend, if cpu.forced_scalar { " (forced)" } else { "" }),
        rayon::current_num_threads().to_string(),
    ]);
    table
}

/// Format one table cell: seconds with three decimals, or the paper's
/// `×` for out-of-memory entries.
pub fn fmt_cell(r: &CellResult) -> String {
    match r {
        CellResult::Time(t) => format!("{:.3}", t.avg),
        CellResult::OutOfMemory { .. } => "x".to_string(),
    }
}

/// Format a speedup ratio like the paper's "Speedup" rows; `-` when the
/// baseline went out of memory.
pub fn fmt_speedup(baseline: &CellResult, ours: &CellResult) -> String {
    match (baseline.avg(), ours.avg()) {
        (Some(b), Some(o)) if o > 0.0 => format!("{:.3}", b / o),
        _ => "-".to_string(),
    }
}

/// A fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as a JSON array of row objects keyed by column header —
    /// the machine-readable twin of [`Table::render`]. Cell values stay
    /// strings (they are already formatted for the text table), so the
    /// schema is stable across sweeps with heterogeneous columns.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            for (c, header) in self.header.iter().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(header), json_escape(&row[c])));
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A machine-readable benchmark report: named sections, each one
/// [`Table`], serialized as a single JSON object. The bench-smoke CI
/// job writes one per run (`FUSEDMM_BENCH_JSON=<path>`) and archives it
/// as a workflow artifact, seeding a perf trajectory that later runs
/// can diff against.
#[derive(Debug, Default)]
pub struct JsonReport {
    sections: Vec<(String, String)>,
}

impl JsonReport {
    /// An empty report.
    pub fn new() -> Self {
        JsonReport::default()
    }

    /// The output path from the `FUSEDMM_BENCH_JSON` environment
    /// variable, when set.
    pub fn env_path() -> Option<std::path::PathBuf> {
        std::env::var("FUSEDMM_BENCH_JSON").ok().filter(|p| !p.is_empty()).map(Into::into)
    }

    /// Append `table` as section `name`.
    pub fn section(&mut self, name: &str, table: &Table) {
        self.sections.push((name.to_string(), table.render_json()));
    }

    /// Serialize the whole report.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, json)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), json));
        }
        out.push('}');
        out
    }

    /// Write the report to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_perf::timer::TimingStats;

    fn t(avg: f64) -> CellResult {
        CellResult::Time(TimingStats { avg, min: avg, max: avg, reps: 1 })
    }

    #[test]
    fn cells_format_like_the_paper() {
        assert_eq!(fmt_cell(&t(0.2263)), "0.226");
        assert_eq!(fmt_cell(&CellResult::OutOfMemory { required: 1 }), "x");
    }

    #[test]
    fn speedup_handles_oom() {
        assert_eq!(fmt_speedup(&t(1.0), &t(0.25)), "4.000");
        assert_eq!(fmt_speedup(&CellResult::OutOfMemory { required: 1 }, &t(0.1)), "-");
    }

    #[test]
    fn table_renders_aligned() {
        let mut tb = Table::new(&["graph", "time"]);
        tb.row(vec!["Orkut".into(), "0.346".into()]);
        tb.row(vec!["Yt".into(), "12.5".into()]);
        let s = tb.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("graph"));
        assert!(lines[2].ends_with("0.346"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut tb = Table::new(&["a", "b", "c"]);
        tb.row(vec!["1".into()]);
        assert!(tb.render().lines().count() == 3);
    }

    #[test]
    fn json_rows_are_keyed_by_header_and_escaped() {
        let mut tb = Table::new(&["graph", "p99 \"us\""]);
        tb.row(vec!["Orkut\n".into(), "12.5".into()]);
        assert_eq!(tb.render_json(), r#"[{"graph":"Orkut\n","p99 \"us\"":"12.5"}]"#);
        assert_eq!(Table::new(&["x"]).render_json(), "[]");
    }

    #[test]
    fn json_report_collects_named_sections() {
        let mut t1 = Table::new(&["a"]);
        t1.row(vec!["1".into()]);
        let mut report = JsonReport::new();
        report.section("first", &t1);
        report.section("empty", &Table::new(&["b"]));
        assert_eq!(report.render(), r#"{"first":[{"a":"1"}],"empty":[]}"#);
    }
}
