//! Paper-style table printing for the repro binaries.

use crate::methods::CellResult;

/// Format one table cell: seconds with three decimals, or the paper's
/// `×` for out-of-memory entries.
pub fn fmt_cell(r: &CellResult) -> String {
    match r {
        CellResult::Time(t) => format!("{:.3}", t.avg),
        CellResult::OutOfMemory { .. } => "x".to_string(),
    }
}

/// Format a speedup ratio like the paper's "Speedup" rows; `-` when the
/// baseline went out of memory.
pub fn fmt_speedup(baseline: &CellResult, ours: &CellResult) -> String {
    match (baseline.avg(), ours.avg()) {
        (Some(b), Some(o)) if o > 0.0 => format!("{:.3}", b / o),
        _ => "-".to_string(),
    }
}

/// A fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_perf::timer::TimingStats;

    fn t(avg: f64) -> CellResult {
        CellResult::Time(TimingStats { avg, min: avg, max: avg, reps: 1 })
    }

    #[test]
    fn cells_format_like_the_paper() {
        assert_eq!(fmt_cell(&t(0.2263)), "0.226");
        assert_eq!(fmt_cell(&CellResult::OutOfMemory { required: 1 }), "x");
    }

    #[test]
    fn speedup_handles_oom() {
        assert_eq!(fmt_speedup(&t(1.0), &t(0.25)), "4.000");
        assert_eq!(fmt_speedup(&CellResult::OutOfMemory { required: 1 }, &t(0.1)), "-");
    }

    #[test]
    fn table_renders_aligned() {
        let mut tb = Table::new(&["graph", "time"]);
        tb.row(vec!["Orkut".into(), "0.346".into()]);
        tb.row(vec!["Yt".into(), "12.5".into()]);
        let s = tb.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("graph"));
        assert!(lines[2].ends_with("0.346"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut tb = Table::new(&["a", "b", "c"]);
        tb.row(vec!["1".into()]);
        assert!(tb.render().lines().count() == 3);
    }
}
