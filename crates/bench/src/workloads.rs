//! Workload construction for the benchmark harness.

use fusedmm_graph::datasets::Dataset;
use fusedmm_graph::features::random_features;
use fusedmm_graph::stats::GraphStats;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// A ready-to-benchmark kernel workload: the adjacency stand-in plus
/// feature matrices at one dimension.
pub struct Workload {
    /// Source dataset.
    pub dataset: Dataset,
    /// The generated stand-in adjacency.
    pub adj: Csr,
    /// `m × d` target-vertex features.
    pub x: Dense,
    /// `n × d` source-vertex features.
    pub y: Dense,
    /// Feature dimension.
    pub d: usize,
}

/// Read an f64 environment knob.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a usize environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The global scale multiplier (`FUSEDMM_SCALE`, default 1.0).
pub fn scale_factor() -> f64 {
    env_f64("FUSEDMM_SCALE", 1.0)
}

/// Timed repetitions per cell (`FUSEDMM_REPS`, default 3; paper used 10).
pub fn reps() -> usize {
    env_usize("FUSEDMM_REPS", 3)
}

/// Intermediate-memory budget in bytes for the unfused baseline
/// (`FUSEDMM_MEM_BUDGET_MB`, default 1024 MiB). Cells whose `H` would
/// exceed it print `×`, reproducing Table VI's out-of-memory entries
/// at reproduction scale.
pub fn mem_budget_bytes() -> usize {
    env_usize("FUSEDMM_MEM_BUDGET_MB", 1024) << 20
}

/// Build the kernel workload for `dataset` at dimension `d`, applying
/// the global scale multiplier on top of the dataset's recommended
/// scale.
pub fn kernel_workload(dataset: Dataset, d: usize) -> Workload {
    let scale = dataset.recommended_scale() * scale_factor();
    kernel_workload_scaled(dataset, d, scale)
}

/// [`kernel_workload`] with an explicit absolute scale.
pub fn kernel_workload_scaled(dataset: Dataset, d: usize, scale: f64) -> Workload {
    let adj = dataset.standin_scaled(scale);
    let n = adj.nrows();
    let x = random_features(n, d, 0.5, 0xA + dataset as u64);
    let y = random_features(n, d, 0.5, 0xB + dataset as u64);
    Workload { dataset, adj, x, y, d }
}

/// Print the Table V-style stand-in summary line for a workload.
pub fn describe(w: &Workload) -> String {
    let stats = GraphStats::compute(&w.adj);
    let spec = w.dataset.spec();
    format!(
        "{} (paper: |V|={}, deg={:.1})",
        stats.table_row(spec.name),
        spec.vertices,
        spec.avg_degree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_consistent() {
        let w = kernel_workload_scaled(Dataset::Youtube, 16, 0.002);
        assert_eq!(w.x.nrows(), w.adj.nrows());
        assert_eq!(w.y.nrows(), w.adj.ncols());
        assert_eq!(w.x.ncols(), 16);
    }

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        assert_eq!(env_f64("FUSEDMM_DOES_NOT_EXIST", 2.5), 2.5);
        assert_eq!(env_usize("FUSEDMM_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn describe_mentions_paper_stats() {
        let w = kernel_workload_scaled(Dataset::Cora, 8, 0.3);
        let s = describe(&w);
        assert!(s.contains("Cora"));
        assert!(s.contains("2708"));
    }
}
