//! Workload construction for the benchmark harness.

use fusedmm_graph::datasets::Dataset;
use fusedmm_graph::features::random_features;
use fusedmm_graph::stats::GraphStats;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ready-to-benchmark kernel workload: the adjacency stand-in plus
/// feature matrices at one dimension.
pub struct Workload {
    /// Source dataset.
    pub dataset: Dataset,
    /// The generated stand-in adjacency.
    pub adj: Csr,
    /// `m × d` target-vertex features.
    pub x: Dense,
    /// `n × d` source-vertex features.
    pub y: Dense,
    /// Feature dimension.
    pub d: usize,
}

/// Read an f64 environment knob.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a usize environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The global scale multiplier (`FUSEDMM_SCALE`, default 1.0).
pub fn scale_factor() -> f64 {
    env_f64("FUSEDMM_SCALE", 1.0)
}

/// Timed repetitions per cell (`FUSEDMM_REPS`, default 3; paper used 10).
pub fn reps() -> usize {
    env_usize("FUSEDMM_REPS", 3)
}

/// Intermediate-memory budget in bytes for the unfused baseline
/// (`FUSEDMM_MEM_BUDGET_MB`, default 1024 MiB). Cells whose `H` would
/// exceed it print `×`, reproducing Table VI's out-of-memory entries
/// at reproduction scale.
pub fn mem_budget_bytes() -> usize {
    env_usize("FUSEDMM_MEM_BUDGET_MB", 1024) << 20
}

/// Build the kernel workload for `dataset` at dimension `d`, applying
/// the global scale multiplier on top of the dataset's recommended
/// scale.
pub fn kernel_workload(dataset: Dataset, d: usize) -> Workload {
    let scale = dataset.recommended_scale() * scale_factor();
    kernel_workload_scaled(dataset, d, scale)
}

/// [`kernel_workload`] with an explicit absolute scale.
pub fn kernel_workload_scaled(dataset: Dataset, d: usize, scale: f64) -> Workload {
    let adj = dataset.standin_scaled(scale);
    let n = adj.nrows();
    let x = random_features(n, d, 0.5, 0xA + dataset as u64);
    let y = random_features(n, d, 0.5, 0xB + dataset as u64);
    Workload { dataset, adj, x, y, d }
}

/// A zipf-skewed request generator for serving benchmarks: node
/// popularity follows `p(rank k) ∝ 1 / k^s`, the shape real embedding
/// traffic has (a few celebrity vertices absorb most requests).
/// `s = 0` degenerates to uniform; `s ≈ 1` is classic web-style skew.
///
/// Ranks are scrambled onto node ids with a stride coprime to `n`, so
/// the hot set is spread across the id space (and therefore across
/// PART1D shard bands) instead of clustering at low ids.
pub struct ZipfSampler {
    /// `cdf[k]` = cumulative unnormalized mass of ranks `0..=k`.
    cdf: Vec<f64>,
    /// Rank → node id scrambling stride, coprime to `n`.
    stride: usize,
    n: usize,
    rng: StdRng,
}

impl ZipfSampler {
    /// A sampler over nodes `0..n` with exponent `s`, deterministic
    /// for a fixed `seed`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64, seed: u64) -> ZipfSampler {
        assert!(n > 0, "zipf sampler needs a non-empty id space");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        fn gcd(mut a: usize, mut b: usize) -> usize {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        }
        // A golden-ratio-ish stride, nudged until coprime, keeps the
        // scramble a bijection on 0..n.
        let mut stride = (n as f64 * 0.618_033_988_749_895) as usize | 1;
        while gcd(stride, n) != 1 {
            stride += 2;
        }
        ZipfSampler { cdf, stride, n, rng: StdRng::seed_from_u64(seed) }
    }

    /// Draw one node id.
    pub fn sample(&mut self) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u = self.rng.gen_range(0.0..total);
        let rank = self.cdf.partition_point(|&c| c <= u).min(self.n - 1);
        // rank + 1 keeps rank 0 off node id 0 (0 · stride is 0 for
        // every stride); the map stays a bijection mod n.
        (rank + 1) * self.stride % self.n
    }

    /// Draw a request batch of `len` node ids (duplicates allowed —
    /// hot nodes repeat, which is the point).
    pub fn batch(&mut self, len: usize) -> Vec<usize> {
        (0..len).map(|_| self.sample()).collect()
    }
}

/// Print the Table V-style stand-in summary line for a workload.
pub fn describe(w: &Workload) -> String {
    let stats = GraphStats::compute(&w.adj);
    let spec = w.dataset.spec();
    format!(
        "{} (paper: |V|={}, deg={:.1})",
        stats.table_row(spec.name),
        spec.vertices,
        spec.avg_degree
    )
}

/// The deterministic workload the rpc smoke demo builds on **both**
/// sides of the process boundary (`fusedmm-shard-worker` and
/// `fusedmm-rpc-smoke`): an RMAT graph plus feature matrices, fully
/// seeded, so coordinator and worker processes agree bit-for-bit
/// without shipping the graph over the wire. Knobs: `FUSEDMM_RPC_N`
/// (vertices, default 400), `FUSEDMM_RPC_D` (dimension, default 16).
pub fn rpc_demo_workload() -> (Csr, Dense, Dense) {
    let n = env_usize("FUSEDMM_RPC_N", 400);
    let d = env_usize("FUSEDMM_RPC_D", 16);
    let adj =
        fusedmm_graph::rmat::rmat(&fusedmm_graph::rmat::RmatConfig::new(n, 4 * n).with_seed(11));
    let x = random_features(adj.nrows(), d, 0.5, 1);
    let y = random_features(adj.ncols(), d, 0.5, 2);
    (adj, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_consistent() {
        let w = kernel_workload_scaled(Dataset::Youtube, 16, 0.002);
        assert_eq!(w.x.nrows(), w.adj.nrows());
        assert_eq!(w.y.nrows(), w.adj.ncols());
        assert_eq!(w.x.ncols(), 16);
    }

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        assert_eq!(env_f64("FUSEDMM_DOES_NOT_EXIST", 2.5), 2.5);
        assert_eq!(env_usize("FUSEDMM_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut z = ZipfSampler::new(50, 0.0, 7);
        let mut counts = vec![0usize; 50];
        for _ in 0..5000 {
            counts[z.sample()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "uniform draw covers the id space");
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max / min.max(&1) < 4, "no node dominates at s=0 (min {min}, max {max})");
    }

    #[test]
    fn zipf_skew_concentrates_mass_and_is_deterministic() {
        let n = 1000;
        let mut z = ZipfSampler::new(n, 1.2, 42);
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted.iter().take(10).sum();
        assert!(
            top10 > 20_000 / 2,
            "at s=1.2 the 10 hottest nodes draw most traffic (got {top10}/20000)"
        );
        // Determinism for a fixed seed; spread across the id space.
        let a: Vec<usize> = ZipfSampler::new(n, 1.2, 9).batch(32);
        let b: Vec<usize> = ZipfSampler::new(n, 1.2, 9).batch(32);
        assert_eq!(a, b);
        let hottest = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert!(hottest != 0 || n < 3, "rank scrambling moves the hot node off id 0");
        assert!(a.iter().all(|&u| u < n));
    }

    #[test]
    fn describe_mentions_paper_stats() {
        let w = kernel_workload_scaled(Dataset::Cora, 8, 0.3);
        let s = describe(&w);
        assert!(s.contains("Cora"));
        assert!(s.contains("2708"));
    }
}
