//! Regenerates Fig. 8: kernel time of FusedMM vs DGL for the FR model,
//! Graph Embedding, and GCN (d = 128) on the Harvard / Flickr / Amazon
//! / Youtube stand-ins.
//!
//! The paper runs this panel on an ARM ThunderX server to demonstrate
//! that the generated kernels port across ISAs; our portable SIMD layer
//! compiles to the host ISA, which is printed in the header (see
//! DESIGN.md's substitution notes).
//!
//! Run: `cargo run --release --bin repro-fig8`

use fusedmm_bench::figures::{host_isa, isa_panel};
use fusedmm_ops::OpSet;

fn main() {
    println!("Fig. 8 reproduction — kernel time panel, ISA: {}\n", host_isa());
    isa_panel(&[
        ("FR model", OpSet::fr_model(1.0)),
        ("Graph Embedding", OpSet::sigmoid_embedding(None)),
        ("GCN", OpSet::gcn()),
    ]);
    println!("Paper shape to verify: FusedMM beats DGL on every graph (paper: 2.5-19.2x on ARM).");
}
