//! Regenerates Table VI: kernel time (sec) for Graph Embedding, FR
//! model, and GCN on the Ogbprot./Youtube/Orkut stand-ins, for
//! d ∈ {32, 64, 128, 256, 512}, comparing DGL (unfused), FusedMM
//! (generic fused) and FusedMMopt (specialized), with the speedup of
//! FusedMMopt over DGL. `×` marks cells where the unfused intermediate
//! exceeds the memory budget, as in the paper.
//!
//! Run: `cargo run --release --bin repro-table6`
//! Knobs: FUSEDMM_SCALE, FUSEDMM_REPS, FUSEDMM_MEM_BUDGET_MB.

use fusedmm_bench::methods::{run_method, CellResult, Method};
use fusedmm_bench::report::{fmt_cell, fmt_speedup, Table};
use fusedmm_bench::workloads::{describe, kernel_workload, reps};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

const DIMS: [usize; 5] = [32, 64, 128, 256, 512];

type NamedOpSet = (&'static str, fn() -> OpSet);

fn main() {
    let graphs = [Dataset::Ogbprotein, Dataset::Youtube, Dataset::Orkut];
    let patterns: [NamedOpSet; 3] = [
        ("Graph Embedding", || OpSet::sigmoid_embedding(None)),
        ("FR model", || OpSet::fr_model(1.0)),
        ("GCN", OpSet::gcn),
    ];
    let r = reps();
    println!("Table VI reproduction — kernel time (sec), {r} reps, scaled stand-ins");
    // Benchmark numbers are meaningless without the hardware path that
    // produced them.
    println!("{}\n", fusedmm_core::cpu_features());

    for (pname, mk) in patterns {
        println!("== {pname} ==");
        let mut header = vec!["Graph".to_string(), "Method".to_string()];
        header.extend(DIMS.iter().map(|d| format!("d={d}")));
        let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for ds in graphs {
            let mut rows: Vec<Vec<CellResult>> = vec![Vec::new(); 3];
            for &d in &DIMS {
                let w = kernel_workload(ds, d);
                if d == DIMS[0] {
                    eprintln!("  workload: {}", describe(&w));
                }
                let ops = mk();
                for (mi, m) in Method::all().into_iter().enumerate() {
                    rows[mi].push(run_method(m, &w, &ops, r));
                }
            }
            for (mi, m) in Method::all().into_iter().enumerate() {
                let mut cells = vec![ds.to_string(), m.label().to_string()];
                cells.extend(rows[mi].iter().map(fmt_cell));
                table.row(cells);
            }
            // Speedup row: FusedMMopt over DGL, like the paper.
            let mut cells = vec![ds.to_string(), "Speedup".to_string()];
            cells
                .extend(rows[0].iter().zip(rows[2].iter()).map(|(dgl, opt)| fmt_speedup(dgl, opt)));
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!("Paper shape to verify: FusedMM > DGL everywhere; FusedMMopt best;");
    println!("speedups grow with d; FR at large d OOMs for DGL but not FusedMM.");
}
