//! Regenerates Fig. 11(a): speedup of FusedMMopt over DGL on RMAT
//! graphs with 100K vertices (scaled by FUSEDMM_SCALE) as the average
//! degree sweeps 20..140, for the FR model and graph embedding
//! (d = 128 as in the paper's panel).
//!
//! Run: `cargo run --release --bin repro-fig11a`

use fusedmm_bench::methods::{run_method, Method};
use fusedmm_bench::report::{fmt_speedup, Table};
use fusedmm_bench::workloads::{env_f64, reps};
use fusedmm_graph::features::random_features;
use fusedmm_graph::rmat::{rmat, RmatConfig};
use fusedmm_ops::OpSet;

fn main() {
    let d = 128;
    let r = reps();
    // Paper: 100K vertices, initial 1M edges doubled up to ~7M.
    let n = (100_000.0 * env_f64("FUSEDMM_SCALE", 0.1)) as usize;
    println!("Fig. 11(a) reproduction — speedup vs average degree, RMAT n={n}, d={d}\n");
    let mut table = Table::new(&["avg degree", "FR speedup", "Embedding speedup"]);
    for avg_degree in [20usize, 40, 60, 80, 100, 120, 140] {
        let g = rmat(&RmatConfig::new(n, n * avg_degree / 2).with_seed(avg_degree as u64));
        let x = random_features(n, d, 0.5, 1);
        let y = random_features(n, d, 0.5, 2);
        let w = fusedmm_bench::workloads::Workload {
            dataset: fusedmm_graph::datasets::Dataset::Youtube, // label only
            adj: g,
            x,
            y,
            d,
        };
        let mut row = vec![format!("{:.1}", w.adj.avg_degree())];
        for ops in [OpSet::fr_model(1.0), OpSet::sigmoid_embedding(None)] {
            let dgl = run_method(Method::Dgl, &w, &ops, r);
            let fused = run_method(Method::FusedMMOpt, &w, &ops, r);
            row.push(fmt_speedup(&dgl, &fused));
        }
        table.row(row);
    }
    table.print();
    println!("\nPaper shape to verify: speedup increases with average degree");
    println!("(denser graphs amortize memory latency; paper: ~8x -> ~16x).");
}
