//! Regenerates Fig. 9: kernel time of FusedMM vs DGL for the FR model
//! and Graph Embedding (d = 128) on the Harvard / Flickr / Amazon /
//! Youtube stand-ins — the paper's AMD EPYC panel; here compiled for
//! the host ISA (see DESIGN.md's substitution notes).
//!
//! Run: `cargo run --release --bin repro-fig9`

use fusedmm_bench::figures::{host_isa, isa_panel};
use fusedmm_ops::OpSet;

fn main() {
    println!("Fig. 9 reproduction — kernel time panel, ISA: {}\n", host_isa());
    isa_panel(&[
        ("FR model", OpSet::fr_model(1.0)),
        ("Graph Embedding", OpSet::sigmoid_embedding(None)),
    ]);
    println!("Paper shape to verify: FusedMM beats DGL on every graph (paper: 1.5-11.4x on AMD).");
}
