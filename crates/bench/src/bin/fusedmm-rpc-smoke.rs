//! End-to-end multi-process smoke test: two `fusedmm-shard-worker`
//! processes + a `RemoteShardedEngine` coordinator over unix sockets,
//! checked bit-for-bit against an in-process `ShardedEngine` on the
//! same workload — through publishes, deltas, a worker kill mid-stream
//! (with a delta shipped while it is down), and the restart's
//! epoch-log catch-up.
//!
//! Run: `cargo run --release --bin fusedmm-rpc-smoke`
//! (builds `fusedmm-shard-worker` into the same target dir first:
//! `cargo build --release --bin fusedmm-shard-worker`).
//!
//! Exits nonzero on any mismatch. `FUSEDMM_METRICS_JSON=<path>` dumps
//! the final registry snapshot (the CI job asserts nonzero reconnect
//! counts and the epoch-lag gauge in it).

use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusedmm_bench::workloads::rpc_demo_workload;
use fusedmm_core::Blocking;
use fusedmm_ops::OpSet;
use fusedmm_perf::registry::MetricsRegistry;
use fusedmm_rpc::{RpcConfig, RpcTransport};
use fusedmm_serve::remote::RemoteShardedEngine;
use fusedmm_serve::{AdmissionPolicy, EngineConfig, FaultPlan, ShardedEngine};
use fusedmm_sparse::Dense;

const NSHARDS: usize = 2;

fn config() -> EngineConfig {
    EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        admission: Some(AdmissionPolicy::unlimited()),
        fault: Some(Arc::new(FaultPlan::disabled())),
        ..EngineConfig::default()
    }
}

fn spawn_worker(bin: &PathBuf, path: &PathBuf, shard: usize) -> Child {
    Command::new(bin)
        .arg(path)
        .arg(shard.to_string())
        .arg(NSHARDS.to_string())
        .spawn()
        .expect("spawn fusedmm-shard-worker (build it into the same target dir first)")
}

/// Embed with retries — right after a worker restart the first
/// requests can still race the reconnect and fail typed.
fn embed_retrying(remote: &RemoteShardedEngine, nodes: &[usize]) -> Dense {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match remote.embed(nodes) {
            Ok(rows) => return rows,
            Err(e) if Instant::now() < deadline => {
                eprintln!("embed retry after typed failure: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("embed never recovered: {e}"),
        }
    }
}

fn main() {
    let (a, x, y) = rpc_demo_workload();
    let n = a.nrows();
    let d = x.ncols();
    let ops = OpSet::sigmoid_embedding(None);

    let worker_bin = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("target dir")
        .join("fusedmm-shard-worker");
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let paths: Vec<PathBuf> =
        (0..NSHARDS).map(|s| dir.join(format!("fusedmm-rpc-{pid}-{s}.sock"))).collect();
    let mut children: Vec<Child> =
        (0..NSHARDS).map(|s| spawn_worker(&worker_bin, &paths[s], s)).collect();

    let transport = RpcTransport::connect(RpcConfig::new(paths.clone())).expect("connect workers");
    let remote = RemoteShardedEngine::new(x.clone(), y.clone(), transport.clone(), config());
    let local = ShardedEngine::new(a.clone(), x, y, ops, NSHARDS, config());
    assert_eq!(remote.boundaries(), local.boundaries(), "same PART1D cut on both sides");

    let registry = MetricsRegistry::new();
    transport.register_metrics(&registry);
    remote.register_metrics(&registry);

    let windows: Vec<Vec<usize>> =
        vec![vec![0, n - 1, n / 2, 0, 7 % n], (0..n).step_by(3).collect(), (0..n).collect()];
    let check = |tag: &str| {
        for w in &windows {
            assert_eq!(embed_retrying(&remote, w), local.embed(w).unwrap(), "{tag}");
        }
        println!("bit-identical: {tag}");
    };

    check("epoch 0");

    // Delta mid-stream: both sides mint epoch 1 from the same patch.
    let rows = vec![0, n / 3, n - 1];
    let px = Dense::from_fn(rows.len(), d, |r, k| (r * 7 + k) as f32 * 0.013);
    let py = Dense::from_fn(rows.len(), d, |r, k| (r + k * 3) as f32 * 0.021);
    assert_eq!(remote.delta_update(&rows, &px, &py), 1);
    assert_eq!(local.store().delta_update(&rows, &px, &py), 1);
    check("epoch 1 (delta)");

    // Whole publish: epoch 2.
    let x2 = Dense::from_fn(n, d, |r, k| ((r + k) as f32 * 0.03).cos());
    let y2 = Dense::from_fn(n, d, |r, k| ((r * 2 + k) as f32 * 0.05).sin());
    assert_eq!(remote.publish(x2.clone(), y2.clone()), 2);
    assert_eq!(local.store().publish(x2, y2), 2);
    check("epoch 2 (publish)");

    // Kill worker 0 and ship a delta while it is down — the epoch log
    // must carry it across the restart.
    let reconnects_before = transport.reconnects(0);
    children[0].kill().expect("kill worker 0");
    let _ = children[0].wait();
    println!("killed worker 0");
    assert_eq!(remote.delta_update(&rows, &py, &px), 3);
    assert_eq!(local.store().delta_update(&rows, &py, &px), 3);
    // Give the coordinator a beat to notice the dead socket, then the
    // lag gauge for worker 0 must show the unacked epoch.
    std::thread::sleep(Duration::from_millis(300));
    let snap = registry.snapshot();
    let lag = snap
        .gauge_value("fusedmm_rpc_epoch_lag", &[("worker", "0")])
        .expect("lag gauge registered");
    assert!(lag > 0.0, "dead worker shows epoch-log lag (got {lag})");
    println!("worker 0 epoch-log lag while down: {lag}");

    children[0] = spawn_worker(&worker_bin, &paths[0], 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    while transport.reconnects(0) == reconnects_before {
        assert!(Instant::now() < deadline, "worker 0 never reconnected");
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("worker 0 reconnected (fresh replica, snapshot catch-up)");
    check("epoch 3 (after kill + restart + catch-up)");

    // Scores cross the same transport.
    let pairs: Vec<(usize, usize)> = (0..n).step_by(7).map(|u| (u, (u * 5 + 3) % n)).collect();
    assert_eq!(
        remote.score_edges(&pairs).unwrap(),
        local.score_edges(&pairs).unwrap(),
        "scores bit-identical"
    );
    println!("bit-identical: score_edges ({} pairs)", pairs.len());

    let snap = registry.snapshot();
    let reconnects = snap.counter("fusedmm_rpc_reconnects_total", &[("worker", "0")]).unwrap_or(0);
    assert!(reconnects > 0, "reconnect counter must be nonzero after the restart");
    if let Ok(path) = std::env::var("FUSEDMM_METRICS_JSON") {
        if !path.is_empty() {
            std::fs::write(&path, snap.to_json()).expect("write metrics dump");
            println!("wrote FUSEDMM_METRICS_JSON -> {path}");
        }
    }

    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    println!("rpc-smoke OK: {NSHARDS} workers, 4 epochs, kill+restart, bit-identical throughout");
}
