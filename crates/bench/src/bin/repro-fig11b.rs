//! Regenerates Fig. 11(b): graph-embedding kernel time on the Flickr
//! stand-in as the dimension sweeps {64, 128, 256, 512, 1024}, DGL vs
//! FusedMMopt.
//!
//! Run: `cargo run --release --bin repro-fig11b`

use fusedmm_bench::methods::{run_method, Method};
use fusedmm_bench::report::{fmt_cell, fmt_speedup, Table};
use fusedmm_bench::workloads::{describe, kernel_workload, reps};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

fn main() {
    let r = reps();
    println!("Fig. 11(b) reproduction — embedding kernel time vs dimension, Flickr stand-in\n");
    let ops = OpSet::sigmoid_embedding(None);
    let mut table = Table::new(&["d", "DGL (s)", "FusedMM (s)", "Speedup"]);
    for d in [64usize, 128, 256, 512, 1024] {
        let w = kernel_workload(Dataset::Flickr, d);
        if d == 64 {
            eprintln!("  workload: {}", describe(&w));
        }
        let dgl = run_method(Method::Dgl, &w, &ops, r);
        let fused = run_method(Method::FusedMMOpt, &w, &ops, r);
        table.row(vec![d.to_string(), fmt_cell(&dgl), fmt_cell(&fused), fmt_speedup(&dgl, &fused)]);
    }
    table.print();
    println!("\nPaper shape to verify: both grow with d; FusedMM faster at every d");
    println!("and the gap widens as d increases.");
}
