//! Regenerates Fig. 10(a): strong scaling of FusedMM and DGL for graph
//! embedding on the Orkut stand-in (d = 256), relative to each method's
//! own sequential run, over thread counts 1, 2, 4, ... up to the
//! machine width (the paper sweeps to 48 on a 48-core Skylake).
//!
//! On a single-core host all points collapse to ~1x by construction —
//! the harness still exercises the per-thread-count pools and PART1D
//! partitioning paths.
//!
//! Run: `cargo run --release --bin repro-fig10a`

use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::{describe, kernel_workload, reps};
use fusedmm_core::fusedmm_opt;
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;
use fusedmm_perf::timer::time_iterations;

fn main() {
    let d = 256;
    let r = reps();
    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let w = kernel_workload(Dataset::Orkut, d);
    let ops = OpSet::sigmoid_embedding(None);
    println!("Fig. 10(a) reproduction — strong scaling, embedding, Orkut stand-in, d={d}");
    eprintln!("  workload: {}", describe(&w));

    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        let next = threads.last().unwrap() * 2;
        threads.push(next);
    }

    let mut table =
        Table::new(&["Threads", "FusedMM (s)", "FusedMM speedup", "DGL (s)", "DGL speedup"]);
    let mut base_fused = 0.0f64;
    let mut base_dgl = 0.0f64;
    for &t in &threads {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap();
        let tf = pool.install(|| {
            time_iterations(r, || {
                std::hint::black_box(fusedmm_opt(&w.adj, &w.x, &w.y, &ops));
            })
            .avg
        });
        let td = pool.install(|| {
            time_iterations(r, || {
                std::hint::black_box(unfused_pipeline(&w.adj, &w.x, &w.y, &ops));
            })
            .avg
        });
        if t == 1 {
            base_fused = tf;
            base_dgl = td;
        }
        table.row(vec![
            t.to_string(),
            format!("{tf:.3}"),
            format!("{:.2}x", base_fused / tf),
            format!("{td:.3}"),
            format!("{:.2}x", base_dgl / td),
        ]);
    }
    table.print();
    println!("\nPaper shape to verify: both methods scale (paper: ~20x FusedMM, ~16x DGL");
    println!("at 32 cores); FusedMM faster than DGL at every thread count.");
}
