//! Regenerates Fig. 10(b): memory consumption of DGL vs FusedMM for the
//! FR model on the Ogbprot. stand-in as d sweeps {16, 32, 64, 128, 256}.
//!
//! Uses the counting global allocator to measure the real peak heap
//! growth of each kernel invocation; also prints the paper's analytic
//! model (`12·nnz·d` for the unfused intermediate) beside the
//! measurement. DGL's footprint grows linearly with d while FusedMM's
//! stays flat at the size of the output matrix.
//!
//! Run: `cargo run --release --bin repro-fig10b`

use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::{describe, kernel_workload};
use fusedmm_core::fusedmm_opt;
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;
use fusedmm_perf::memtrack::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const DIMS: [usize; 5] = [16, 32, 64, 128, 256];

fn main() {
    println!("Fig. 10(b) reproduction — FR-model memory (MB) vs dimension, Ogbprot. stand-in\n");
    let ops = OpSet::fr_model(1.0);
    let mut table =
        Table::new(&["d", "DGL peak (MB)", "DGL model (MB)", "FusedMM peak (MB)", "ratio"]);
    for &d in &DIMS {
        let w = kernel_workload(Dataset::Ogbprotein, d);
        if d == DIMS[0] {
            eprintln!("  workload: {}", describe(&w));
        }
        let (out_unfused, dgl_peak) =
            memtrack::measure_peak(|| unfused_pipeline(&w.adj, &w.x, &w.y, &ops));
        let model_mb = out_unfused.intermediate_bytes as f64 / 1e6;
        drop(out_unfused);
        let (_z, fused_peak) = memtrack::measure_peak(|| fusedmm_opt(&w.adj, &w.x, &w.y, &ops));
        table.row(vec![
            d.to_string(),
            format!("{:.1}", dgl_peak as f64 / 1e6),
            format!("{model_mb:.1}"),
            format!("{:.1}", fused_peak as f64 / 1e6),
            format!("{:.1}x", dgl_peak as f64 / fused_peak.max(1) as f64),
        ]);
    }
    table.print();
    println!("\nPaper shape to verify: DGL memory grows linearly with d;");
    println!("FusedMM memory stays (near-)flat — only the d-proportional output Z.");
}
