//! Regenerates Fig. 7: the roofline model of FusedMM for the
//! Ogbprot./Youtube/Orkut stand-ins on the graph-embedding task at
//! d = 128. Measures the STREAM-triad bandwidth roof, computes each
//! graph's arithmetic intensity per Eq. 4, and reports measured vs
//! attainable GFLOP/s.
//!
//! Run: `cargo run --release --bin repro-fig7`

use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::{kernel_workload, reps};
use fusedmm_core::fusedmm_opt;
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::{OpSet, Pattern};
use fusedmm_perf::flops::gflops;
use fusedmm_perf::roofline::RooflinePoint;
use fusedmm_perf::stream::measure_stream_bandwidth;
use fusedmm_perf::timer::time_iterations;

fn main() {
    let d = 128;
    let r = reps();
    eprintln!("measuring STREAM triad bandwidth...");
    let bw = measure_stream_bandwidth();
    println!("Fig. 7 reproduction — roofline, graph embedding, d={d}");
    println!(
        "STREAM bandwidth roof: {:.1} GB/s ({} elements, best of {})\n",
        bw.gbytes_per_sec, bw.elements, bw.reps
    );

    let mut table =
        Table::new(&["Graph", "avg deg", "AI (Eq.4)", "Attainable GF/s", "Measured GF/s", "Eff."]);
    for ds in [Dataset::Ogbprotein, Dataset::Youtube, Dataset::Orkut] {
        let w = kernel_workload(ds, d);
        let ops = OpSet::sigmoid_embedding(None);
        let t = time_iterations(r, || {
            std::hint::black_box(fusedmm_opt(&w.adj, &w.x, &w.y, &ops));
        });
        let measured = gflops(Pattern::SigmoidEmbedding, d, w.adj.nnz(), t.avg);
        let point =
            RooflinePoint::new(ds.to_string(), d, w.adj.avg_degree(), bw.gbytes_per_sec, measured);
        table.row(vec![
            point.name.clone(),
            format!("{:.1}", w.adj.avg_degree()),
            format!("{:.3}", point.ai),
            format!("{:.2}", point.attainable),
            format!("{:.2}", point.measured),
            format!("{:.0}%", 100.0 * point.efficiency()),
        ]);
    }
    table.print();
    println!("\nPaper shape to verify: AI ordering Orkut > Ogbprot... (by avg degree);");
    println!("measured performance lands below but near the bandwidth roof.");
}
