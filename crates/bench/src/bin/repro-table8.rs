//! Regenerates Table VIII: Force2Vec end-to-end training time per epoch
//! (d = 128, batch 256) on the Cora and Pubmed stand-ins, for the
//! PyTorch-style dense backend, the DGL-style unfused backend, and
//! FusedMM, with speedups relative to FusedMM.
//!
//! Run: `cargo run --release --bin repro-table8`
//! Knobs: FUSEDMM_SCALE (Pubmed defaults to 0.35 of paper size to keep
//! the dense backend's B×n temporaries tractable), FUSEDMM_EPOCHS.

use fusedmm_apps::force2vec::{Backend, Force2Vec, Force2VecConfig};
use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::{env_f64, env_usize};
use fusedmm_graph::datasets::Dataset;
use fusedmm_graph::stats::GraphStats;

fn main() {
    let epochs = env_usize("FUSEDMM_EPOCHS", 3);
    println!("Table VIII reproduction — Force2Vec time per epoch (sec), d=128, batch=256\n");
    let mut table = Table::new(&["Graph", "Method", "Per-epoch (s)", "Speedup vs FusedMM"]);

    for (ds, default_scale) in [(Dataset::Cora, 1.0), (Dataset::Pubmed, 0.35)] {
        let scale = env_f64("FUSEDMM_SCALE", 1.0) * default_scale;
        let g = ds.labeled_standin(scale).expect("classification dataset").adj;
        eprintln!("  workload: {}", GraphStats::compute(&g).table_row(&ds.to_string()));
        let mut per_epoch = Vec::new();
        for backend in [Backend::DenseTensor, Backend::Unfused, Backend::Fused] {
            let cfg = Force2VecConfig {
                dim: 128,
                batch_size: 256,
                epochs,
                lr: 0.02,
                negatives: 5,
                seed: 3,
                backend,
            };
            let result = Force2Vec::new(g.clone(), cfg).train();
            let avg = result.epoch_seconds.iter().sum::<f64>() / epochs as f64;
            per_epoch.push((backend, avg));
        }
        let fused_time = per_epoch.last().unwrap().1;
        for (backend, t) in &per_epoch {
            let name = match backend {
                Backend::DenseTensor => "PyTorch",
                Backend::Unfused => "DGL",
                Backend::Fused => "FusedMM",
            };
            table.row(vec![
                ds.to_string(),
                name.to_string(),
                format!("{t:.3}"),
                format!("{:.1}x", t / fused_time),
            ]);
        }
    }
    table.print();
    println!("\nPaper shape to verify: FusedMM fastest; DGL ~25-28x slower;");
    println!("PyTorch ~45-49x slower (dense B x n temporaries dominate).");
}
