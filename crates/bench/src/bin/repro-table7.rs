//! Regenerates Table VII: SpMM kernel time, the MKL stand-in
//! (inspector–executor SpMM) vs the SpMM specialization of FusedMM
//! (Table III row 3), single-threaded and on the full pool, for
//! d ∈ {64, 128, 256}.
//!
//! Run: `cargo run --release --bin repro-table7`

use fusedmm_baseline::iespmm::IeSpmm;
use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::{describe, kernel_workload, reps};
use fusedmm_core::{fusedmm_opt_with, Blocking, PartitionStrategy};
use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;
use fusedmm_perf::timer::time_iterations;

const DIMS: [usize; 3] = [64, 128, 256];

fn main() {
    let graphs = [Dataset::Ogbprotein, Dataset::Youtube, Dataset::Orkut];
    let r = reps();
    let full_threads = rayon::current_num_threads();
    println!(
        "Table VII reproduction — SpMM kernel time (sec), {r} reps, 1 vs {full_threads} thread(s)\n"
    );

    let mut header = vec!["Graph".to_string(), "Method".to_string()];
    for &d in &DIMS {
        header.push(format!("1T d={d}"));
    }
    for &d in &DIMS {
        header.push(format!("{full_threads}T d={d}"));
    }
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();

    for ds in graphs {
        let mut mkl_cells = Vec::new();
        let mut fused_cells = Vec::new();
        for threaded in [false, true] {
            for &d in &DIMS {
                let w = kernel_workload(ds, d);
                if d == DIMS[0] && !threaded {
                    eprintln!("  workload: {}", describe(&w));
                }
                let ops = OpSet::gcn();
                // MKL stand-in: inspection + execution measured together,
                // inspection done once (amortized as MKL intends).
                let run_mkl = || {
                    let ie = IeSpmm::inspect(&w.adj, None);
                    let t = time_iterations(r, || {
                        std::hint::black_box(ie.execute(&w.y));
                    });
                    t.avg + ie.stats().inspect_time.as_secs_f64() / r as f64
                };
                let run_fused = || {
                    time_iterations(r, || {
                        std::hint::black_box(fusedmm_opt_with(
                            &w.adj,
                            &w.x,
                            &w.y,
                            &ops,
                            Blocking::Auto,
                            None,
                            PartitionStrategy::NnzBalanced,
                        ));
                    })
                    .avg
                };
                let (tm, tf) = if threaded {
                    (run_mkl(), run_fused())
                } else {
                    (single.install(run_mkl), single.install(run_fused))
                };
                mkl_cells.push(format!("{tm:.3}"));
                fused_cells.push(format!("{tf:.3}"));
            }
        }
        let mut row = vec![ds.to_string(), "MKL(ie)".to_string()];
        row.extend(mkl_cells);
        table.row(row);
        let mut row = vec![ds.to_string(), "FusedMM".to_string()];
        row.extend(fused_cells);
        table.row(row);
    }
    table.print();
    println!("\nPaper shape to verify: FusedMM's SpMM specialization is comparable");
    println!("to the inspector-executor library (within ~1.3x either way).");
}
