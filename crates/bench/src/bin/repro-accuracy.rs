//! Regenerates the §V-D accuracy experiment: F1-micro of node
//! classification on embeddings trained with the fused vs the unfused
//! pipeline on the Cora and Pubmed stand-ins. The paper's claim is that
//! FusedMM "does not alter the actual computations", so both pipelines
//! reach the same score (paper: 0.78 Cora, 0.79 Pubmed).
//!
//! Run: `cargo run --release --bin repro-accuracy`
//! Knobs: FUSEDMM_EPOCHS (default 60), FUSEDMM_SCALE.

use fusedmm_apps::classify::{ClassifierConfig, SoftmaxRegression};
use fusedmm_apps::force2vec::{Backend, Force2Vec, Force2VecConfig};
use fusedmm_apps::metrics::f1_micro;
use fusedmm_bench::report::Table;
use fusedmm_bench::workloads::{env_f64, env_usize};
use fusedmm_graph::datasets::Dataset;

fn main() {
    let epochs = env_usize("FUSEDMM_EPOCHS", 60);
    println!("§V-D accuracy reproduction — F1-micro, Force2Vec embeddings (d=128)\n");
    let mut table = Table::new(&["Graph", "Backend", "F1-micro", "paper"]);
    for (ds, default_scale, paper_f1) in [(Dataset::Cora, 1.0, 0.78), (Dataset::Pubmed, 0.25, 0.79)]
    {
        let scale = env_f64("FUSEDMM_SCALE", 1.0) * default_scale;
        let g = ds.labeled_standin(scale).expect("labeled dataset");
        let (train, test) = g.train_test_split(0.5, 17);
        let truth: Vec<usize> = test.iter().map(|&v| g.labels[v]).collect();
        for backend in [Backend::Fused, Backend::Unfused] {
            let cfg = Force2VecConfig {
                dim: 128,
                batch_size: 256,
                epochs,
                lr: 0.02,
                negatives: 5,
                seed: 3,
                backend,
            };
            let emb = Force2Vec::new(g.adj.clone(), cfg).train().embedding;
            let model = SoftmaxRegression::train(
                &emb,
                &g.labels,
                &train,
                g.k,
                &ClassifierConfig::default(),
            );
            let pred = model.predict(&emb, &test);
            let f1 = f1_micro(&truth, &pred, g.k);
            table.row(vec![
                ds.to_string(),
                format!("{backend:?}"),
                format!("{f1:.3}"),
                format!("{paper_f1:.2}"),
            ]);
        }
    }
    table.print();
    println!("\nPaper shape to verify: fused and unfused scores are equal (same math),");
    println!("and both land in the quality range of the paper's embeddings.");
}
