//! One shard's worker process: builds the shared demo workload, hosts
//! its PART1D band behind a `WorkerEngine`, and serves it over a unix
//! socket until killed.
//!
//! ```text
//! fusedmm-shard-worker <socket-path> <shard> <nshards>
//! ```
//!
//! The graph and the partition cut are rebuilt deterministically from
//! the same seeds the coordinator uses
//! (`fusedmm_bench::workloads::rpc_demo_workload`, knobs
//! `FUSEDMM_RPC_N` / `FUSEDMM_RPC_D`) — only *features* replicate over
//! the wire, as the coordinator's epoch log; the sparse shard never
//! does. Boot features are zeros: the replica reports itself `fresh`
//! in the handshake and the coordinator seeds it from a snapshot
//! before any request arrives. `FUSEDMM_RPC_CACHE=0` disables the
//! per-replica result cache (default: on).

use std::sync::Arc;
use std::time::Duration;

use fusedmm_bench::workloads::{env_usize, rpc_demo_workload};
use fusedmm_core::{Blocking, Partition, PartitionStrategy};
use fusedmm_ops::OpSet;
use fusedmm_rpc::WorkerServer;
use fusedmm_serve::remote::WorkerEngine;
use fusedmm_serve::{CacheConfig, EngineConfig};
use fusedmm_sparse::Dense;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 4 {
        eprintln!("usage: {} <socket-path> <shard> <nshards>", args[0]);
        std::process::exit(2);
    }
    let socket = &args[1];
    let shard: usize = args[2].parse().expect("shard index");
    let nshards: usize = args[3].parse().expect("shard count");
    assert!(shard < nshards, "shard index within the cut");

    let (a, _, _) = rpc_demo_workload();
    let d = env_usize("FUSEDMM_RPC_D", 16);
    let part = Partition::part1d(&a, nshards, PartitionStrategy::NnzBalanced);
    let band = part.rows(shard);
    let cache = (env_usize("FUSEDMM_RPC_CACHE", 1) != 0).then(CacheConfig::default);
    let config = EngineConfig {
        coalesce_window: Duration::ZERO,
        blocking: Some(Blocking::Auto),
        cache,
        ..EngineConfig::default()
    };
    let engine = WorkerEngine::new(
        &a,
        band.clone(),
        shard,
        Dense::zeros(a.nrows(), d),
        Dense::zeros(a.ncols(), d),
        OpSet::sigmoid_embedding(None),
        config,
    );
    let _server = WorkerServer::serve_unix(Arc::new(engine), socket).expect("bind worker socket");
    println!("worker {shard}/{nshards} serving rows {band:?} on {socket}");
    loop {
        std::thread::park();
    }
}
