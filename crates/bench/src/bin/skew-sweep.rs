//! RMAT skew sweep: uniform strip-mined execution vs the degree-aware
//! hybrid kernel vs hybrid + degree-sort reordering, across a sweep of
//! quadrant skew — the experiment behind ROADMAP item 3's "skewed
//! graphs" claim.
//!
//! The sweep interpolates the RMAT quadrant probabilities from uniform
//! `(0.25, 0.25, 0.25, 0.25)` at `s = 0` (an Erdős–Rényi-like graph
//! with no hubs) to the sharp Graph500 parameterization
//! `(0.57, 0.19, 0.19, 0.05)` at `s = 1.5`. Three arms run per point:
//!
//! * `uniform` — [`Blocking::StripMined`], every row through the same
//!   panel kernel (the pre-hybrid baseline);
//! * `hybrid` — [`Blocking::Hybrid`] with the default degree classes
//!   (gathered short rows, strip-mined middle, span-split mega rows);
//! * `hybrid+reord` — the same hybrid kernel on the
//!   [`Reordering::DegreeSort`]-permuted problem (permutation applied
//!   once outside the timed region, as [`fusedmm_serve::Engine`] does
//!   at load time).
//!
//! Arms are timed in interleaved rounds (rotating the in-round order):
//! the `_ms` columns report each arm's fastest round, the speedup
//! columns the **median of per-round ratios** — within a round the
//! arms run close together, so machine drift mostly cancels out of
//! the ratio. The binary exits nonzero when hybrid's overhead over
//! uniform on the unskewed `s = 0` arm exceeds `FUSEDMM_SKEW_GUARD`
//! (default 1.05×) by **both** the median-ratio and best-round
//! estimates — the "never pay for what you don't use" regression gate
//! CI enforces, with two noise-robust estimators that must agree
//! before the build fails.
//!
//! Environment knobs: `FUSEDMM_SKEW_N` (vertices, default 20000),
//! `FUSEDMM_SKEW_DEG` (average degree, default 8), `FUSEDMM_SKEW_D`
//! (feature dimension, default 96 — strip-level so the hybrid engages),
//! `FUSEDMM_REPS`, `FUSEDMM_BENCH_JSON`.
//!
//! Run: `cargo run --release --bin skew-sweep`

use fusedmm_bench::report::{run_meta, JsonReport, Table};
use fusedmm_bench::workloads::{env_f64, env_usize, reps};
use fusedmm_core::{
    fusedmm_opt_with, kernel_profiles, reset_kernel_profiles, Blocking, HybridConfig,
    PartitionStrategy,
};
use fusedmm_graph::features::random_features;
use fusedmm_graph::rmat::{rmat, RmatConfig};
use fusedmm_graph::Reordering;
use fusedmm_ops::OpSet;
use fusedmm_sparse::{Csr, Dense};

/// Sweep points: `s = 0` is the unskewed guard arm; the paper-relevant
/// regime is `s >= 1.0`.
const SKEWS: [f64; 4] = [0.0, 0.5, 1.0, 1.5];

/// RMAT quadrant probabilities interpolated uniform → Graph500-sharp.
fn quadrants(s: f64) -> (f64, f64, f64, f64) {
    let t = (s / 1.5).clamp(0.0, 1.0);
    let lerp = |from: f64, to: f64| from + t * (to - from);
    (lerp(0.25, 0.57), lerp(0.25, 0.19), lerp(0.25, 0.19), lerp(0.25, 0.05))
}

fn skewed_rmat(n: usize, nedges: usize, s: f64) -> Csr {
    let mut cfg = RmatConfig::new(n, nedges).with_seed(0x5EED + (s * 10.0) as u64);
    (cfg.a, cfg.b, cfg.c, cfg.d) = quadrants(s);
    // Re-normalize exactly: the lerp is affine so the sum is already
    // ~1, but the generator asserts to 1e-6.
    let total = cfg.a + cfg.b + cfg.c + cfg.d;
    cfg.a /= total;
    cfg.b /= total;
    cfg.c /= total;
    cfg.d /= total;
    rmat(&cfg)
}

/// One comparison arm: a (possibly renumbered) problem and the blocking
/// level to run it at.
struct Arm<'a> {
    a: &'a Csr,
    x: &'a Dense,
    y: &'a Dense,
    blocking: Blocking,
}

/// Time every arm with interleaved rounds — arm 0, arm 1, arm 2,
/// repeat — returning the per-round samples for each arm. A shared
/// machine drifts on a timescale of whole benchmark windows;
/// round-robin interleaving makes the noise hit all arms alike instead
/// of poisoning whichever arm owned the slow window, and keeping the
/// rounds lets the guard compare arms *within* a round (back-to-back,
/// so drift cancels) rather than across the whole window.
fn time_arms(arms: &[Arm<'_>], ops: &OpSet, nreps: usize) -> Vec<Vec<f64>> {
    let run = |arm: &Arm<'_>| {
        std::hint::black_box(fusedmm_opt_with(
            arm.a,
            arm.x,
            arm.y,
            ops,
            arm.blocking,
            None,
            PartitionStrategy::NnzBalanced,
        ));
    };
    for arm in arms {
        run(arm); // warm-up: page in operands
    }
    let mut samples = vec![vec![0f64; nreps]; arms.len()];
    for r in 0..nreps {
        // Rotate the order each round: a fixed order would hand every
        // arm a fixed *position*, and position is not neutral (an
        // AVX-heavy predecessor leaves frequency/thermal state behind).
        for k in 0..arms.len() {
            let i = (r + k) % arms.len();
            let t0 = std::time::Instant::now();
            run(&arms[i]);
            samples[i][r] = t0.elapsed().as_secs_f64();
        }
    }
    samples
}

fn min_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Median of the per-round `num[r] / den[r]` ratios: the drift-robust
/// arm comparison (each round's pair ran back-to-back).
fn median_ratio(num: &[f64], den: &[f64]) -> f64 {
    let mut ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let m = ratios.len() / 2;
    if ratios.len() % 2 == 1 {
        ratios[m]
    } else {
        0.5 * (ratios[m - 1] + ratios[m])
    }
}

fn main() {
    let n = env_usize("FUSEDMM_SKEW_N", 20_000);
    let deg = env_usize("FUSEDMM_SKEW_DEG", 8);
    let d = env_usize("FUSEDMM_SKEW_D", 96);
    let guard = env_f64("FUSEDMM_SKEW_GUARD", 1.05);
    let defaults = HybridConfig::default();
    let hybrid_cfg = HybridConfig {
        short_max: env_usize("FUSEDMM_SKEW_SHORT_MAX", defaults.short_max),
        mega_floor: env_usize("FUSEDMM_SKEW_MEGA_FLOOR", defaults.mega_floor),
    };
    let nreps = reps();
    let nedges = (n * deg / 2).max(1);
    let ops = OpSet::sigmoid_embedding(None);

    println!("RMAT skew sweep — n={n}, avg deg≈{deg}, d={d}, reps={nreps}\n");
    let meta = run_meta();
    meta.print();
    println!();

    let mut table = Table::new(&[
        "skew",
        "nnz",
        "max_deg",
        "uniform_ms",
        "hybrid_ms",
        "hybrid+reord_ms",
        "hybrid_speedup",
        "reord_speedup",
    ]);
    let mut guard_violation = None;
    reset_kernel_profiles();

    for s in SKEWS {
        let a = skewed_rmat(n, nedges, s);
        let x = random_features(a.nrows(), d, 0.5, 0xA11CE);
        let y = random_features(a.ncols(), d, 0.5, 0xB0B);

        // The reordered arm permutes once up front — load-time work in
        // the serving engine — and times the kernel on the renumbered
        // problem.
        let perm = Reordering::DegreeSort.compute(&a);
        let ap = perm.permute_csr(&a);
        let xp = perm.permute_rows(&x);
        let yp = perm.permute_rows(&y);

        let times = time_arms(
            &[
                Arm { a: &a, x: &x, y: &y, blocking: Blocking::StripMined },
                Arm { a: &a, x: &x, y: &y, blocking: Blocking::Hybrid(hybrid_cfg) },
                Arm { a: &ap, x: &xp, y: &yp, blocking: Blocking::Hybrid(hybrid_cfg) },
            ],
            &ops,
            nreps,
        );
        let (uniform, hybrid, reordered) =
            (min_of(&times[0]), min_of(&times[1]), min_of(&times[2]));

        table.row(vec![
            format!("{s:.1}"),
            a.nnz().to_string(),
            a.max_degree().to_string(),
            format!("{:.3}", uniform * 1e3),
            format!("{:.3}", hybrid * 1e3),
            format!("{:.3}", reordered * 1e3),
            format!("{:.3}", 1.0 / median_ratio(&times[1], &times[0])),
            format!("{:.3}", 1.0 / median_ratio(&times[2], &times[0])),
        ]);

        if s == 0.0 {
            // Two overhead estimates with uncorrelated failure modes:
            // the paired-round median (robust to drift, sensitive to
            // interference spikes that land on >half the rounds) and
            // the ratio of best rounds (robust to spikes — noise only
            // ever adds time — sensitive to drift between the arms'
            // best windows). A real regression moves both; the guard
            // trips only on consensus, so a noisy tenant can't fail
            // the build on its own.
            let med = median_ratio(&times[1], &times[0]);
            let best = hybrid / uniform;
            if med.min(best) > guard {
                guard_violation = Some((med, best));
            }
        }
    }

    table.print();
    println!();

    // Per-degree-class kernel accounting: the hybrid passes report
    // under their own blocking labels, so the class split is auditable
    // from the same run.
    let mut prof = Table::new(&["blocking", "calls", "rows", "edges", "total_ms"]);
    for p in kernel_profiles() {
        if p.d != d {
            continue;
        }
        prof.row(vec![
            p.blocking.to_string(),
            p.calls.to_string(),
            p.rows.to_string(),
            p.edges.to_string(),
            format!("{:.3}", p.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("Kernel profile (per blocking label, d={d}):");
    prof.print();

    if let Some(path) = JsonReport::env_path() {
        let mut report = JsonReport::new();
        report.section("meta", &meta);
        report.section("skew_sweep", &table);
        report.section("kernel_profile", &prof);
        report.write(&path).expect("write FUSEDMM_BENCH_JSON report");
        println!("\nwrote {}", path.display());
    }

    println!(
        "\nPaper shape to verify: hybrid+reord >= hybrid >= uniform as skew grows; \
         all three within noise at s=0."
    );
    if let Some((med, best)) = guard_violation {
        eprintln!(
            "GUARD FAILED: hybrid overhead on the unskewed arm exceeds the {guard:.2}x \
             budget by both estimates (median per-round ratio {med:.3}x, \
             best-round ratio {best:.3}x)"
        );
        std::process::exit(1);
    }
}
