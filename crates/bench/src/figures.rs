//! Shared drivers for the figure reproductions (Figs. 8, 9, 11).

use fusedmm_graph::datasets::Dataset;
use fusedmm_ops::OpSet;

use crate::methods::{run_method, Method};
use crate::report::{fmt_cell, fmt_speedup, Table};
use crate::workloads::{describe, kernel_workload, reps};

/// The cross-ISA kernel panel of Figs. 8/9: DGL vs FusedMMopt at
/// d = 128 over the four medium graphs, one sub-table per pattern.
/// The paper runs this on ARM (Fig. 8) and AMD (Fig. 9) servers; the
/// portable kernels compile to whatever ISA hosts this run, which the
/// caller prints.
pub fn isa_panel(patterns: &[(&str, OpSet)]) {
    let graphs = [Dataset::Harvard, Dataset::Flickr, Dataset::Amazon, Dataset::Youtube];
    let d = 128;
    let r = reps();
    for (pname, ops) in patterns {
        println!("-- {pname} (d={d}) --");
        let mut table = Table::new(&["Graph", "DGL (s)", "FusedMM (s)", "Speedup"]);
        for ds in graphs {
            let w = kernel_workload(ds, d);
            eprintln!("  workload: {}", describe(&w));
            let dgl = run_method(Method::Dgl, &w, ops, r);
            let fused = run_method(Method::FusedMMOpt, &w, ops, r);
            table.row(vec![
                ds.to_string(),
                fmt_cell(&dgl),
                fmt_cell(&fused),
                fmt_speedup(&dgl, &fused),
            ]);
        }
        table.print();
        println!();
    }
}

/// The host ISA string printed in the figure header.
pub fn host_isa() -> &'static str {
    if cfg!(target_arch = "x86_64") {
        "x86_64 (SSE/AVX via autovectorization)"
    } else if cfg!(target_arch = "aarch64") {
        "aarch64 (ASIMD/NEON via autovectorization)"
    } else {
        "other"
    }
}
