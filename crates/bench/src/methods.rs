//! The three kernel methods of Table VI, plus the memory-budget policy.

use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_core::{fusedmm_generic, fusedmm_opt};
use fusedmm_ops::OpSet;
use fusedmm_perf::timer::{time_iterations, TimingStats};
use fusedmm_sparse::unfused_intermediate_bytes;

use crate::workloads::{mem_budget_bytes, Workload};

/// A kernel execution strategy — the three method rows of Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// DGL-equivalent unfused SDDMM → SpMM with materialized messages.
    Dgl,
    /// FusedMM, generic five-step path (the paper's unoptimized row).
    FusedMM,
    /// FusedMM with pattern-specialized register-blocked kernels.
    FusedMMOpt,
}

impl Method {
    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Dgl => "DGL",
            Method::FusedMM => "FusedMM",
            Method::FusedMMOpt => "FusedMMopt",
        }
    }

    /// All three methods in table order.
    pub fn all() -> [Method; 3] {
        [Method::Dgl, Method::FusedMM, Method::FusedMMOpt]
    }
}

/// Outcome of one table cell.
#[derive(Debug, Clone)]
pub enum CellResult {
    /// Measured timing.
    Time(TimingStats),
    /// Skipped: the unfused intermediate would exceed the memory budget
    /// (the `×` of Table VI).
    OutOfMemory {
        /// Bytes the intermediate `H` would need.
        required: usize,
    },
}

impl CellResult {
    /// Average seconds, if measured.
    pub fn avg(&self) -> Option<f64> {
        match self {
            CellResult::Time(t) => Some(t.avg),
            CellResult::OutOfMemory { .. } => None,
        }
    }
}

/// Time `method` on a workload with the given operator set, honoring
/// the memory-budget policy for the unfused baseline.
pub fn run_method(method: Method, w: &Workload, ops: &OpSet, reps: usize) -> CellResult {
    if method == Method::Dgl {
        // DGL's dominant intermediate: the SDDMM output. Scalar messages
        // (embedding) stay cheap; vector messages (FR/MLP) cost
        // 12·nnz·d and reproduce the paper's out-of-memory cells.
        let dim = ops.sddmm_intermediate_dim(w.d).max(1);
        let required = unfused_intermediate_bytes(w.adj.nnz(), dim);
        if required > mem_budget_bytes() {
            return CellResult::OutOfMemory { required };
        }
    }
    let stats = match method {
        Method::Dgl => time_iterations(reps, || {
            std::hint::black_box(unfused_pipeline(&w.adj, &w.x, &w.y, ops));
        }),
        Method::FusedMM => time_iterations(reps, || {
            std::hint::black_box(fusedmm_generic(&w.adj, &w.x, &w.y, ops));
        }),
        Method::FusedMMOpt => time_iterations(reps, || {
            std::hint::black_box(fusedmm_opt(&w.adj, &w.x, &w.y, ops));
        }),
    };
    CellResult::Time(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::kernel_workload_scaled;
    use fusedmm_graph::datasets::Dataset;

    #[test]
    fn all_methods_run_small_workload() {
        let w = kernel_workload_scaled(Dataset::Cora, 16, 0.1);
        for m in Method::all() {
            let r = run_method(m, &w, &OpSet::sigmoid_embedding(None), 1);
            assert!(r.avg().is_some(), "{} skipped unexpectedly", m.label());
        }
    }

    #[test]
    fn oom_policy_fires_for_huge_fr_intermediates() {
        std::env::set_var("FUSEDMM_MEM_BUDGET_MB", "1");
        let w = kernel_workload_scaled(Dataset::Flickr, 512, 0.05);
        let r = run_method(Method::Dgl, &w, &OpSet::fr_model(1.0), 1);
        std::env::remove_var("FUSEDMM_MEM_BUDGET_MB");
        assert!(matches!(r, CellResult::OutOfMemory { .. }));
    }

    #[test]
    fn fused_methods_never_oom() {
        std::env::set_var("FUSEDMM_MEM_BUDGET_MB", "1");
        let w = kernel_workload_scaled(Dataset::Cora, 32, 0.1);
        let r = run_method(Method::FusedMMOpt, &w, &OpSet::fr_model(1.0), 1);
        std::env::remove_var("FUSEDMM_MEM_BUDGET_MB");
        assert!(r.avg().is_some());
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Method::Dgl.label(), "DGL");
        assert_eq!(Method::FusedMMOpt.label(), "FusedMMopt");
    }
}
