//! Benchmark harness plumbing shared by the `repro-*` binaries and the
//! criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! recorded runs). This library holds the common pieces: workload
//! construction from the dataset registry, kernel-method wrappers,
//! paper-style table printing, and the out-of-memory policy that
//! reproduces Table VI's `×` entries without actually exhausting RAM.
//!
//! Environment knobs (all optional):
//! * `FUSEDMM_SCALE` — multiplier on each dataset's recommended
//!   stand-in scale (default 1.0; smaller = faster);
//! * `FUSEDMM_REPS` — timed repetitions per cell (default 3; the paper
//!   uses 10);
//! * `FUSEDMM_MEM_BUDGET_MB` — intermediate-memory budget for the
//!   unfused baseline before a cell reports `×` (default 1024 MiB).

pub mod figures;
pub mod methods;
pub mod report;
pub mod workloads;

pub use methods::{run_method, Method};
pub use report::{fmt_cell, Table};
pub use workloads::{env_f64, env_usize, kernel_workload, reps, scale_factor, Workload};
