//! Fault injection: deterministic failures for chaos testing.
//!
//! Resilience claims need adversarial evidence, not just happy-path
//! tests. A [`FaultPlan`] injects three failure modes at the exact
//! boundaries the engine hardens:
//!
//! * **panic-on-nth-batch** — the dispatcher panics (via
//!   [`InjectedFault`]) on every `n`-th kernel launch, exercising the
//!   catch-at-the-shard-boundary path, the per-part `Panicked` reply,
//!   and the one-shot retry before `PartFailed` surfaces;
//! * **delayed fills** — cache back-fills sleep before completing,
//!   widening the window where coalesced waiters and invalidation
//!   race;
//! * **poisoned cache segment** — fills landing in one lock stripe are
//!   aborted instead of completed, so coalesced waiters on that stripe
//!   observe `FillAborted` and owners' rows never become resident.
//!
//! Plans come from the `FUSEDMM_FAULT_PLAN` environment variable (the
//! chaos CI job sets it) or are built in tests via [`FaultPlan::parse`].
//! A fault plan never changes *what* a healthy request computes — only
//! whether a given launch or fill survives — so Exact-tier responses
//! that do survive stay bit-identical to a fault-free run.

use std::sync::{Arc, Once};
use std::time::Duration;

/// Panic payload used by injected dispatcher faults, so the panic hook
/// and `catch_unwind` site can tell deliberate chaos from real bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault;

/// A deterministic failure schedule, applied per engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic on every n-th kernel launch (launch sequence numbers
    /// divisible by `n`, starting at 0). `n == 1` fails every launch —
    /// including retries — so `PartFailed` becomes terminal.
    panic_every: Option<u64>,
    /// Sleep this long before completing each cache back-fill.
    delay_fill: Option<Duration>,
    /// Abort (instead of complete) fills landing in this cache lock
    /// stripe (`node % segments`).
    poison_segment: Option<usize>,
    /// RPC transport hook: deliberately sever a worker connection on
    /// every n-th request frame (sequence numbers from 1), exercising
    /// the coordinator's reconnect + epoch-log catch-up path.
    drop_conn_every: Option<u64>,
    /// RPC transport hook: stall this long before writing each frame,
    /// widening the window where disconnects and epoch records race
    /// in-flight requests.
    delay_frame: Option<Duration>,
}

impl FaultPlan {
    /// The explicit no-faults plan. Engines configured with this never
    /// consult `FUSEDMM_FAULT_PLAN` — the example's correctness
    /// sections use it so chaos CI env doesn't perturb them.
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse a comma-separated spec:
    /// `panic_every=<n>,delay_fill_us=<micros>,poison_segment=<s>,`
    /// `drop_conn_every=<n>,delay_frame_us=<micros>` (each key
    /// optional).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault plan item `{item}` is not key=value"))?;
            let parsed: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault plan `{key}` value `{value}` is not an integer"))?;
            match key.trim() {
                "panic_every" => {
                    if parsed == 0 {
                        return Err("panic_every must be >= 1".into());
                    }
                    plan.panic_every = Some(parsed);
                }
                "delay_fill_us" => plan.delay_fill = Some(Duration::from_micros(parsed)),
                "poison_segment" => plan.poison_segment = Some(parsed as usize),
                "drop_conn_every" => {
                    if parsed == 0 {
                        return Err("drop_conn_every must be >= 1".into());
                    }
                    plan.drop_conn_every = Some(parsed);
                }
                "delay_frame_us" => plan.delay_frame = Some(Duration::from_micros(parsed)),
                other => return Err(format!("unknown fault plan key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The process-wide plan from `FUSEDMM_FAULT_PLAN`, if set.
    ///
    /// # Panics
    /// On an unparsable spec — a chaos run with a typo'd plan should
    /// fail loudly, not silently run fault-free.
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let spec = std::env::var("FUSEDMM_FAULT_PLAN").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let plan = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("invalid FUSEDMM_FAULT_PLAN `{spec}`: {e}"));
        plan.is_active().then(|| Arc::new(plan))
    }

    /// True when any fault is scheduled.
    pub fn is_active(&self) -> bool {
        self.panic_every.is_some()
            || self.delay_fill.is_some()
            || self.poison_segment.is_some()
            || self.drop_conn_every.is_some()
            || self.delay_frame.is_some()
    }

    /// Dispatcher hook: panic if launch `seq` is scheduled to fail.
    pub(crate) fn maybe_panic(&self, seq: u64) {
        if let Some(n) = self.panic_every {
            if seq.is_multiple_of(n) {
                std::panic::panic_any(InjectedFault);
            }
        }
    }

    /// Cache-fill hook: how long to stall before completing fills.
    pub(crate) fn fill_delay(&self) -> Option<Duration> {
        self.delay_fill
    }

    /// Cache-fill hook: the poisoned lock stripe, if any.
    pub(crate) fn poisoned_segment(&self) -> Option<usize> {
        self.poison_segment
    }

    /// RPC transport hook: sever the connection on every n-th request
    /// frame, when scheduled. Public — the transport crate sits above
    /// this one.
    pub fn conn_drop_every(&self) -> Option<u64> {
        self.drop_conn_every
    }

    /// RPC transport hook: how long to stall before each frame write.
    pub fn frame_delay(&self) -> Option<Duration> {
        self.delay_frame
    }
}

/// Install a process-wide panic hook that stays silent for
/// [`InjectedFault`] payloads (they are caught at the dispatch
/// boundary by design) while forwarding every other panic to the
/// previous hook. Idempotent; chaos tests and the example call it
/// before injecting faults so expected panics don't spam stderr.
pub fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<InjectedFault>() {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "panic_every=3, delay_fill_us=200,poison_segment=1,drop_conn_every=5,delay_frame_us=50",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                panic_every: Some(3),
                delay_fill: Some(Duration::from_micros(200)),
                poison_segment: Some(1),
                drop_conn_every: Some(5),
                delay_frame: Some(Duration::from_micros(50)),
            }
        );
        assert!(plan.is_active());
        assert_eq!(plan.conn_drop_every(), Some(5));
        assert_eq!(plan.frame_delay(), Some(Duration::from_micros(50)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("panic_every").is_err());
        assert!(FaultPlan::parse("panic_every=zero").is_err());
        assert!(FaultPlan::parse("panic_every=0").is_err());
        assert!(FaultPlan::parse("drop_conn_every=0").is_err());
        assert!(FaultPlan::parse("warp_core_breach=1").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::disabled());
    }

    #[test]
    fn panic_schedule_fires_on_multiples() {
        quiet_injected_panics();
        let plan = FaultPlan::parse("panic_every=3").unwrap();
        for seq in 0..7u64 {
            let hit = std::panic::catch_unwind(|| plan.maybe_panic(seq)).is_err();
            assert_eq!(hit, seq % 3 == 0, "seq {seq}");
        }
        let calm = FaultPlan::disabled();
        assert!(std::panic::catch_unwind(|| calm.maybe_panic(0)).is_ok());
    }

    #[test]
    fn injected_payload_is_recognizable() {
        quiet_injected_panics();
        let err = std::panic::catch_unwind(|| std::panic::panic_any(InjectedFault))
            .expect_err("panicked");
        assert!(err.is::<InjectedFault>());
    }
}
