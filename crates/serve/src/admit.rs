//! Admission control: bounded queues instead of unbounded ones.
//!
//! Without a policy, overload shows up as queue growth — every request
//! is accepted, latency climbs without bound, and the clients least
//! able to wait pay the most. An [`AdmissionPolicy`] turns overload
//! into explicit, typed outcomes at `embed_begin` time, driven by two
//! live load signals the engine already maintains: the in-flight
//! request [`Gauge`](fusedmm_perf::gauge::Gauge) and the batch queue's
//! row backlog.
//!
//! The policy is a two-step ladder rather than a single cliff:
//!
//! 1. **Degrade** — past a configurable fraction of the hard cap,
//!    `Exact` requests are downgraded to `CachedOnly` (when the engine
//!    has a result cache): they are answered from cached rows
//!    immediately, never touch the kernel queue, and carry per-row
//!    `served_degraded` marks so the caller knows what it got.
//! 2. **Shed** — at the hard cap the request is rejected with
//!    [`ServeError::Shed`](crate::ServeError::Shed) carrying the load
//!    levels that triggered it. Nothing is queued.
//!
//! Requests that already ask for a degraded tier pass through the
//! degrade rung unchanged — the ladder only ever lowers quality.

use crate::ticket::Quality;

/// The admission verdict for one request, decided before anything is
/// queued or counted in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Serve at the requested quality.
    Admit,
    /// Serve, but downgrade `Exact` to `CachedOnly` first.
    Degrade,
    /// Reject with `ServeError::Shed`.
    Shed,
}

/// Load limits for one serving front end (a single [`Engine`] or the
/// [`ShardedEngine`] front; band engines under a sharded front run
/// unlimited — the front already admitted the request).
///
/// A limit of `0` means "no limit" for that signal; `degrade_fraction
/// >= 1.0` disables the degrade rung.
///
/// [`Engine`]: crate::Engine
/// [`ShardedEngine`]: crate::ShardedEngine
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Hard cap on concurrently open tickets (the in-flight gauge).
    pub max_inflight: usize,
    /// Hard cap on rows sitting in the batch queue, summed over shards.
    pub max_queued_rows: usize,
    /// Fraction of either cap past which `Exact` requests are
    /// downgraded to `CachedOnly` instead of queued.
    pub degrade_fraction: f64,
}

impl Default for AdmissionPolicy {
    /// The environment-driven policy: unlimited unless
    /// `FUSEDMM_ADMIT_*` say otherwise.
    fn default() -> Self {
        AdmissionPolicy::from_env()
    }
}

impl AdmissionPolicy {
    /// No limits: every request is admitted at its requested quality.
    pub fn unlimited() -> AdmissionPolicy {
        AdmissionPolicy { max_inflight: 0, max_queued_rows: 0, degrade_fraction: 1.0 }
    }

    /// Read limits from the environment:
    /// `FUSEDMM_ADMIT_INFLIGHT` (hard in-flight cap),
    /// `FUSEDMM_ADMIT_ROWS` (hard queued-row cap), and
    /// `FUSEDMM_ADMIT_DEGRADE_PCT` (degrade rung as a percentage of
    /// the caps, default 75). Unset caps mean unlimited.
    pub fn from_env() -> AdmissionPolicy {
        fn env_usize(key: &str) -> usize {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(0)
        }
        let pct = std::env::var("FUSEDMM_ADMIT_DEGRADE_PCT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(75.0);
        AdmissionPolicy {
            max_inflight: env_usize("FUSEDMM_ADMIT_INFLIGHT"),
            max_queued_rows: env_usize("FUSEDMM_ADMIT_ROWS"),
            degrade_fraction: pct / 100.0,
        }
    }

    /// True when at least one signal has a cap.
    pub fn is_limited(&self) -> bool {
        self.max_inflight > 0 || self.max_queued_rows > 0
    }

    fn over(&self, value: u64, cap: usize, fraction: f64) -> bool {
        cap > 0 && value >= (cap as f64 * fraction).ceil() as u64
    }

    /// Decide admission from the live load signals. `inflight` is the
    /// current open-ticket count, `queued_rows` the rows waiting in
    /// the batch queue(s).
    pub(crate) fn decide(&self, inflight: u64, queued_rows: usize) -> Admission {
        if self.over(inflight, self.max_inflight, 1.0)
            || self.over(queued_rows as u64, self.max_queued_rows, 1.0)
        {
            return Admission::Shed;
        }
        if self.degrade_fraction < 1.0
            && (self.over(inflight, self.max_inflight, self.degrade_fraction)
                || self.over(queued_rows as u64, self.max_queued_rows, self.degrade_fraction))
        {
            return Admission::Degrade;
        }
        Admission::Admit
    }

    /// Apply the ladder to a requested quality: `Degrade` lowers
    /// `Exact` to `CachedOnly` when the engine can serve that tier
    /// (`has_cache`); already-degraded requests pass unchanged.
    pub(crate) fn downgrade(quality: Quality, has_cache: bool) -> Quality {
        match quality {
            Quality::Exact if has_cache => Quality::CachedOnly,
            q => q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let p = AdmissionPolicy::unlimited();
        assert_eq!(p.decide(1 << 40, usize::MAX), Admission::Admit);
        assert!(!p.is_limited());
    }

    #[test]
    fn ladder_degrades_before_shedding() {
        let p = AdmissionPolicy { max_inflight: 8, max_queued_rows: 0, degrade_fraction: 0.75 };
        assert_eq!(p.decide(0, 0), Admission::Admit);
        assert_eq!(p.decide(5, 0), Admission::Admit);
        assert_eq!(p.decide(6, 0), Admission::Degrade, "75% of 8");
        assert_eq!(p.decide(7, 0), Admission::Degrade);
        assert_eq!(p.decide(8, 0), Admission::Shed);
        assert_eq!(p.decide(9, 0), Admission::Shed);
    }

    #[test]
    fn queued_rows_cap_sheds_independently() {
        let p = AdmissionPolicy { max_inflight: 0, max_queued_rows: 100, degrade_fraction: 1.0 };
        assert_eq!(p.decide(1 << 20, 99), Admission::Admit, "no inflight cap");
        assert_eq!(p.decide(0, 100), Admission::Shed);
    }

    #[test]
    fn downgrade_only_lowers_exact_with_a_cache() {
        assert_eq!(AdmissionPolicy::downgrade(Quality::Exact, true), Quality::CachedOnly);
        assert_eq!(AdmissionPolicy::downgrade(Quality::Exact, false), Quality::Exact);
        assert_eq!(
            AdmissionPolicy::downgrade(Quality::TopKNeighbors(4), true),
            Quality::TopKNeighbors(4)
        );
        assert_eq!(AdmissionPolicy::downgrade(Quality::CachedOnly, true), Quality::CachedOnly);
    }
}
