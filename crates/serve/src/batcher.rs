//! Micro-batching: coalesce concurrent node-subset requests into one
//! deduplicated row batch per dispatcher tick.
//!
//! Callers block on a per-request channel while the dispatcher thread
//! (spawned by [`Engine`](crate::Engine)) drains the queue, takes the
//! sorted union of all requested nodes, runs the row-subset kernel
//! once, and scatters each caller's rows back. Batching amortizes the
//! kernel launch and deduplication means a hot node requested by ten
//! concurrent callers is computed once.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar};
use std::time::{Duration, Instant};

use fusedmm_perf::trace::SpanCtx;
use fusedmm_sparse::dense::Dense;

use crate::cache::FillSet;
use crate::store::FeatureEpoch;

/// One enqueued embedding request.
pub(crate) struct Pending {
    /// Requested node ids, in the caller's order (may repeat).
    pub nodes: Vec<usize>,
    /// The feature epoch pinned at enqueue time: the whole response is
    /// computed from this snapshot, never torn across a publish.
    pub epoch: Arc<FeatureEpoch>,
    /// Completion channel back to the caller.
    pub tx: mpsc::Sender<Dense>,
    /// In-flight cache registrations this request owns (`fills[i]` ↔
    /// `nodes[i]`): the dispatcher resolves them — cache insert plus
    /// coalesced-waiter back-fill — as soon as the rows are computed,
    /// before completing the caller.
    pub fills: Option<FillSet>,
    /// The request's enqueue-span context when it was sampled for
    /// tracing: the dispatcher parents its batch/kernel/cache-fill
    /// spans under it (recorded per sampled request, so each owns a
    /// complete tree). `None` for unsampled requests — every span site
    /// downstream short-circuits.
    pub trace: Option<SpanCtx>,
    /// Enqueue time, for end-to-end latency accounting.
    pub enqueued: Instant,
}

struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

/// The dispatcher's work queue: a condvar-signalled FIFO of
/// [`Pending`] requests.
pub(crate) struct BatchQueue {
    state: std::sync::Mutex<QueueState>,
    cv: Condvar,
}

impl BatchQueue {
    pub fn new() -> Self {
        BatchQueue {
            state: std::sync::Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a request; returns `false` when the queue is already
    /// shut down (the request is dropped).
    pub fn push(&self, request: Pending) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown {
            return false;
        }
        state.pending.push_back(request);
        drop(state);
        self.cv.notify_one();
        true
    }

    /// Mark the queue closed and wake the dispatcher.
    pub fn shutdown(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        self.cv.notify_all();
    }

    /// Block until work arrives (or shutdown), optionally linger
    /// `coalesce_window` so concurrent callers can join the batch, then
    /// drain requests until `max_batch_rows` requested rows are taken
    /// (always at least one request). Returns `None` only on shutdown
    /// with an empty queue.
    pub fn next_batch(
        &self,
        coalesce_window: Duration,
        max_batch_rows: usize,
    ) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.pending.is_empty() {
            if state.shutdown {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let queued_rows = |s: &QueueState| s.pending.iter().map(|p| p.nodes.len()).sum::<usize>();
        if !coalesce_window.is_zero() && !state.shutdown && queued_rows(&state) < max_batch_rows {
            // Give concurrent callers a moment to land in this batch —
            // but only while the batch still has room; under backlog
            // the wait would add latency without any extra coalescing.
            drop(state);
            std::thread::sleep(coalesce_window);
            state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        }
        let mut batch = Vec::new();
        let mut rows = 0usize;
        while let Some(front) = state.pending.front() {
            if !batch.is_empty() && rows + front.nodes.len() > max_batch_rows {
                break;
            }
            rows += front.nodes.len();
            batch.push(state.pending.pop_front().expect("front exists"));
        }
        Some(batch)
    }
}

/// Split a drained batch into kernel-launch groups that share one
/// pinned [`FeatureEpoch`] (identity, not number — two snapshots of the
/// same epoch object are the same group). Requests pinned to different
/// epochs must never share a kernel launch, or responses would mix
/// feature generations; grouping (rather than flushing per request)
/// keeps full coalescing in the common case where no publish landed
/// mid-batch. Order is preserved: groups appear in first-seen order and
/// requests keep their queue order within a group.
pub(crate) fn group_by_epoch(batch: Vec<Pending>) -> Vec<Vec<Pending>> {
    let mut groups: Vec<Vec<Pending>> = Vec::new();
    for pending in batch {
        match groups.iter_mut().find(|g| Arc::ptr_eq(&g[0].epoch, &pending.epoch)) {
            Some(group) => group.push(pending),
            None => groups.push(vec![pending]),
        }
    }
    groups
}

/// Sorted union of all node lists in `requests` (each node once).
pub fn dedup_union<'a>(requests: impl IntoIterator<Item = &'a [usize]>) -> Vec<usize> {
    let mut union: Vec<usize> = requests.into_iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();
    union
}

/// Gather `nodes`' rows out of the union result: `union_rows[i]` is the
/// output row for node `union_nodes[i]` (sorted), and the returned
/// matrix has one row per entry of `nodes`, in request order.
pub fn scatter_rows(union_nodes: &[usize], union_rows: &Dense, nodes: &[usize]) -> Dense {
    let d = union_rows.ncols();
    let mut out = Dense::zeros(nodes.len(), d);
    for (i, &node) in nodes.iter().enumerate() {
        let j = union_nodes
            .binary_search(&node)
            .unwrap_or_else(|_| panic!("node {node} missing from its own batch union"));
        out.row_mut(i).copy_from_slice(union_rows.row(j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FeatureStore;

    fn epoch() -> Arc<FeatureEpoch> {
        FeatureStore::new(Dense::zeros(1, 1), Dense::zeros(1, 1)).snapshot()
    }

    fn pending(nodes: Vec<usize>, epoch: Arc<FeatureEpoch>, tx: mpsc::Sender<Dense>) -> Pending {
        Pending { nodes, epoch, tx, fills: None, trace: None, enqueued: Instant::now() }
    }

    #[test]
    fn union_sorts_and_dedups() {
        let a: &[usize] = &[5, 1, 9];
        let b: &[usize] = &[1, 1, 7];
        assert_eq!(dedup_union([a, b]), vec![1, 5, 7, 9]);
        assert_eq!(dedup_union([] as [&[usize]; 0]), Vec::<usize>::new());
    }

    #[test]
    fn scatter_restores_request_order_and_duplicates() {
        let union_nodes = vec![2usize, 4, 8];
        let union_rows = Dense::from_rows(3, 2, &[0.2, 2.0, 0.4, 4.0, 0.8, 8.0]).unwrap();
        let out = scatter_rows(&union_nodes, &union_rows, &[8, 2, 8]);
        assert_eq!(out.row(0), &[0.8, 8.0]);
        assert_eq!(out.row(1), &[0.2, 2.0]);
        assert_eq!(out.row(2), &[0.8, 8.0]);
    }

    #[test]
    fn queue_batches_everything_waiting() {
        let q = BatchQueue::new();
        let (tx, _rx) = mpsc::channel();
        let ep = epoch();
        for n in 0..3usize {
            assert!(q.push(pending(vec![n], Arc::clone(&ep), tx.clone())));
        }
        let batch = q.next_batch(Duration::ZERO, 1024).expect("work available");
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn queue_respects_row_cap_but_always_progresses() {
        let q = BatchQueue::new();
        let (tx, _rx) = mpsc::channel();
        let ep = epoch();
        // One oversized request plus a small one.
        q.push(pending(vec![0; 100], Arc::clone(&ep), tx.clone()));
        q.push(pending(vec![1], Arc::clone(&ep), tx.clone()));
        let first = q.next_batch(Duration::ZERO, 10).unwrap();
        assert_eq!(first.len(), 1, "oversized request still dispatched alone");
        let second = q.next_batch(Duration::ZERO, 10).unwrap();
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = BatchQueue::new();
        let (tx, _rx) = mpsc::channel();
        q.push(pending(vec![3], epoch(), tx));
        q.shutdown();
        assert!(q.next_batch(Duration::ZERO, 8).is_some(), "queued work still served");
        assert!(q.next_batch(Duration::ZERO, 8).is_none(), "then the queue reports closed");
        let (tx2, _rx2) = mpsc::channel();
        assert!(!q.push(pending(vec![1], epoch(), tx2)));
    }

    #[test]
    fn epoch_groups_split_by_identity_and_preserve_order() {
        let (tx, _rx) = mpsc::channel();
        let store = FeatureStore::new(Dense::zeros(1, 1), Dense::zeros(1, 1));
        let old = store.snapshot();
        store.publish(Dense::zeros(1, 1), Dense::zeros(1, 1));
        let new = store.snapshot();
        // Interleaved epochs: old, new, old, new, new.
        let batch = vec![
            pending(vec![0], Arc::clone(&old), tx.clone()),
            pending(vec![1], Arc::clone(&new), tx.clone()),
            pending(vec![2], Arc::clone(&old), tx.clone()),
            pending(vec![3], Arc::clone(&new), tx.clone()),
            pending(vec![4], Arc::clone(&new), tx.clone()),
        ];
        let groups = group_by_epoch(batch);
        assert_eq!(groups.len(), 2, "one kernel-launch group per pinned epoch");
        assert_eq!(groups[0].iter().map(|p| p.nodes[0]).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(groups[1].iter().map(|p| p.nodes[0]).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(groups[0][0].epoch.epoch(), 0);
        assert_eq!(groups[1][0].epoch.epoch(), 1);
    }

    #[test]
    fn single_epoch_batch_is_one_group() {
        let (tx, _rx) = mpsc::channel();
        let ep = epoch();
        let batch =
            (0..4).map(|n| pending(vec![n], Arc::clone(&ep), tx.clone())).collect::<Vec<_>>();
        let groups = group_by_epoch(batch);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }
}
