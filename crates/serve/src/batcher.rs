//! Micro-batching: coalesce concurrent node-subset requests into one
//! deduplicated row batch per dispatcher tick.
//!
//! Callers block on a per-request one-shot slot while the dispatcher
//! thread (spawned by [`Engine`](crate::Engine)) drains the queue,
//! takes the sorted union of all requested nodes, runs the row-subset
//! kernel once, and scatters each caller's rows back. Batching
//! amortizes the kernel launch and deduplication means a hot node
//! requested by ten concurrent callers is computed once.
//!
//! The queue is deadline-aware: a drain partitions requests whose
//! deadline already passed into `Drained::expired` so the dispatcher
//! can fail them (typed, cheap) without spending kernel time — and it
//! tracks its total queued rows so the admission policy can bound the
//! backlog.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use fusedmm_perf::trace::SpanCtx;
use fusedmm_sparse::dense::Dense;

use crate::cache::FillSet;
use crate::store::FeatureEpoch;
use crate::ticket::Quality;
use crate::wait::SlotTx;

/// One enqueued embedding request.
pub(crate) struct Pending {
    /// Requested node ids, in the caller's order (may repeat).
    pub nodes: Vec<usize>,
    /// The feature epoch pinned at enqueue time: the whole response is
    /// computed from this snapshot, never torn across a publish.
    pub epoch: Arc<FeatureEpoch>,
    /// Completion slot back to the caller: computed rows, or a typed
    /// part error (expired, panicked). Dropping it unsent reads as
    /// engine shutdown on the caller side.
    pub tx: SlotTx,
    /// In-flight cache registrations this request owns (`fills[i]` ↔
    /// `nodes[i]`): the dispatcher resolves them — cache insert plus
    /// coalesced-waiter back-fill — as soon as the rows are computed,
    /// before completing the caller. Dropped (aborting the fills) when
    /// the request expires instead of running.
    pub fills: Option<FillSet>,
    /// The request's enqueue-span context when it was sampled for
    /// tracing: the dispatcher parents its batch/kernel/cache-fill
    /// spans under it (recorded per sampled request, so each owns a
    /// complete tree). `None` for unsampled requests — every span site
    /// downstream short-circuits.
    pub trace: Option<SpanCtx>,
    /// Drop (and fail with `PartError::Expired`) instead of computing
    /// past this instant.
    pub deadline: Option<Instant>,
    /// The answer tier: decides which kernel the dispatcher launches.
    /// Requests of different tiers never share a launch.
    pub quality: Quality,
    /// Enqueue time, for end-to-end latency accounting.
    pub enqueued: Instant,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// One dispatcher drain: the launchable batch plus any requests whose
/// deadline passed while queued (to be failed without kernel time).
pub(crate) struct Drained {
    pub batch: Vec<Pending>,
    pub expired: Vec<Pending>,
}

struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

/// The dispatcher's work queue: a condvar-signalled FIFO of
/// [`Pending`] requests that tracks its total queued rows (the
/// admission policy's backlog signal).
pub(crate) struct BatchQueue {
    state: std::sync::Mutex<QueueState>,
    cv: Condvar,
    /// Total `nodes.len()` across queued requests. Kept as a separate
    /// atomic so admission can read it without taking the queue lock.
    rows: AtomicUsize,
}

impl BatchQueue {
    pub fn new() -> Self {
        BatchQueue {
            state: std::sync::Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            rows: AtomicUsize::new(0),
        }
    }

    /// Total requested rows currently queued (admission's backlog
    /// signal; monotonic observations only — the queue may drain
    /// concurrently).
    pub fn queued_rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Enqueue a request; returns `false` when the queue is already
    /// shut down (the request is dropped).
    pub fn push(&self, request: Pending) -> bool {
        let rows = request.nodes.len();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown {
            return false;
        }
        state.pending.push_back(request);
        self.rows.fetch_add(rows, Ordering::Relaxed);
        drop(state);
        self.cv.notify_one();
        true
    }

    /// Mark the queue closed and wake the dispatcher.
    pub fn shutdown(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        self.cv.notify_all();
    }

    /// Block until work arrives (or shutdown), optionally linger
    /// `coalesce_window` so concurrent callers can join the batch, then
    /// drain requests until `max_batch_rows` requested rows are taken
    /// (always at least one request). Requests whose deadline already
    /// passed are siphoned into `Drained::expired` without counting
    /// toward the row cap. Returns `None` only on shutdown with an
    /// empty queue.
    pub fn next_batch(&self, coalesce_window: Duration, max_batch_rows: usize) -> Option<Drained> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.pending.is_empty() {
            if state.shutdown {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let queued_rows = |s: &QueueState| s.pending.iter().map(|p| p.nodes.len()).sum::<usize>();
        if !coalesce_window.is_zero() && !state.shutdown && queued_rows(&state) < max_batch_rows {
            // Give concurrent callers a moment to land in this batch —
            // but only while the batch still has room; under backlog
            // the wait would add latency without any extra coalescing.
            drop(state);
            std::thread::sleep(coalesce_window);
            state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        }
        let now = Instant::now();
        let mut batch = Vec::new();
        let mut expired = Vec::new();
        let mut rows = 0usize;
        let mut drained_rows = 0usize;
        while let Some(front) = state.pending.front() {
            if front.expired(now) {
                // Expired work costs no kernel time, so it never
                // limits the drain — sweep the whole backlog of it.
                drained_rows += front.nodes.len();
                expired.push(state.pending.pop_front().expect("front exists"));
                continue;
            }
            if !batch.is_empty() && rows + front.nodes.len() > max_batch_rows {
                break;
            }
            rows += front.nodes.len();
            drained_rows += front.nodes.len();
            batch.push(state.pending.pop_front().expect("front exists"));
        }
        self.rows.fetch_sub(drained_rows, Ordering::Relaxed);
        Some(Drained { batch, expired })
    }
}

/// Split a drained batch into kernel-launch groups that share one
/// pinned [`FeatureEpoch`] (identity, not number — two snapshots of the
/// same epoch object are the same group) *and* one [`Quality`] tier.
/// Requests pinned to different epochs must never share a kernel
/// launch, or responses would mix feature generations; requests of
/// different tiers run different kernels. Grouping (rather than
/// flushing per request) keeps full coalescing in the common case.
/// Order is preserved: groups appear in first-seen order and requests
/// keep their queue order within a group.
pub(crate) fn group_by_epoch(batch: Vec<Pending>) -> Vec<Vec<Pending>> {
    let mut groups: Vec<Vec<Pending>> = Vec::new();
    for pending in batch {
        match groups
            .iter_mut()
            .find(|g| Arc::ptr_eq(&g[0].epoch, &pending.epoch) && g[0].quality == pending.quality)
        {
            Some(group) => group.push(pending),
            None => groups.push(vec![pending]),
        }
    }
    groups
}

/// Sorted union of all node lists in `requests` (each node once).
pub fn dedup_union<'a>(requests: impl IntoIterator<Item = &'a [usize]>) -> Vec<usize> {
    let mut union: Vec<usize> = requests.into_iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();
    union
}

/// Gather `nodes`' rows out of the union result: `union_rows[i]` is the
/// output row for node `union_nodes[i]` (sorted), and the returned
/// matrix has one row per entry of `nodes`, in request order.
pub fn scatter_rows(union_nodes: &[usize], union_rows: &Dense, nodes: &[usize]) -> Dense {
    let d = union_rows.ncols();
    let mut out = Dense::zeros(nodes.len(), d);
    for (i, &node) in nodes.iter().enumerate() {
        let j = union_nodes
            .binary_search(&node)
            .unwrap_or_else(|_| panic!("node {node} missing from its own batch union"));
        out.row_mut(i).copy_from_slice(union_rows.row(j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FeatureStore;
    use crate::wait::slot;

    fn epoch() -> Arc<FeatureEpoch> {
        FeatureStore::new(Dense::zeros(1, 1), Dense::zeros(1, 1)).snapshot()
    }

    fn pending(nodes: Vec<usize>, epoch: Arc<FeatureEpoch>) -> Pending {
        let (tx, _rx) = slot();
        Pending {
            nodes,
            epoch,
            tx,
            fills: None,
            trace: None,
            deadline: None,
            quality: Quality::Exact,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn union_sorts_and_dedups() {
        let a: &[usize] = &[5, 1, 9];
        let b: &[usize] = &[1, 1, 7];
        assert_eq!(dedup_union([a, b]), vec![1, 5, 7, 9]);
        assert_eq!(dedup_union([] as [&[usize]; 0]), Vec::<usize>::new());
    }

    #[test]
    fn scatter_restores_request_order_and_duplicates() {
        let union_nodes = vec![2usize, 4, 8];
        let union_rows = Dense::from_rows(3, 2, &[0.2, 2.0, 0.4, 4.0, 0.8, 8.0]).unwrap();
        let out = scatter_rows(&union_nodes, &union_rows, &[8, 2, 8]);
        assert_eq!(out.row(0), &[0.8, 8.0]);
        assert_eq!(out.row(1), &[0.2, 2.0]);
        assert_eq!(out.row(2), &[0.8, 8.0]);
    }

    #[test]
    fn queue_batches_everything_waiting() {
        let q = BatchQueue::new();
        let ep = epoch();
        for n in 0..3usize {
            assert!(q.push(pending(vec![n], Arc::clone(&ep))));
        }
        assert_eq!(q.queued_rows(), 3);
        let drained = q.next_batch(Duration::ZERO, 1024).expect("work available");
        assert_eq!(drained.batch.len(), 3);
        assert!(drained.expired.is_empty());
        assert_eq!(q.queued_rows(), 0, "drain returns the rows to the gauge");
    }

    #[test]
    fn queue_respects_row_cap_but_always_progresses() {
        let q = BatchQueue::new();
        let ep = epoch();
        // One oversized request plus a small one.
        q.push(pending(vec![0; 100], Arc::clone(&ep)));
        q.push(pending(vec![1], Arc::clone(&ep)));
        assert_eq!(q.queued_rows(), 101);
        let first = q.next_batch(Duration::ZERO, 10).unwrap();
        assert_eq!(first.batch.len(), 1, "oversized request still dispatched alone");
        assert_eq!(q.queued_rows(), 1);
        let second = q.next_batch(Duration::ZERO, 10).unwrap();
        assert_eq!(second.batch.len(), 1);
        assert_eq!(q.queued_rows(), 0);
    }

    #[test]
    fn expired_requests_are_siphoned_without_charging_the_cap() {
        let q = BatchQueue::new();
        let ep = epoch();
        let mut dead = pending(vec![0; 50], Arc::clone(&ep));
        dead.deadline = Some(Instant::now() - Duration::from_millis(1));
        q.push(dead);
        let mut live = pending(vec![1, 2], Arc::clone(&ep));
        live.deadline = Some(Instant::now() + Duration::from_secs(60));
        q.push(live);
        q.push(pending(vec![3], Arc::clone(&ep)));
        // Row cap 4 < the expired request's 50 rows: expired work must
        // not starve the drain.
        let drained = q.next_batch(Duration::ZERO, 4).unwrap();
        assert_eq!(drained.expired.len(), 1);
        assert_eq!(drained.expired[0].nodes.len(), 50);
        assert_eq!(drained.batch.len(), 2, "both live requests fit under the cap");
        assert_eq!(q.queued_rows(), 0);
    }

    #[test]
    fn all_expired_drain_is_valid_progress() {
        let q = BatchQueue::new();
        let ep = epoch();
        for n in 0..2usize {
            let mut p = pending(vec![n], Arc::clone(&ep));
            p.deadline = Some(Instant::now() - Duration::from_millis(1));
            q.push(p);
        }
        let drained = q.next_batch(Duration::ZERO, 8).unwrap();
        assert!(drained.batch.is_empty());
        assert_eq!(drained.expired.len(), 2);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = BatchQueue::new();
        q.push(pending(vec![3], epoch()));
        q.shutdown();
        assert!(q.next_batch(Duration::ZERO, 8).is_some(), "queued work still served");
        assert!(q.next_batch(Duration::ZERO, 8).is_none(), "then the queue reports closed");
        assert!(!q.push(pending(vec![1], epoch())));
    }

    #[test]
    fn epoch_groups_split_by_identity_and_preserve_order() {
        let store = FeatureStore::new(Dense::zeros(1, 1), Dense::zeros(1, 1));
        let old = store.snapshot();
        store.publish(Dense::zeros(1, 1), Dense::zeros(1, 1));
        let new = store.snapshot();
        // Interleaved epochs: old, new, old, new, new.
        let batch = vec![
            pending(vec![0], Arc::clone(&old)),
            pending(vec![1], Arc::clone(&new)),
            pending(vec![2], Arc::clone(&old)),
            pending(vec![3], Arc::clone(&new)),
            pending(vec![4], Arc::clone(&new)),
        ];
        let groups = group_by_epoch(batch);
        assert_eq!(groups.len(), 2, "one kernel-launch group per pinned epoch");
        assert_eq!(groups[0].iter().map(|p| p.nodes[0]).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(groups[1].iter().map(|p| p.nodes[0]).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(groups[0][0].epoch.epoch(), 0);
        assert_eq!(groups[1][0].epoch.epoch(), 1);
    }

    #[test]
    fn quality_tiers_never_share_a_launch_group() {
        let ep = epoch();
        let mut topk = pending(vec![1], Arc::clone(&ep));
        topk.quality = Quality::TopKNeighbors(4);
        let batch =
            vec![pending(vec![0], Arc::clone(&ep)), topk, pending(vec![2], Arc::clone(&ep))];
        let groups = group_by_epoch(batch);
        assert_eq!(groups.len(), 2, "same epoch, different tier → different group");
        assert_eq!(groups[0].iter().map(|p| p.nodes[0]).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(groups[1][0].quality, Quality::TopKNeighbors(4));
    }

    #[test]
    fn single_epoch_batch_is_one_group() {
        let ep = epoch();
        let batch = (0..4).map(|n| pending(vec![n], Arc::clone(&ep))).collect::<Vec<_>>();
        let groups = group_by_epoch(batch);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }
}
