//! Multi-process sharding: the coordinator front end and the worker
//! host, connected by a pluggable [`ShardTransport`].
//!
//! [`ShardedEngine`](crate::ShardedEngine) scatters a request over
//! in-process band engines; this module is the same architecture with
//! the bands pushed across a process boundary:
//!
//! * [`RemoteShardedEngine`] — the coordinator. It owns the
//!   authoritative [`FeatureStore`], pins one epoch per request, and
//!   scatters per-shard pieces through a [`ShardTransport`]. Each
//!   piece resolves through the same [`Ticket`] lazy-gather seam the
//!   in-process front end uses (a remote part is just a slot another
//!   thread fills), so out-of-order completion, typed part failures,
//!   one-shot retries, and deadline expiry all behave identically.
//! * [`WorkerEngine`] — one shard's host. It wraps a band
//!   [`Engine`] plus a *replica* `FeatureStore` kept in
//!   sync by applying the coordinator's ordered epoch log
//!   ([`EpochRecord`]), and serves each request from the exact epoch
//!   the coordinator pinned — so a response is never torn across a
//!   publish even when the publish and the request race over the wire.
//! * [`EpochRecord`] — one entry of the replicated epoch log. Records
//!   carry the coordinator's epoch *numbers*; replicas apply them
//!   as-is (`publish_at` / `delta_update_at`), keeping both sides'
//!   numbering — and therefore per-request pinning — aligned.
//!
//! The transport itself (framing, sockets, reconnects) lives in the
//! `fusedmm-rpc` crate; this module owns everything that needs the
//! serving internals. Responses are bit-identical to the in-process
//! [`ShardedEngine`](crate::ShardedEngine) at every epoch: the same
//! band kernels run on the same pinned matrices, and `f32` rows cross
//! the wire as raw little-endian bits.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use fusedmm_cache::{InflightOwner, MissRoute};
use fusedmm_core::{PartitionStrategy, Plan, PlanCache, PlanTag};
use fusedmm_ops::OpSet;
use fusedmm_perf::gauge::Gauge;
use fusedmm_perf::hist::{HistogramSnapshot, HistogramVec, LatencyHistogram};
use fusedmm_perf::registry::{MetricsRegistry, Sample};
use fusedmm_perf::trace::{SpanCtx, SpanKind, Tracer};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::admit::{Admission, AdmissionPolicy};
use crate::batcher::dedup_union;
use crate::cache::{EmbedCache, FillSet};
use crate::engine::{BandId, Engine, EngineConfig, ServeError};
use crate::fault::FaultPlan;
use crate::observe::push_outcome_samples;
use crate::store::{FeatureEpoch, FeatureStore};
use crate::ticket::{
    Completion, EmbedAssembly, EmbedOptions, EmbedResponse, Part, PartRetry, Quality, RequestStats,
    Ticket, TraceHandle, WaiterSlot,
};
use crate::wait::{slot, PartError, SlotTx};

/// How many recent epochs a worker keeps pinned for in-flight
/// requests. The transport is FIFO per connection, so the record
/// minting epoch `E` always precedes any request pinned at `E`; the
/// history only needs to cover requests still in flight while newer
/// epochs land — 64 generations is far deeper than any real window.
const EPOCH_RETAIN: usize = 64;

/// One entry of the replicated epoch log: what a coordinator ships so
/// a replica's [`FeatureStore`] mints the same epoch numbers from the
/// same matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum EpochRecord {
    /// A whole-matrix [`FeatureStore::publish`] minting `epoch`.
    Publish {
        /// The epoch this record mints.
        epoch: u64,
        /// The full replacement X.
        x: Dense,
        /// The full replacement Y.
        y: Dense,
    },
    /// A [`FeatureStore::delta_update`] minting `epoch` by patching
    /// exactly `rows` (internal row ids, one patch row each).
    Delta {
        /// The epoch this record mints.
        epoch: u64,
        /// Patched internal row ids.
        rows: Vec<usize>,
        /// One replacement X row per entry of `rows`.
        x_rows: Dense,
        /// One replacement Y row per entry of `rows`.
        y_rows: Dense,
    },
    /// A log-compaction artifact: the full state *at* `epoch`. Applying
    /// it jumps a replica directly there (fresh or lagging workers
    /// catch up from the latest snapshot plus the record tail instead
    /// of replaying history from zero).
    Snapshot {
        /// The epoch this snapshot captures.
        epoch: u64,
        /// The full X at `epoch`.
        x: Dense,
        /// The full Y at `epoch`.
        y: Dense,
    },
}

impl EpochRecord {
    /// The epoch this record mints (or, for a snapshot, captures).
    pub fn epoch(&self) -> u64 {
        match self {
            EpochRecord::Publish { epoch, .. }
            | EpochRecord::Delta { epoch, .. }
            | EpochRecord::Snapshot { epoch, .. } => *epoch,
        }
    }
}

/// How a transport resolves one remote embed part.
#[derive(Debug)]
pub enum PartOutcome {
    /// The worker's reply: one row per requested node, in request
    /// order, bit-identical to an in-process band computation.
    Rows(Dense),
    /// The worker reported the piece expired past its deadline.
    Expired,
    /// The worker (or its connection) failed — a panicked launch, an
    /// unavailable epoch, or a severed socket. The front end's
    /// one-shot retry machinery takes over, then types the failure as
    /// `PartFailed`.
    Failed,
}

/// The completion slot a [`ShardTransport`] must resolve for each
/// embed part. Wraps the engine's internal one-shot reply slot so the
/// transport crate can fulfil tickets without seeing serving
/// internals; also closes the part's `rpc` span when the request is
/// being traced.
///
/// Dropping a slot unresolved closes it, which surfaces as
/// [`ServeError::EngineShutdown`] on the ticket — transports should
/// resolve explicitly ([`PartOutcome::Failed`] on connection loss) so
/// failures stay typed and retryable.
pub struct PartSlot {
    tx: Option<SlotTx>,
    trace: Option<RpcSpan>,
}

struct RpcSpan {
    tracer: Arc<Tracer>,
    ctx: SpanCtx,
    start_ns: u64,
    shard: usize,
    rows: u64,
}

impl PartSlot {
    fn new(tx: SlotTx, trace: Option<RpcSpan>) -> PartSlot {
        PartSlot { tx: Some(tx), trace }
    }

    /// Resolve the part. Consumes the slot; exactly one resolution
    /// wins (the engine side ignores late duplicates by construction —
    /// the slot is one-shot).
    pub fn resolve(mut self, outcome: PartOutcome) {
        if let Some(span) = self.trace.take() {
            span.tracer.record(
                span.ctx,
                SpanKind::Rpc,
                span.start_ns,
                span.tracer.now(),
                Some(span.shard),
                span.rows,
            );
        }
        let tx = self.tx.take().expect("a slot resolves once");
        match outcome {
            PartOutcome::Rows(rows) => tx.send(Ok(rows)),
            PartOutcome::Expired => tx.send(Err(PartError::Expired)),
            PartOutcome::Failed => tx.send(Err(PartError::Panicked)),
        }
    }
}

/// What a [`RemoteShardedEngine`] needs from a transport: the shard
/// layout discovered at connect time, per-part request dispatch, and
/// the epoch-log shipping hook. Implemented over framed sockets by
/// `fusedmm-rpc`; tests can implement it in-process.
///
/// Ordering contract: for one shard, every record passed to
/// [`ship`](ShardTransport::ship) must reach the worker before any
/// part dispatched *after* that `ship` returns — the coordinator pins
/// epoch `E` only after shipping the record that mints `E`, and the
/// worker relies on that FIFO to have `E` in its history when the
/// request arrives.
pub trait ShardTransport: Send + Sync {
    /// Number of shards (worker processes) behind this transport.
    fn nshards(&self) -> usize;

    /// The PART1D cut: `boundaries()[s]..boundaries()[s + 1]` is shard
    /// `s`'s global row band; `nshards() + 1` entries, ascending, last
    /// entry = number of vertices.
    fn boundaries(&self) -> Vec<usize>;

    /// Dispatch one embed part to shard `shard` and resolve `slot`
    /// with the outcome (rows, expiry, or failure). Must not block on
    /// the remote computation — the caller holds the request path.
    fn embed_part(
        &self,
        shard: usize,
        nodes: &[usize],
        epoch: u64,
        quality: Quality,
        deadline: Option<Instant>,
        slot: PartSlot,
    );

    /// Score one shard's pairs at the pinned epoch, blocking until the
    /// reply (edge scoring is a synchronous API).
    fn score_part(
        &self,
        shard: usize,
        pairs: &[(usize, usize)],
        epoch: u64,
    ) -> Result<Vec<f32>, ServeError>;

    /// Append `record` to the replicated epoch log and ship it to
    /// every worker (see the trait-level ordering contract).
    fn ship(&self, record: &EpochRecord);

    /// Rows queued toward shard `shard` but not yet dispatched — the
    /// admission policy's backlog signal. Default: unknown (0).
    fn queued_rows(&self, _shard: usize) -> usize {
        0
    }

    /// Stop the transport: close connections, fail pending parts.
    fn shutdown(&self) {}
}

/// The multi-process sharded front end: same request API and same
/// bit-exact responses as [`ShardedEngine`](crate::ShardedEngine),
/// with the band engines living in worker processes behind a
/// [`ShardTransport`].
///
/// The coordinator owns the authoritative [`FeatureStore`]; **all
/// writes must go through [`publish`](RemoteShardedEngine::publish) /
/// [`delta_update`](RemoteShardedEngine::delta_update)** so the epoch
/// record ships to every replica before the local epoch becomes
/// pinnable — writing to the store directly would fork the replicas.
pub struct RemoteShardedEngine {
    transport: Arc<dyn ShardTransport>,
    store: Arc<FeatureStore>,
    boundaries: Vec<usize>,
    /// Serializes `ship → local mint` so records leave in epoch order
    /// and no request can pin an epoch whose record has not shipped.
    write_order: Mutex<()>,
    /// Front-end request latency (begin → response assembled). Remote
    /// parts have no local dispatcher histogram, so unlike the
    /// in-process front end every request records here.
    embed_latency: Arc<LatencyHistogram>,
    inflight: Arc<Gauge>,
    stats: Arc<RequestStats>,
    tracer: Arc<Tracer>,
    admission: AdmissionPolicy,
    stopped: AtomicBool,
    /// Gather progress per shard, front-end view (see
    /// [`ShardedMetrics::fanout`](crate::ShardedMetrics::fanout)).
    fanout: Arc<HistogramVec>,
    started: Instant,
}

impl RemoteShardedEngine {
    /// Build the front end over an already-connected transport,
    /// seeding the replicated log (and every connected worker) with
    /// `x`/`y` as the epoch-0 snapshot.
    ///
    /// # Panics
    /// Panics when the transport's shard layout is inconsistent with
    /// `x`, or when `config` asks for features the remote front end
    /// does not own (a reordering permutation or a front-end cache —
    /// caching is per-replica, on the workers).
    pub fn new(
        x: Dense,
        y: Dense,
        transport: Arc<dyn ShardTransport>,
        config: EngineConfig,
    ) -> RemoteShardedEngine {
        assert!(
            config.reordering.is_none(),
            "reordering is a single-process concern: permute before building the workers"
        );
        assert!(
            config.cache.is_none(),
            "the remote front end runs uncached; workers own per-replica caches"
        );
        assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
        let boundaries = transport.boundaries();
        assert_eq!(boundaries.len(), transport.nshards() + 1, "one band per shard");
        assert!(boundaries.windows(2).all(|w| w[0] <= w[1]), "bands are ascending");
        assert_eq!(*boundaries.last().expect("nonempty cut"), x.nrows(), "bands tile X's rows");
        let store = Arc::new(FeatureStore::new(x, y));
        let tracer = config.tracer.clone().unwrap_or_else(|| Arc::clone(Tracer::global()));
        let admission = config.admission.unwrap_or_else(AdmissionPolicy::from_env);
        let nshards = transport.nshards();
        // Seed the log: epoch 0 is the one generation workers cannot
        // learn from the stream (they boot with placeholder features).
        let base = store.snapshot();
        transport.ship(&EpochRecord::Snapshot {
            epoch: base.epoch(),
            x: base.x().clone(),
            y: base.y().clone(),
        });
        RemoteShardedEngine {
            transport,
            store,
            boundaries,
            write_order: Mutex::new(()),
            embed_latency: Arc::new(LatencyHistogram::new()),
            inflight: Arc::new(Gauge::new()),
            stats: Arc::new(RequestStats::default()),
            tracer,
            admission,
            stopped: AtomicBool::new(false),
            fanout: Arc::new(HistogramVec::new(nshards)),
            started: Instant::now(),
        }
    }

    /// Number of remote shards.
    pub fn nshards(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Number of vertices in the full graph.
    pub fn nvertices(&self) -> usize {
        *self.boundaries.last().expect("partition has boundaries")
    }

    /// The embedding dimension served.
    pub fn dimension(&self) -> usize {
        self.store.d()
    }

    /// The coordinator's authoritative store — **read-only** for
    /// callers (snapshots, epoch numbers). Write through
    /// [`publish`](Self::publish) / [`delta_update`](Self::delta_update)
    /// so the change replicates; a direct store write silently forks
    /// every worker.
    pub fn store(&self) -> &Arc<FeatureStore> {
        &self.store
    }

    /// The PART1D cut behind the transport.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// The shard owning global vertex `u` (which must be in range).
    pub fn owner(&self, u: usize) -> usize {
        debug_assert!(u < self.nvertices());
        self.boundaries.partition_point(|&b| b <= u) - 1
    }

    /// Publish whole replacement matrices as the next epoch,
    /// replicating the record to every worker **before** the local
    /// mint — by the time any request can pin the new epoch, its
    /// record is ordered ahead of that request on every connection.
    /// Returns the new epoch number.
    pub fn publish(&self, x: Dense, y: Dense) -> u64 {
        let _w = self.write_order.lock();
        let epoch = self.store.current_epoch() + 1;
        self.transport.ship(&EpochRecord::Publish { epoch, x: x.clone(), y: y.clone() });
        let minted = self.store.publish(x, y);
        debug_assert_eq!(minted, epoch, "write_order serializes coordinator writes");
        epoch
    }

    /// Patch `rows` of both matrices as the next epoch (see
    /// [`FeatureStore::delta_update`]), replicating the delta record
    /// ahead of the local mint. Returns the new epoch number.
    pub fn delta_update(&self, rows: &[usize], x_rows: &Dense, y_rows: &Dense) -> u64 {
        let _w = self.write_order.lock();
        let epoch = self.store.current_epoch() + 1;
        self.transport.ship(&EpochRecord::Delta {
            epoch,
            rows: rows.to_vec(),
            x_rows: x_rows.clone(),
            y_rows: y_rows.clone(),
        });
        let minted = self.store.delta_update(rows, x_rows, y_rows);
        debug_assert_eq!(minted, epoch, "write_order serializes coordinator writes");
        epoch
    }

    /// Refresh embeddings for `nodes` (any order, duplicates allowed):
    /// one row per requested node, in request order, every row computed
    /// by its owning worker from the same pinned epoch. Blocking form
    /// of [`embed_begin`](Self::embed_begin).
    pub fn embed(&self, nodes: &[usize]) -> Result<Dense, ServeError> {
        self.embed_begin(nodes)?.wait()
    }

    /// Begin an embedding request without blocking: pins one epoch,
    /// dispatches the per-shard pieces over the transport immediately,
    /// and returns a [`Ticket`] whose lazy gather assembles the rows
    /// as reply frames land — out of order across workers is fine.
    pub fn embed_begin(&self, nodes: &[usize]) -> Result<Ticket<Dense>, ServeError> {
        Ok(self.embed_begin_opts(nodes, EmbedOptions::default())?.map(|r| r.rows))
    }

    /// [`embed_begin`](Self::embed_begin) with per-request
    /// [`EmbedOptions`] — deadlines propagate to the workers (expired
    /// pieces are dropped before their kernel launch, and the typed
    /// expiry comes back over the wire), quality tiers ride the
    /// request frames.
    pub fn embed_begin_opts(
        &self,
        nodes: &[usize],
        opts: EmbedOptions,
    ) -> Result<Ticket<EmbedResponse>, ServeError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServeError::EngineShutdown);
        }
        let m = self.nvertices();
        for &node in nodes {
            if node >= m {
                return Err(ServeError::NodeOutOfRange { node, nvertices: m });
            }
        }
        if nodes.is_empty() {
            self.stats.ready();
            return Ok(Ticket::ready(Ok(EmbedResponse {
                rows: Dense::zeros(0, self.dimension()),
                served_degraded: Vec::new(),
                quality: opts.quality,
            })));
        }
        let mut quality = opts.quality;
        let inflight = self.inflight.value();
        let queued_rows = (0..self.nshards()).map(|s| self.transport.queued_rows(s)).sum();
        match self.admission.decide(inflight, queued_rows) {
            Admission::Admit => {}
            Admission::Degrade => {
                // No front-end cache: the only downgrade rung is the
                // truncated-neighborhood tier.
                quality = AdmissionPolicy::downgrade(quality, false);
            }
            Admission::Shed => {
                self.stats.shed();
                return Err(ServeError::Shed { inflight, queued_rows });
            }
        }
        if opts.deadline.is_some_and(|d| d <= Instant::now()) {
            self.stats.begin();
            self.stats.fail();
            return Err(ServeError::DeadlineExpired);
        }
        let t0 = Instant::now();
        let root = self.tracer.sample_root();
        let begin_ns = if root.is_some() { self.tracer.now() } else { 0 };
        let epoch = self.store.snapshot();
        let guard = self.inflight.acquire();
        if quality == Quality::CachedOnly {
            // The remote front end holds no result cache; the tier's
            // contract (never block on a kernel) degrades every row.
            self.stats.ready_degraded();
            self.embed_latency.record(t0.elapsed());
            if let Some(r) = root {
                let now = self.tracer.now();
                self.tracer.record(r, SpanKind::Embed, begin_ns, now, None, nodes.len() as u64);
            }
            return Ok(Ticket::ready(Ok(EmbedResponse {
                rows: Dense::zeros(nodes.len(), self.dimension()),
                served_degraded: vec![true; nodes.len()],
                quality,
            })));
        }
        let out = Dense::zeros(nodes.len(), self.dimension());
        let union = dedup_union([nodes]);
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.nshards()];
        for &u in &union {
            per_shard[self.owner(u)].push(u);
        }
        let mut parts = Vec::new();
        for (s, shard_nodes) in per_shard.into_iter().enumerate() {
            if shard_nodes.is_empty() {
                continue;
            }
            let (tx, rx) = slot();
            let trace = root.map(|r| RpcSpan {
                tracer: Arc::clone(&self.tracer),
                ctx: self.tracer.child(r),
                start_ns: self.tracer.now(),
                shard: s,
                rows: shard_nodes.len() as u64,
            });
            self.transport.embed_part(
                s,
                &shard_nodes,
                epoch.epoch(),
                quality,
                opts.deadline,
                PartSlot::new(tx, trace),
            );
            // The healthy-path retry after a failed part: re-dispatch
            // the same nodes at the same pinned epoch (bit-identical
            // when it lands), through a fresh slot. A live worker
            // serves it from its epoch history; a worker that
            // restarted meanwhile fails it again, and the failure
            // surfaces as the typed `PartFailed`.
            let transport = Arc::clone(&self.transport);
            let epoch_no = epoch.epoch();
            let deadline = opts.deadline;
            let retry: PartRetry = Box::new(move |nodes: &[usize]| {
                let (tx, rx) = slot();
                transport.embed_part(
                    s,
                    nodes,
                    epoch_no,
                    quality,
                    deadline,
                    PartSlot::new(tx, None),
                );
                Ok(rx)
            });
            parts.push(Part::with_retry(shard_nodes, s, Some(s), rx, Some(retry)));
        }
        let positions = (0..nodes.len()).map(|i| (i, nodes[i])).collect();
        self.stats.begin();
        let completion = Completion {
            hist: Some(Arc::clone(&self.embed_latency)),
            stats: Some(Arc::clone(&self.stats)),
            trace: root.map(|r| TraceHandle {
                tracer: Arc::clone(&self.tracer),
                root: r,
                begin_ns,
            }),
        };
        Ok(Ticket::pending(EmbedAssembly::assemble(
            out,
            parts,
            Vec::<WaiterSlot>::new(),
            positions,
            vec![matches!(quality, Quality::TopKNeighbors(_)); nodes.len()],
            quality,
            completion,
            Some(Arc::clone(&self.fanout)),
            guard,
        )))
    }

    /// Score candidate `(u, v)` edges, scattering each pair to the
    /// worker owning its source vertex under one pinned epoch and
    /// gathering scores back in request order.
    pub fn score_edges(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ServeError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServeError::EngineShutdown);
        }
        let m = self.nvertices();
        let n = self.store.y_rows();
        for &(u, v) in pairs {
            if u >= m {
                return Err(ServeError::NodeOutOfRange { node: u, nvertices: m });
            }
            if v >= n {
                return Err(ServeError::NodeOutOfRange { node: v, nvertices: n });
            }
        }
        let epoch = self.store.snapshot();
        type ShardPairs = (Vec<usize>, Vec<(usize, usize)>);
        let mut per_shard: Vec<ShardPairs> = vec![(Vec::new(), Vec::new()); self.nshards()];
        for (i, &pair) in pairs.iter().enumerate() {
            let (idx, sub) = &mut per_shard[self.owner(pair.0)];
            idx.push(i);
            sub.push(pair);
        }
        let mut out = vec![0f32; pairs.len()];
        let pinned = epoch.epoch();
        // Fan out to every owning worker before the first wait: each
        // non-empty shard's round-trip runs on its own thread, so one
        // slow worker overlaps the others instead of serializing them.
        // All calls are joined before the error scan, which walks in
        // shard order — the reported failure is deterministic (lowest
        // failing shard index) regardless of completion order.
        let results: Vec<(usize, Result<Vec<f32>, ServeError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .iter()
                .enumerate()
                .filter(|(_, (_, sub))| !sub.is_empty())
                .map(|(s, (_, sub))| {
                    let transport = &self.transport;
                    scope.spawn(move || (s, transport.score_part(s, sub, pinned)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("score_part fan-out thread panicked"))
                .collect()
        });
        for (s, res) in results {
            let scores = res?;
            let (idx, sub) = &per_shard[s];
            if scores.len() != sub.len() {
                return Err(ServeError::PartFailed { shard: Some(s) });
            }
            for (&i, score) in idx.iter().zip(scores) {
                out[i] = score;
            }
        }
        Ok(out)
    }

    /// Point-in-time front-end metrics.
    pub fn metrics(&self) -> RemoteMetrics {
        let inflight = self.inflight.snapshot();
        RemoteMetrics {
            uptime: self.started.elapsed(),
            embed: self.embed_latency.snapshot(),
            fanout: (0..self.nshards()).map(|s| self.fanout.snapshot(s)).collect(),
            requests_begun: self.stats.begun.load(Ordering::Relaxed),
            requests_harvested: self.stats.harvested.load(Ordering::Relaxed),
            requests_degraded: self.stats.degraded.load(Ordering::Relaxed),
            requests_shed: self.stats.shed.load(Ordering::Relaxed),
            requests_failed: self.stats.failed.load(Ordering::Relaxed),
            requests_abandoned: self.stats.abandoned.load(Ordering::Relaxed),
            inflight: inflight.current,
            inflight_peak: inflight.peak,
            feature_epoch: self.store.current_epoch(),
            epoch_swaps: self.store.swap_count(),
        }
    }

    /// Register the front end's collectors with `registry` (request
    /// reconciliation, in-flight gauges, embed latency, per-shard
    /// fan-out). Transport-level collectors (bytes, frames, RTT,
    /// reconnects, lag) are registered by the transport itself.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let stats = Arc::clone(&self.stats);
        let inflight = Arc::clone(&self.inflight);
        let embed_latency = Arc::clone(&self.embed_latency);
        let fanout = Arc::clone(&self.fanout);
        let store = Arc::clone(&self.store);
        let nshards = self.nshards();
        registry.register(move |out| {
            out.push(Sample::histogram("fusedmm_embed_latency_seconds", embed_latency.snapshot()));
            push_outcome_samples(out, &stats, &[]);
            let snap = inflight.snapshot();
            out.push(Sample::gauge("fusedmm_requests_inflight", snap.current as f64));
            out.push(Sample::gauge("fusedmm_requests_inflight_peak", snap.peak as f64));
            out.push(Sample::gauge("fusedmm_feature_epoch", store.current_epoch() as f64));
            out.push(Sample::counter("fusedmm_epoch_swaps_total", store.swap_count()));
            for s in 0..nshards {
                out.push(
                    Sample::histogram("fusedmm_fanout_gather_seconds", fanout.snapshot(s))
                        .label("shard", s.to_string()),
                );
            }
        });
    }

    /// Stop the front end: reject new requests and shut the transport
    /// down (pending parts resolve with typed failures, not hangs).
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.stopped.store(true, Ordering::Release);
        self.transport.shutdown();
    }
}

impl Drop for RemoteShardedEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Front-end statistics reported by [`RemoteShardedEngine::metrics`].
#[derive(Debug, Clone)]
pub struct RemoteMetrics {
    /// Time since the front end was constructed.
    pub uptime: std::time::Duration,
    /// Request latency, begin → response assembled (every request —
    /// remote parts have no local dispatcher histogram).
    pub embed: HistogramSnapshot,
    /// Gather progress per shard, front-end view.
    pub fanout: Vec<HistogramSnapshot>,
    /// Requests admitted.
    pub requests_begun: u64,
    /// Requests assembled at full fidelity.
    pub requests_harvested: u64,
    /// Requests answered degraded.
    pub requests_degraded: u64,
    /// Requests rejected by admission.
    pub requests_shed: u64,
    /// Requests resolved with a typed error.
    pub requests_failed: u64,
    /// Tickets dropped unresolved. `begun == harvested + degraded +
    /// shed + failed + abandoned` once every ticket has resolved.
    pub requests_abandoned: u64,
    /// Requests currently open.
    pub inflight: u64,
    /// Deepest in-flight window ever held.
    pub inflight_peak: u64,
    /// The feature epoch currently served.
    pub feature_epoch: u64,
    /// Completed feature-store swaps.
    pub epoch_swaps: u64,
}

impl std::fmt::Display for RemoteMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} remote shards, epoch {} ({} swaps), requests {} begun / {} harvested / \
             {} degraded / {} shed / {} failed / {} abandoned, in-flight {} (peak {}), embed: {}",
            self.fanout.len(),
            self.feature_epoch,
            self.epoch_swaps,
            self.requests_begun,
            self.requests_harvested,
            self.requests_degraded,
            self.requests_shed,
            self.requests_failed,
            self.requests_abandoned,
            self.inflight,
            self.inflight_peak,
            self.embed
        )
    }
}

/// A typed failure from one worker-side part computation — what the
/// worker reports back over the wire (the transport maps it onto
/// [`PartOutcome`] at the coordinator).
#[derive(Debug)]
pub enum WorkerError {
    /// The request pinned an epoch this replica no longer (or does not
    /// yet) hold — e.g. it restarted and caught up past it.
    EpochUnavailable {
        /// The epoch the request pinned.
        epoch: u64,
        /// The replica's current epoch.
        current: u64,
    },
    /// The band engine failed the piece (deadline expiry, a panicked
    /// launch past its retry, shutdown, a range error).
    Serve(ServeError),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::EpochUnavailable { epoch, current } => {
                write!(f, "epoch {epoch} not in replica history (current {current})")
            }
            WorkerError::Serve(e) => write!(f, "{e}"),
        }
    }
}

/// One shard's host inside a worker process: a band
/// [`Engine`] over the shard's rows, a replica
/// [`FeatureStore`] fed by the coordinator's epoch log, a pinned-epoch
/// history so requests resolve at exactly the epoch the coordinator
/// pinned, and (optionally) a per-replica [`EmbedCache`] whose
/// invalidations ride the same stream through the standard
/// [`EpochListener`](crate::EpochListener) subscription —
/// `on_delta`-precise, identically to the in-process front end.
pub struct WorkerEngine {
    engine: Engine,
    store: Arc<FeatureStore>,
    /// Per-replica result cache, keyed by global node id over the full
    /// adjacency (only this band's rows are ever probed or filled, but
    /// global keying keeps ids and reverse-adjacency touch sets
    /// identical to the in-process shared cache).
    cache: Option<Arc<EmbedCache>>,
    /// Recent epochs by number. FIFO framing guarantees the record
    /// minting `E` precedes any request pinned at `E`, so a lookup
    /// miss means the epoch was evicted (or this replica restarted) —
    /// a typed, retryable failure.
    epochs: Mutex<std::collections::BTreeMap<u64, Arc<FeatureEpoch>>>,
    /// False until the first applied record: a fresh replica's
    /// features are boot placeholders, so the coordinator must start
    /// it from a snapshot no matter what epoch number it reports.
    replicated: AtomicBool,
    band: Range<usize>,
    shard: usize,
    inflight: Arc<Gauge>,
    fault: Option<Arc<FaultPlan>>,
}

impl WorkerEngine {
    /// Host shard `shard` of `a` (rows `band`), with `x0`/`y0` as boot
    /// placeholder features (replaced by the coordinator's snapshot
    /// before any request arrives — the Hello handshake reports this
    /// replica as fresh). `config.cache` enables the per-replica
    /// result cache; `config.fault` / `FUSEDMM_FAULT_PLAN` inject
    /// worker-side kernel chaos exactly as in-process.
    ///
    /// # Panics
    /// Panics on shape mismatches or an out-of-range band.
    pub fn new(
        a: &Csr,
        band: Range<usize>,
        shard: usize,
        x0: Dense,
        y0: Dense,
        ops: OpSet,
        config: EngineConfig,
    ) -> WorkerEngine {
        assert!(band.start <= band.end && band.end <= a.nrows(), "band within the graph");
        assert_eq!(x0.nrows(), a.nrows(), "X must have one row per vertex");
        assert_eq!(y0.nrows(), a.ncols(), "Y must have one row per vertex");
        let store = Arc::new(FeatureStore::new(x0, y0));
        let d = store.d();
        let cache = config.cache.map(|cache_cfg| {
            let cache = Arc::new(EmbedCache::new(a, d, cache_cfg));
            store.subscribe(Arc::clone(&cache) as _);
            cache
        });
        let tracer = config.tracer.clone().unwrap_or_else(|| Arc::clone(Tracer::global()));
        let fault_cfg = config
            .fault
            .clone()
            .or_else(FaultPlan::from_env)
            .unwrap_or_else(|| Arc::new(FaultPlan::disabled()));
        let plan = match config.blocking {
            Some(b) => Plan::with_blocking(&ops, d, b, PartitionStrategy::NnzBalanced),
            None => PlanCache::new().plan_tagged(&ops, d, PlanTag::for_shard(shard as u64)),
        };
        let band_config = EngineConfig {
            cache: None,
            tracer: Some(tracer),
            admission: Some(AdmissionPolicy::unlimited()),
            fault: Some(Arc::clone(&fault_cfg)),
            reordering: None,
            ..config
        };
        let engine = Engine::for_band(
            a.row_band(band.clone()),
            BandId { start: band.start, shard: Some(shard) },
            Arc::clone(&store),
            None,
            ops,
            plan,
            band_config,
            None,
        );
        let mut epochs = std::collections::BTreeMap::new();
        epochs.insert(store.current_epoch(), store.snapshot());
        WorkerEngine {
            engine,
            store,
            cache,
            epochs: Mutex::new(epochs),
            replicated: AtomicBool::new(false),
            band,
            shard,
            inflight: Arc::new(Gauge::new()),
            fault: Some(fault_cfg).filter(|f| f.is_active()),
        }
    }

    /// This replica's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The global row band this replica owns.
    pub fn band(&self) -> Range<usize> {
        self.band.clone()
    }

    /// Rows of the (global) Y column space.
    pub fn y_rows(&self) -> usize {
        self.store.y_rows()
    }

    /// The embedding dimension served.
    pub fn dimension(&self) -> usize {
        self.store.d()
    }

    /// The replica's current epoch.
    pub fn current_epoch(&self) -> u64 {
        self.store.current_epoch()
    }

    /// True until the first epoch record is applied: a fresh replica
    /// holds boot placeholders and must be started from a snapshot.
    pub fn is_fresh(&self) -> bool {
        !self.replicated.load(Ordering::Acquire)
    }

    /// Apply one record of the coordinator's epoch log, in log order.
    /// Listeners on the replica store (the per-replica cache) see the
    /// same publish/delta distinction — and the same touch sets — as
    /// in-process subscribers. Returns the replica's new epoch.
    ///
    /// # Panics
    /// Panics on a log gap or regression — a replica that detects
    /// stream corruption must not keep serving silently-forked
    /// features.
    pub fn apply(&self, record: EpochRecord) -> u64 {
        let epoch = record.epoch();
        match record {
            EpochRecord::Publish { x, y, .. } | EpochRecord::Snapshot { x, y, .. } => {
                self.store.publish_at(epoch, x, y);
            }
            EpochRecord::Delta { rows, x_rows, y_rows, .. } => {
                self.store.delta_update_at(epoch, &rows, &x_rows, &y_rows);
            }
        }
        let mut epochs = self.epochs.lock();
        epochs.insert(epoch, self.store.snapshot());
        while epochs.len() > EPOCH_RETAIN {
            let oldest = *epochs.keys().next().expect("nonempty history");
            epochs.remove(&oldest);
        }
        drop(epochs);
        self.replicated.store(true, Ordering::Release);
        epoch
    }

    /// Look up the pinned snapshot for `epoch`.
    fn pinned(&self, epoch: u64) -> Result<Arc<FeatureEpoch>, WorkerError> {
        self.epochs
            .lock()
            .get(&epoch)
            .cloned()
            .ok_or(WorkerError::EpochUnavailable { epoch, current: self.store.current_epoch() })
    }

    /// Serve one embed part at the exact epoch the coordinator pinned:
    /// probe the per-replica cache (Exact tier), fan the misses into
    /// the band engine's batcher with cache back-fill, and assemble —
    /// the same machinery as the in-process front end, one shard wide.
    /// `nodes` are global ids within this replica's band, sorted and
    /// deduplicated by the coordinator (duplicates are tolerated).
    pub fn embed_part(
        &self,
        nodes: &[usize],
        epoch: u64,
        quality: Quality,
        deadline: Option<Instant>,
    ) -> Result<EmbedResponse, WorkerError> {
        let pinned = self.pinned(epoch)?;
        let (lo, hi) = (self.band.start, self.band.end);
        for &node in nodes {
            if node < lo || node >= hi {
                return Err(WorkerError::Serve(ServeError::NodeOutOfRange { node, nvertices: hi }));
            }
        }
        if nodes.is_empty() {
            return Ok(EmbedResponse {
                rows: Dense::zeros(0, self.dimension()),
                served_degraded: Vec::new(),
                quality,
            });
        }
        if deadline.is_some_and(|d| d <= Instant::now()) {
            return Err(WorkerError::Serve(ServeError::DeadlineExpired));
        }
        let mut out = Dense::zeros(nodes.len(), self.dimension());
        // The truncated tier bypasses the cache (truncated rows must
        // never be cached); `CachedOnly` is resolved at the
        // coordinator and never crosses the wire.
        let (to_compute, positions, waiters, owners) = match &self.cache {
            Some(cache) if quality == Quality::Exact => {
                let (misses, positions) = cache.split(nodes, pinned.epoch(), &mut out);
                if misses.is_empty() {
                    return Ok(EmbedResponse {
                        rows: out,
                        served_degraded: vec![false; nodes.len()],
                        quality,
                    });
                }
                let mut owned = Vec::new();
                let mut owners = Vec::new();
                let mut waiters = Vec::new();
                for &u in &misses {
                    match cache.route_miss(u, pinned.epoch()) {
                        MissRoute::Owner(owner) => {
                            owned.push(u);
                            owners.push(owner);
                        }
                        MissRoute::Waiter(waiter) => waiters.push(WaiterSlot::new(u, waiter)),
                        MissRoute::Resident(row) => waiters.push(WaiterSlot::resolved(u, row)),
                    }
                }
                (owned, positions, waiters, owners)
            }
            _ => {
                let union = dedup_union([nodes]);
                (union, (0..nodes.len()).collect(), Vec::new(), Vec::<InflightOwner>::new())
            }
        };
        let mut parts = Vec::new();
        if !to_compute.is_empty() {
            let fills = match (&self.cache, quality) {
                (Some(cache), Quality::Exact) => {
                    Some(FillSet::new(Arc::clone(cache), owners, self.fault.clone()))
                }
                _ => None,
            };
            let rx = self
                .engine
                .enqueue_pinned(&to_compute, Arc::clone(&pinned), fills, None, quality, deadline)
                .map_err(WorkerError::Serve)?;
            let retry = self.engine.retry_handle(Arc::clone(&pinned), quality, deadline);
            parts.push(Part::with_retry(to_compute, 0, Some(self.shard), rx, Some(retry)));
        }
        let positions = positions.into_iter().map(|i| (i, nodes[i])).collect();
        let guard = self.inflight.acquire();
        let assembly = EmbedAssembly::assemble(
            out,
            parts,
            waiters,
            positions,
            vec![false; nodes.len()],
            quality,
            Completion::default(),
            None,
            guard,
        );
        Ticket::pending(assembly).wait().map_err(WorkerError::Serve)
    }

    /// Score one part's pairs at the pinned epoch (sources within this
    /// band, targets global).
    pub fn score_part(
        &self,
        pairs: &[(usize, usize)],
        epoch: u64,
    ) -> Result<Vec<f32>, WorkerError> {
        let pinned = self.pinned(epoch)?;
        self.engine.score_edges_pinned(pairs, &pinned).map_err(WorkerError::Serve)
    }

    /// Register this replica's band engine (and cache) with
    /// `registry`, labeled `shard="<i>"`.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let tag = self.shard.to_string();
        self.engine.register_metrics(registry, &[("shard", &tag)]);
        if let Some(cache) = &self.cache {
            let cache = Arc::clone(cache);
            let labels = vec![("shard".to_string(), tag)];
            registry.register(move |out| {
                crate::observe::push_cache_samples(out, &cache.metrics(), &labels);
            });
        }
    }

    /// Rows queued (undispatched) in this replica's band engine.
    pub fn queued_rows(&self) -> usize {
        self.engine.queued_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_core::{fusedmm_reference, Blocking};
    use fusedmm_sparse::coo::{Coo, Dedup};
    use std::time::Duration;

    fn graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            let deg = if u % 7 == 0 { 9 } else { 2 };
            for k in 1..=deg {
                c.push(u, (u * 3 + k * 5 + 1) % n, 0.3 + k as f32 * 0.2);
            }
        }
        c.to_csr(Dedup::Sum)
    }

    fn config() -> EngineConfig {
        EngineConfig {
            coalesce_window: Duration::ZERO,
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        }
    }

    /// An in-process transport: worker engines behind the trait, no
    /// sockets — isolates the RemoteShardedEngine logic from framing.
    struct LocalTransport {
        workers: Vec<Arc<WorkerEngine>>,
        boundaries: Vec<usize>,
    }

    impl LocalTransport {
        fn new(a: &Csr, nshards: usize, d: usize, cache: bool) -> LocalTransport {
            let part = fusedmm_core::Partition::part1d(a, nshards, PartitionStrategy::NnzBalanced);
            let workers = (0..part.len())
                .map(|s| {
                    let cfg =
                        EngineConfig { cache: cache.then(crate::CacheConfig::default), ..config() };
                    Arc::new(WorkerEngine::new(
                        a,
                        part.rows(s),
                        s,
                        Dense::zeros(a.nrows(), d),
                        Dense::zeros(a.ncols(), d),
                        OpSet::sigmoid_embedding(None),
                        cfg,
                    ))
                })
                .collect();
            LocalTransport { workers, boundaries: part.boundaries().to_vec() }
        }
    }

    impl ShardTransport for LocalTransport {
        fn nshards(&self) -> usize {
            self.workers.len()
        }

        fn boundaries(&self) -> Vec<usize> {
            self.boundaries.clone()
        }

        fn embed_part(
            &self,
            shard: usize,
            nodes: &[usize],
            epoch: u64,
            quality: Quality,
            deadline: Option<Instant>,
            slot: PartSlot,
        ) {
            let worker = Arc::clone(&self.workers[shard]);
            let nodes = nodes.to_vec();
            std::thread::spawn(move || match worker.embed_part(&nodes, epoch, quality, deadline) {
                Ok(resp) => slot.resolve(PartOutcome::Rows(resp.rows)),
                Err(WorkerError::Serve(ServeError::DeadlineExpired)) => {
                    slot.resolve(PartOutcome::Expired)
                }
                Err(_) => slot.resolve(PartOutcome::Failed),
            });
        }

        fn score_part(
            &self,
            shard: usize,
            pairs: &[(usize, usize)],
            epoch: u64,
        ) -> Result<Vec<f32>, ServeError> {
            self.workers[shard]
                .score_part(pairs, epoch)
                .map_err(|_| ServeError::PartFailed { shard: Some(shard) })
        }

        fn ship(&self, record: &EpochRecord) {
            for w in &self.workers {
                w.apply(record.clone());
            }
        }
    }

    #[test]
    fn remote_front_end_matches_in_process_across_publishes_and_deltas() {
        let n = 80;
        let d = 12;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r * 3 + k) as f32 * 0.05).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r + k * 2) as f32 * 0.04).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let local = crate::ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops, 3, config());
        let transport = Arc::new(LocalTransport::new(&a, 3, d, true));
        let remote = RemoteShardedEngine::new(x.clone(), y.clone(), transport, config());
        assert_eq!(remote.boundaries(), local.boundaries(), "same PART1D cut");

        let windows: Vec<Vec<usize>> =
            vec![vec![79, 0, 40, 79, 13, 41, 7], vec![5, 64, 5], (0..n).collect()];
        for w in &windows {
            assert_eq!(remote.embed(w).unwrap(), local.embed(w).unwrap(), "epoch 0");
        }
        // A delta update: both sides mint epoch 1 from the same patch.
        let rows = vec![0usize, 13, 79];
        let px = Dense::from_fn(rows.len(), d, |r, k| (r * 7 + k) as f32 * 0.01);
        let py = Dense::from_fn(rows.len(), d, |r, k| (r + k * 3) as f32 * 0.02);
        assert_eq!(remote.delta_update(&rows, &px, &py), 1);
        assert_eq!(local.store().delta_update(&rows, &px, &py), 1);
        for w in &windows {
            assert_eq!(remote.embed(w).unwrap(), local.embed(w).unwrap(), "epoch 1");
        }
        // A whole publish: epoch 2.
        let x2 = Dense::from_fn(n, d, |r, k| ((r + k) as f32 * 0.03).cos());
        let y2 = Dense::from_fn(n, d, |r, k| ((r * 2 + k) as f32 * 0.05).sin());
        assert_eq!(remote.publish(x2.clone(), y2.clone()), 2);
        assert_eq!(local.store().publish(x2.clone(), y2.clone()), 2);
        for w in &windows {
            assert_eq!(remote.embed(w).unwrap(), local.embed(w).unwrap(), "epoch 2");
        }
        // Reference check so the whole chain is anchored to the paper
        // kernel, not just to itself (approximate: the blocked kernel
        // sums in a different order than the naive reference).
        let reference = fusedmm_reference(&a, &x2, &y2, &OpSet::sigmoid_embedding(None));
        let z = remote.embed(&[3, 17, 42]).unwrap();
        for (i, &u) in [3usize, 17, 42].iter().enumerate() {
            for (got, want) in z.row(i).iter().zip(reference.row(u)) {
                assert!((got - want).abs() <= 1e-5, "row {u}: {got} vs {want}");
            }
        }
        let m = remote.metrics();
        assert_eq!(
            m.requests_begun,
            m.requests_harvested + m.requests_degraded + m.requests_failed + m.requests_abandoned
        );
    }

    #[test]
    fn remote_scores_match_in_process() {
        let n = 60;
        let d = 8;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r + k) as f32 * 0.07).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r * 2 + k) as f32 * 0.03).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let local = crate::ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops, 2, config());
        let transport = Arc::new(LocalTransport::new(&a, 2, d, false));
        let remote = RemoteShardedEngine::new(x, y, transport, config());
        let pairs = [(0usize, 5usize), (59, 0), (30, 30), (7, 41)];
        assert_eq!(remote.score_edges(&pairs).unwrap(), local.score_edges(&pairs).unwrap());
    }

    #[test]
    fn score_edges_fans_out_to_all_shards_before_waiting() {
        use std::sync::{Condvar, Mutex};

        /// Wraps the in-process transport with an entry latch: every
        /// `score_part` call blocks until all `expected` shards' calls
        /// are in flight at once. The sequential resolution this guards
        /// against waits on shard 0's reply before issuing shard 1's
        /// call, so the latch can never fill — the timeout then turns
        /// that regression into a typed failure rather than a hang
        /// (and blocked threads cost nothing, so this holds on one
        /// core too).
        struct LatchTransport {
            inner: LocalTransport,
            entered: Mutex<usize>,
            all_in: Condvar,
            expected: usize,
        }

        impl ShardTransport for LatchTransport {
            fn nshards(&self) -> usize {
                self.inner.nshards()
            }

            fn boundaries(&self) -> Vec<usize> {
                self.inner.boundaries()
            }

            fn embed_part(
                &self,
                shard: usize,
                nodes: &[usize],
                epoch: u64,
                quality: Quality,
                deadline: Option<Instant>,
                slot: PartSlot,
            ) {
                self.inner.embed_part(shard, nodes, epoch, quality, deadline, slot);
            }

            fn score_part(
                &self,
                shard: usize,
                pairs: &[(usize, usize)],
                epoch: u64,
            ) -> Result<Vec<f32>, ServeError> {
                let mut n = self.entered.lock().unwrap();
                *n += 1;
                self.all_in.notify_all();
                while *n < self.expected {
                    let (guard, timeout) =
                        self.all_in.wait_timeout(n, Duration::from_secs(10)).unwrap();
                    n = guard;
                    if timeout.timed_out() && *n < self.expected {
                        return Err(ServeError::PartFailed { shard: Some(shard) });
                    }
                }
                drop(n);
                self.inner.score_part(shard, pairs, epoch)
            }

            fn ship(&self, record: &EpochRecord) {
                self.inner.ship(record);
            }
        }

        let n = 60;
        let d = 8;
        let nshards = 3;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r + k) as f32 * 0.07).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r * 2 + k) as f32 * 0.03).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let local =
            crate::ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops, nshards, config());
        let transport = Arc::new(LatchTransport {
            inner: LocalTransport::new(&a, nshards, d, false),
            entered: Mutex::new(0),
            all_in: Condvar::new(),
            expected: nshards,
        });
        let remote = RemoteShardedEngine::new(x, y, transport, config());
        // Sources span 0..n, so every shard's band owns at least one
        // pair and all three latch slots must fill.
        let pairs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u * 7 + 3) % n)).collect();
        assert_eq!(remote.score_edges(&pairs).unwrap(), local.score_edges(&pairs).unwrap());
    }

    #[test]
    fn stale_epoch_past_history_is_a_typed_failure() {
        let n = 24;
        let d = 4;
        let a = graph(n);
        let worker = WorkerEngine::new(
            &a,
            0..n,
            0,
            Dense::zeros(n, d),
            Dense::zeros(n, d),
            OpSet::gcn(),
            config(),
        );
        worker.apply(EpochRecord::Snapshot {
            epoch: 0,
            x: Dense::filled(n, d, 0.5),
            y: Dense::filled(n, d, 0.5),
        });
        // Push the history far past retention.
        for e in 1..=(EPOCH_RETAIN as u64 + 4) {
            worker.apply(EpochRecord::Delta {
                epoch: e,
                rows: vec![0],
                x_rows: Dense::filled(1, d, e as f32),
                y_rows: Dense::filled(1, d, e as f32),
            });
        }
        match worker.embed_part(&[1], 0, Quality::Exact, None) {
            Err(WorkerError::EpochUnavailable { epoch: 0, .. }) => {}
            other => panic!("expected EpochUnavailable, got {other:?}"),
        }
        // The newest epochs are all servable.
        assert!(worker.embed_part(&[1], worker.current_epoch(), Quality::Exact, None).is_ok());
    }
}
