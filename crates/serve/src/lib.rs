//! `fusedmm-serve` — a batched embedding/inference serving engine on
//! top of the FusedMM kernel.
//!
//! The kernel crates answer one-shot, whole-graph calls. Serving
//! traffic looks different: many concurrent callers each asking for a
//! few vertices ("refresh the embeddings of these 64 users", "score
//! these 200 candidate edges"), with latency percentiles — not batch
//! wall-clock — as the figure of merit. This crate provides that layer:
//!
//! * [`Engine`] — loads a graph and feature matrices once, prepares a
//!   reusable kernel [`Plan`](fusedmm_core::Plan) (the autotuner's
//!   per-call choice lifted to load time), and serves three request
//!   kinds:
//!   * [`Engine::infer_full`] — whole-graph inference (the classic
//!     FusedMM call, now plan-driven);
//!   * [`Engine::embed`] — per-node embedding refresh for an arbitrary
//!     node subset, executed through the micro-batcher and the
//!     row-subset kernel [`fusedmm_rows`](fusedmm_core::fusedmm_rows);
//!   * [`Engine::score_edges`] — SDDMM-only scoring of candidate
//!     `(u, v)` pairs, no aggregation and no edge-sized intermediate.
//! * micro-batching ([`batcher`]) — concurrent callers enqueue node
//!   subsets; a dispatcher thread coalesces them into one deduplicated
//!   row batch per tick, runs it on the rayon pool, and scatters the
//!   rows back to each caller;
//! * live feature updates ([`store`]) — engines borrow `X`/`Y` through
//!   an epoch-versioned [`FeatureStore`]: readers pin RCU-style
//!   snapshots, writers [`publish`](FeatureStore::publish) or
//!   [`delta_update`](FeatureStore::delta_update) refreshed embeddings
//!   without stopping traffic, and every batch is computed from exactly
//!   one epoch (responses are never torn across a swap);
//! * sharding ([`shard`]) — [`ShardedEngine`] cuts the graph into
//!   PART1D nnz-balanced row bands, runs one band engine (worker +
//!   plan) per shard against the shared store, and scatters/gathers
//!   requests in request order — bit-identical to a single engine, and
//!   the step toward multi-machine serving;
//! * graph reordering ([`EngineConfig::reordering`]) — engines can
//!   renumber a skewed graph at load time ([`Reordering::DegreeSort`] /
//!   [`Reordering::RcmBfs`]) for locality and band balance, translating
//!   ids at the serving boundary so external vertex ids never change
//!   and every response stays bit-identical to unreordered serving;
//! * result caching ([`cache`]) — with [`EngineConfig::cache`] set,
//!   hot rows are served from an epoch-aware
//!   [`ResultCache`](fusedmm_cache::ResultCache): a
//!   [`publish`](FeatureStore::publish) invalidates everything lazily
//!   by epoch stamp, while a
//!   [`delta_update`](FeatureStore::delta_update) retires only the
//!   patched rows and their in-neighbors (the kernel's exact per-row
//!   dependency set), so training-style patches keep the hot set warm
//!   — responses stay bit-identical to an uncached engine;
//! * non-blocking serving ([`ticket`]) — [`Engine::embed_begin`] /
//!   [`ShardedEngine::embed_begin`] return a [`Ticket`] instead of
//!   blocking, so one thread can hold thousands of in-flight requests
//!   and harvest completions with `poll`/`wait`/`wait_deadline` (shard
//!   tickets gather lazily on first poll); concurrent requests that
//!   miss the cache on the same vertex **coalesce** — exactly one
//!   enqueue computes the row and every waiter is back-filled,
//!   bit-identical to uncached serving and invalidation-safe;
//! * latency accounting — every request records into
//!   [`LatencyHistogram`](fusedmm_perf::LatencyHistogram)s, surfaced
//!   as p50/p90/p99 and throughput by [`Engine::metrics`] (per-shard
//!   and merged via [`ShardedEngine::metrics`]);
//! * observability ([`observe`]) — engines register every counter,
//!   gauge, and histogram with a
//!   [`MetricsRegistry`]
//!   ([`Engine::register_metrics`] /
//!   [`ShardedEngine::register_metrics`], plus
//!   [`register_kernel_profiles`] for the dispatcher's per-shape
//!   kernel accounting), exported as Prometheus text or JSON; sampled
//!   requests additionally record a full lifecycle span tree (enqueue
//!   → batch → kernel → cache fill → harvest) into a lock-free
//!   [`Tracer`] (`FUSEDMM_TRACE=<rate>`),
//!   dumpable as chrome://tracing JSON;
//! * admission control ([`admit`]) — an [`AdmissionPolicy`] caps
//!   in-flight requests and queued rows (`FUSEDMM_ADMIT_INFLIGHT` /
//!   `FUSEDMM_ADMIT_ROWS`): a load-shedding ladder first downgrades
//!   `Exact` requests to `CachedOnly` near the cap, then rejects with a
//!   typed [`ServeError::Shed`] at the cap — the queue never grows
//!   unboundedly;
//! * deadlines and degraded tiers ([`ticket`]) — requests carry an
//!   optional deadline and a [`Quality`] knob
//!   ([`Engine::embed_begin_opts`]): expired work is dropped before the
//!   kernel launch ([`ServeError::DeadlineExpired`]),
//!   [`Quality::CachedOnly`] answers straight from the result cache
//!   with per-row `served_degraded` marks, and
//!   [`Quality::TopKNeighbors`] aggregates only each node's strongest
//!   neighbors (degree-truncated kernel, measured error vs exact);
//! * fault isolation ([`fault`]) — a band-engine panic is caught at the
//!   dispatch boundary and surfaces as a typed per-part error: the
//!   failed part retries **once** on a healthy path (same pinned epoch,
//!   so an Exact retry stays bit-identical) before the ticket resolves
//!   [`ServeError::PartFailed`]; a [`FaultPlan`]
//!   (`FUSEDMM_FAULT_PLAN=panic_every=N,delay_fill_us=U,poison_segment=S`)
//!   injects panics, fill delays, and poisoned cache segments for chaos
//!   testing — every request provably ends harvested, degraded, shed,
//!   failed, or abandoned, and the request counters reconcile exactly;
//! * window harvesting ([`wait`]) — [`wait_any`] parks a caller on a
//!   whole window of tickets with O(1) wakeup work per completion (a
//!   shared wakeup queue, no poll loop).
//!
//! # Quickstart
//!
//! ```
//! use fusedmm_ops::OpSet;
//! use fusedmm_serve::{Engine, EngineConfig};
//! use fusedmm_sparse::{coo::Dedup, Coo, Dense};
//!
//! let mut coo = Coo::new(4, 4);
//! for u in 0..4usize {
//!     coo.push(u, (u + 1) % 4, 1.0);
//! }
//! let a = coo.to_csr(Dedup::Sum);
//! let feats = Dense::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 0.01);
//!
//! let engine = Engine::new(
//!     a,
//!     feats.clone(),
//!     feats,
//!     OpSet::sigmoid_embedding(None),
//!     EngineConfig::default(),
//! );
//! let z = engine.embed(&[2, 0]).unwrap();
//! assert_eq!((z.nrows(), z.ncols()), (2, 8));
//! let scores = engine.score_edges(&[(0, 1), (3, 2)]).unwrap();
//! assert_eq!(scores.len(), 2);
//! ```

pub mod admit;
pub mod batcher;
pub mod cache;
pub mod engine;
pub mod fault;
pub mod observe;
pub mod remote;
pub mod score;
pub mod shard;
pub mod store;
pub mod ticket;
pub mod wait;

pub use admit::AdmissionPolicy;
pub use cache::EmbedCache;
pub use fault::{quiet_injected_panics, FaultPlan, InjectedFault};
pub use observe::register_kernel_profiles;
// The graph crate's reordering strategies are part of this crate's
// public surface (EngineConfig::reordering).
pub use fusedmm_graph::Reordering;
// The cache crate's config/metrics are part of this crate's public
// surface (EngineConfig::cache, EngineMetrics::cache).
pub use fusedmm_cache::{CacheConfig, CacheMetrics};
// The perf crate's telemetry types are part of this crate's public
// surface (register_metrics, EngineConfig::tracer).
pub use fusedmm_perf::registry::{MetricsRegistry, MetricsSnapshot, Sample};
pub use fusedmm_perf::trace::Tracer;

pub use engine::{Engine, EngineConfig, EngineMetrics, ServeError};
pub use remote::{
    EpochRecord, PartOutcome, PartSlot, RemoteMetrics, RemoteShardedEngine, ShardTransport,
    WorkerEngine, WorkerError,
};
pub use score::{score_edges, score_edges_banded};
pub use shard::{ShardedEngine, ShardedMetrics};
pub use store::{EpochListener, FeatureEpoch, FeatureStore};
pub use ticket::{EmbedOptions, EmbedResponse, Quality, Ticket};
pub use wait::wait_any;
