//! Engine-level PART1D sharding: one graph, several band engines.
//!
//! The paper's PART1D scheme cuts the rows of `A` into nnz-balanced
//! contiguous bands that threads process with zero synchronization —
//! threads share read access to `Y` but write disjoint row bands of
//! `Z`. The same property makes a band the right unit of *engine*
//! sharding, the step toward multi-machine serving: each shard owns a
//! [`Csr::row_band`](fusedmm_sparse::csr::Csr::row_band) (local rows,
//! global columns), runs its own worker + plan, and needs nothing from
//! its siblings beyond the shared (global) [`FeatureStore`].
//!
//! [`ShardedEngine`] is the front end: it validates requests globally,
//! pins **one** feature epoch per request, scatters the per-shard
//! pieces to the owning band engines, and gathers results back in
//! request order with the same `dedup_union`/`scatter_rows` machinery
//! the micro-batcher uses. Because bands are contiguous and ordered,
//! the concatenation of per-shard sorted unions is globally sorted —
//! the gather is a binary search away. Results are bit-identical to a
//! single unsharded [`Engine`] on the same graph: every output row is
//! computed independently, from the same row slice, in the same
//! column order, under the same blocking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fusedmm_cache::{CacheMetrics, InflightOwner, MissRoute};
use fusedmm_core::{Partition, PartitionStrategy, Plan, PlanCache, PlanTag};
use fusedmm_ops::OpSet;
use fusedmm_perf::gauge::Gauge;
use fusedmm_perf::hist::{HistogramSnapshot, HistogramVec, LatencyHistogram};
use fusedmm_perf::registry::{MetricsRegistry, Sample};
use fusedmm_perf::trace::{SpanCtx, SpanKind, Tracer};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;
use fusedmm_sparse::Permutation;

use crate::admit::{Admission, AdmissionPolicy};
use crate::batcher::dedup_union;
use crate::cache::{EmbedCache, FillSet};
use crate::engine::{BandId, Engine, EngineConfig, EngineMetrics, ServeError};
use crate::fault::FaultPlan;
use crate::observe::{push_cache_samples, push_outcome_samples};
use crate::store::{FeatureEpoch, FeatureStore};
use crate::ticket::{
    Completion, EmbedAssembly, EmbedOptions, EmbedResponse, Part, Quality, RequestStats, Ticket,
    TraceHandle, WaiterSlot,
};

/// A graph served by several PART1D band engines behind one front end.
/// Shares the request API with [`Engine`] (`embed` / `score_edges` /
/// `infer_full`), adding per-shard observability.
pub struct ShardedEngine {
    store: Arc<FeatureStore>,
    shards: Vec<Engine>,
    /// One result cache for the whole graph, keyed by global node id
    /// and shared across every shard — a row computed for one caller
    /// serves repeats no matter which band owns it. Band engines run
    /// uncached; the front end probes before fanning out.
    cache: Option<Arc<EmbedCache>>,
    /// Latency of requests served entirely from the cache or from
    /// coalesced fills (they never reach a shard dispatcher, so no
    /// per-shard histogram sees them); merged into
    /// [`ShardedMetrics::embed`]. Shared (`Arc`) so lazily-harvested
    /// tickets can record into it.
    hit_latency: Arc<LatencyHistogram>,
    /// Front-end embed requests currently open (begin → resolve),
    /// blocking calls and un-harvested tickets alike.
    inflight: Arc<Gauge>,
    /// Front-end request reconciliation: every admitted request is
    /// `begun` and ends up `harvested` or `abandoned` — exactly once,
    /// no matter how many shards it fanned out to (band engines never
    /// see whole requests, only enqueued pieces, so their own
    /// [`RequestStats`] stay zero under a front end).
    stats: Arc<RequestStats>,
    /// The tracer every request-lifecycle span records into. Shared
    /// with all band engines (they get it through their
    /// [`EngineConfig`]) so one sampled request's fan-out spans carry
    /// consistent ids and timestamps.
    tracer: Arc<Tracer>,
    /// Front-end admission policy: in-flight is this front end's own
    /// gauge, backlog is the sum of every shard's queued rows. Band
    /// engines run unlimited beneath it — one gate per deployment, at
    /// the door.
    admission: AdmissionPolicy,
    /// The resolved fault-injection plan (config override or
    /// environment), `None` when inactive. Panic/delay injection
    /// happens in the band dispatchers (the plan is propagated through
    /// their configs); the front end keeps its own handle for
    /// poisoned-segment fill aborts on the shared cache.
    fault: Option<Arc<FaultPlan>>,
    /// Set by [`ShardedEngine::shutdown`] so the front end rejects new
    /// requests even when the shared cache could satisfy them.
    stopped: AtomicBool,
    /// `boundaries[s]..boundaries[s + 1]` is shard `s`'s global row
    /// band (the PART1D cut).
    boundaries: Vec<usize>,
    /// The load-time reordering's permutation, when one was configured.
    /// The cut, the bands, the shared cache, and the store's epochs all
    /// live in internal (permuted) row order; the front end translates
    /// external ids on entry (before ownership routing) and scatters
    /// `infer_full` rows back on exit.
    perm: Option<Arc<Permutation>>,
    /// Max row degree per band, recorded at partition time — the skew
    /// signal behind the `fusedmm_partition_max_row_degree` gauge (a
    /// band with one mega-row dominates its siblings' critical path).
    band_max_degree: Vec<usize>,
    /// Log2 degree histogram of the (possibly permuted) adjacency,
    /// frozen at load; republished with every metrics scrape.
    degree_hist: Vec<usize>,
    /// Gather progress per shard: time from fan-out start until shard
    /// `s`'s rows were merged into the response. Tickets gather lazily,
    /// so this traces response assembly from the caller's perspective
    /// (harvest order and idle time included), not per-shard compute
    /// (use [`ShardedMetrics::per_shard`]'s own embed histograms for
    /// straggler isolation).
    fanout: Arc<HistogramVec>,
    /// Plans keyed by [`PlanTag`] `{ shard, epoch }`. Lives as long as
    /// the engine so epoch-keyed entries (result caching, per-epoch
    /// specializations — see ROADMAP) have a durable home; with today's
    /// (pattern, d)-keyed autotuner every shard resolves to the same
    /// blocking.
    plans: PlanCache,
    started: Instant,
}

impl ShardedEngine {
    /// Cut `a` into at most `nshards` nnz-balanced row bands and spawn
    /// one band engine per (possibly empty) band, all sharing a fresh
    /// [`FeatureStore`] seeded with `x`/`y` as epoch 0.
    ///
    /// With [`EngineConfig::reordering`] set, the graph is renumbered
    /// *before* the PART1D cut — degree-sorting a skewed graph makes
    /// the bands internally regular (each band holds rows of similar
    /// degree) — while the request API keeps speaking external ids,
    /// bit-identical to an unreordered deployment.
    ///
    /// # Panics
    /// Panics when shapes are inconsistent or `nshards == 0`.
    pub fn new(
        a: Csr,
        x: Dense,
        y: Dense,
        ops: OpSet,
        nshards: usize,
        config: EngineConfig,
    ) -> ShardedEngine {
        assert_eq!(x.nrows(), a.nrows(), "X must have one row per vertex");
        assert_eq!(y.nrows(), a.ncols(), "Y must have one row per vertex");
        assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
        match config.reordering {
            Some(r) => {
                let perm = Arc::new(r.compute(&a));
                let a = perm.permute_csr(&a);
                let store = Arc::new(FeatureStore::with_permutation(x, y, Arc::clone(&perm)));
                ShardedEngine::build(a, store, ops, nshards, config, Some(perm))
            }
            None => ShardedEngine::build(
                a,
                Arc::new(FeatureStore::new(x, y)),
                ops,
                nshards,
                config,
                None,
            ),
        }
    }

    /// Like [`ShardedEngine::new`] but borrowing features through an
    /// existing store — e.g. one already being published to by a
    /// training loop, or shared with other engines.
    ///
    /// # Panics
    /// Panics when the store's shapes are inconsistent with `a`, or
    /// when [`EngineConfig::reordering`] is set — an external store
    /// cannot be assumed to hold features in the permuted row order
    /// (use [`ShardedEngine::new`]).
    pub fn with_store(
        a: Csr,
        store: Arc<FeatureStore>,
        ops: OpSet,
        nshards: usize,
        config: EngineConfig,
    ) -> ShardedEngine {
        assert!(
            config.reordering.is_none(),
            "EngineConfig::reordering requires engine-owned features (ShardedEngine::new): an \
             external FeatureStore is not in permuted row order"
        );
        ShardedEngine::build(a, store, ops, nshards, config, None)
    }

    /// Shared tail of `new` / `with_store`: `a` and the store's epochs
    /// are already in the same (possibly permuted) row order.
    fn build(
        a: Csr,
        store: Arc<FeatureStore>,
        ops: OpSet,
        nshards: usize,
        config: EngineConfig,
        perm: Option<Arc<Permutation>>,
    ) -> ShardedEngine {
        assert_eq!(store.x_rows(), a.nrows(), "store X must have one row per vertex");
        assert_eq!(store.y_rows(), a.ncols(), "store Y must have one row per vertex");
        let part = Partition::part1d(&a, nshards, PartitionStrategy::NnzBalanced);
        let degree_hist = a.degree_histogram_log2();
        let d = store.d();
        let plans = PlanCache::new();
        // The front end owns the (global-id) result cache; bands run
        // uncached beneath it.
        let cache = config.cache.map(|cache_cfg| {
            let cache = Arc::new(EmbedCache::new(&a, d, cache_cfg));
            store.subscribe(Arc::clone(&cache) as _);
            cache
        });
        // Resolve the tracer once so the front end and every band
        // engine share one instance (consistent span ids/timestamps
        // across a request's fan-out).
        let tracer = config.tracer.clone().unwrap_or_else(|| Arc::clone(Tracer::global()));
        // Resolve admission and fault injection once, here: requests
        // are admitted at the front door (band engines run unlimited —
        // they only ever see already-admitted pieces), and every band
        // dispatcher injects from the same plan instance (bands never
        // re-read the environment).
        let admission = config.admission.unwrap_or_else(AdmissionPolicy::from_env);
        let fault_cfg = config
            .fault
            .clone()
            .or_else(FaultPlan::from_env)
            .unwrap_or_else(|| Arc::new(FaultPlan::disabled()));
        let band_config = EngineConfig {
            cache: None,
            tracer: Some(Arc::clone(&tracer)),
            admission: Some(AdmissionPolicy::unlimited()),
            fault: Some(Arc::clone(&fault_cfg)),
            // The graph is already permuted; bands serve internal ids.
            reordering: None,
            ..config.clone()
        };
        let shards: Vec<Engine> = (0..part.len())
            .map(|s| {
                let rows = part.rows(s);
                let plan = match config.blocking {
                    Some(b) => Plan::with_blocking(&ops, d, b, PartitionStrategy::NnzBalanced),
                    None => plans.plan_tagged(&ops, d, PlanTag::for_shard(s as u64)),
                };
                Engine::for_band(
                    a.row_band(rows.clone()),
                    BandId { start: rows.start, shard: Some(s) },
                    Arc::clone(&store),
                    None,
                    ops.clone(),
                    plan,
                    band_config.clone(),
                    None,
                )
            })
            .collect();
        let fanout = Arc::new(HistogramVec::new(shards.len()));
        ShardedEngine {
            store,
            shards,
            cache,
            hit_latency: Arc::new(LatencyHistogram::new()),
            inflight: Arc::new(Gauge::new()),
            stats: Arc::new(RequestStats::default()),
            tracer,
            admission,
            fault: Some(fault_cfg).filter(|f| f.is_active()),
            stopped: AtomicBool::new(false),
            boundaries: part.boundaries().to_vec(),
            perm,
            band_max_degree: part.max_row_degrees().to_vec(),
            degree_hist,
            fanout,
            plans,
            started: Instant::now(),
        }
    }

    /// The shard-tagged plan cache (see the field docs); exposed so
    /// callers can pair a publish with
    /// [`PlanCache::evict_epoch`](fusedmm_core::PlanCache::evict_epoch)
    /// once epoch-keyed entries exist.
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// Number of shards (band engines), including empty bands.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices in the full graph.
    pub fn nvertices(&self) -> usize {
        *self.boundaries.last().expect("partition has boundaries")
    }

    /// The embedding dimension served.
    pub fn dimension(&self) -> usize {
        self.store.d()
    }

    /// The shared feature store — publish refreshed embeddings here;
    /// every shard sees the new epoch atomically.
    pub fn store(&self) -> &Arc<FeatureStore> {
        &self.store
    }

    /// The PART1D cut: `boundaries()[s]..boundaries()[s + 1]` is shard
    /// `s`'s global row band.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// The shard owning global vertex `u` (which must be in range).
    pub fn owner(&self, u: usize) -> usize {
        debug_assert!(u < self.nvertices());
        // Last boundary ≤ u; empty bands (repeated boundaries) are
        // skipped because their start equals their end.
        self.boundaries.partition_point(|&b| b <= u) - 1
    }

    /// Refresh embeddings for `nodes` (any order, duplicates allowed,
    /// global ids): one output row per requested node, in request
    /// order, every row computed from the **same** feature epoch —
    /// pinned once here, before the fan-out, so a concurrent publish
    /// can never tear a response across shards. Implemented as
    /// [`ShardedEngine::embed_begin`] followed by [`Ticket::wait`], so
    /// blocking and ticketed serving are the same code path.
    ///
    /// With the shared result cache enabled ([`EngineConfig::cache`]),
    /// valid rows are served from memory first and only the misses fan
    /// out to their owning band engines — bit-identical either way.
    pub fn embed(&self, nodes: &[usize]) -> Result<Dense, ServeError> {
        self.embed_begin(nodes)?.wait()
    }

    /// Begin an embedding request without blocking: one feature epoch
    /// is pinned here, the per-shard pieces are enqueued on their
    /// owning band engines immediately (their dispatchers work
    /// concurrently), and the returned [`Ticket`] gathers lazily — the
    /// first `poll`/`wait` starts collecting rows, and the completing
    /// call assembles the response in request order.
    ///
    /// With the shared cache enabled, hits resolve here, and misses
    /// another in-flight request is already computing coalesce onto it
    /// instead of fanning out — whichever shard owns them.
    pub fn embed_begin(&self, nodes: &[usize]) -> Result<Ticket<Dense>, ServeError> {
        Ok(self.embed_begin_opts(nodes, EmbedOptions::default())?.map(|r| r.rows))
    }

    /// [`ShardedEngine::embed_begin`] with per-request
    /// [`EmbedOptions`]: an optional deadline (expired pieces are
    /// dropped before any band's kernel launch) and a [`Quality`] tier
    /// — the same contract as [`Engine::embed_begin_opts`], applied at
    /// the front door so one admission gate and one tier decision
    /// cover the whole fan-out.
    pub fn embed_begin_opts(
        &self,
        nodes: &[usize],
        opts: EmbedOptions,
    ) -> Result<Ticket<EmbedResponse>, ServeError> {
        // Match the single engine's post-shutdown contract: even a
        // would-be full cache hit is refused once shut down.
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServeError::EngineShutdown);
        }
        self.check_nodes(nodes)?;
        // A reordered deployment translates external ids to internal
        // rows once, here — before ownership routing, cache probing,
        // and the fan-out, which all run on internal ids. The response
        // is positional (row i answers `nodes[i]`), so nothing maps
        // back.
        let mapped: Vec<usize>;
        let nodes: &[usize] = match &self.perm {
            Some(p) => {
                mapped = p.map_to_new(nodes);
                &mapped
            }
            None => nodes,
        };
        if nodes.is_empty() {
            self.stats.ready();
            return Ok(Ticket::ready(Ok(EmbedResponse {
                rows: Dense::zeros(0, self.dimension()),
                served_degraded: Vec::new(),
                quality: opts.quality,
            })));
        }
        // Admission runs before this request acquires the front-end
        // gauge, so it never counts itself toward the cap it is being
        // judged against. Backlog is the whole deployment's: the sum
        // of every band's undispatched rows.
        let mut quality = opts.quality;
        let inflight = self.inflight.value();
        let queued_rows = self.shards.iter().map(|s| s.queued_rows()).sum();
        match self.admission.decide(inflight, queued_rows) {
            Admission::Admit => {}
            Admission::Degrade => {
                quality = AdmissionPolicy::downgrade(quality, self.cache.is_some());
            }
            Admission::Shed => {
                self.stats.shed();
                return Err(ServeError::Shed { inflight, queued_rows });
            }
        }
        if opts.deadline.is_some_and(|d| d <= Instant::now()) {
            self.stats.begin();
            self.stats.fail();
            return Err(ServeError::DeadlineExpired);
        }
        let t0 = Instant::now();
        // One sampling decision per request; when sampled, every span
        // of its fan-out (front-end route, per-shard enqueue / batch /
        // kernel / fill, harvest) hangs off this root.
        let root = self.tracer.sample_root();
        let begin_ns = if root.is_some() { self.tracer.now() } else { 0 };
        let epoch = self.store.snapshot();
        let guard = self.inflight.acquire();
        if quality == Quality::CachedOnly {
            return Ok(self.embed_cached_only(nodes, &epoch, t0, root, begin_ns));
        }
        let mut out = Dense::zeros(nodes.len(), self.dimension());
        // Sorted, deduplicated nodes still to compute, with the output
        // positions they owe, and any coalesced waiters. The degraded
        // `TopKNeighbors` tier bypasses the shared cache entirely —
        // truncated rows must never be cached or mixed with exact rows
        // — so it always lands in the fan-out arm below.
        let (to_compute, positions, waiters, mut owners) = match &self.cache {
            Some(cache) if quality == Quality::Exact => {
                let route_start = if root.is_some() { self.tracer.now() } else { 0 };
                let (misses, positions) = cache.split(nodes, epoch.epoch(), &mut out);
                if misses.is_empty() {
                    if let Some(r) = root {
                        let now = self.tracer.now();
                        let route = self.tracer.child(r);
                        self.tracer.record(
                            route,
                            SpanKind::CacheRoute,
                            route_start,
                            now,
                            None,
                            nodes.len() as u64,
                        );
                        self.tracer.record(
                            r,
                            SpanKind::Embed,
                            begin_ns,
                            now,
                            None,
                            nodes.len() as u64,
                        );
                    }
                    self.stats.ready();
                    self.hit_latency.record(t0.elapsed());
                    return Ok(Ticket::ready(Ok(EmbedResponse {
                        rows: out,
                        served_degraded: vec![false; nodes.len()],
                        quality,
                    })));
                }
                let mut owned = Vec::new();
                let mut owners = Vec::new();
                let mut waiters = Vec::new();
                for &u in &misses {
                    match cache.route_miss(u, epoch.epoch()) {
                        MissRoute::Owner(owner) => {
                            owned.push(u);
                            owners.push(owner);
                        }
                        MissRoute::Waiter(waiter) => waiters.push(WaiterSlot::new(u, waiter)),
                        // A fill landed between the lookup miss and
                        // the routing call: the row is already in hand.
                        MissRoute::Resident(row) => {
                            waiters.push(WaiterSlot::resolved(u, row));
                        }
                    }
                }
                if let Some(r) = root {
                    let route = self.tracer.child(r);
                    self.tracer.record(
                        route,
                        SpanKind::CacheRoute,
                        route_start,
                        self.tracer.now(),
                        None,
                        nodes.len() as u64,
                    );
                }
                (owned, positions, waiters, owners)
            }
            _ => {
                let union = dedup_union([nodes]);
                (union, (0..nodes.len()).collect(), Vec::new(), Vec::<InflightOwner>::new())
            }
        };
        // Scatter the compute set to its owning band engines. The
        // input is globally sorted and bands are contiguous ascending
        // row ranges, so each per-shard list is itself a sorted union.
        let mut per_shard: Vec<(Vec<usize>, Vec<InflightOwner>)> =
            (0..self.shards.len()).map(|_| (Vec::new(), Vec::new())).collect();
        let mut owners = owners.drain(..);
        for &u in &to_compute {
            let (shard_nodes, shard_owners) = &mut per_shard[self.owner(u)];
            shard_nodes.push(u);
            if let Some(owner) = owners.next() {
                debug_assert_eq!(owner.node(), u, "owners align with the compute set");
                shard_owners.push(owner);
            }
        }
        // Build every per-shard FillSet before enqueueing anything: if
        // one enqueue loses a race with shutdown, dropping the
        // remaining sets aborts their registrations (waiters fail
        // instead of hanging), while already-enqueued sets resolve
        // through their dispatchers.
        let pending: Vec<(usize, Vec<usize>, Option<FillSet>)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, (shard_nodes, _))| !shard_nodes.is_empty())
            .map(|(s, (shard_nodes, shard_owners))| {
                // Fills only ride Exact batches: a TopKNeighbors part
                // computes truncated rows that must never land in the
                // shared cache (its owners list is empty anyway).
                let fills = match (&self.cache, quality) {
                    (Some(cache), Quality::Exact) => {
                        Some(FillSet::new(Arc::clone(cache), shard_owners, self.fault.clone()))
                    }
                    _ => None,
                };
                (s, shard_nodes, fills)
            })
            .collect();
        let mut parts = Vec::new();
        // An enqueue losing a race with shutdown drops the remaining
        // FillSets (aborting their registrations); sets already
        // enqueued resolve through their shard dispatchers.
        for (s, shard_nodes, fills) in pending {
            let rx = self.shards[s].enqueue_pinned(
                &shard_nodes,
                Arc::clone(&epoch),
                fills,
                root,
                quality,
                opts.deadline,
            )?;
            // Each part can retry once on its own shard after a
            // panicked launch — same pinned epoch, so an Exact retry
            // stays bit-identical.
            let retry = self.shards[s].retry_handle(Arc::clone(&epoch), quality, opts.deadline);
            parts.push(Part::with_retry(shard_nodes, s, Some(s), rx, Some(retry)));
        }
        let positions = positions.into_iter().map(|i| (i, nodes[i])).collect();
        // A fully coalesced request never reaches a shard dispatcher:
        // record its completion into the front-end hit histogram.
        let finish_hist = parts.is_empty().then(|| Arc::clone(&self.hit_latency));
        self.stats.begin();
        let completion = Completion {
            hist: finish_hist,
            stats: Some(Arc::clone(&self.stats)),
            trace: root.map(|r| TraceHandle {
                tracer: Arc::clone(&self.tracer),
                root: r,
                begin_ns,
            }),
        };
        Ok(Ticket::pending(EmbedAssembly::assemble(
            out,
            parts,
            waiters,
            positions,
            vec![matches!(quality, Quality::TopKNeighbors(_)); nodes.len()],
            quality,
            completion,
            Some(Arc::clone(&self.fanout)),
            guard,
        )))
    }

    /// The `CachedOnly` tier at the front door: answer immediately
    /// from whatever the shared result cache holds at the pinned
    /// epoch. Misses come back as zero rows marked `served_degraded` —
    /// no fan-out, no miss routing, no kernel time on any band.
    /// Without a cache every row is a degraded zero row.
    fn embed_cached_only(
        &self,
        nodes: &[usize],
        epoch: &Arc<FeatureEpoch>,
        t0: Instant,
        root: Option<SpanCtx>,
        begin_ns: u64,
    ) -> Ticket<EmbedResponse> {
        let tracer = &self.tracer;
        let mut out = Dense::zeros(nodes.len(), self.dimension());
        let mut marks = vec![true; nodes.len()];
        if let Some(cache) = &self.cache {
            let route_start = if root.is_some() { tracer.now() } else { 0 };
            let (_, miss_positions) = cache.split(nodes, epoch.epoch(), &mut out);
            marks = vec![false; nodes.len()];
            for &i in &miss_positions {
                marks[i] = true;
            }
            if let Some(r) = root {
                let route = tracer.child(r);
                tracer.record(
                    route,
                    SpanKind::CacheRoute,
                    route_start,
                    tracer.now(),
                    None,
                    nodes.len() as u64,
                );
            }
        }
        if let Some(r) = root {
            tracer.record(r, SpanKind::Embed, begin_ns, tracer.now(), None, nodes.len() as u64);
        }
        if marks.iter().any(|&b| b) {
            self.stats.ready_degraded();
        } else {
            self.stats.ready();
        }
        self.hit_latency.record(t0.elapsed());
        Ticket::ready(Ok(EmbedResponse {
            rows: out,
            served_degraded: marks,
            quality: Quality::CachedOnly,
        }))
    }

    /// Score candidate `(u, v)` edges (global ids), scattering each
    /// pair to the shard owning its source vertex and gathering scores
    /// back in request order, all under one pinned epoch.
    pub fn score_edges(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ServeError> {
        let m = self.nvertices();
        let n = self.store.y_rows();
        for &(u, v) in pairs {
            if u >= m {
                return Err(ServeError::NodeOutOfRange { node: u, nvertices: m });
            }
            if v >= n {
                return Err(ServeError::NodeOutOfRange { node: v, nvertices: n });
            }
        }
        // Translate to internal ids after validation (a reordered
        // deployment is square, so both endpoints map through the same
        // permutation) — ownership routing below runs on internal rows.
        let mapped: Vec<(usize, usize)>;
        let pairs: &[(usize, usize)] = match &self.perm {
            Some(p) => {
                mapped = pairs.iter().map(|&(u, v)| (p.to_new(u), p.to_new(v))).collect();
                &mapped
            }
            None => pairs,
        };
        let epoch = self.store.snapshot();
        // Per shard: the original pair indices and the pairs themselves.
        type ShardPairs = (Vec<usize>, Vec<(usize, usize)>);
        let mut per_shard: Vec<ShardPairs> = vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (i, &pair) in pairs.iter().enumerate() {
            let (idx, sub) = &mut per_shard[self.owner(pair.0)];
            idx.push(i);
            sub.push(pair);
        }
        let mut out = vec![0f32; pairs.len()];
        for (s, (idx, sub)) in per_shard.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let scores = self.shards[s].score_edges_pinned(sub, &epoch)?;
            for (&i, score) in idx.iter().zip(scores) {
                out[i] = score;
            }
        }
        Ok(out)
    }

    /// Full-graph inference: every shard computes its band under one
    /// pinned epoch, **bands overlapping** on a rayon scope (each band
    /// already fans out internally, but overlapping them hides
    /// per-shard plan launch overhead and stragglers on many-shard
    /// configs). The bands are stacked back into the full `m × d`
    /// output — bit-identical to the unsharded call *and* to running
    /// the bands sequentially, because each output row is written by
    /// exactly one shard from the same pinned epoch.
    pub fn infer_full(&self) -> Dense {
        let epoch = self.store.snapshot();
        let d = self.dimension();
        let mut out = Dense::zeros(self.nvertices(), d);
        // Carve the output into disjoint mutable row-band slices
        // (bands are contiguous), one per shard.
        let mut bands: Vec<&mut [f32]> = Vec::with_capacity(self.shards.len());
        let mut rest = out.as_mut_slice();
        for w in self.boundaries.windows(2) {
            let (band, tail) = rest.split_at_mut((w[1] - w[0]) * d);
            bands.push(band);
            rest = tail;
        }
        rayon::scope(|sc| {
            for (shard, band) in self.shards.iter().zip(bands) {
                let epoch = &epoch;
                sc.spawn(move |_| {
                    let z = shard.infer_pinned(epoch);
                    band.copy_from_slice(z.as_slice());
                });
            }
        });
        // Scatter the stacked internal-order rows back so row u
        // answers external vertex u, as on an unreordered deployment.
        match &self.perm {
            Some(p) => p.unpermute_rows(&out),
            None => out,
        }
    }

    /// Max row degree per band, recorded when the PART1D cut was made —
    /// the operator-facing skew signal (also exported as the
    /// shard-labeled `fusedmm_partition_max_row_degree` gauge).
    pub fn band_max_degrees(&self) -> &[usize] {
        &self.band_max_degree
    }

    /// Point-in-time metrics: per-shard engine metrics plus the merged
    /// embed-latency distribution and the store's epoch counters.
    pub fn metrics(&self) -> ShardedMetrics {
        let merged = LatencyHistogram::new();
        for shard in &self.shards {
            merged.absorb(shard.embed_latency());
        }
        merged.absorb(&self.hit_latency);
        // One consistent (current, peak) pair — see Gauge::snapshot.
        let inflight = self.inflight.snapshot();
        ShardedMetrics {
            uptime: self.started.elapsed(),
            embed: merged.snapshot(),
            fanout: (0..self.shards.len()).map(|s| self.fanout.snapshot(s)).collect(),
            per_shard: self.shards.iter().map(|e| e.metrics()).collect(),
            requests_begun: self.stats.begun.load(Ordering::Relaxed),
            requests_harvested: self.stats.harvested.load(Ordering::Relaxed),
            requests_degraded: self.stats.degraded.load(Ordering::Relaxed),
            requests_shed: self.stats.shed.load(Ordering::Relaxed),
            requests_failed: self.stats.failed.load(Ordering::Relaxed),
            requests_abandoned: self.stats.abandoned.load(Ordering::Relaxed),
            panics_caught: self.shards.iter().map(|s| s.panics_caught()).sum(),
            expired_dropped: self.shards.iter().map(|s| s.expired_dropped()).sum(),
            queued_rows: self.shards.iter().map(|s| s.queued_rows()).sum(),
            inflight: inflight.current,
            inflight_peak: inflight.peak,
            feature_epoch: self.store.current_epoch(),
            epoch_swaps: self.store.swap_count(),
            cache: self.cache.as_ref().map(|c| c.metrics()),
        }
    }

    /// Register the front end and every band engine with `registry`.
    ///
    /// Front-end samples (request reconciliation, in-flight gauges, the
    /// cache-hit latency histogram, per-shard fan-out histograms, the
    /// shared cache) carry no `shard` label; each band engine registers
    /// its own collector tagged `shard="<i>"`, so one
    /// [`MetricsRegistry::snapshot`] enumerates the whole deployment.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let stats = Arc::clone(&self.stats);
        let inflight = Arc::clone(&self.inflight);
        let hit_latency = Arc::clone(&self.hit_latency);
        let fanout = Arc::clone(&self.fanout);
        let cache = self.cache.clone();
        let store = Arc::clone(&self.store);
        let nshards = self.shards.len();
        let band_max_degree = self.band_max_degree.clone();
        let degree_hist = self.degree_hist.clone();
        registry.register(move |out| {
            // Static graph-shape gauges: per-band max row degree (the
            // skew each shard's critical path carries) and the log2
            // degree histogram (bucket i counts rows with degree in
            // [2^i, 2^{i+1})).
            for (s, &deg) in band_max_degree.iter().enumerate() {
                out.push(
                    Sample::gauge("fusedmm_partition_max_row_degree", deg as f64)
                        .label("shard", s.to_string()),
                );
            }
            for (bucket, &rows) in degree_hist.iter().enumerate() {
                out.push(
                    Sample::gauge("fusedmm_degree_histogram_rows", rows as f64)
                        .label("bucket", bucket.to_string()),
                );
            }
            out.push(Sample::histogram(
                "fusedmm_frontend_hit_latency_seconds",
                hit_latency.snapshot(),
            ));
            push_outcome_samples(out, &stats, &[]);
            let snap = inflight.snapshot();
            out.push(Sample::gauge("fusedmm_requests_inflight", snap.current as f64));
            out.push(Sample::gauge("fusedmm_requests_inflight_peak", snap.peak as f64));
            out.push(Sample::gauge("fusedmm_feature_epoch", store.current_epoch() as f64));
            out.push(Sample::counter("fusedmm_epoch_swaps_total", store.swap_count()));
            for s in 0..nshards {
                out.push(
                    Sample::histogram("fusedmm_fanout_gather_seconds", fanout.snapshot(s))
                        .label("shard", s.to_string()),
                );
            }
            if let Some(cache) = &cache {
                push_cache_samples(out, &cache.metrics(), &[]);
            }
        });
        for (s, shard) in self.shards.iter().enumerate() {
            let tag = s.to_string();
            shard.register_metrics(registry, &[("shard", &tag)]);
        }
    }

    /// The shared result cache's statistics, when one is enabled.
    pub fn cache_metrics(&self) -> Option<CacheMetrics> {
        self.cache.as_ref().map(|c| c.metrics())
    }

    /// Stop every shard: reject new requests, drain queues, join the
    /// dispatchers. Called automatically on drop (each band engine
    /// shuts down when dropped).
    pub fn shutdown(&mut self) {
        self.stopped.store(true, Ordering::Release);
        for shard in &mut self.shards {
            shard.shutdown();
        }
    }

    fn check_nodes(&self, nodes: &[usize]) -> Result<(), ServeError> {
        let m = self.nvertices();
        for &node in nodes {
            if node >= m {
                return Err(ServeError::NodeOutOfRange { node, nvertices: m });
            }
        }
        Ok(())
    }
}

/// Serving statistics reported by [`ShardedEngine::metrics`].
#[derive(Debug, Clone)]
pub struct ShardedMetrics {
    /// Time since the sharded engine was constructed.
    pub uptime: std::time::Duration,
    /// Embed-request latency merged across every shard, plus requests
    /// served entirely from the shared cache (which never reach a
    /// shard dispatcher).
    pub embed: HistogramSnapshot,
    /// Cumulative gather progress per shard, front-end view: time from
    /// fan-out start until shard `s`'s rows were merged (includes
    /// waiting on shards before `s` — response-assembly timeline, not
    /// per-shard compute; see [`ShardedMetrics::per_shard`] for that).
    pub fanout: Vec<HistogramSnapshot>,
    /// Each shard engine's own metrics, in band order.
    pub per_shard: Vec<EngineMetrics>,
    /// Front-end embed requests admitted (every `embed_begin` that
    /// returned `Ok`, including requests resolved at creation).
    pub requests_begun: u64,
    /// Front-end embed requests whose response was assembled at full
    /// fidelity.
    pub requests_harvested: u64,
    /// Front-end embed requests answered degraded (a `CachedOnly` or
    /// `TopKNeighbors` response with at least one `served_degraded`
    /// row).
    pub requests_degraded: u64,
    /// Front-end embed requests rejected by the admission policy.
    pub requests_shed: u64,
    /// Front-end embed requests that resolved with a typed error
    /// (expired deadline, part failure, shutdown).
    pub requests_failed: u64,
    /// Front-end embed requests whose ticket was dropped unresolved.
    /// `requests_begun == requests_harvested + requests_degraded +
    /// requests_shed + requests_failed + requests_abandoned` once
    /// every ticket has resolved.
    pub requests_abandoned: u64,
    /// Kernel-launch panics caught at band dispatch boundaries, summed
    /// across shards.
    pub panics_caught: u64,
    /// Requests band dispatchers dropped past their deadline, summed
    /// across shards.
    pub expired_dropped: u64,
    /// Rows currently queued (undispatched) across every band — the
    /// admission policy's backlog signal.
    pub queued_rows: usize,
    /// Front-end embed requests currently open (begin → resolve):
    /// blocking calls plus every un-harvested [`Ticket`].
    pub inflight: u64,
    /// Deepest front-end in-flight window ever held.
    pub inflight_peak: u64,
    /// The feature epoch currently served.
    pub feature_epoch: u64,
    /// Completed feature-store swaps.
    pub epoch_swaps: u64,
    /// Shared result-cache statistics, when the cache is enabled.
    pub cache: Option<CacheMetrics>,
}

impl std::fmt::Display for ShardedMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} shards, epoch {} ({} swaps), requests {} begun / {} harvested / {} degraded / \
             {} shed / {} failed / {} abandoned, panics caught {}, expired dropped {}, \
             in-flight {} (peak {}), queued rows {}, merged embed: {}",
            self.per_shard.len(),
            self.feature_epoch,
            self.epoch_swaps,
            self.requests_begun,
            self.requests_harvested,
            self.requests_degraded,
            self.requests_shed,
            self.requests_failed,
            self.requests_abandoned,
            self.panics_caught,
            self.expired_dropped,
            self.inflight,
            self.inflight_peak,
            self.queued_rows,
            self.embed
        )?;
        if let Some(cache) = &self.cache {
            writeln!(f, "cache: {cache}")?;
        }
        for (s, m) in self.per_shard.iter().enumerate() {
            writeln!(
                f,
                "  shard {s}: batches={} rows computed={} embed p99={:.3?}",
                m.batches_dispatched, m.rows_computed, m.embed.p99
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_core::{fusedmm_reference, Blocking};
    use fusedmm_sparse::coo::{Coo, Dedup};
    use std::time::Duration;

    fn graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            // Skewed degrees so the nnz-balanced cut is non-trivial.
            let deg = if u % 7 == 0 { 9 } else { 2 };
            for k in 1..=deg {
                c.push(u, (u * 3 + k * 5 + 1) % n, 0.3 + k as f32 * 0.2);
            }
        }
        c.to_csr(Dedup::Sum)
    }

    fn config() -> EngineConfig {
        EngineConfig {
            coalesce_window: Duration::ZERO,
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn bands_tile_and_owner_is_consistent() {
        let a = graph(90);
        let eng = ShardedEngine::new(
            a,
            Dense::zeros(90, 4),
            Dense::zeros(90, 4),
            OpSet::gcn(),
            4,
            config(),
        );
        assert_eq!(eng.nvertices(), 90);
        assert!(eng.nshards() >= 1 && eng.nshards() <= 4);
        for u in 0..90 {
            let s = eng.owner(u);
            assert!(
                (eng.boundaries()[s]..eng.boundaries()[s + 1]).contains(&u),
                "owner({u}) = {s} does not contain it"
            );
        }
    }

    #[test]
    fn sharded_embed_matches_reference_in_request_order() {
        let n = 80;
        let d = 12;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r * 3 + k) as f32 * 0.05).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r + k * 2) as f32 * 0.04).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        let eng = ShardedEngine::new(a, x, y, ops, 3, config());
        // Out of order, duplicated, crossing every band.
        let nodes = [79usize, 0, 40, 79, 13, 41, 7];
        let z = eng.embed(&nodes).unwrap();
        assert_eq!(z.nrows(), nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for k in 0..d {
                assert!((z.get(i, k) - reference.get(u, k)).abs() < 1e-5, "node {u} lane {k}");
            }
        }
        let m = eng.metrics();
        assert!(m.per_shard.iter().map(|s| s.rows_computed).sum::<u64>() >= 6);
        assert_eq!(m.feature_epoch, 0);
    }

    #[test]
    fn more_shards_than_rows_still_serves() {
        let n = 5;
        let a = graph(n);
        let feats = Dense::filled(n, 4, 0.5);
        let eng =
            ShardedEngine::new(a.clone(), feats.clone(), feats.clone(), OpSet::gcn(), 64, config());
        assert_eq!(eng.nshards(), n);
        let single = Engine::new(a, feats.clone(), feats, OpSet::gcn(), config());
        let nodes = [4usize, 0, 2];
        assert_eq!(eng.embed(&nodes).unwrap(), single.embed(&nodes).unwrap());
    }

    #[test]
    fn out_of_range_nodes_are_rejected_globally() {
        let a = graph(10);
        let eng = ShardedEngine::new(
            a,
            Dense::zeros(10, 4),
            Dense::zeros(10, 4),
            OpSet::gcn(),
            2,
            config(),
        );
        assert_eq!(
            eng.embed(&[3, 10]),
            Err(ServeError::NodeOutOfRange { node: 10, nvertices: 10 })
        );
        assert_eq!(
            eng.score_edges(&[(0, 12)]),
            Err(ServeError::NodeOutOfRange { node: 12, nvertices: 10 })
        );
    }

    #[test]
    fn parallel_infer_full_is_bit_identical_to_sequential_bands() {
        let n = 120;
        let d = 16;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r * 2 + k) as f32 * 0.03).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r + k * 3) as f32 * 0.05).cos());
        let eng = ShardedEngine::new(a, x, y, OpSet::sigmoid_embedding(None), 4, config());
        assert!(eng.nshards() > 1);
        let parallel = eng.infer_full();
        // The sequential reference: stack each band's pinned-epoch
        // result in band order (what infer_full did before the rayon
        // scope).
        let epoch = eng.store().snapshot();
        let mut sequential = Dense::zeros(n, d);
        for (s, shard) in eng.shards.iter().enumerate() {
            let z = shard.infer_pinned(&epoch);
            let lo = eng.boundaries()[s];
            for i in 0..z.nrows() {
                sequential.row_mut(lo + i).copy_from_slice(z.row(i));
            }
        }
        assert_eq!(parallel, sequential, "overlapped bands must not change a single bit");
    }

    #[test]
    fn shared_cache_serves_cross_shard_repeats_and_stays_bit_identical() {
        use fusedmm_cache::CacheConfig;
        let n = 80;
        let d = 8;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r + k) as f32 * 0.04).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r * 2 + k) as f32 * 0.03).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let plain = ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), 3, config());
        let cached = ShardedEngine::new(
            a,
            x,
            y,
            ops,
            3,
            EngineConfig { cache: Some(CacheConfig::default()), ..config() },
        );
        // Nodes spanning every band, with duplicates.
        let nodes = [79usize, 0, 40, 79, 13, 41, 7];
        let cold = cached.embed(&nodes).unwrap();
        assert_eq!(cold, plain.embed(&nodes).unwrap(), "cold shared cache is bit-identical");
        let count_cold = cached.metrics().embed.count;
        let warm = cached.embed(&nodes).unwrap();
        assert_eq!(warm, cold, "warm shared cache is bit-identical");
        assert_eq!(
            cached.metrics().embed.count,
            count_cold + 1,
            "a fully cache-served request still lands in the merged latency histogram"
        );
        let m = cached.cache_metrics().expect("cache enabled");
        assert_eq!(m.misses, nodes.len() as u64);
        assert_eq!(m.hits, nodes.len() as u64, "second pass hits across every shard");
        // Band engines are uncached — only the front end caches.
        for shard_metrics in cached.metrics().per_shard {
            assert!(shard_metrics.cache.is_none());
        }
        assert!(cached.metrics().cache.is_some());
    }

    #[test]
    fn front_end_admission_sheds_and_reconciles() {
        let a = graph(60);
        let feats = Dense::filled(60, 4, 0.2);
        let eng = ShardedEngine::new(
            a,
            feats.clone(),
            feats,
            OpSet::gcn(),
            3,
            EngineConfig {
                admission: Some(AdmissionPolicy {
                    max_inflight: 1,
                    max_queued_rows: 0,
                    degrade_fraction: 1.0,
                }),
                ..config()
            },
        );
        let held = eng.embed_begin(&[1, 59]).unwrap();
        match eng.embed_begin(&[2]) {
            Err(ServeError::Shed { inflight, .. }) => assert_eq!(inflight, 1),
            other => panic!("expected Shed, got {other:?}"),
        }
        drop(held);
        // Band engines run unlimited beneath the front gate: a fresh
        // request is admitted again once the held ticket resolves.
        eng.embed(&[2]).unwrap();
        let m = eng.metrics();
        assert_eq!(m.requests_shed, 1);
        assert_eq!(
            m.requests_begun,
            m.requests_harvested
                + m.requests_degraded
                + m.requests_shed
                + m.requests_failed
                + m.requests_abandoned
        );
    }

    #[test]
    fn sharded_topk_tier_matches_truncated_reference() {
        let n = 80;
        let d = 8;
        let k = 2;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, c| ((r + c) as f32 * 0.04).sin());
        let y = Dense::from_fn(n, d, |r, c| ((r * 2 + c) as f32 * 0.03).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let truncated = fusedmm_reference(&a.top_k_by_weight(k), &x, &y, &ops);
        let eng = ShardedEngine::new(a, x, y, ops, 3, config());
        let nodes = [79usize, 0, 40, 13, 41, 7];
        let resp = eng
            .embed_begin_opts(&nodes, EmbedOptions::with_quality(Quality::TopKNeighbors(k)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.quality, Quality::TopKNeighbors(k));
        assert!(resp.served_degraded.iter().all(|&b| b), "every TopK row is marked degraded");
        for (i, &u) in nodes.iter().enumerate() {
            for c in 0..d {
                assert!(
                    (resp.rows.get(i, c) - truncated.get(u, c)).abs() < 1e-5,
                    "node {u} lane {c}"
                );
            }
        }
        assert_eq!(eng.metrics().requests_degraded, 1);
    }

    #[test]
    fn sharded_cached_only_serves_warm_rows_exactly() {
        use fusedmm_cache::CacheConfig;
        let n = 60;
        let a = graph(n);
        let feats = Dense::from_fn(n, 6, |r, c| ((r + c) as f32 * 0.05).sin());
        let eng = ShardedEngine::new(
            a,
            feats.clone(),
            feats,
            OpSet::sigmoid_embedding(None),
            3,
            EngineConfig { cache: Some(CacheConfig::default()), ..config() },
        );
        let nodes = [59usize, 0, 30];
        let exact = eng.embed(&nodes).unwrap();
        let resp = eng
            .embed_begin_opts(&nodes, EmbedOptions::with_quality(Quality::CachedOnly))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.quality, Quality::CachedOnly);
        assert!(!resp.any_degraded(), "warm rows are served exactly");
        assert_eq!(resp.rows, exact);
        // A cold node comes back zeroed and marked — never computed.
        let cold = eng
            .embed_begin_opts(&[7], EmbedOptions::with_quality(Quality::CachedOnly))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(cold.served_degraded, vec![true]);
        assert!(cold.rows.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(eng.metrics().requests_degraded, 1);
    }

    #[test]
    fn sharded_injected_panic_retries_once_and_stays_bit_identical() {
        crate::fault::quiet_injected_panics();
        let n = 80;
        let d = 8;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, c| ((r + c) as f32 * 0.04).sin());
        let y = Dense::from_fn(n, d, |r, c| ((r * 2 + c) as f32 * 0.03).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let reference = fusedmm_reference(&a, &x, &y, &ops);
        let eng = ShardedEngine::new(
            a,
            x,
            y,
            ops,
            3,
            EngineConfig {
                fault: Some(Arc::new(FaultPlan::parse("panic_every=2").unwrap())),
                ..config()
            },
        );
        let nodes = [79usize, 0, 40, 13, 41, 7];
        // Batch 1 on every band is healthy; batch 2 panics and the part
        // retries on its own shard (batch 3), same pinned epoch.
        eng.embed(&nodes).unwrap();
        let z = eng.embed(&nodes).unwrap();
        for (i, &u) in nodes.iter().enumerate() {
            for c in 0..d {
                assert!(
                    (z.get(i, c) - reference.get(u, c)).abs() < 1e-6,
                    "retried rows must match the fault-free kernel: node {u} lane {c}"
                );
            }
        }
        let m = eng.metrics();
        assert!(m.panics_caught >= 1, "at least one band launch panicked");
        assert_eq!(m.requests_harvested, 2);
        assert_eq!(m.requests_failed, 0);
    }

    #[test]
    fn reordered_sharded_engine_is_bit_identical_and_keeps_external_ids() {
        use fusedmm_graph::Reordering;
        let n = 80;
        let d = 12;
        let a = graph(n);
        let x = Dense::from_fn(n, d, |r, k| ((r * 3 + k) as f32 * 0.05).sin());
        let y = Dense::from_fn(n, d, |r, k| ((r + k * 2) as f32 * 0.04).cos());
        let ops = OpSet::sigmoid_embedding(None);
        let plain = ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), 3, config());
        let nodes = [79usize, 0, 40, 79, 13, 41, 7];
        let pairs = [(0usize, 7usize), (79, 0), (40, 41)];
        let base_embed = plain.embed(&nodes).unwrap();
        let base_scores = plain.score_edges(&pairs).unwrap();
        let base_full = plain.infer_full();
        for r in [Reordering::DegreeSort, Reordering::RcmBfs] {
            let cfg = EngineConfig { reordering: Some(r), ..config() };
            let eng = ShardedEngine::new(a.clone(), x.clone(), y.clone(), ops.clone(), 3, cfg);
            assert_eq!(eng.embed(&nodes).unwrap(), base_embed, "{r:?} embed differs");
            assert_eq!(eng.score_edges(&pairs).unwrap(), base_scores, "{r:?} scores differ");
            assert_eq!(
                eng.infer_full().as_slice(),
                base_full.as_slice(),
                "{r:?} infer_full differs"
            );
            assert_eq!(
                eng.embed(&[n]),
                Err(ServeError::NodeOutOfRange { node: n, nvertices: n }),
                "{r:?} changed the external id space"
            );
        }
    }

    #[test]
    fn reordered_sharded_store_writes_use_external_ids() {
        use fusedmm_graph::Reordering;
        // Ring graph: z_u = y_{u+1} under GCN.
        let n = 30;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, 4, |r, k| (r * 4 + k) as f32);
        let eng = ShardedEngine::new(
            a,
            feats.clone(),
            feats,
            OpSet::gcn(),
            3,
            EngineConfig { reordering: Some(Reordering::DegreeSort), ..config() },
        );
        let patch = Dense::filled(1, 4, -1.0);
        eng.store().delta_update(&[20], &patch, &patch);
        assert_eq!(eng.embed(&[19]).unwrap().row(0), &[-1.0; 4], "external row 20 was patched");
        assert_eq!(eng.embed(&[0]).unwrap().row(0), &[4.0, 5.0, 6.0, 7.0], "row 1 untouched");
    }

    #[test]
    #[should_panic(expected = "engine-owned features")]
    fn sharded_with_store_rejects_reordering() {
        use fusedmm_graph::Reordering;
        let a = graph(12);
        let store = Arc::new(FeatureStore::new(Dense::zeros(12, 4), Dense::zeros(12, 4)));
        let cfg = EngineConfig { reordering: Some(Reordering::DegreeSort), ..config() };
        let _ = ShardedEngine::with_store(a, store, OpSet::gcn(), 2, cfg);
    }

    #[test]
    fn partition_skew_gauges_are_exported() {
        let n = 90;
        let a = graph(n);
        let nonisolated = a.row_degrees().iter().filter(|&&d| d > 0).count();
        let eng = ShardedEngine::new(
            a,
            Dense::zeros(n, 4),
            Dense::zeros(n, 4),
            OpSet::gcn(),
            4,
            config(),
        );
        let registry = MetricsRegistry::new();
        eng.register_metrics(&registry);
        let snap = registry.snapshot();
        for (s, &deg) in eng.band_max_degrees().iter().enumerate() {
            let tag = s.to_string();
            let v = snap
                .gauge_value("fusedmm_partition_max_row_degree", &[("shard", &tag)])
                .expect("per-band max-degree gauge");
            assert_eq!(v, deg as f64, "shard {s} gauge disagrees with the partition record");
            assert!(deg >= 1, "every band of this graph holds at least one edge");
        }
        // Histogram buckets (unlabeled by shard) cover every
        // non-isolated row exactly once.
        let mut total = 0.0;
        for bucket in 0..64 {
            let tag = bucket.to_string();
            if let Some(v) = snap.gauge_value("fusedmm_degree_histogram_rows", &[("bucket", &tag)])
            {
                // Skip the per-shard copies: count only the front-end
                // (shard-unlabeled) samples.
                let s = snap.get("fusedmm_degree_histogram_rows", &[("bucket", &tag)]).unwrap();
                if s.labels.iter().all(|(k, _)| k != "shard") {
                    total += v;
                }
            }
        }
        assert_eq!(total, nonisolated as f64, "histogram covers every non-isolated row once");
    }

    #[test]
    fn shutdown_stops_every_shard() {
        let a = graph(12);
        let feats = Dense::filled(12, 4, 0.1);
        let mut eng = ShardedEngine::new(a, feats.clone(), feats, OpSet::gcn(), 3, config());
        eng.embed(&[1, 11]).unwrap();
        eng.shutdown();
        assert_eq!(eng.embed(&[1]), Err(ServeError::EngineShutdown));
    }

    #[test]
    fn shutdown_rejects_even_full_cache_hits() {
        use fusedmm_cache::CacheConfig;
        let a = graph(12);
        let feats = Dense::filled(12, 4, 0.1);
        let mut eng = ShardedEngine::new(
            a,
            feats.clone(),
            feats,
            OpSet::gcn(),
            3,
            EngineConfig { cache: Some(CacheConfig::default()), ..config() },
        );
        eng.embed(&[1, 11]).unwrap();
        eng.shutdown();
        // Both nodes are warm in the shared cache, but the front end
        // must refuse anyway — same contract as the single engine.
        assert_eq!(eng.embed(&[1, 11]), Err(ServeError::EngineShutdown));
    }
}
