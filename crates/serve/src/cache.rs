//! The serving stack's result-cache layer: a
//! [`ResultCache`] bound to one graph's
//! reverse adjacency and subscribed to the engine's
//! [`FeatureStore`](crate::FeatureStore).
//!
//! [`EmbedCache`] is the piece the engines talk to: it splits a request
//! into cache hits and misses (hits filled directly into the response),
//! routes each miss through the cache's in-flight states — the first
//! miss in a validity window **owns** the row computation, concurrent
//! misses on the same vertex **coalesce** onto it and are back-filled
//! when the owner's batch completes — and, as an
//! [`EpochListener`], translates epoch
//! transitions into invalidations. A publish invalidates everything
//! (lazily, by epoch stamp); a delta update invalidates only the
//! patched rows *and their in-neighbors*, the exact dependency set of
//! the kernel's per-row aggregation, computed from the transposed
//! adjacency by [`Csr::touch_set`](fusedmm_sparse::csr::Csr::touch_set).
//!
//! Owned rows travel to the dispatcher as a `FillSet` riding the
//! enqueued request: when the batch's rows come back, the dispatcher
//! resolves every registration (cache insert + waiter back-fill) before
//! completing the caller — so coalesced waiters resolve as soon as the
//! computation does, independent of when (or whether) the owning ticket
//! is harvested.

use std::sync::Arc;

use fusedmm_cache::{CacheConfig, CacheMetrics, InflightOwner, MissRoute, ResultCache};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::fault::FaultPlan;
use crate::store::EpochListener;

/// An embedding result cache for one graph, shared by every engine
/// (or every shard) serving it. Constructed by
/// [`Engine`](crate::Engine) / [`ShardedEngine`](crate::ShardedEngine)
/// when [`EngineConfig::cache`](crate::EngineConfig) is set; callers
/// only observe it through [`CacheMetrics`].
pub struct EmbedCache {
    cache: ResultCache,
    /// `A^T`: row `v` lists the in-neighbors of vertex `v` — the
    /// output rows whose aggregation reads `y_v`.
    rev: Csr,
}

impl std::fmt::Debug for EmbedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbedCache").field("cache", &self.cache).finish_non_exhaustive()
    }
}

impl EmbedCache {
    /// A cache over the output rows of `a` at embedding dimension `d`.
    /// Pays one O(nnz) transpose to own the reverse adjacency the
    /// delta-precise touch sets need.
    pub(crate) fn new(a: &Csr, d: usize, config: CacheConfig) -> EmbedCache {
        EmbedCache { cache: ResultCache::new(a.nrows(), d, config), rev: a.transpose() }
    }

    /// Probe every requested node at the pinned epoch. Hit rows are
    /// copied straight into the matching rows of `out` (one row per
    /// entry of `nodes`, caller-allocated); returns the sorted,
    /// deduplicated missing nodes plus the positions in `nodes` still
    /// to be filled. Records the per-request hit ratio.
    pub(crate) fn split(
        &self,
        nodes: &[usize],
        epoch: u64,
        out: &mut Dense,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut misses = Vec::new();
        let mut positions = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            if self.cache.lookup(u, epoch, out.row_mut(i)) {
                continue;
            }
            misses.push(u);
            positions.push(i);
        }
        self.cache.record_request((nodes.len() - positions.len()) as u64, nodes.len() as u64);
        misses.sort_unstable();
        misses.dedup();
        (misses, positions)
    }

    /// Route one missing node at the pinned epoch: own the computation
    /// or coalesce onto an in-flight one (see
    /// [`ResultCache::route_miss`]).
    pub(crate) fn route_miss(&self, node: usize, epoch: u64) -> MissRoute {
        self.cache.route_miss(node, epoch)
    }

    /// Resolve one owned registration with its computed row.
    pub(crate) fn fill(&self, owner: InflightOwner, row: &[f32]) {
        self.cache.fill(owner, row);
    }

    /// Abandon one owned registration (the computation failed).
    pub(crate) fn abort(&self, owner: InflightOwner) {
        self.cache.abort(owner);
    }

    /// The lock stripe `node`'s entry lives in (the fault plan's
    /// poisoned-segment targeting).
    pub(crate) fn segment_of(&self, node: usize) -> usize {
        self.cache.segment_of(node)
    }

    /// Point-in-time cache statistics.
    pub fn metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }
}

impl EpochListener for EmbedCache {
    fn on_publish(&self, epoch: u64) {
        self.cache.invalidate_all(epoch);
    }

    fn on_delta(&self, epoch: u64, rows: &[usize]) {
        // The touch set may include patched Y-row ids beyond the
        // output row space on rectangular graphs; the cache ignores
        // out-of-range ids.
        self.cache.invalidate_rows(epoch, &self.rev.touch_set(rows));
    }
}

/// The in-flight registrations one enqueued request owns, riding the
/// dispatcher queue with it: `owners[i]` is the registration for the
/// request's `i`-th node. The dispatcher resolves the set with
/// [`FillSet::complete`] when the rows are computed; a set dropped
/// unresolved (the request never dispatched, e.g. enqueue raced a
/// shutdown) aborts every registration so coalesced waiters observe
/// the failure instead of hanging.
pub(crate) struct FillSet {
    cache: Arc<EmbedCache>,
    owners: Vec<InflightOwner>,
    /// When a fault plan poisons a cache segment, fills landing in it
    /// are aborted instead of inserted — the owning request still gets
    /// its computed rows, but the row is never cached and coalesced
    /// waiters observe the failure (chaos coverage for the abort path).
    fault: Option<Arc<FaultPlan>>,
}

impl FillSet {
    /// `owners[i]` must correspond to the `i`-th node of the request
    /// this set rides with.
    pub(crate) fn new(
        cache: Arc<EmbedCache>,
        owners: Vec<InflightOwner>,
        fault: Option<Arc<FaultPlan>>,
    ) -> FillSet {
        FillSet { cache, owners, fault }
    }

    /// Resolve every registration: `rows.row(i)` is the computed row
    /// for `owners[i]` — inserted into the cache and sent to every
    /// coalesced waiter (or aborted, when the fault plan poisoned the
    /// owner's segment).
    pub(crate) fn complete(mut self, rows: &Dense) {
        assert_eq!(rows.nrows(), self.owners.len(), "one computed row per owned registration");
        let poisoned = self.fault.as_ref().and_then(|f| f.poisoned_segment());
        for (i, owner) in self.owners.drain(..).enumerate() {
            if poisoned == Some(self.cache.segment_of(owner.node())) {
                self.cache.abort(owner);
            } else {
                self.cache.fill(owner, rows.row(i));
            }
        }
    }
}

impl Drop for FillSet {
    fn drop(&mut self) {
        for owner in self.owners.drain(..) {
            self.cache.abort(owner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn ring(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        c.to_csr(Dedup::Sum)
    }

    /// Route-and-fill every node as an owner — the shape the
    /// dispatcher's [`FillSet`] path takes with no contention.
    fn fill_all(cache: &EmbedCache, epoch: u64, nodes: &[usize], rows: &Dense) {
        for (i, &u) in nodes.iter().enumerate() {
            match cache.route_miss(u, epoch) {
                MissRoute::Owner(owner) => cache.fill(owner, rows.row(i)),
                _ => panic!("uncontended cold route must own"),
            }
        }
    }

    #[test]
    fn split_fills_hits_and_returns_miss_positions() {
        let a = ring(6);
        let cache = EmbedCache::new(&a, 2, CacheConfig::default());
        let mut out = Dense::zeros(4, 2);
        // Nothing cached yet: everything misses, duplicates dedup.
        let (misses, positions) = cache.split(&[3, 1, 3, 5], 0, &mut out);
        assert_eq!(misses, vec![1, 3, 5]);
        assert_eq!(positions, vec![0, 1, 2, 3]);
        // Fill and re-probe: all hits, rows land in place.
        let rows = Dense::from_rows(3, 2, &[1.0, 1.0, 3.0, 3.0, 5.0, 5.0]).unwrap();
        fill_all(&cache, 0, &misses, &rows);
        let mut out2 = Dense::zeros(4, 2);
        let (misses2, positions2) = cache.split(&[3, 1, 3, 5], 0, &mut out2);
        assert!(misses2.is_empty() && positions2.is_empty());
        assert_eq!(out2.row(0), &[3.0, 3.0]);
        assert_eq!(out2.row(1), &[1.0, 1.0]);
        assert_eq!(out2.row(2), &[3.0, 3.0]);
        assert_eq!(out2.row(3), &[5.0, 5.0]);
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (4, 4));
        assert_eq!(m.hit_ratio.count, 2, "one ratio observation per request");
    }

    #[test]
    fn delta_listener_invalidates_patched_rows_and_in_neighbors_only() {
        // Ring u→u+1: patching v invalidates v (its X row) and v-1
        // (aggregates y_v). Everything else survives.
        let n = 8;
        let cache = EmbedCache::new(&ring(n), 2, CacheConfig::default());
        let all: Vec<usize> = (0..n).collect();
        let rows = Dense::from_fn(n, 2, |r, _| r as f32);
        fill_all(&cache, 0, &all, &rows);
        cache.on_delta(1, &[4]);
        let mut out = Dense::zeros(n, 2);
        let (misses, _) = cache.split(&all, 1, &mut out);
        assert_eq!(misses, vec![3, 4], "only vertex 4 and its in-neighbor 3 were retired");
        assert_eq!(cache.metrics().invalidated_rows, 2);
    }

    #[test]
    fn publish_listener_flushes_lazily() {
        let cache = EmbedCache::new(&ring(4), 2, CacheConfig::default());
        fill_all(&cache, 0, &[0, 1, 2, 3], &Dense::zeros(4, 2));
        cache.on_publish(1);
        let mut out = Dense::zeros(4, 2);
        let (misses, _) = cache.split(&[0, 1, 2, 3], 1, &mut out);
        assert_eq!(misses, vec![0, 1, 2, 3]);
        assert_eq!(cache.metrics().flushes, 1);
    }

    #[test]
    fn dropped_fillset_aborts_its_registrations() {
        let cache = Arc::new(EmbedCache::new(&ring(4), 2, CacheConfig::default()));
        let MissRoute::Owner(owner) = cache.route_miss(2, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = cache.route_miss(2, 0) else { panic!("waiter") };
        drop(FillSet::new(Arc::clone(&cache), vec![owner], None));
        assert!(w.wait().is_err(), "waiter observes the abort, not a hang");
        assert_eq!(cache.metrics().inflight_rows, 0);
    }

    #[test]
    fn completed_fillset_backfills_waiters_and_cache() {
        let cache = Arc::new(EmbedCache::new(&ring(4), 2, CacheConfig::default()));
        let MissRoute::Owner(o1) = cache.route_miss(1, 0) else { panic!("owner") };
        let MissRoute::Owner(o2) = cache.route_miss(3, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = cache.route_miss(3, 0) else { panic!("waiter") };
        let rows = Dense::from_rows(2, 2, &[1.0, 1.5, 3.0, 3.5]).unwrap();
        FillSet::new(Arc::clone(&cache), vec![o1, o2], None).complete(&rows);
        assert_eq!(w.wait().unwrap().as_ref(), &[3.0, 3.5]);
        let mut out = Dense::zeros(2, 2);
        let (misses, _) = cache.split(&[1, 3], 0, &mut out);
        assert!(misses.is_empty(), "both rows resident after the fill");
        assert_eq!(out.row(0), &[1.0, 1.5]);
        assert_eq!(out.row(1), &[3.0, 3.5]);
    }

    #[test]
    fn poisoned_segment_aborts_only_its_fills() {
        let cache = Arc::new(EmbedCache::new(&ring(4), 2, CacheConfig::default()));
        let poisoned = cache.segment_of(2);
        let healthy =
            (0..4).find(|&u| cache.segment_of(u) != poisoned).expect("more than one stripe");
        let plan = Arc::new(FaultPlan::parse(&format!("poison_segment={poisoned}")).unwrap());
        let MissRoute::Owner(o1) = cache.route_miss(2, 0) else { panic!("owner") };
        let MissRoute::Waiter(w_poisoned) = cache.route_miss(2, 0) else { panic!("waiter") };
        let MissRoute::Owner(o2) = cache.route_miss(healthy, 0) else { panic!("owner") };
        let MissRoute::Waiter(w_healthy) = cache.route_miss(healthy, 0) else { panic!("waiter") };
        let rows = Dense::from_rows(2, 2, &[2.0, 2.5, 7.0, 7.5]).unwrap();
        FillSet::new(Arc::clone(&cache), vec![o1, o2], Some(plan)).complete(&rows);
        assert!(w_poisoned.wait().is_err(), "poisoned fill aborted, waiter fails cleanly");
        assert_eq!(w_healthy.wait().unwrap().as_ref(), &[7.0, 7.5]);
        let mut out = Dense::zeros(1, 2);
        let (misses, _) = cache.split(&[2], 0, &mut out);
        assert_eq!(misses, vec![2], "the poisoned row was never cached");
    }
}
