//! The serving stack's result-cache layer: a
//! [`ResultCache`](fusedmm_cache::ResultCache) bound to one graph's
//! reverse adjacency and subscribed to the engine's
//! [`FeatureStore`](crate::FeatureStore).
//!
//! [`EmbedCache`] is the piece the engines talk to: it splits a request
//! into cache hits and misses (hits filled directly into the response),
//! back-fills computed miss rows, and — as an
//! [`EpochListener`](crate::store::EpochListener) — translates epoch
//! transitions into invalidations. A publish invalidates everything
//! (lazily, by epoch stamp); a delta update invalidates only the
//! patched rows *and their in-neighbors*, the exact dependency set of
//! the kernel's per-row aggregation, computed from the transposed
//! adjacency by [`Csr::touch_set`](fusedmm_sparse::csr::Csr::touch_set).

use std::time::Instant;

use fusedmm_cache::{CacheConfig, CacheMetrics, ResultCache};
use fusedmm_perf::hist::LatencyHistogram;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::engine::ServeError;
use crate::store::EpochListener;

/// An embedding result cache for one graph, shared by every engine
/// (or every shard) serving it. Constructed by
/// [`Engine`](crate::Engine) / [`ShardedEngine`](crate::ShardedEngine)
/// when [`EngineConfig::cache`](crate::EngineConfig) is set; callers
/// only observe it through [`CacheMetrics`].
pub struct EmbedCache {
    cache: ResultCache,
    /// `A^T`: row `v` lists the in-neighbors of vertex `v` — the
    /// output rows whose aggregation reads `y_v`.
    rev: Csr,
}

impl std::fmt::Debug for EmbedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbedCache").field("cache", &self.cache).finish_non_exhaustive()
    }
}

impl EmbedCache {
    /// A cache over the output rows of `a` at embedding dimension `d`.
    /// Pays one O(nnz) transpose to own the reverse adjacency the
    /// delta-precise touch sets need.
    pub(crate) fn new(a: &Csr, d: usize, config: CacheConfig) -> EmbedCache {
        EmbedCache { cache: ResultCache::new(a.nrows(), d, config), rev: a.transpose() }
    }

    /// Probe every requested node at the pinned epoch. Hit rows are
    /// copied straight into the matching rows of `out` (one row per
    /// entry of `nodes`, caller-allocated); returns the sorted,
    /// deduplicated missing nodes plus the positions in `nodes` still
    /// to be filled. Records the per-request hit ratio.
    pub(crate) fn split(
        &self,
        nodes: &[usize],
        epoch: u64,
        out: &mut Dense,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut misses = Vec::new();
        let mut positions = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            if self.cache.lookup(u, epoch, out.row_mut(i)) {
                continue;
            }
            misses.push(u);
            positions.push(i);
        }
        self.cache.record_request((nodes.len() - positions.len()) as u64, nodes.len() as u64);
        misses.sort_unstable();
        misses.dedup();
        (misses, positions)
    }

    /// Store freshly computed rows: `rows.row(i)` is the output for
    /// `union[i]`, all computed at `epoch`.
    pub(crate) fn backfill(&self, epoch: u64, union: &[usize], rows: &Dense) {
        for (i, &u) in union.iter().enumerate() {
            self.cache.insert(u, epoch, rows.row(i));
        }
    }

    /// The whole cache-aware request flow, shared by
    /// [`Engine::embed`](crate::Engine::embed) and
    /// [`ShardedEngine::embed`](crate::ShardedEngine::embed): probe
    /// every node at the pinned epoch, run `compute` on the sorted
    /// deduplicated misses (it must return one row per miss, in that
    /// order), back-fill the cache, and reassemble the response in
    /// request order. Fully cache-served requests never reach a
    /// dispatcher, so their end-to-end latency is recorded into
    /// `hit_latency` here.
    pub(crate) fn serve(
        &self,
        nodes: &[usize],
        epoch: u64,
        hit_latency: &LatencyHistogram,
        compute: impl FnOnce(&[usize]) -> Result<Dense, ServeError>,
    ) -> Result<Dense, ServeError> {
        let t0 = Instant::now();
        let mut out = Dense::zeros(nodes.len(), self.cache.d());
        let (misses, positions) = self.split(nodes, epoch, &mut out);
        if misses.is_empty() {
            hit_latency.record(t0.elapsed());
            return Ok(out);
        }
        let rows = compute(&misses)?;
        self.backfill(epoch, &misses, &rows);
        for &i in &positions {
            let j = misses
                .binary_search(&nodes[i])
                .expect("every miss position's node is in the computed union");
            out.row_mut(i).copy_from_slice(rows.row(j));
        }
        Ok(out)
    }

    /// Point-in-time cache statistics.
    pub fn metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }
}

impl EpochListener for EmbedCache {
    fn on_publish(&self, epoch: u64) {
        self.cache.invalidate_all(epoch);
    }

    fn on_delta(&self, epoch: u64, rows: &[usize]) {
        // The touch set may include patched Y-row ids beyond the
        // output row space on rectangular graphs; the cache ignores
        // out-of-range ids.
        self.cache.invalidate_rows(epoch, &self.rev.touch_set(rows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn ring(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        c.to_csr(Dedup::Sum)
    }

    #[test]
    fn split_fills_hits_and_returns_miss_positions() {
        let a = ring(6);
        let cache = EmbedCache::new(&a, 2, CacheConfig::default());
        let mut out = Dense::zeros(4, 2);
        // Nothing cached yet: everything misses, duplicates dedup.
        let (misses, positions) = cache.split(&[3, 1, 3, 5], 0, &mut out);
        assert_eq!(misses, vec![1, 3, 5]);
        assert_eq!(positions, vec![0, 1, 2, 3]);
        // Back-fill and re-probe: all hits, rows land in place.
        let rows = Dense::from_rows(3, 2, &[1.0, 1.0, 3.0, 3.0, 5.0, 5.0]).unwrap();
        cache.backfill(0, &misses, &rows);
        let mut out2 = Dense::zeros(4, 2);
        let (misses2, positions2) = cache.split(&[3, 1, 3, 5], 0, &mut out2);
        assert!(misses2.is_empty() && positions2.is_empty());
        assert_eq!(out2.row(0), &[3.0, 3.0]);
        assert_eq!(out2.row(1), &[1.0, 1.0]);
        assert_eq!(out2.row(2), &[3.0, 3.0]);
        assert_eq!(out2.row(3), &[5.0, 5.0]);
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (4, 4));
        assert_eq!(m.hit_ratio.count, 2, "one ratio observation per request");
    }

    #[test]
    fn delta_listener_invalidates_patched_rows_and_in_neighbors_only() {
        // Ring u→u+1: patching v invalidates v (its X row) and v-1
        // (aggregates y_v). Everything else survives.
        let n = 8;
        let cache = EmbedCache::new(&ring(n), 2, CacheConfig::default());
        let all: Vec<usize> = (0..n).collect();
        let rows = Dense::from_fn(n, 2, |r, _| r as f32);
        cache.backfill(0, &all, &rows);
        cache.on_delta(1, &[4]);
        let mut out = Dense::zeros(n, 2);
        let (misses, _) = cache.split(&all, 1, &mut out);
        assert_eq!(misses, vec![3, 4], "only vertex 4 and its in-neighbor 3 were retired");
        assert_eq!(cache.metrics().invalidated_rows, 2);
    }

    #[test]
    fn publish_listener_flushes_lazily() {
        let cache = EmbedCache::new(&ring(4), 2, CacheConfig::default());
        cache.backfill(0, &[0, 1, 2, 3], &Dense::zeros(4, 2));
        cache.on_publish(1);
        let mut out = Dense::zeros(4, 2);
        let (misses, _) = cache.split(&[0, 1, 2, 3], 1, &mut out);
        assert_eq!(misses, vec![0, 1, 2, 3]);
        assert_eq!(cache.metrics().flushes, 1);
    }
}
