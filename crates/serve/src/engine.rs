//! The serving engine: graph loaded once, plan prepared once, features
//! borrowed per-batch from an epoch-versioned [`FeatureStore`], three
//! request kinds served concurrently.
//!
//! An engine may own a whole graph ([`Engine::new`] /
//! [`Engine::with_store`]) or one PART1D row band of it (constructed by
//! [`ShardedEngine`](crate::ShardedEngine)): `band_start` maps the
//! band's local CSR rows back to global vertex ids, while `Y` — the
//! column space — and the store stay global. Every batch pins exactly
//! one feature epoch end-to-end, so a response is never torn across a
//! concurrent [`FeatureStore::publish`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fusedmm_cache::{CacheConfig, CacheMetrics, MissRoute};
use fusedmm_core::{Blocking, Plan};
use fusedmm_graph::Reordering;
use fusedmm_ops::OpSet;
use fusedmm_perf::gauge::Gauge;
use fusedmm_perf::hist::{HistogramSnapshot, LatencyHistogram};
use fusedmm_perf::registry::{MetricsRegistry, Sample};
use fusedmm_perf::trace::{SpanCtx, SpanKind, Tracer};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;
use fusedmm_sparse::Permutation;

use crate::admit::{Admission, AdmissionPolicy};
use crate::batcher::{dedup_union, group_by_epoch, scatter_rows, BatchQueue, Pending};
use crate::cache::{EmbedCache, FillSet};
use crate::fault::FaultPlan;
use crate::observe::{apply_labels, push_cache_samples, push_outcome_samples};
use crate::score::score_edges_banded;
use crate::store::{FeatureEpoch, FeatureStore};
use crate::ticket::{
    Completion, EmbedAssembly, EmbedOptions, EmbedResponse, Part, PartRetry, Quality, RequestStats,
    Ticket, TraceHandle, WaiterSlot,
};
use crate::wait::{slot, PartError, SlotRx};

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cap on requested rows the dispatcher coalesces into one kernel
    /// launch. A single larger request is still served whole.
    pub max_batch_rows: usize,
    /// How long the dispatcher lingers after the first request of a
    /// tick so concurrent callers can join the batch. Zero disables
    /// the wait (lowest latency, least coalescing).
    pub coalesce_window: Duration,
    /// Pin the kernel blocking level instead of measuring it with the
    /// autotuner at engine construction (`None` = autotune).
    pub blocking: Option<Blocking>,
    /// Enable the epoch-aware embedding result cache (`None` =
    /// compute every request). Hot repeated rows are then served from
    /// memory; publishes invalidate everything lazily, delta updates
    /// only their dependency touch set. See the README's "Result
    /// caching" section for the semantics.
    pub cache: Option<CacheConfig>,
    /// Request-lifecycle tracer. `None` (the default) uses the
    /// process-wide [`Tracer::global`], whose sample rate comes from
    /// the `FUSEDMM_TRACE` environment variable (unset = tracing off).
    /// Tests inject an explicit tracer here to avoid environment
    /// coupling.
    pub tracer: Option<Arc<Tracer>>,
    /// Admission policy capping in-flight requests and queued rows.
    /// `None` (the default) reads `FUSEDMM_ADMIT_*` from the
    /// environment (unset = unlimited); tests and examples inject an
    /// explicit policy to avoid environment coupling.
    pub admission: Option<AdmissionPolicy>,
    /// Fault-injection plan for chaos testing. `None` (the default)
    /// reads `FUSEDMM_FAULT_PLAN` from the environment (unset =
    /// disabled); pass `Some(Arc::new(FaultPlan::disabled()))` to make
    /// an engine immune regardless of the environment.
    pub fault: Option<Arc<FaultPlan>>,
    /// Reorder the graph at load time (degree sort / RCM BFS — see
    /// [`Reordering`]) to improve locality and band balance on skewed
    /// graphs. External vertex ids are unchanged: requests are
    /// translated at the serving boundary and responses come back in
    /// request order, bit-identical to an unreordered engine. Only
    /// valid with engine-owned features ([`Engine::new`] /
    /// [`ShardedEngine::new`](crate::ShardedEngine::new)): an external
    /// [`FeatureStore`] cannot be assumed to be in permuted row order.
    pub reordering: Option<Reordering>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch_rows: 4096,
            coalesce_window: Duration::from_micros(50),
            blocking: None,
            cache: None,
            tracer: None,
            admission: None,
            fault: None,
            reordering: None,
        }
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A requested node id is outside the loaded graph (or, for a
    /// shard engine, outside the row band it owns).
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// One past the largest vertex id this engine can address.
        nvertices: usize,
    },
    /// The engine has been shut down.
    EngineShutdown,
    /// The admission policy rejected the request: the engine was at
    /// its in-flight or queued-rows cap (load observed at rejection
    /// time included for operator context). Shed requests cost no
    /// kernel time and no queue slot — back off and retry.
    Shed {
        /// Open requests when the policy rejected.
        inflight: u64,
        /// Queued (undispatched) rows when the policy rejected.
        queued_rows: usize,
    },
    /// The request's deadline passed before its rows were computed
    /// (possibly before it was even admitted). No kernel time was
    /// spent past the deadline.
    DeadlineExpired,
    /// A dispatched part of the request failed (its kernel launch
    /// panicked) and the one healthy-path retry failed too.
    PartFailed {
        /// The shard whose part failed terminally (`None` for a
        /// standalone engine or a coalesced-fill failure).
        shard: Option<usize>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NodeOutOfRange { node, nvertices } => {
                write!(f, "node {node} out of range for a graph of {nvertices} vertices")
            }
            ServeError::EngineShutdown => write!(f, "engine has shut down"),
            ServeError::Shed { inflight, queued_rows } => write!(
                f,
                "request shed by admission control ({inflight} in flight, {queued_rows} rows \
                 queued)"
            ),
            ServeError::DeadlineExpired => write!(f, "deadline expired before the rows computed"),
            ServeError::PartFailed { shard: Some(s) } => {
                write!(f, "shard {s} failed the request past its retry")
            }
            ServeError::PartFailed { shard: None } => {
                write!(f, "a part of the request failed past its retry")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Identity of an engine within a (possibly sharded) deployment:
/// where its row band starts, and which shard slot it fills.
pub(crate) struct BandId {
    /// Global vertex id of local CSR row 0 (0 for a whole-graph
    /// engine).
    pub start: usize,
    /// Shard index within a sharded front end (`None` for a standalone
    /// engine) — the `shard` tag on this engine's spans.
    pub shard: Option<usize>,
}

struct EngineShared {
    /// The adjacency rows this engine owns — the whole matrix, or one
    /// PART1D row band of it under local row indexing.
    a: Csr,
    /// Global vertex id of local CSR row 0 (0 for a whole-graph
    /// engine).
    band_start: usize,
    /// Shard index within a sharded front end (`None` standalone);
    /// labels this engine's spans.
    shard: Option<usize>,
    /// Feature source, shared with writers (and sibling shards).
    store: Arc<FeatureStore>,
    /// Result cache for this engine's output rows (whole-graph engines
    /// only; a sharded front end owns one shared cache instead and its
    /// band engines run uncached).
    cache: Option<Arc<EmbedCache>>,
    /// The load-time reordering's permutation (whole-graph engines
    /// only). When set, `a` and every feature epoch live in internal
    /// (permuted) row order; the request path translates external ids
    /// on entry and `infer_full` scatters its rows back on exit, so
    /// callers never see internal ids. Band engines under a sharded
    /// front end carry `None` — the front end owns the translation.
    perm: Option<Arc<Permutation>>,
    ops: OpSet,
    plan: Plan,
    queue: BatchQueue,
    /// Shared (`Arc`) so a fully coalesced ticket — which never reaches
    /// the dispatcher — can record its completion latency here.
    embed_latency: Arc<LatencyHistogram>,
    /// Ticketed + blocking embed requests currently open (begin →
    /// resolve), with the deepest window ever held.
    inflight: Arc<Gauge>,
    score_latency: LatencyHistogram,
    infer_latency: LatencyHistogram,
    batches_dispatched: AtomicU64,
    rows_requested: AtomicU64,
    rows_computed: AtomicU64,
    /// Request reconciliation: begun == harvested + degraded + shed +
    /// failed + abandoned once every ticket has resolved.
    stats: Arc<RequestStats>,
    /// Resolved admission policy (config override or environment).
    admission: AdmissionPolicy,
    /// Resolved fault-injection plan, `None` when chaos is off.
    fault: Option<Arc<FaultPlan>>,
    /// Kernel-launch panics caught at the dispatch boundary.
    panics_caught: AtomicU64,
    /// Requests dropped past their deadline without kernel time.
    expired_dropped: AtomicU64,
    /// Request-lifecycle span recorder (possibly disabled); shared by
    /// a sharded front end and its band engines so span ids and
    /// timestamps are consistent across one request's tree.
    tracer: Arc<Tracer>,
    started: Instant,
    stopped: AtomicBool,
}

impl EngineShared {
    /// One past the last global vertex id this engine's band owns.
    fn band_end(&self) -> usize {
        self.band_start + self.a.nrows()
    }

    /// Enqueue an embedding request pinned to `epoch`; the returned
    /// slot resolves with the rows (or a typed part error) once the
    /// dispatcher serves the batch. Nodes must already be
    /// range-checked. Lives on the shared state (not [`Engine`]) so a
    /// ticket's retry closure can re-enqueue without a handle to the
    /// engine.
    fn enqueue(
        &self,
        nodes: &[usize],
        epoch: Arc<FeatureEpoch>,
        fills: Option<FillSet>,
        trace: Option<SpanCtx>,
        quality: Quality,
        deadline: Option<Instant>,
    ) -> Result<SlotRx, ServeError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServeError::EngineShutdown);
        }
        let tracer = &self.tracer;
        let span = trace.map(|parent| (tracer.child(parent), tracer.now()));
        let (tx, rx) = slot();
        let accepted = self.queue.push(Pending {
            nodes: nodes.to_vec(),
            epoch,
            tx,
            fills,
            trace: span.map(|(ctx, _)| ctx),
            deadline,
            quality,
            enqueued: Instant::now(),
        });
        if !accepted {
            return Err(ServeError::EngineShutdown);
        }
        if let Some((ctx, start)) = span {
            tracer.record(
                ctx,
                SpanKind::Enqueue,
                start,
                tracer.now(),
                self.shard,
                nodes.len() as u64,
            );
        }
        Ok(rx)
    }
}

/// A loaded, ready-to-serve graph model. Share it across request
/// threads by reference (it is `Sync`); dropping it stops the
/// dispatcher.
pub struct Engine {
    shared: Arc<EngineShared>,
    dispatcher: Option<JoinHandle<()>>,
    config: EngineConfig,
}

impl Engine {
    /// Load `a` (adjacency), `x` (target-side features), `y`
    /// (neighbor-side features) and prepare the kernel plan for `ops`.
    /// For plain embedding refresh pass the same features as `x` and
    /// `y`. The features become epoch 0 of a fresh [`FeatureStore`]
    /// (reachable via [`Engine::store`] for live updates). Spawns the
    /// micro-batch dispatcher thread.
    ///
    /// # Panics
    /// Panics when shapes are inconsistent (same contract as
    /// [`fusedmm_core::fusedmm`]).
    pub fn new(a: Csr, x: Dense, y: Dense, ops: OpSet, config: EngineConfig) -> Engine {
        assert_eq!(x.nrows(), a.nrows(), "X must have one row per vertex");
        assert_eq!(y.nrows(), a.ncols(), "Y must have one row per vertex");
        assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
        match config.reordering {
            Some(r) => {
                let perm = Arc::new(r.compute(&a));
                let a = perm.permute_csr(&a);
                let store = Arc::new(FeatureStore::with_permutation(x, y, Arc::clone(&perm)));
                Engine::build(a, store, ops, config, Some(perm))
            }
            None => Engine::build(a, Arc::new(FeatureStore::new(x, y)), ops, config, None),
        }
    }

    /// Like [`Engine::new`], but borrowing features through an existing
    /// [`FeatureStore`] — the shape a training loop publishing live
    /// updates (or several engines sharing one model) uses.
    ///
    /// # Panics
    /// Panics when the store's shapes are inconsistent with `a`, or
    /// when [`EngineConfig::reordering`] is set — an external store
    /// cannot be assumed to hold features in the permuted row order
    /// (use [`Engine::new`], which owns the features end-to-end).
    pub fn with_store(
        a: Csr,
        store: Arc<FeatureStore>,
        ops: OpSet,
        config: EngineConfig,
    ) -> Engine {
        assert!(
            config.reordering.is_none(),
            "EngineConfig::reordering requires engine-owned features (Engine::new): an external \
             FeatureStore is not in permuted row order"
        );
        Engine::build(a, store, ops, config, None)
    }

    /// Shared tail of [`Engine::new`] / [`Engine::with_store`]: `a`
    /// and the store's epochs are already in the same (possibly
    /// permuted) row order.
    fn build(
        a: Csr,
        store: Arc<FeatureStore>,
        ops: OpSet,
        config: EngineConfig,
        perm: Option<Arc<Permutation>>,
    ) -> Engine {
        assert_eq!(store.x_rows(), a.nrows(), "store X must have one row per vertex");
        let d = store.d();
        let plan = match config.blocking {
            Some(b) => {
                Plan::with_blocking(&ops, d, b, fusedmm_core::PartitionStrategy::NnzBalanced)
            }
            None => Plan::prepare(&ops, d),
        };
        let cache = config.cache.map(|cache_cfg| {
            let cache = Arc::new(EmbedCache::new(&a, d, cache_cfg));
            store.subscribe(Arc::clone(&cache) as _);
            cache
        });
        Engine::for_band(a, BandId { start: 0, shard: None }, store, cache, ops, plan, config, perm)
    }

    /// Construct an engine over one PART1D row band: `a` holds global
    /// rows `band.start..band.start + a.nrows()` under local indices,
    /// the store stays global. Used by
    /// [`ShardedEngine`](crate::ShardedEngine); the plan is supplied by
    /// the caller (shards share a tagged
    /// [`PlanCache`](fusedmm_core::PlanCache)).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_band(
        a: Csr,
        band: BandId,
        store: Arc<FeatureStore>,
        cache: Option<Arc<EmbedCache>>,
        ops: OpSet,
        plan: Plan,
        config: EngineConfig,
        perm: Option<Arc<Permutation>>,
    ) -> Engine {
        let band_start = band.start;
        assert!(
            perm.is_none() || band_start == 0,
            "a reordering permutation belongs to whole-graph engines; band engines serve \
             internal ids"
        );
        assert!(
            store.x_rows() >= band_start + a.nrows(),
            "store X ({} rows) must cover the band ending at {}",
            store.x_rows(),
            band_start + a.nrows()
        );
        assert_eq!(store.y_rows(), a.ncols(), "store Y must span the band's (global) columns");
        assert!(
            cache.is_none() || band_start == 0,
            "band engines are uncached; the sharded front end owns the shared cache"
        );
        let tracer = config.tracer.clone().unwrap_or_else(|| Arc::clone(Tracer::global()));
        let admission = config.admission.unwrap_or_else(AdmissionPolicy::from_env);
        let fault = config.fault.clone().or_else(FaultPlan::from_env);
        let fault = fault.filter(|f| f.is_active());
        let shared = Arc::new(EngineShared {
            a,
            band_start,
            shard: band.shard,
            store,
            cache,
            perm,
            ops,
            plan,
            queue: BatchQueue::new(),
            embed_latency: Arc::new(LatencyHistogram::new()),
            inflight: Arc::new(Gauge::new()),
            score_latency: LatencyHistogram::new(),
            infer_latency: LatencyHistogram::new(),
            batches_dispatched: AtomicU64::new(0),
            rows_requested: AtomicU64::new(0),
            rows_computed: AtomicU64::new(0),
            stats: Arc::new(RequestStats::default()),
            admission,
            fault,
            panics_caught: AtomicU64::new(0),
            expired_dropped: AtomicU64::new(0),
            tracer,
            started: Instant::now(),
            stopped: AtomicBool::new(false),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("fusedmm-serve-dispatch".into())
                .spawn(move || dispatch_loop(&shared, &config))
                .expect("spawn dispatcher thread")
        };
        Engine { shared, dispatcher: Some(worker), config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of vertices (adjacency rows) this engine owns — the whole
    /// graph, or the height of its row band.
    pub fn nvertices(&self) -> usize {
        self.shared.a.nrows()
    }

    /// Global vertex id of the first row this engine owns (0 unless it
    /// serves a shard band).
    pub fn band_start(&self) -> usize {
        self.shared.band_start
    }

    /// The embedding dimension served.
    pub fn dimension(&self) -> usize {
        self.shared.store.d()
    }

    /// The feature store this engine reads through — hand it to a
    /// training loop to [`publish`](FeatureStore::publish) refreshed
    /// embeddings without stopping traffic.
    pub fn store(&self) -> &Arc<FeatureStore> {
        &self.shared.store
    }

    /// The frozen kernel plan this engine executes under.
    pub fn plan(&self) -> Plan {
        self.shared.plan
    }

    /// The SIMD backend the plan was prepared on — surfaced so serving
    /// deployments can log which hardware path their latencies belong
    /// to (see [`fusedmm_core::cpu_features`]).
    pub fn backend(&self) -> fusedmm_core::Backend {
        self.shared.plan.backend()
    }

    /// Refresh embeddings for `nodes` (any order, duplicates allowed):
    /// returns one output row per requested node, equal to the matching
    /// rows of the full-graph kernel, all computed from the feature
    /// epoch current at enqueue time. Blocks until the micro-batcher
    /// completes the containing batch — implemented as
    /// [`Engine::embed_begin`] followed by [`Ticket::wait`], so the
    /// blocking and ticketed paths are the same code and bit-identical
    /// by construction.
    ///
    /// With the result cache enabled
    /// ([`EngineConfig::cache`]), rows still valid at the pinned epoch
    /// are served from memory and only the misses go through the
    /// micro-batcher — bit-identical either way, because a hit is only
    /// admitted when no invalidating write landed since the row was
    /// computed.
    pub fn embed(&self, nodes: &[usize]) -> Result<Dense, ServeError> {
        self.embed_begin(nodes)?.wait()
    }

    /// Begin an embedding request without blocking: the request pins
    /// the current feature epoch and enters the micro-batcher (cache
    /// hits are resolved immediately; misses that another in-flight
    /// request is already computing coalesce onto it), and the
    /// returned [`Ticket`] harvests the response on demand — `poll` it,
    /// `wait` it, or `wait_deadline` it. One caller can hold thousands
    /// of open tickets; [`EngineMetrics::inflight`] gauges the window.
    ///
    /// Errors are eager: out-of-range nodes, shutdown, admission
    /// rejection, and pre-expired deadlines are reported here, not
    /// deferred into the ticket.
    pub fn embed_begin(&self, nodes: &[usize]) -> Result<Ticket<Dense>, ServeError> {
        Ok(self.embed_begin_opts(nodes, EmbedOptions::default())?.map(|r| r.rows))
    }

    /// [`Engine::embed_begin`] with per-request [`EmbedOptions`]: an
    /// optional deadline (expired work is dropped before the kernel
    /// launch) and a [`Quality`] tier. The full [`EmbedResponse`]
    /// carries per-row `served_degraded` marks and the tier actually
    /// served (the admission ladder may downgrade `Exact` to
    /// `CachedOnly` near the in-flight cap).
    pub fn embed_begin_opts(
        &self,
        nodes: &[usize],
        opts: EmbedOptions,
    ) -> Result<Ticket<EmbedResponse>, ServeError> {
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(ServeError::EngineShutdown);
        }
        if nodes.is_empty() {
            self.shared.stats.ready();
            return Ok(Ticket::ready(Ok(EmbedResponse {
                rows: Dense::zeros(0, self.dimension()),
                served_degraded: Vec::new(),
                quality: opts.quality,
            })));
        }
        self.check_nodes(nodes.iter().copied())?;
        // Reordered engines translate external ids to internal rows
        // once, here; everything downstream — cache keys, coalescing,
        // the kernels — runs on internal ids, and the response is
        // positional (row i answers `nodes[i]`), so no reverse map is
        // needed on the way out.
        let mapped: Vec<usize>;
        let nodes: &[usize] = match &self.shared.perm {
            Some(p) => {
                mapped = p.map_to_new(nodes);
                &mapped
            }
            None => nodes,
        };
        // Admission runs before this request acquires the in-flight
        // gauge, so it never counts itself toward the cap it is being
        // judged against.
        let mut quality = opts.quality;
        let inflight = self.shared.inflight.value();
        let queued_rows = self.shared.queue.queued_rows();
        match self.shared.admission.decide(inflight, queued_rows) {
            Admission::Admit => {}
            Admission::Degrade => {
                quality = AdmissionPolicy::downgrade(quality, self.shared.cache.is_some());
            }
            Admission::Shed => {
                self.shared.stats.shed();
                return Err(ServeError::Shed { inflight, queued_rows });
            }
        }
        if opts.deadline.is_some_and(|d| d <= Instant::now()) {
            self.shared.stats.begin();
            self.shared.stats.fail();
            return Err(ServeError::DeadlineExpired);
        }
        let t0 = Instant::now();
        let tracer = &self.shared.tracer;
        let root = tracer.sample_root();
        let begin_ns = if root.is_some() { tracer.now() } else { 0 };
        let trace_handle =
            |root: SpanCtx| TraceHandle { tracer: Arc::clone(tracer), root, begin_ns };
        let epoch = self.shared.store.snapshot();
        let guard = self.shared.inflight.acquire();
        if quality == Quality::CachedOnly {
            return Ok(self.embed_cached_only(nodes, &epoch, t0, root, begin_ns));
        }
        if let Quality::TopKNeighbors(_) = quality {
            // Degraded tier: skip the cache entirely — truncated rows
            // must never be cached or mixed with exact rows — and run
            // the degree-truncated kernel. Every row is marked
            // degraded (rows with degree ≤ k happen to be exact, but
            // the response-level contract is "this tier was served").
            let rx = self.shared.enqueue(
                nodes,
                Arc::clone(&epoch),
                None,
                root,
                quality,
                opts.deadline,
            )?;
            self.shared.stats.begin();
            let completion = Completion {
                hist: None,
                stats: Some(Arc::clone(&self.shared.stats)),
                trace: root.map(trace_handle),
            };
            let retry = self.retry_handle(Arc::clone(&epoch), quality, opts.deadline);
            let part = Part::with_retry(nodes.to_vec(), 0, self.shared.shard, rx, Some(retry));
            return Ok(Ticket::pending(EmbedAssembly::direct(
                part,
                vec![true; nodes.len()],
                quality,
                completion,
                guard,
            )));
        }
        let Some(cache) = &self.shared.cache else {
            let rx = self.shared.enqueue(
                nodes,
                Arc::clone(&epoch),
                None,
                root,
                quality,
                opts.deadline,
            )?;
            self.shared.stats.begin();
            let completion = Completion {
                hist: None,
                stats: Some(Arc::clone(&self.shared.stats)),
                trace: root.map(trace_handle),
            };
            let retry = self.retry_handle(Arc::clone(&epoch), quality, opts.deadline);
            let part = Part::with_retry(nodes.to_vec(), 0, self.shared.shard, rx, Some(retry));
            return Ok(Ticket::pending(EmbedAssembly::direct(
                part,
                vec![false; nodes.len()],
                quality,
                completion,
                guard,
            )));
        };
        // Cache path: serve hits from memory, route each miss — the
        // first miss in a validity window owns the computation (and
        // goes through the micro-batcher), concurrent misses on the
        // same vertex coalesce onto the in-flight row.
        let mut out = Dense::zeros(nodes.len(), self.dimension());
        let route_start = if root.is_some() { tracer.now() } else { 0 };
        let (misses, positions) = cache.split(nodes, epoch.epoch(), &mut out);
        if misses.is_empty() {
            if let Some(r) = root {
                let now = tracer.now();
                let route = tracer.child(r);
                tracer.record(
                    route,
                    SpanKind::CacheRoute,
                    route_start,
                    now,
                    self.shared.shard,
                    nodes.len() as u64,
                );
                tracer.record(r, SpanKind::Embed, begin_ns, now, None, nodes.len() as u64);
            }
            self.shared.stats.ready();
            self.shared.embed_latency.record(t0.elapsed());
            return Ok(Ticket::ready(Ok(EmbedResponse {
                rows: out,
                served_degraded: vec![false; nodes.len()],
                quality,
            })));
        }
        let mut owned = Vec::new();
        let mut owners = Vec::new();
        let mut waiters = Vec::new();
        for &u in &misses {
            match cache.route_miss(u, epoch.epoch()) {
                MissRoute::Owner(owner) => {
                    owned.push(u);
                    owners.push(owner);
                }
                MissRoute::Waiter(waiter) => waiters.push(WaiterSlot::new(u, waiter)),
                // A fill landed between the lookup miss and the
                // routing call: the row is already in hand.
                MissRoute::Resident(row) => waiters.push(WaiterSlot::resolved(u, row)),
            }
        }
        if let Some(r) = root {
            let route = tracer.child(r);
            tracer.record(
                route,
                SpanKind::CacheRoute,
                route_start,
                tracer.now(),
                self.shared.shard,
                nodes.len() as u64,
            );
        }
        let mut parts = Vec::new();
        if !owned.is_empty() {
            // The FillSet rides the queue; if the enqueue loses a race
            // with shutdown its Drop aborts the registrations, so
            // coalesced waiters fail instead of hanging.
            let fills = FillSet::new(Arc::clone(cache), owners, self.shared.fault.clone());
            let rx = self.shared.enqueue(
                &owned,
                Arc::clone(&epoch),
                Some(fills),
                root,
                quality,
                opts.deadline,
            )?;
            // The retry path recomputes without fills: the original
            // registrations were aborted by the panicked launch, and a
            // recovery pass should not race fresh coalescers.
            let retry = self.retry_handle(Arc::clone(&epoch), quality, opts.deadline);
            parts.push(Part::with_retry(owned, 0, self.shared.shard, rx, Some(retry)));
        }
        let positions = positions.into_iter().map(|i| (i, nodes[i])).collect();
        // A fully coalesced request never reaches the dispatcher:
        // record its completion here to keep one histogram observation
        // per request.
        let finish_hist = parts.is_empty().then(|| Arc::clone(&self.shared.embed_latency));
        self.shared.stats.begin();
        let completion = Completion {
            hist: finish_hist,
            stats: Some(Arc::clone(&self.shared.stats)),
            trace: root.map(trace_handle),
        };
        Ok(Ticket::pending(EmbedAssembly::assemble(
            out,
            parts,
            waiters,
            positions,
            vec![false; nodes.len()],
            quality,
            completion,
            None,
            guard,
        )))
    }

    /// The `CachedOnly` tier: answer immediately from whatever the
    /// result cache holds at the pinned epoch. Misses come back as
    /// zero rows marked `served_degraded` — no enqueue, no miss
    /// routing, no coalescing, no kernel time. Without a cache every
    /// row is a degraded zero row.
    fn embed_cached_only(
        &self,
        nodes: &[usize],
        epoch: &Arc<FeatureEpoch>,
        t0: Instant,
        root: Option<SpanCtx>,
        begin_ns: u64,
    ) -> Ticket<EmbedResponse> {
        let tracer = &self.shared.tracer;
        let mut out = Dense::zeros(nodes.len(), self.dimension());
        let mut marks = vec![true; nodes.len()];
        if let Some(cache) = &self.shared.cache {
            let route_start = if root.is_some() { tracer.now() } else { 0 };
            let (_, miss_positions) = cache.split(nodes, epoch.epoch(), &mut out);
            marks = vec![false; nodes.len()];
            for &i in &miss_positions {
                marks[i] = true;
            }
            if let Some(r) = root {
                let route = tracer.child(r);
                tracer.record(
                    route,
                    SpanKind::CacheRoute,
                    route_start,
                    tracer.now(),
                    self.shared.shard,
                    nodes.len() as u64,
                );
            }
        }
        if let Some(r) = root {
            tracer.record(r, SpanKind::Embed, begin_ns, tracer.now(), None, nodes.len() as u64);
        }
        if marks.iter().any(|&b| b) {
            self.shared.stats.ready_degraded();
        } else {
            self.shared.stats.ready();
        }
        self.shared.embed_latency.record(t0.elapsed());
        Ticket::ready(Ok(EmbedResponse {
            rows: out,
            served_degraded: marks,
            quality: Quality::CachedOnly,
        }))
    }

    /// Enqueue an embedding request pinned to `epoch`; the slot
    /// completes with the rows once the dispatcher serves the batch
    /// (resolving `fills` — cache inserts plus coalesced-waiter
    /// back-fills — first).
    /// [`ShardedEngine`](crate::ShardedEngine) uses this to fan one
    /// request (and one pinned epoch) out across every involved shard
    /// before collecting any result.
    ///
    /// `trace` is the sampled request's root span context: an
    /// `Enqueue` child span is recorded here (tagged with this
    /// engine's shard slot) and handed to the dispatcher as the parent
    /// of the batch/kernel/cache-fill spans. The caller's tracer must
    /// be this engine's tracer (a sharded front end shares one with
    /// its bands).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn enqueue_pinned(
        &self,
        nodes: &[usize],
        epoch: Arc<FeatureEpoch>,
        fills: Option<FillSet>,
        trace: Option<SpanCtx>,
        quality: Quality,
        deadline: Option<Instant>,
    ) -> Result<SlotRx, ServeError> {
        self.check_nodes(nodes.iter().copied())?;
        self.shared.enqueue(nodes, epoch, fills, trace, quality, deadline)
    }

    /// A one-shot healthy-path re-enqueue for a part whose kernel
    /// launch panicked: same nodes, same pinned epoch (an `Exact`
    /// retry stays bit-identical), no cache fills and no trace parent.
    pub(crate) fn retry_handle(
        &self,
        epoch: Arc<FeatureEpoch>,
        quality: Quality,
        deadline: Option<Instant>,
    ) -> PartRetry {
        let shared = Arc::clone(&self.shared);
        Box::new(move |nodes: &[usize]| shared.enqueue(nodes, epoch, None, None, quality, deadline))
    }

    /// Rows queued (undispatched) in this engine's batcher — the
    /// admission policy's backlog signal, summed across shards by a
    /// sharded front end.
    pub(crate) fn queued_rows(&self) -> usize {
        self.shared.queue.queued_rows()
    }

    /// Kernel-launch panics caught at this engine's dispatch boundary.
    pub(crate) fn panics_caught(&self) -> u64 {
        self.shared.panics_caught.load(Ordering::Relaxed)
    }

    /// Requests this engine's dispatcher dropped past their deadline.
    pub(crate) fn expired_dropped(&self) -> u64 {
        self.shared.expired_dropped.load(Ordering::Relaxed)
    }

    /// Score candidate `(u, v)` edges with the SDDMM-only path (see
    /// [`crate::score::score_edges`]), all against the current feature
    /// epoch. Runs on the calling thread — scoring is O(d) per pair and
    /// needs no batching to be cheap.
    pub fn score_edges(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ServeError> {
        let epoch = self.shared.store.snapshot();
        let mapped: Vec<(usize, usize)>;
        let pairs: &[(usize, usize)] = match &self.shared.perm {
            Some(p) => {
                // Validate in the external id space before translating
                // (`to_new` indexes by id); a reordered engine is
                // square, so one bound covers sources and targets.
                let n = p.len();
                for &(u, v) in pairs {
                    for node in [u, v] {
                        if node >= n {
                            return Err(ServeError::NodeOutOfRange { node, nvertices: n });
                        }
                    }
                }
                mapped = pairs.iter().map(|&(u, v)| (p.to_new(u), p.to_new(v))).collect();
                &mapped
            }
            None => pairs,
        };
        self.score_edges_pinned(pairs, &epoch)
    }

    /// [`Engine::score_edges`] against an explicitly pinned epoch.
    pub(crate) fn score_edges_pinned(
        &self,
        pairs: &[(usize, usize)],
        epoch: &FeatureEpoch,
    ) -> Result<Vec<f32>, ServeError> {
        // Sources index the target-side rows (A/X), targets the
        // neighbor-side rows (Y = A's column space) — these differ on
        // rectangular (minibatch-sliced or band-sharded) graphs.
        let (lo, hi) = (self.shared.band_start, self.shared.band_end());
        let n = self.shared.store.y_rows();
        for &(u, v) in pairs {
            if u < lo || u >= hi {
                return Err(ServeError::NodeOutOfRange { node: u, nvertices: hi });
            }
            if v >= n {
                return Err(ServeError::NodeOutOfRange { node: v, nvertices: n });
            }
        }
        let t0 = Instant::now();
        let scores =
            score_edges_banded(&self.shared.a, lo, pairs, epoch.x(), epoch.y(), &self.shared.ops);
        self.shared.score_latency.record(t0.elapsed());
        Ok(scores)
    }

    /// Inference over every row this engine owns, under the cached plan
    /// and the current feature epoch: the classic `Z = FusedMM(A, X, Y)`
    /// batch call (one band of it, for a shard engine).
    pub fn infer_full(&self) -> Dense {
        let epoch = self.shared.store.snapshot();
        let z = self.infer_pinned(&epoch);
        // Scatter the internal-order rows back so row u answers
        // external vertex u, as on an unreordered engine.
        match &self.shared.perm {
            Some(p) => p.unpermute_rows(&z),
            None => z,
        }
    }

    /// [`Engine::infer_full`] against an explicitly pinned epoch.
    pub(crate) fn infer_pinned(&self, epoch: &FeatureEpoch) -> Dense {
        let t0 = Instant::now();
        let shared = &self.shared;
        let z = if shared.band_start == 0 && epoch.x().nrows() == shared.a.nrows() {
            shared.plan.execute(&shared.a, epoch.x(), epoch.y(), &shared.ops)
        } else {
            // Band engine: the band's X rows are a contiguous slice of
            // the row-major global matrix — one copy, no index vector.
            let d = epoch.x().ncols();
            let lo = shared.band_start * d;
            let hi = shared.band_end() * d;
            let xb = Dense::from_rows(shared.a.nrows(), d, &epoch.x().as_slice()[lo..hi])
                .expect("contiguous band slice has band_len * d entries");
            shared.plan.execute(&shared.a, &xb, epoch.y(), &shared.ops)
        };
        shared.infer_latency.record(t0.elapsed());
        z
    }

    /// Point-in-time serving metrics.
    pub fn metrics(&self) -> EngineMetrics {
        let elapsed = self.shared.started.elapsed();
        let embed = self.shared.embed_latency.snapshot();
        // One consistent (current, peak) pair — see Gauge::snapshot.
        let inflight = self.shared.inflight.snapshot();
        EngineMetrics {
            uptime: elapsed,
            embed_requests_per_sec: embed.throughput(elapsed),
            embed,
            score: self.shared.score_latency.snapshot(),
            infer: self.shared.infer_latency.snapshot(),
            batches_dispatched: self.shared.batches_dispatched.load(Ordering::Relaxed),
            rows_requested: self.shared.rows_requested.load(Ordering::Relaxed),
            rows_computed: self.shared.rows_computed.load(Ordering::Relaxed),
            requests_begun: self.shared.stats.begun.load(Ordering::Relaxed),
            requests_harvested: self.shared.stats.harvested.load(Ordering::Relaxed),
            requests_degraded: self.shared.stats.degraded.load(Ordering::Relaxed),
            requests_shed: self.shared.stats.shed.load(Ordering::Relaxed),
            requests_failed: self.shared.stats.failed.load(Ordering::Relaxed),
            requests_abandoned: self.shared.stats.abandoned.load(Ordering::Relaxed),
            panics_caught: self.shared.panics_caught.load(Ordering::Relaxed),
            expired_dropped: self.shared.expired_dropped.load(Ordering::Relaxed),
            queued_rows: self.shared.queue.queued_rows(),
            inflight: inflight.current,
            inflight_peak: inflight.peak,
            feature_epoch: self.shared.store.current_epoch(),
            epoch_swaps: self.shared.store.swap_count(),
            cache: self.shared.cache.as_ref().map(|c| c.metrics()),
        }
    }

    /// Register this engine's metrics with `registry` as one collector
    /// appending `fusedmm_*` samples, each tagged with `labels` (a
    /// sharded front end passes `[("shard", "<i>")]`). The collector
    /// captures the live atomics — every later
    /// [`MetricsRegistry::snapshot`] sees current values.
    pub fn register_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        let shared = Arc::clone(&self.shared);
        let labels: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        // The adjacency is frozen at load: snapshot its degree shape
        // once and republish with every scrape. Bucket i counts rows
        // with degree in [2^i, 2^{i+1}) — the skew signal behind the
        // hybrid kernel's class split.
        let degree_hist = self.shared.a.degree_histogram_log2();
        registry.register(move |out| {
            for (bucket, &rows) in degree_hist.iter().enumerate() {
                out.push(apply_labels(
                    Sample::gauge("fusedmm_degree_histogram_rows", rows as f64)
                        .label("bucket".to_string(), bucket.to_string()),
                    &labels,
                ));
            }
            let l = |s: Sample| apply_labels(s, &labels);
            out.push(l(Sample::histogram(
                "fusedmm_embed_latency_seconds",
                shared.embed_latency.snapshot(),
            )));
            out.push(l(Sample::histogram(
                "fusedmm_score_latency_seconds",
                shared.score_latency.snapshot(),
            )));
            out.push(l(Sample::histogram(
                "fusedmm_infer_latency_seconds",
                shared.infer_latency.snapshot(),
            )));
            out.push(l(Sample::counter(
                "fusedmm_batches_dispatched_total",
                shared.batches_dispatched.load(Ordering::Relaxed),
            )));
            out.push(l(Sample::counter(
                "fusedmm_rows_requested_total",
                shared.rows_requested.load(Ordering::Relaxed),
            )));
            out.push(l(Sample::counter(
                "fusedmm_rows_computed_total",
                shared.rows_computed.load(Ordering::Relaxed),
            )));
            push_outcome_samples(out, &shared.stats, &labels);
            out.push(l(Sample::gauge("fusedmm_queue_rows", shared.queue.queued_rows() as f64)));
            out.push(l(Sample::counter(
                "fusedmm_panics_caught_total",
                shared.panics_caught.load(Ordering::Relaxed),
            )));
            out.push(l(Sample::counter(
                "fusedmm_expired_dropped_total",
                shared.expired_dropped.load(Ordering::Relaxed),
            )));
            let inflight = shared.inflight.snapshot();
            out.push(l(Sample::gauge("fusedmm_requests_inflight", inflight.current as f64)));
            out.push(l(Sample::gauge("fusedmm_requests_inflight_peak", inflight.peak as f64)));
            out.push(l(Sample::gauge(
                "fusedmm_feature_epoch",
                shared.store.current_epoch() as f64,
            )));
            out.push(l(Sample::counter("fusedmm_epoch_swaps_total", shared.store.swap_count())));
            if let Some(cache) = &shared.cache {
                push_cache_samples(out, &cache.metrics(), &labels);
            }
        });
    }

    /// The result cache's statistics, when one is enabled.
    pub fn cache_metrics(&self) -> Option<CacheMetrics> {
        self.shared.cache.as_ref().map(|c| c.metrics())
    }

    /// The embed-latency histogram (for cross-shard merging).
    pub(crate) fn embed_latency(&self) -> &LatencyHistogram {
        &self.shared.embed_latency
    }

    /// Stop accepting requests, finish queued work, and join the
    /// dispatcher. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.stopped.store(true, Ordering::Release);
        self.shared.queue.shutdown();
        if let Some(worker) = self.dispatcher.take() {
            let _ = worker.join();
        }
    }

    fn check_nodes(&self, nodes: impl IntoIterator<Item = usize>) -> Result<(), ServeError> {
        let (lo, hi) = (self.shared.band_start, self.shared.band_end());
        for node in nodes {
            if node < lo || node >= hi {
                return Err(ServeError::NodeOutOfRange { node, nvertices: hi });
            }
        }
        Ok(())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fail every request in `expired` with a typed `Expired` reply:
/// deadline passed while queued, no kernel time spent. Dropping the
/// `FillSet` aborts any owned cache registrations, so coalesced
/// waiters fail instead of hanging.
fn drop_expired(shared: &EngineShared, expired: Vec<Pending>) {
    for request in expired {
        shared.expired_dropped.fetch_add(1, Ordering::Relaxed);
        drop(request.fills);
        request.tx.send(Err(PartError::Expired));
    }
}

fn dispatch_loop(shared: &EngineShared, config: &EngineConfig) {
    let tracer = &shared.tracer;
    // Monotonic launch counter driving the fault plan's
    // panic-on-nth-batch injection.
    let mut batch_seq: u64 = 0;
    while let Some(drained) = shared.queue.next_batch(config.coalesce_window, config.max_batch_rows)
    {
        drop_expired(shared, drained.expired);
        // Requests pinned to different feature epochs (or different
        // quality tiers) must not share a kernel launch; in the common
        // (no mid-batch publish, one tier) case this is one group and
        // coalescing is unchanged.
        for group in group_by_epoch(drained.batch) {
            // Deadlines are re-checked right before the launch: the
            // coalesce linger (or a long prior group) may have
            // outlasted a deadline that was live at drain time.
            let now = Instant::now();
            let (group, expired_now): (Vec<_>, Vec<_>) =
                group.into_iter().partition(|p| p.deadline.is_none_or(|d| d > now));
            drop_expired(shared, expired_now);
            if group.is_empty() {
                continue;
            }
            let epoch = Arc::clone(&group[0].epoch);
            let quality = group[0].quality;
            // Batch/kernel timestamps are taken once per launch and
            // recorded once per *sampled* request, so each sampled
            // request owns a complete tree even when the batch
            // coalesced many callers.
            let sampled = group.iter().any(|p| p.trace.is_some());
            let batch_start = if sampled { tracer.now() } else { 0 };
            let union = dedup_union(group.iter().map(|p| p.nodes.as_slice()));
            let rows_requested: usize = group.iter().map(|p| p.nodes.len()).sum();
            batch_seq += 1;
            let seq = batch_seq;
            let kernel_start = if sampled { tracer.now() } else { 0 };
            // The launch is a fault boundary: a panic inside the
            // kernel (or injected by the fault plan) is caught here
            // and turned into typed per-request part errors — the
            // dispatcher thread survives, and each ticket retries once
            // on a healthy path before reporting `PartFailed`.
            let launched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(fault) = &shared.fault {
                    fault.maybe_panic(seq);
                }
                match quality {
                    Quality::TopKNeighbors(k) => shared.plan.execute_rows_banded_topk(
                        &shared.a,
                        shared.band_start,
                        &union,
                        k,
                        epoch.x(),
                        epoch.y(),
                        &shared.ops,
                    ),
                    Quality::Exact | Quality::CachedOnly => shared.plan.execute_rows_banded(
                        &shared.a,
                        shared.band_start,
                        &union,
                        epoch.x(),
                        epoch.y(),
                        &shared.ops,
                    ),
                }
            }));
            let union_rows = match launched {
                Ok(rows) => rows,
                Err(_) => {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                    for request in group {
                        // Dropping the FillSet aborts the owned cache
                        // registrations; the requester's ticket gets a
                        // typed panic reply and drives its own retry.
                        drop(request.fills);
                        request.tx.send(Err(PartError::Panicked));
                    }
                    continue;
                }
            };
            let kernel_end = if sampled { tracer.now() } else { 0 };
            // Account before completing requests so a caller that
            // observes its own completion also observes the batch in
            // the metrics.
            shared.batches_dispatched.fetch_add(1, Ordering::Relaxed);
            shared.rows_requested.fetch_add(rows_requested as u64, Ordering::Relaxed);
            shared.rows_computed.fetch_add(union.len() as u64, Ordering::Relaxed);
            for request in group {
                let out = scatter_rows(&union, &union_rows, &request.nodes);
                let batch_ctx = request.trace.map(|parent| tracer.child(parent));
                if let Some(ctx) = batch_ctx {
                    let kernel = tracer.child(ctx);
                    tracer.record(
                        kernel,
                        SpanKind::Kernel,
                        kernel_start,
                        kernel_end,
                        shared.shard,
                        union.len() as u64,
                    );
                }
                // Resolve owned cache registrations first, so coalesced
                // waiters complete as soon as the computation does —
                // independent of when this caller harvests its ticket.
                if let Some(fills) = request.fills {
                    // Injected fill latency: widens the window in which
                    // coalesced waiters are outstanding (chaos coverage
                    // for the waiter paths).
                    if let Some(delay) = shared.fault.as_ref().and_then(|f| f.fill_delay()) {
                        std::thread::sleep(delay);
                    }
                    let fill_start = if batch_ctx.is_some() { tracer.now() } else { 0 };
                    fills.complete(&out);
                    if let Some(ctx) = batch_ctx {
                        let fill = tracer.child(ctx);
                        tracer.record(
                            fill,
                            SpanKind::CacheFill,
                            fill_start,
                            tracer.now(),
                            shared.shard,
                            out.nrows() as u64,
                        );
                    }
                }
                shared.embed_latency.record(request.enqueued.elapsed());
                if let Some(ctx) = batch_ctx {
                    tracer.record(
                        ctx,
                        SpanKind::Batch,
                        batch_start,
                        tracer.now(),
                        shared.shard,
                        rows_requested as u64,
                    );
                }
                // A disconnected receiver just means the caller gave up.
                request.tx.send(Ok(out));
            }
        }
    }
}

/// Serving statistics reported by [`Engine::metrics`].
#[derive(Debug, Clone, Copy)]
pub struct EngineMetrics {
    /// Time since the engine was constructed.
    pub uptime: Duration,
    /// Embedding-request latency distribution (enqueue → completion).
    pub embed: HistogramSnapshot,
    /// Embedding requests per second over the whole uptime.
    pub embed_requests_per_sec: f64,
    /// Edge-scoring latency distribution.
    pub score: HistogramSnapshot,
    /// Full-graph inference latency distribution.
    pub infer: HistogramSnapshot,
    /// Kernel launches the micro-batcher performed.
    pub batches_dispatched: u64,
    /// Total rows callers asked for.
    pub rows_requested: u64,
    /// Total rows actually computed after deduplication (≤ requested
    /// when concurrent requests overlap).
    pub rows_computed: u64,
    /// Embed requests that reached admission (every `embed_begin` that
    /// counted an outcome, including requests resolved at creation and
    /// requests shed at the door).
    pub requests_begun: u64,
    /// Embed requests whose exact response was assembled and returned.
    pub requests_harvested: u64,
    /// Embed requests answered with at least one degraded row
    /// (`CachedOnly` misses, truncated-neighbor tiers).
    pub requests_degraded: u64,
    /// Embed requests rejected by the admission policy.
    pub requests_shed: u64,
    /// Embed requests resolved with an error after admission (deadline
    /// expired, part failed past its retry, shutdown mid-flight).
    pub requests_failed: u64,
    /// Embed requests whose ticket was dropped unresolved.
    /// `begun == harvested + degraded + shed + failed + abandoned`
    /// once every ticket has resolved.
    pub requests_abandoned: u64,
    /// Kernel-launch panics caught at the dispatch boundary (each
    /// failed the launch's requests with a retryable part error).
    pub panics_caught: u64,
    /// Requests the dispatcher dropped past their deadline without
    /// spending kernel time.
    pub expired_dropped: u64,
    /// Rows currently queued (undispatched) in the micro-batcher —
    /// the admission policy's backlog signal.
    pub queued_rows: usize,
    /// Embed requests currently open (begin → resolve): blocking calls
    /// plus every un-harvested [`Ticket`].
    pub inflight: u64,
    /// Deepest in-flight request window ever held.
    pub inflight_peak: u64,
    /// The feature epoch currently served (new snapshots pin this one).
    pub feature_epoch: u64,
    /// Completed feature-store swaps (publishes + delta updates).
    pub epoch_swaps: u64,
    /// Result-cache statistics, when the cache is enabled. With a
    /// cache, `rows_requested`/`rows_computed` count only what reached
    /// the dispatcher (the cache misses).
    pub cache: Option<CacheMetrics>,
}

impl std::fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "embed: {} ({:.0} req/s)", self.embed, self.embed_requests_per_sec)?;
        writeln!(f, "score: {}", self.score)?;
        writeln!(f, "infer: {}", self.infer)?;
        write!(
            f,
            "batches: {}  rows requested: {}  rows computed: {}  requests: {} begun / {} \
             harvested / {} degraded / {} shed / {} failed / {} abandoned  in-flight: {} (peak \
             {})  queued rows: {}  panics caught: {}  expired: {}  epoch: {} ({} swaps)",
            self.batches_dispatched,
            self.rows_requested,
            self.rows_computed,
            self.requests_begun,
            self.requests_harvested,
            self.requests_degraded,
            self.requests_shed,
            self.requests_failed,
            self.requests_abandoned,
            self.inflight,
            self.inflight_peak,
            self.queued_rows,
            self.panics_caught,
            self.expired_dropped,
            self.feature_epoch,
            self.epoch_swaps
        )?;
        if let Some(cache) = &self.cache {
            write!(f, "\ncache: {cache}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_core::fusedmm_reference;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn engine(n: usize, d: usize, ops: OpSet) -> (Engine, Dense) {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=3usize {
                c.push(u, (u + k * 2 + 1) % n, 0.4 + k as f32 * 0.3);
            }
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, d, |r, k| ((r * 5 + k * 11) as f32 * 0.03).sin() * 0.7);
        let reference = fusedmm_reference(&a, &feats, &feats, &ops);
        let cfg = EngineConfig {
            coalesce_window: Duration::ZERO,
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        };
        (Engine::new(a, feats.clone(), feats, ops, cfg), reference)
    }

    #[test]
    fn embed_matches_reference_rows() {
        let (eng, reference) = engine(40, 16, OpSet::sigmoid_embedding(None));
        let nodes = [7usize, 0, 39, 7, 12];
        let z = eng.embed(&nodes).unwrap();
        assert_eq!(z.nrows(), nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for k in 0..16 {
                assert!((z.get(i, k) - reference.get(u, k)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn empty_request_is_cheap_and_valid() {
        let (eng, _) = engine(10, 4, OpSet::gcn());
        let z = eng.embed(&[]).unwrap();
        assert_eq!((z.nrows(), z.ncols()), (0, 4));
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let (eng, _) = engine(10, 4, OpSet::gcn());
        assert_eq!(eng.embed(&[10]), Err(ServeError::NodeOutOfRange { node: 10, nvertices: 10 }));
        assert!(matches!(
            eng.score_edges(&[(0, 11)]),
            Err(ServeError::NodeOutOfRange { node: 11, .. })
        ));
    }

    #[test]
    fn rectangular_graph_scores_targets_against_y_rows() {
        // A 2x5 minibatch slice: 2 target vertices, 5 global vertices.
        let mut c = Coo::new(2, 5);
        c.push(0, 4, 1.0);
        c.push(1, 2, 1.0);
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::filled(2, 4, 0.5);
        let y = Dense::filled(5, 4, 0.25);
        let eng = Engine::new(
            a,
            x,
            y,
            OpSet::sigmoid_embedding(None),
            EngineConfig { blocking: Some(Blocking::Auto), ..EngineConfig::default() },
        );
        // Target v=4 is a valid Y row even though A has only 2 rows.
        let scores = eng.score_edges(&[(1, 4)]).unwrap();
        assert_eq!(scores.len(), 1);
        // Source u=2 is out of A's row space; target v=5 out of Y's.
        assert_eq!(
            eng.score_edges(&[(2, 0)]),
            Err(ServeError::NodeOutOfRange { node: 2, nvertices: 2 })
        );
        assert_eq!(
            eng.score_edges(&[(0, 5)]),
            Err(ServeError::NodeOutOfRange { node: 5, nvertices: 5 })
        );
    }

    #[test]
    fn infer_full_matches_reference() {
        let (eng, reference) = engine(30, 8, OpSet::gcn());
        let z = eng.infer_full();
        assert!(z.max_abs_diff(&reference) < 1e-4);
        assert_eq!(eng.metrics().infer.count, 1);
    }

    #[test]
    fn metrics_count_requests_and_dedup() {
        let (eng, _) = engine(20, 8, OpSet::sigmoid_embedding(None));
        eng.embed(&[1, 2, 3]).unwrap();
        eng.embed(&[3, 3, 3]).unwrap();
        let m = eng.metrics();
        assert_eq!(m.embed.count, 2);
        assert_eq!(m.rows_requested, 6);
        assert!(m.rows_computed <= m.rows_requested);
        assert!(m.batches_dispatched >= 1);
        assert!(m.embed.p99 >= m.embed.p50);
        assert_eq!(m.feature_epoch, 0);
        assert_eq!(m.epoch_swaps, 0);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (mut eng, _) = engine(10, 4, OpSet::gcn());
        eng.embed(&[1]).unwrap();
        eng.shutdown();
        assert_eq!(eng.embed(&[1]), Err(ServeError::EngineShutdown));
    }

    #[test]
    fn publish_changes_served_rows_and_metrics_report_the_epoch() {
        let (eng, reference) = engine(24, 8, OpSet::gcn());
        let before = eng.embed(&[3, 9]).unwrap();
        for k in 0..8 {
            assert!((before.get(0, k) - reference.get(3, k)).abs() < 1e-5);
        }
        // Publish doubled features: GCN output is linear in Y, so the
        // served rows double too.
        let ep0 = eng.store().snapshot();
        let x2 = Dense::from_fn(24, 8, |r, k| ep0.x().get(r, k) * 2.0);
        let y2 = Dense::from_fn(24, 8, |r, k| ep0.y().get(r, k) * 2.0);
        assert_eq!(eng.store().publish(x2, y2), 1);
        let after = eng.embed(&[3, 9]).unwrap();
        for (i, &u) in [3usize, 9].iter().enumerate() {
            for k in 0..8 {
                assert!(
                    (after.get(i, k) - 2.0 * reference.get(u, k)).abs() < 1e-4,
                    "row {u} lane {k} not doubled after publish"
                );
            }
        }
        let m = eng.metrics();
        assert_eq!(m.feature_epoch, 1);
        assert_eq!(m.epoch_swaps, 1);
    }

    #[test]
    fn delta_update_refreshes_neighbor_contributions() {
        // Ring graph: z_u = y_{u+1} under GCN with unit weights.
        let n = 10;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, 4, |r, k| (r * 4 + k) as f32);
        let eng = Engine::new(
            a,
            feats.clone(),
            feats,
            OpSet::gcn(),
            EngineConfig {
                coalesce_window: Duration::ZERO,
                blocking: Some(Blocking::Auto),
                ..EngineConfig::default()
            },
        );
        let patch = Dense::filled(1, 4, -1.0);
        eng.store().delta_update(&[5], &patch, &patch);
        // Node 4 aggregates neighbor 5: sees the patch.
        assert_eq!(eng.embed(&[4]).unwrap().row(0), &[-1.0; 4]);
        // Node 0 aggregates neighbor 1: untouched.
        assert_eq!(eng.embed(&[0]).unwrap().row(0), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn cached_embed_is_identical_and_hits_on_repeats() {
        let (plain, reference) = engine(40, 16, OpSet::sigmoid_embedding(None));
        let cfg = EngineConfig { cache: Some(CacheConfig::default()), ..plain.config().clone() };
        let ep = plain.store().snapshot();
        let cached = Engine::new(
            plain.shared.a.clone(),
            ep.x().clone(),
            ep.y().clone(),
            OpSet::sigmoid_embedding(None),
            cfg,
        );
        let nodes = [7usize, 0, 39, 7, 12];
        let first = cached.embed(&nodes).unwrap();
        assert_eq!(first, plain.embed(&nodes).unwrap(), "cold cache is bit-identical");
        for (i, &u) in nodes.iter().enumerate() {
            for k in 0..16 {
                assert!((first.get(i, k) - reference.get(u, k)).abs() < 1e-5);
            }
        }
        let second = cached.embed(&nodes).unwrap();
        assert_eq!(second, first, "warm cache is bit-identical");
        let m = cached.cache_metrics().expect("cache enabled");
        assert_eq!(m.misses, 5, "cold pass misses every requested row");
        assert_eq!(m.hits, 5, "warm pass hits every requested row");
        assert_eq!(m.inserts, 4, "the deduped union is inserted once per node");
        assert_eq!(m.hit_ratio.count, 2);
        // The dispatcher only ever saw the cold misses.
        assert_eq!(cached.metrics().rows_requested, 4);
    }

    #[test]
    fn publish_flushes_the_cache_and_deltas_keep_untouched_rows_hot() {
        // Ring graph: z_u = y_{u+1} under GCN — served values expose
        // exactly which epoch (and which rows) produced them.
        let n = 10;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, 4, |r, k| (r * 4 + k) as f32);
        let eng = Engine::new(
            a,
            feats.clone(),
            feats.clone(),
            OpSet::gcn(),
            EngineConfig {
                coalesce_window: Duration::ZERO,
                blocking: Some(Blocking::Auto),
                cache: Some(CacheConfig::default()),
                ..EngineConfig::default()
            },
        );
        // Warm every row.
        let all: Vec<usize> = (0..n).collect();
        let warm = eng.embed(&all).unwrap();
        assert_eq!(eng.embed(&all).unwrap(), warm);
        let m0 = eng.cache_metrics().unwrap();
        assert_eq!((m0.hits, m0.misses), (n as u64, n as u64));

        // Delta-patch node 5: rows 4 (aggregates y_5) and 5 retire,
        // everything else keeps hitting.
        let patch = Dense::filled(1, 4, -1.0);
        eng.store().delta_update(&[5], &patch, &patch);
        assert_eq!(eng.embed(&[4]).unwrap().row(0), &[-1.0; 4], "patched value served");
        let after_delta = eng.embed(&all).unwrap();
        for u in 0..n {
            if u == 4 {
                assert_eq!(after_delta.row(u), &[-1.0; 4]);
            } else {
                assert_eq!(after_delta.row(u), warm.row(u), "row {u} unaffected by the delta");
            }
        }
        let m1 = eng.cache_metrics().unwrap();
        assert_eq!(m1.invalidated_rows, 2, "only node 5 and in-neighbor 4 retired");
        // Of the full sweep after the delta, all but rows 4 and 5 hit
        // (row 4 was just recomputed by the single-node request).
        assert!(m1.hits >= m0.hits + (n as u64 - 2));

        // A publish invalidates everything: the next sweep misses all.
        let x2 = Dense::filled(n, 4, 2.0);
        eng.store().publish(x2.clone(), x2);
        let misses_before = eng.cache_metrics().unwrap().misses;
        let after_publish = eng.embed(&all).unwrap();
        for u in 0..n {
            assert_eq!(after_publish.row(u), &[2.0; 4], "published epoch served everywhere");
        }
        let m2 = eng.cache_metrics().unwrap();
        assert_eq!(m2.misses, misses_before + n as u64, "publish flushed the whole hot set");
        assert_eq!(m2.flushes, 1);
    }

    #[test]
    fn cached_engine_shutdown_still_rejects_requests() {
        let n = 12;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let feats = Dense::filled(n, 4, 1.0);
        let mut eng = Engine::new(
            c.to_csr(Dedup::Sum),
            feats.clone(),
            feats,
            OpSet::gcn(),
            EngineConfig {
                coalesce_window: Duration::ZERO,
                blocking: Some(Blocking::Auto),
                cache: Some(CacheConfig::default()),
                ..EngineConfig::default()
            },
        );
        eng.embed(&[1]).unwrap();
        eng.shutdown();
        // Even a would-be full cache hit is refused after shutdown.
        assert_eq!(eng.embed(&[1]), Err(ServeError::EngineShutdown));
    }

    #[test]
    fn admission_sheds_at_the_inflight_cap_and_reconciles() {
        let (plain, _) = engine(20, 8, OpSet::gcn());
        let cfg = EngineConfig {
            admission: Some(AdmissionPolicy {
                max_inflight: 1,
                max_queued_rows: 0,
                degrade_fraction: 1.0,
            }),
            ..plain.config().clone()
        };
        let ep = plain.store().snapshot();
        let eng =
            Engine::new(plain.shared.a.clone(), ep.x().clone(), ep.y().clone(), OpSet::gcn(), cfg);
        let held = eng.embed_begin(&[1]).unwrap();
        match eng.embed_begin(&[2]) {
            Err(ServeError::Shed { inflight, .. }) => assert_eq!(inflight, 1),
            other => panic!("expected Shed at the cap, got {other:?}"),
        }
        held.wait().unwrap();
        eng.embed(&[2]).unwrap();
        let m = eng.metrics();
        assert_eq!(m.requests_shed, 1);
        assert_eq!(
            m.requests_begun,
            m.requests_harvested
                + m.requests_degraded
                + m.requests_shed
                + m.requests_failed
                + m.requests_abandoned
        );
    }

    #[test]
    fn ladder_downgrades_exact_to_cached_only_near_the_cap() {
        let (plain, _) = engine(20, 8, OpSet::gcn());
        let cfg = EngineConfig {
            cache: Some(CacheConfig::default()),
            admission: Some(AdmissionPolicy {
                max_inflight: 4,
                max_queued_rows: 0,
                degrade_fraction: 0.25,
            }),
            ..plain.config().clone()
        };
        let ep = plain.store().snapshot();
        let eng =
            Engine::new(plain.shared.a.clone(), ep.x().clone(), ep.y().clone(), OpSet::gcn(), cfg);
        let exact = eng.embed(&[3, 7]).unwrap();
        // Hold one miss in flight: load 1 ≥ ceil(4 · 0.25) trips the
        // degrade rung, well below the shed cap of 4.
        let held = eng.embed_begin(&[11]).unwrap();
        let resp = eng.embed_begin_opts(&[3, 7], EmbedOptions::default()).unwrap().wait().unwrap();
        assert_eq!(resp.quality, Quality::CachedOnly, "ladder downgraded before shedding");
        assert!(!resp.any_degraded(), "warm rows are still the exact cached values");
        assert_eq!(resp.rows, exact);
        held.wait().unwrap();
    }

    #[test]
    fn pre_expired_deadline_fails_fast_and_counts_failed() {
        let (eng, _) = engine(10, 4, OpSet::gcn());
        let opts = EmbedOptions::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(eng.embed_begin_opts(&[1], opts).unwrap_err(), ServeError::DeadlineExpired);
        let m = eng.metrics();
        assert_eq!(m.requests_failed, 1);
        assert_eq!(m.requests_begun, 1);
    }

    #[test]
    fn queued_request_expiring_before_launch_fails_typed() {
        let (plain, _) = engine(10, 4, OpSet::gcn());
        // A long coalesce linger guarantees the short deadline passes
        // while the request sits in the queue.
        let cfg =
            EngineConfig { coalesce_window: Duration::from_millis(50), ..plain.config().clone() };
        let ep = plain.store().snapshot();
        let eng =
            Engine::new(plain.shared.a.clone(), ep.x().clone(), ep.y().clone(), OpSet::gcn(), cfg);
        let opts = EmbedOptions::with_deadline(Instant::now() + Duration::from_millis(5));
        let t = eng.embed_begin_opts(&[1], opts).unwrap();
        assert_eq!(t.wait().unwrap_err(), ServeError::DeadlineExpired);
        let m = eng.metrics();
        assert_eq!(m.expired_dropped, 1);
        assert_eq!(m.requests_failed, 1);
        assert_eq!(m.rows_computed, 0, "no kernel time was spent past the deadline");
    }

    #[test]
    fn injected_panics_fail_requests_typed_after_one_retry() {
        crate::fault::quiet_injected_panics();
        let (plain, _) = engine(10, 4, OpSet::gcn());
        let cfg = EngineConfig {
            fault: Some(Arc::new(FaultPlan::parse("panic_every=1").unwrap())),
            ..plain.config().clone()
        };
        let ep = plain.store().snapshot();
        let eng =
            Engine::new(plain.shared.a.clone(), ep.x().clone(), ep.y().clone(), OpSet::gcn(), cfg);
        assert_eq!(eng.embed(&[1]).unwrap_err(), ServeError::PartFailed { shard: None });
        let m = eng.metrics();
        assert!(m.panics_caught >= 2, "the original launch and the retry both panicked");
        assert_eq!(m.requests_failed, 1);
        assert_eq!(
            m.requests_begun,
            m.requests_harvested
                + m.requests_degraded
                + m.requests_shed
                + m.requests_failed
                + m.requests_abandoned
        );
    }

    #[test]
    fn panicked_launch_recovers_via_retry_bit_identical() {
        crate::fault::quiet_injected_panics();
        let (plain, reference) = engine(20, 8, OpSet::gcn());
        // Batch 2 panics; its retry re-enqueues as batch 3 and lands.
        let cfg = EngineConfig {
            fault: Some(Arc::new(FaultPlan::parse("panic_every=2").unwrap())),
            ..plain.config().clone()
        };
        let ep = plain.store().snapshot();
        let eng =
            Engine::new(plain.shared.a.clone(), ep.x().clone(), ep.y().clone(), OpSet::gcn(), cfg);
        let healthy = eng.embed(&[3]).unwrap();
        let healed = eng.embed(&[3]).unwrap();
        assert_eq!(healed, healthy, "a retried Exact request is bit-identical");
        for k in 0..8 {
            assert!((healed.get(0, k) - reference.get(3, k)).abs() < 1e-5);
        }
        let m = eng.metrics();
        assert_eq!(m.panics_caught, 1);
        assert_eq!(m.requests_harvested, 2);
        assert_eq!(m.requests_failed, 0);
    }

    #[test]
    fn topk_tier_matches_truncated_graph_and_marks_every_row() {
        let (eng, _) = engine(40, 8, OpSet::sigmoid_embedding(None));
        let nodes = [7usize, 0, 39, 7];
        let resp = eng
            .embed_begin_opts(&nodes, EmbedOptions::with_quality(Quality::TopKNeighbors(2)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.quality, Quality::TopKNeighbors(2));
        assert_eq!(resp.degraded_rows(), vec![0, 1, 2, 3]);
        let ep = eng.store().snapshot();
        let truncated =
            fusedmm_reference(&eng.shared.a.top_k_by_weight(2), ep.x(), ep.y(), &eng.shared.ops);
        for (i, &u) in nodes.iter().enumerate() {
            for k in 0..8 {
                assert!(
                    (resp.rows.get(i, k) - truncated.get(u, k)).abs() < 1e-5,
                    "node {u} lane {k}"
                );
            }
        }
        // k at least the max degree leaves the graph intact: the tier
        // is bit-identical to the exact path.
        let full = eng
            .embed_begin_opts(&nodes, EmbedOptions::with_quality(Quality::TopKNeighbors(64)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(full.rows.as_slice(), eng.embed(&nodes).unwrap().as_slice());
    }

    #[test]
    fn cached_only_serves_hits_and_zero_fills_misses() {
        let (plain, _) = engine(20, 8, OpSet::gcn());
        let cfg = EngineConfig { cache: Some(CacheConfig::default()), ..plain.config().clone() };
        let ep = plain.store().snapshot();
        let eng =
            Engine::new(plain.shared.a.clone(), ep.x().clone(), ep.y().clone(), OpSet::gcn(), cfg);
        let exact = eng.embed(&[1, 2]).unwrap();
        let opts = EmbedOptions::with_quality(Quality::CachedOnly);
        let resp = eng.embed_begin_opts(&[1, 9], opts).unwrap().wait().unwrap();
        assert_eq!(resp.quality, Quality::CachedOnly);
        assert_eq!(resp.served_degraded, vec![false, true]);
        assert_eq!(resp.rows.row(0), exact.row(0), "warm row served from cache");
        assert_eq!(resp.rows.row(1), vec![0.0; 8].as_slice(), "cold row zero-filled");
        let warm = eng.embed_begin_opts(&[1, 2], opts).unwrap().wait().unwrap();
        assert!(!warm.any_degraded());
        let m = eng.metrics();
        assert_eq!(m.requests_degraded, 1, "only the partially-missing response was degraded");
        // CachedOnly never enqueues: node 9 was not computed.
        let miss_again = eng.embed_begin_opts(&[9], opts).unwrap().wait().unwrap();
        assert!(miss_again.any_degraded());
    }

    #[test]
    fn cached_only_without_a_cache_is_all_zero_and_all_degraded() {
        let (eng, _) = engine(10, 4, OpSet::gcn());
        let opts = EmbedOptions::with_quality(Quality::CachedOnly);
        let resp = eng.embed_begin_opts(&[1, 2], opts).unwrap().wait().unwrap();
        assert_eq!(resp.served_degraded, vec![true, true]);
        assert_eq!(resp.rows.as_slice(), &[0.0; 8]);
    }

    /// A deliberately skewed graph: vertex 0 is a hub wired to
    /// everyone, the rest form a sparse ring.
    fn skewed(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for v in 1..n {
            c.push(0, v, 0.5 + (v as f32) * 0.01);
            c.push(v, 0, 1.0);
            c.push(v, (v % (n - 1)) + 1, 0.7);
        }
        c.to_csr(Dedup::Sum)
    }

    #[test]
    fn reordered_engine_is_bit_identical_and_keeps_external_ids() {
        let (n, d) = (48, 16);
        let a = skewed(n);
        let feats = Dense::from_fn(n, d, |r, k| ((r * 3 + k * 7) as f32 * 0.05).sin());
        let cfg = EngineConfig {
            coalesce_window: Duration::ZERO,
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        };
        let plain = Engine::new(a.clone(), feats.clone(), feats.clone(), OpSet::gcn(), cfg.clone());
        let nodes = [5usize, 0, 47, 5, 13];
        let pairs = [(0usize, 7usize), (13, 0), (47, 46)];
        let base_embed = plain.embed(&nodes).unwrap();
        let base_scores = plain.score_edges(&pairs).unwrap();
        let base_full = plain.infer_full();
        for r in [Reordering::DegreeSort, Reordering::RcmBfs] {
            let cfg = EngineConfig { reordering: Some(r), ..cfg.clone() };
            let eng = Engine::new(a.clone(), feats.clone(), feats.clone(), OpSet::gcn(), cfg);
            assert_eq!(eng.embed(&nodes).unwrap(), base_embed, "{r:?} embed differs");
            assert_eq!(eng.score_edges(&pairs).unwrap(), base_scores, "{r:?} scores differ");
            assert_eq!(
                eng.infer_full().as_slice(),
                base_full.as_slice(),
                "{r:?} infer_full differs"
            );
            // External id space is unchanged, including its bounds.
            assert_eq!(eng.embed(&[n]), Err(ServeError::NodeOutOfRange { node: n, nvertices: n }));
            assert!(matches!(
                eng.score_edges(&[(0, n)]),
                Err(ServeError::NodeOutOfRange { node, .. }) if node == n
            ));
        }
    }

    #[test]
    fn reordered_engine_store_writes_use_external_ids() {
        // Ring graph: z_u = y_{u+1} under GCN, so served values reveal
        // exactly which external row a write landed on.
        let n = 10;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, 4, |r, k| (r * 4 + k) as f32);
        let eng = Engine::new(
            a,
            feats.clone(),
            feats,
            OpSet::gcn(),
            EngineConfig {
                coalesce_window: Duration::ZERO,
                blocking: Some(Blocking::Auto),
                reordering: Some(Reordering::RcmBfs),
                ..EngineConfig::default()
            },
        );
        let patch = Dense::filled(1, 4, -1.0);
        eng.store().delta_update(&[5], &patch, &patch);
        assert_eq!(eng.embed(&[4]).unwrap().row(0), &[-1.0; 4], "external row 5 was patched");
        assert_eq!(eng.embed(&[0]).unwrap().row(0), &[4.0, 5.0, 6.0, 7.0], "row 1 untouched");
        // A publish in external order serves externally-correct rows.
        let x2 = Dense::from_fn(n, 4, |r, k| (100 * r + k) as f32);
        eng.store().publish(x2.clone(), x2);
        assert_eq!(eng.embed(&[3]).unwrap().row(0), &[400.0, 401.0, 402.0, 403.0]);
    }

    #[test]
    fn reordered_engine_with_cache_is_bit_identical() {
        let (n, d) = (40, 8);
        let a = skewed(n);
        let feats = Dense::from_fn(n, d, |r, k| ((r + k * 5) as f32 * 0.07).cos());
        let cfg = EngineConfig {
            coalesce_window: Duration::ZERO,
            blocking: Some(Blocking::Auto),
            cache: Some(CacheConfig::default()),
            reordering: Some(Reordering::DegreeSort),
            ..EngineConfig::default()
        };
        let plain = Engine::new(
            a.clone(),
            feats.clone(),
            feats.clone(),
            OpSet::sigmoid_embedding(None),
            EngineConfig { cache: None, reordering: None, ..cfg.clone() },
        );
        let eng = Engine::new(a, feats.clone(), feats, OpSet::sigmoid_embedding(None), cfg);
        let nodes = [0usize, 17, 3, 17, 39];
        let cold = eng.embed(&nodes).unwrap();
        assert_eq!(cold, plain.embed(&nodes).unwrap(), "cold reordered cache differs");
        assert_eq!(eng.embed(&nodes).unwrap(), cold, "warm reordered cache differs");
        let m = eng.cache_metrics().unwrap();
        assert_eq!(m.hits, 5, "warm pass hits every row under translated keys");
    }

    #[test]
    #[should_panic(expected = "engine-owned features")]
    fn with_store_rejects_reordering() {
        let a = skewed(8);
        let store = Arc::new(FeatureStore::new(Dense::zeros(8, 4), Dense::zeros(8, 4)));
        let cfg =
            EngineConfig { reordering: Some(Reordering::DegreeSort), ..EngineConfig::default() };
        let _ = Engine::with_store(a, store, OpSet::gcn(), cfg);
    }

    #[test]
    fn concurrent_overlapping_requests_all_match_reference() {
        let (eng, reference) = engine(60, 12, OpSet::sigmoid_embedding(None));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let eng = &eng;
                let reference = &reference;
                s.spawn(move || {
                    for round in 0..5 {
                        let nodes: Vec<usize> =
                            (0..10).map(|i| (t * 7 + round * 13 + i * 3) % 60).collect();
                        let z = eng.embed(&nodes).unwrap();
                        for (i, &u) in nodes.iter().enumerate() {
                            for k in 0..12 {
                                assert!(
                                    (z.get(i, k) - reference.get(u, k)).abs() < 1e-5,
                                    "thread {t} round {round} node {u}"
                                );
                            }
                        }
                    }
                });
            }
        });
        let m = eng.metrics();
        assert_eq!(m.embed.count, 40);
        assert_eq!(m.rows_requested, 400);
    }
}
