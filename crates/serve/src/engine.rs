//! The serving engine: graph + features loaded once, plan prepared
//! once, three request kinds served concurrently.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fusedmm_core::{Blocking, Plan};
use fusedmm_ops::OpSet;
use fusedmm_perf::hist::{HistogramSnapshot, LatencyHistogram};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::batcher::{dedup_union, scatter_rows, BatchQueue, Pending};
use crate::score::score_edges;

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cap on requested rows the dispatcher coalesces into one kernel
    /// launch. A single larger request is still served whole.
    pub max_batch_rows: usize,
    /// How long the dispatcher lingers after the first request of a
    /// tick so concurrent callers can join the batch. Zero disables
    /// the wait (lowest latency, least coalescing).
    pub coalesce_window: Duration,
    /// Pin the kernel blocking level instead of measuring it with the
    /// autotuner at engine construction (`None` = autotune).
    pub blocking: Option<Blocking>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch_rows: 4096,
            coalesce_window: Duration::from_micros(50),
            blocking: None,
        }
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A requested node id is outside the loaded graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of vertices in the loaded graph.
        nvertices: usize,
    },
    /// The engine has been shut down.
    EngineShutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NodeOutOfRange { node, nvertices } => {
                write!(f, "node {node} out of range for a graph of {nvertices} vertices")
            }
            ServeError::EngineShutdown => write!(f, "engine has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

struct EngineShared {
    a: Csr,
    x: Dense,
    y: Dense,
    ops: OpSet,
    plan: Plan,
    queue: BatchQueue,
    embed_latency: LatencyHistogram,
    score_latency: LatencyHistogram,
    infer_latency: LatencyHistogram,
    batches_dispatched: AtomicU64,
    rows_requested: AtomicU64,
    rows_computed: AtomicU64,
    started: Instant,
    stopped: AtomicBool,
}

/// A loaded, ready-to-serve graph model. Share it across request
/// threads by reference (it is `Sync`); dropping it stops the
/// dispatcher.
pub struct Engine {
    shared: Arc<EngineShared>,
    dispatcher: Option<JoinHandle<()>>,
    config: EngineConfig,
}

impl Engine {
    /// Load `a` (adjacency), `x` (target-side features), `y`
    /// (neighbor-side features) and prepare the kernel plan for `ops`.
    /// For plain embedding refresh pass the same features as `x` and
    /// `y`. Spawns the micro-batch dispatcher thread.
    ///
    /// # Panics
    /// Panics when shapes are inconsistent (same contract as
    /// [`fusedmm_core::fusedmm`]).
    pub fn new(a: Csr, x: Dense, y: Dense, ops: OpSet, config: EngineConfig) -> Engine {
        assert_eq!(x.nrows(), a.nrows(), "X must have one row per vertex");
        assert_eq!(y.nrows(), a.ncols(), "Y must have one row per vertex");
        assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
        let d = x.ncols();
        let plan = match config.blocking {
            Some(b) => {
                Plan::with_blocking(&ops, d, b, fusedmm_core::PartitionStrategy::NnzBalanced)
            }
            None => Plan::prepare(&ops, d),
        };
        let shared = Arc::new(EngineShared {
            a,
            x,
            y,
            ops,
            plan,
            queue: BatchQueue::new(),
            embed_latency: LatencyHistogram::new(),
            score_latency: LatencyHistogram::new(),
            infer_latency: LatencyHistogram::new(),
            batches_dispatched: AtomicU64::new(0),
            rows_requested: AtomicU64::new(0),
            rows_computed: AtomicU64::new(0),
            started: Instant::now(),
            stopped: AtomicBool::new(false),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("fusedmm-serve-dispatch".into())
                .spawn(move || dispatch_loop(&shared, &config))
                .expect("spawn dispatcher thread")
        };
        Engine { shared, dispatcher: Some(worker), config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of vertices in the loaded graph.
    pub fn nvertices(&self) -> usize {
        self.shared.a.nrows()
    }

    /// The embedding dimension served.
    pub fn dimension(&self) -> usize {
        self.shared.x.ncols()
    }

    /// The frozen kernel plan this engine executes under.
    pub fn plan(&self) -> Plan {
        self.shared.plan
    }

    /// The SIMD backend the plan was prepared on — surfaced so serving
    /// deployments can log which hardware path their latencies belong
    /// to (see [`fusedmm_core::cpu_features`]).
    pub fn backend(&self) -> fusedmm_core::Backend {
        self.shared.plan.backend()
    }

    /// Refresh embeddings for `nodes` (any order, duplicates allowed):
    /// returns one output row per requested node, equal to the matching
    /// rows of the full-graph kernel. Blocks until the micro-batcher
    /// completes the containing batch.
    pub fn embed(&self, nodes: &[usize]) -> Result<Dense, ServeError> {
        self.check_nodes(nodes.iter().copied())?;
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(ServeError::EngineShutdown);
        }
        if nodes.is_empty() {
            return Ok(Dense::zeros(0, self.dimension()));
        }
        let (tx, rx) = mpsc::channel();
        let accepted =
            self.shared.queue.push(Pending { nodes: nodes.to_vec(), tx, enqueued: Instant::now() });
        if !accepted {
            return Err(ServeError::EngineShutdown);
        }
        rx.recv().map_err(|_| ServeError::EngineShutdown)
    }

    /// Score candidate `(u, v)` edges with the SDDMM-only path (see
    /// [`crate::score::score_edges`]). Runs on the calling thread —
    /// scoring is O(d) per pair and needs no batching to be cheap.
    pub fn score_edges(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ServeError> {
        // Sources index the target-side rows (A/X), targets the
        // neighbor-side rows (Y = A's column space) — these differ on
        // rectangular (minibatch-sliced) graphs.
        let m = self.shared.a.nrows();
        let n = self.shared.y.nrows();
        for &(u, v) in pairs {
            if u >= m {
                return Err(ServeError::NodeOutOfRange { node: u, nvertices: m });
            }
            if v >= n {
                return Err(ServeError::NodeOutOfRange { node: v, nvertices: n });
            }
        }
        let t0 = Instant::now();
        let scores =
            score_edges(&self.shared.a, pairs, &self.shared.x, &self.shared.y, &self.shared.ops);
        self.shared.score_latency.record(t0.elapsed());
        Ok(scores)
    }

    /// Full-graph inference under the cached plan: the classic
    /// `Z = FusedMM(A, X, Y)` batch call.
    pub fn infer_full(&self) -> Dense {
        let t0 = Instant::now();
        let z = self.shared.plan.execute(
            &self.shared.a,
            &self.shared.x,
            &self.shared.y,
            &self.shared.ops,
        );
        self.shared.infer_latency.record(t0.elapsed());
        z
    }

    /// Point-in-time serving metrics.
    pub fn metrics(&self) -> EngineMetrics {
        let elapsed = self.shared.started.elapsed();
        let embed = self.shared.embed_latency.snapshot();
        EngineMetrics {
            uptime: elapsed,
            embed_requests_per_sec: embed.throughput(elapsed),
            embed,
            score: self.shared.score_latency.snapshot(),
            infer: self.shared.infer_latency.snapshot(),
            batches_dispatched: self.shared.batches_dispatched.load(Ordering::Relaxed),
            rows_requested: self.shared.rows_requested.load(Ordering::Relaxed),
            rows_computed: self.shared.rows_computed.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting requests, finish queued work, and join the
    /// dispatcher. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.stopped.store(true, Ordering::Release);
        self.shared.queue.shutdown();
        if let Some(worker) = self.dispatcher.take() {
            let _ = worker.join();
        }
    }

    fn check_nodes(&self, nodes: impl IntoIterator<Item = usize>) -> Result<(), ServeError> {
        let n = self.nvertices();
        for node in nodes {
            if node >= n {
                return Err(ServeError::NodeOutOfRange { node, nvertices: n });
            }
        }
        Ok(())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: &EngineShared, config: &EngineConfig) {
    while let Some(batch) = shared.queue.next_batch(config.coalesce_window, config.max_batch_rows) {
        let union = dedup_union(batch.iter().map(|p| p.nodes.as_slice()));
        let rows_requested: usize = batch.iter().map(|p| p.nodes.len()).sum();
        let union_rows =
            shared.plan.execute_rows(&shared.a, &union, &shared.x, &shared.y, &shared.ops);
        // Account before completing requests so a caller that observes
        // its own completion also observes the batch in the metrics.
        shared.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        shared.rows_requested.fetch_add(rows_requested as u64, Ordering::Relaxed);
        shared.rows_computed.fetch_add(union.len() as u64, Ordering::Relaxed);
        for request in &batch {
            let out = scatter_rows(&union, &union_rows, &request.nodes);
            shared.embed_latency.record(request.enqueued.elapsed());
            // A disconnected receiver just means the caller gave up.
            let _ = request.tx.send(out);
        }
    }
}

/// Serving statistics reported by [`Engine::metrics`].
#[derive(Debug, Clone, Copy)]
pub struct EngineMetrics {
    /// Time since the engine was constructed.
    pub uptime: Duration,
    /// Embedding-request latency distribution (enqueue → completion).
    pub embed: HistogramSnapshot,
    /// Embedding requests per second over the whole uptime.
    pub embed_requests_per_sec: f64,
    /// Edge-scoring latency distribution.
    pub score: HistogramSnapshot,
    /// Full-graph inference latency distribution.
    pub infer: HistogramSnapshot,
    /// Kernel launches the micro-batcher performed.
    pub batches_dispatched: u64,
    /// Total rows callers asked for.
    pub rows_requested: u64,
    /// Total rows actually computed after deduplication (≤ requested
    /// when concurrent requests overlap).
    pub rows_computed: u64,
}

impl std::fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "embed: {} ({:.0} req/s)", self.embed, self.embed_requests_per_sec)?;
        writeln!(f, "score: {}", self.score)?;
        writeln!(f, "infer: {}", self.infer)?;
        write!(
            f,
            "batches: {}  rows requested: {}  rows computed: {}",
            self.batches_dispatched, self.rows_requested, self.rows_computed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_core::fusedmm_reference;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn engine(n: usize, d: usize, ops: OpSet) -> (Engine, Dense) {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=3usize {
                c.push(u, (u + k * 2 + 1) % n, 0.4 + k as f32 * 0.3);
            }
        }
        let a = c.to_csr(Dedup::Sum);
        let feats = Dense::from_fn(n, d, |r, k| ((r * 5 + k * 11) as f32 * 0.03).sin() * 0.7);
        let reference = fusedmm_reference(&a, &feats, &feats, &ops);
        let cfg = EngineConfig {
            coalesce_window: Duration::ZERO,
            blocking: Some(Blocking::Auto),
            ..EngineConfig::default()
        };
        (Engine::new(a, feats.clone(), feats, ops, cfg), reference)
    }

    #[test]
    fn embed_matches_reference_rows() {
        let (eng, reference) = engine(40, 16, OpSet::sigmoid_embedding(None));
        let nodes = [7usize, 0, 39, 7, 12];
        let z = eng.embed(&nodes).unwrap();
        assert_eq!(z.nrows(), nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for k in 0..16 {
                assert!((z.get(i, k) - reference.get(u, k)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn empty_request_is_cheap_and_valid() {
        let (eng, _) = engine(10, 4, OpSet::gcn());
        let z = eng.embed(&[]).unwrap();
        assert_eq!((z.nrows(), z.ncols()), (0, 4));
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let (eng, _) = engine(10, 4, OpSet::gcn());
        assert_eq!(eng.embed(&[10]), Err(ServeError::NodeOutOfRange { node: 10, nvertices: 10 }));
        assert!(matches!(
            eng.score_edges(&[(0, 11)]),
            Err(ServeError::NodeOutOfRange { node: 11, .. })
        ));
    }

    #[test]
    fn rectangular_graph_scores_targets_against_y_rows() {
        // A 2x5 minibatch slice: 2 target vertices, 5 global vertices.
        let mut c = Coo::new(2, 5);
        c.push(0, 4, 1.0);
        c.push(1, 2, 1.0);
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::filled(2, 4, 0.5);
        let y = Dense::filled(5, 4, 0.25);
        let eng = Engine::new(
            a,
            x,
            y,
            OpSet::sigmoid_embedding(None),
            EngineConfig { blocking: Some(Blocking::Auto), ..EngineConfig::default() },
        );
        // Target v=4 is a valid Y row even though A has only 2 rows.
        let scores = eng.score_edges(&[(1, 4)]).unwrap();
        assert_eq!(scores.len(), 1);
        // Source u=2 is out of A's row space; target v=5 out of Y's.
        assert_eq!(
            eng.score_edges(&[(2, 0)]),
            Err(ServeError::NodeOutOfRange { node: 2, nvertices: 2 })
        );
        assert_eq!(
            eng.score_edges(&[(0, 5)]),
            Err(ServeError::NodeOutOfRange { node: 5, nvertices: 5 })
        );
    }

    #[test]
    fn infer_full_matches_reference() {
        let (eng, reference) = engine(30, 8, OpSet::gcn());
        let z = eng.infer_full();
        assert!(z.max_abs_diff(&reference) < 1e-4);
        assert_eq!(eng.metrics().infer.count, 1);
    }

    #[test]
    fn metrics_count_requests_and_dedup() {
        let (eng, _) = engine(20, 8, OpSet::sigmoid_embedding(None));
        eng.embed(&[1, 2, 3]).unwrap();
        eng.embed(&[3, 3, 3]).unwrap();
        let m = eng.metrics();
        assert_eq!(m.embed.count, 2);
        assert_eq!(m.rows_requested, 6);
        assert!(m.rows_computed <= m.rows_requested);
        assert!(m.batches_dispatched >= 1);
        assert!(m.embed.p99 >= m.embed.p50);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (mut eng, _) = engine(10, 4, OpSet::gcn());
        eng.embed(&[1]).unwrap();
        eng.shutdown();
        assert_eq!(eng.embed(&[1]), Err(ServeError::EngineShutdown));
    }

    #[test]
    fn concurrent_overlapping_requests_all_match_reference() {
        let (eng, reference) = engine(60, 12, OpSet::sigmoid_embedding(None));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let eng = &eng;
                let reference = &reference;
                s.spawn(move || {
                    for round in 0..5 {
                        let nodes: Vec<usize> =
                            (0..10).map(|i| (t * 7 + round * 13 + i * 3) % 60).collect();
                        let z = eng.embed(&nodes).unwrap();
                        for (i, &u) in nodes.iter().enumerate() {
                            for k in 0..12 {
                                assert!(
                                    (z.get(i, k) - reference.get(u, k)).abs() < 1e-5,
                                    "thread {t} round {round} node {u}"
                                );
                            }
                        }
                    }
                });
            }
        });
        let m = eng.metrics();
        assert_eq!(m.embed.count, 40);
        assert_eq!(m.rows_requested, 400);
    }
}
