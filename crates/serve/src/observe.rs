//! Metrics-registry integration: the sample vocabularies shared by
//! [`Engine::register_metrics`](crate::Engine::register_metrics) and
//! [`ShardedEngine::register_metrics`](crate::ShardedEngine::register_metrics),
//! plus the kernel-profile collector.
//!
//! Naming conventions (see the README's Observability section): every
//! metric is prefixed `fusedmm_`, monotonic counters end in `_total`,
//! latency summaries in `_seconds`. Labels: `shard` (band index within
//! a sharded front end), and on kernel samples `op` / `d` / `backend`
//! / `blocking`.

use fusedmm_cache::CacheMetrics;
use fusedmm_perf::registry::{MetricsRegistry, Sample};

/// Append every pair of `labels` to `s` (collectors apply one shared
/// label set to all their samples).
pub(crate) fn apply_labels(mut s: Sample, labels: &[(String, String)]) -> Sample {
    for (k, v) in labels {
        s = s.label(k.clone(), v.clone());
    }
    s
}

/// Append one cache's statistics as `fusedmm_cache_*` samples.
pub(crate) fn push_cache_samples(
    out: &mut Vec<Sample>,
    m: &CacheMetrics,
    labels: &[(String, String)],
) {
    let l = |s: Sample| apply_labels(s, labels);
    out.push(l(Sample::counter("fusedmm_cache_hits_total", m.hits)));
    out.push(l(Sample::counter("fusedmm_cache_misses_total", m.misses)));
    out.push(l(Sample::counter("fusedmm_cache_late_hits_total", m.late_hits)));
    out.push(l(Sample::counter("fusedmm_cache_inserts_total", m.inserts)));
    out.push(l(Sample::counter("fusedmm_cache_evictions_total", m.evictions)));
    out.push(l(Sample::counter("fusedmm_cache_invalidated_rows_total", m.invalidated_rows)));
    out.push(l(Sample::counter("fusedmm_cache_flushes_total", m.flushes)));
    out.push(l(Sample::counter("fusedmm_cache_coalesced_misses_total", m.coalesced_misses)));
    out.push(l(Sample::gauge("fusedmm_cache_resident_bytes", m.bytes as f64)));
    out.push(l(Sample::gauge("fusedmm_cache_resident_entries", m.entries as f64)));
    out.push(l(Sample::gauge("fusedmm_cache_inflight_rows", m.inflight_rows as f64)));
    out.push(l(Sample::gauge("fusedmm_cache_inflight_rows_peak", m.inflight_peak_rows as f64)));
    out.push(l(Sample::ratio("fusedmm_cache_hit_ratio", m.hit_ratio)));
}

/// Append one engine's request-outcome counters as
/// `fusedmm_requests_*` samples — the six buckets of the
/// reconciliation invariant `begun == harvested + degraded + shed +
/// failed + abandoned`.
pub(crate) fn push_outcome_samples(
    out: &mut Vec<Sample>,
    stats: &crate::ticket::RequestStats,
    labels: &[(String, String)],
) {
    use std::sync::atomic::Ordering;
    let l = |s: Sample| apply_labels(s, labels);
    out.push(l(Sample::counter(
        "fusedmm_requests_begun_total",
        stats.begun.load(Ordering::Relaxed),
    )));
    out.push(l(Sample::counter(
        "fusedmm_requests_harvested_total",
        stats.harvested.load(Ordering::Relaxed),
    )));
    out.push(l(Sample::counter(
        "fusedmm_requests_degraded_total",
        stats.degraded.load(Ordering::Relaxed),
    )));
    out.push(l(Sample::counter("fusedmm_requests_shed_total", stats.shed.load(Ordering::Relaxed))));
    out.push(l(Sample::counter(
        "fusedmm_requests_failed_total",
        stats.failed.load(Ordering::Relaxed),
    )));
    out.push(l(Sample::counter(
        "fusedmm_requests_abandoned_total",
        stats.abandoned.load(Ordering::Relaxed),
    )));
}

/// Register the process-global kernel profile table
/// ([`fusedmm_core::kernel_profiles`]) with `registry`: one
/// `fusedmm_kernel_*` sample set per `(op, d, backend, blocking)`
/// shape the dispatcher has launched. Serving engines route all row
/// work through the dispatcher, so this covers their kernel time too.
///
/// Convert accumulated edges to FLOPs with
/// [`fusedmm_perf::flops::flops_per_edge`]; the serving bench does
/// this to print achieved-vs-roofline GFLOP/s per shape.
pub fn register_kernel_profiles(registry: &MetricsRegistry) {
    registry.register(|out| {
        for p in fusedmm_core::kernel_profiles() {
            let d = p.d.to_string();
            let l = |s: Sample| {
                s.label("op", p.pattern.name())
                    .label("d", d.clone())
                    .label("backend", p.backend.label())
                    .label("blocking", p.blocking)
            };
            out.push(l(Sample::counter("fusedmm_kernel_calls_total", p.calls)));
            out.push(l(Sample::counter("fusedmm_kernel_rows_total", p.rows)));
            out.push(l(Sample::counter("fusedmm_kernel_edges_total", p.edges)));
            out.push(l(Sample::gauge("fusedmm_kernel_seconds_total", p.elapsed.as_secs_f64())));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_perf::registry::MetricsRegistry;

    #[test]
    fn kernel_profile_collector_exposes_labeled_shapes() {
        use fusedmm_core::fusedmm_opt;
        use fusedmm_ops::OpSet;
        use fusedmm_sparse::coo::{Coo, Dedup};
        use fusedmm_sparse::dense::Dense;
        // A d no other test in this crate uses, so the process-global
        // table assertion is isolated.
        const D: usize = 44;
        let n = 16;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::filled(n, D, 0.3);
        let y = Dense::filled(n, D, 0.2);
        let _ = fusedmm_opt(&a, &x, &y, &OpSet::gcn());
        let reg = MetricsRegistry::new();
        register_kernel_profiles(&reg);
        let snap = reg.snapshot();
        let calls = snap
            .counter("fusedmm_kernel_calls_total", &[("op", "gcn"), ("d", "44")])
            .expect("gcn/44 launch recorded");
        assert!(calls >= 1);
        let sample = snap
            .get("fusedmm_kernel_edges_total", &[("op", "gcn"), ("d", "44")])
            .expect("edges sample");
        assert!(sample.labels.iter().any(|(k, _)| k == "backend"));
        assert!(sample.labels.iter().any(|(k, _)| k == "blocking"));
    }
}
