//! SDDMM-only edge scoring: the message-generation half of FusedMM,
//! evaluated for explicit `(u, v)` candidate pairs.
//!
//! Link-prediction style serving asks "how strongly would `u` connect
//! to `v`?" for candidate pairs that mostly are *not* edges of the
//! stored graph. That is exactly the first three FusedMM steps — VOP,
//! ROP, SOP — with no MOP/AOP aggregation, so no `d`-vector per pair is
//! ever materialized beyond one thread-local scratch row.

use fusedmm_ops::OpSet;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// Score each `(u, v)` pair under `ops`' message model:
/// `score = SOP(ROP(VOP(x_u, y_v, a_uv)), a_uv)`.
///
/// `a_uv` is the stored edge weight when `(u, v)` is an edge of `a` and
/// `1.0` otherwise (a candidate edge is scored as if unweighted). When
/// ROP is a NOOP the d-dimensional message is collapsed to its sum
/// after SOP, keeping the result one scalar per pair.
///
/// # Panics
/// Panics when shapes are inconsistent or a pair index is out of range
/// ([`crate::Engine::score_edges`] is the fallible wrapper).
pub fn score_edges(
    a: &Csr,
    pairs: &[(usize, usize)],
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
) -> Vec<f32> {
    score_edges_banded(a, 0, pairs, x, y, ops)
}

/// [`score_edges`] against a PART1D row band: `a_band` holds global
/// rows `band_start..` under local indices (edge-weight lookups shift
/// by `band_start`), while `x`/`y` stay global — source `u` and target
/// `v` are global vertex ids.
///
/// # Panics
/// Panics when shapes are inconsistent or a pair index is out of range.
pub fn score_edges_banded(
    a_band: &Csr,
    band_start: usize,
    pairs: &[(usize, usize)],
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
) -> Vec<f32> {
    assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
    let d = x.ncols();
    let band_end = band_start + a_band.nrows();
    let mut scratch = vec![0f32; d];
    let mut out = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs {
        assert!(u < x.nrows(), "source vertex {u} out of range for {} rows", x.nrows());
        assert!(v < y.nrows(), "target vertex {v} out of range for {} rows", y.nrows());
        let auv = if (band_start..band_end).contains(&u) {
            a_band.get(u - band_start, v).unwrap_or(1.0)
        } else {
            1.0
        };
        ops.vop.apply(x.row(u), y.row(v), auv, &mut scratch);
        let score = match ops.rop.apply(&scratch) {
            Some(s) => ops.sop.apply_scalar(s, auv),
            None => {
                ops.sop.apply_vec(&mut scratch, auv);
                scratch.iter().sum()
            }
        };
        out.push(score);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_ops::sigmoid;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn setup() -> (Csr, Dense, Dense) {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 2.0);
        c.push(1, 2, 1.0);
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::from_rows(3, 2, &[1.0, 0.5, -0.5, 1.0, 0.25, 0.75]).unwrap();
        let y = Dense::from_rows(3, 2, &[0.2, 0.4, 0.6, 0.8, 1.0, -1.0]).unwrap();
        (a, x, y)
    }

    #[test]
    fn sigmoid_scores_are_sigmoid_of_dot() {
        let (a, x, y) = setup();
        let ops = OpSet::sigmoid_embedding(None);
        let scores = score_edges(&a, &[(0, 2), (2, 0)], &x, &y, &ops);
        // x0·y2 with x0 = (1, 0.5), y2 = (1, -1).
        let dot0 = 1.0 * 1.0 - 0.5;
        let dot1 = 0.25 * 0.2 + 0.75 * 0.4;
        assert!((scores[0] - sigmoid(dot0)).abs() < 1e-6);
        assert!((scores[1] - sigmoid(dot1)).abs() < 1e-6);
    }

    #[test]
    fn existing_edges_use_stored_weight_for_gcn_pattern() {
        let (a, x, y) = setup();
        // GCN pattern: VOP=SEL2ND, ROP=NOOP, SOP=NOOP -> score is the
        // sum of y_v lanes (edge weight only enters MOP, not scoring).
        let ops = OpSet::gcn();
        let scores = score_edges(&a, &[(0, 1)], &x, &y, &ops);
        assert!((scores[0] - (0.6 + 0.8)).abs() < 1e-6);
    }

    #[test]
    fn fr_scores_scale_distance() {
        let (a, x, y) = setup();
        let ops = OpSet::fr_model(2.0);
        let scores = score_edges(&a, &[(1, 1)], &x, &y, &ops);
        let dx = -0.5 - 0.6;
        let dy = 1.0 - 0.8;
        let norm = ((dx * dx + dy * dy) as f32).sqrt();
        assert!((scores[0] - 2.0 * norm).abs() < 1e-5, "got {}, want {}", scores[0], 2.0 * norm);
    }

    #[test]
    fn banded_scores_shift_the_weight_lookup_only() {
        let (a, x, y) = setup();
        let ops = OpSet::sigmoid_embedding(None);
        // Band holding global rows 1..3; edge (1, 2) has stored weight
        // 1.0, pair (2, 0) is a candidate (weight defaults to 1.0).
        let band = a.row_band(1..3);
        let whole = score_edges(&a, &[(1, 2), (2, 0)], &x, &y, &ops);
        let banded = score_edges_banded(&band, 1, &[(1, 2), (2, 0)], &x, &y, &ops);
        assert_eq!(whole, banded, "band offset must not change any score");
    }

    #[test]
    fn empty_pair_list_is_empty() {
        let (a, x, y) = setup();
        assert!(score_edges(&a, &[], &x, &y, &OpSet::sigmoid_embedding(None)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_panics() {
        let (a, x, y) = setup();
        let _ = score_edges(&a, &[(0, 9)], &x, &y, &OpSet::sigmoid_embedding(None));
    }
}
