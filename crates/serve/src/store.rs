//! Epoch-versioned feature storage: the serving engine's write path.
//!
//! The engine used to own `X`/`Y` frozen forever — a training loop had
//! no way to publish refreshed embeddings without restarting traffic.
//! [`FeatureStore`] fixes that with RCU-style versioning:
//!
//! * readers call [`FeatureStore::snapshot`] and get an
//!   `Arc<FeatureEpoch>` — an immutable `(epoch, X, Y)` triple. The
//!   read path is a brief shared-lock Arc clone (no allocation, no
//!   copies, never blocked by an in-progress feature build);
//! * writers call [`FeatureStore::publish`] (whole matrices) or
//!   [`FeatureStore::delta_update`] (a row patch) to mint the next
//!   epoch and swap the pointer. Old epochs stay alive exactly as long
//!   as some in-flight batch still pins them, then drop.
//!
//! The epoch-pinning contract: every serving batch resolves one
//! snapshot up front and computes every output row from it, so a
//! response is never torn across a swap — it reflects exactly one
//! epoch, even while publishes race the request.
//!
//! Feature *shapes* are frozen at store construction (publishing a
//! different `nrows`/`d` panics): engines key their kernel plans on the
//! dimension and validate node ids against the row counts once, at
//! load time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use fusedmm_sparse::dense::Dense;

/// One immutable published generation of the feature matrices.
#[derive(Debug)]
pub struct FeatureEpoch {
    epoch: u64,
    x: Dense,
    y: Dense,
}

impl FeatureEpoch {
    /// The generation number (0 for the load-time features, +1 per
    /// publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Target-side features (one row per vertex of `A`'s row space).
    pub fn x(&self) -> &Dense {
        &self.x
    }

    /// Neighbor-side features (one row per vertex of `A`'s column
    /// space).
    pub fn y(&self) -> &Dense {
        &self.y
    }
}

/// Epoch-versioned `(X, Y)` holder shared by every engine (and every
/// shard) serving the same model. See the module docs for the
/// reader/writer contract.
#[derive(Debug)]
pub struct FeatureStore {
    current: RwLock<Arc<FeatureEpoch>>,
    /// Serializes writers so a `delta_update`'s read-modify-publish is
    /// atomic; readers never touch this.
    writer: Mutex<()>,
    swaps: AtomicU64,
    x_rows: usize,
    y_rows: usize,
    d: usize,
}

impl FeatureStore {
    /// Wrap the load-time features as epoch 0.
    ///
    /// # Panics
    /// Panics when `x` and `y` disagree on the embedding dimension.
    pub fn new(x: Dense, y: Dense) -> FeatureStore {
        assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
        let (x_rows, y_rows, d) = (x.nrows(), y.nrows(), x.ncols());
        FeatureStore {
            current: RwLock::new(Arc::new(FeatureEpoch { epoch: 0, x, y })),
            writer: Mutex::new(()),
            swaps: AtomicU64::new(0),
            x_rows,
            y_rows,
            d,
        }
    }

    /// Rows of `X` (fixed across epochs).
    pub fn x_rows(&self) -> usize {
        self.x_rows
    }

    /// Rows of `Y` (fixed across epochs).
    pub fn y_rows(&self) -> usize {
        self.y_rows
    }

    /// The embedding dimension (fixed across epochs).
    pub fn d(&self) -> usize {
        self.d
    }

    /// Pin the current epoch. The returned snapshot stays valid (and
    /// immutable) for as long as the caller holds it, regardless of
    /// how many publishes happen meanwhile.
    pub fn snapshot(&self) -> Arc<FeatureEpoch> {
        Arc::clone(&self.current.read())
    }

    /// The current epoch number, without pinning it.
    pub fn current_epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// How many epoch swaps ([`publish`](Self::publish) +
    /// [`delta_update`](Self::delta_update)) have completed.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Publish whole replacement matrices as the next epoch; returns
    /// the new epoch number. In-flight batches keep serving the epoch
    /// they pinned; new snapshots see the published features.
    ///
    /// # Panics
    /// Panics when the shapes differ from the load-time shapes.
    pub fn publish(&self, x: Dense, y: Dense) -> u64 {
        self.check_shapes(&x, &y);
        let _w = self.writer.lock();
        self.install(x, y)
    }

    /// Patch `rows` of both matrices — `x_rows_new`/`y_rows_new` hold
    /// one replacement row per entry of `rows` — and publish the result
    /// as the next epoch; returns the new epoch number. The
    /// copy-on-write clone happens outside the reader lock, so readers
    /// are only blocked for the pointer swap.
    ///
    /// # Panics
    /// Panics when a row id is out of range or the patch dimensions
    /// disagree with the store's.
    pub fn delta_update(&self, rows: &[usize], x_rows_new: &Dense, y_rows_new: &Dense) -> u64 {
        assert_eq!(x_rows_new.nrows(), rows.len(), "one X patch row per updated row id");
        assert_eq!(y_rows_new.nrows(), rows.len(), "one Y patch row per updated row id");
        assert_eq!(x_rows_new.ncols(), self.d, "X patch dimension mismatch");
        assert_eq!(y_rows_new.ncols(), self.d, "Y patch dimension mismatch");
        for &u in rows {
            assert!(u < self.x_rows, "patched X row {u} out of range for {} rows", self.x_rows);
            assert!(u < self.y_rows, "patched Y row {u} out of range for {} rows", self.y_rows);
        }
        let _w = self.writer.lock();
        let base = self.snapshot();
        let mut x = base.x.clone();
        let mut y = base.y.clone();
        for (i, &u) in rows.iter().enumerate() {
            x.row_mut(u).copy_from_slice(x_rows_new.row(i));
            y.row_mut(u).copy_from_slice(y_rows_new.row(i));
        }
        self.install(x, y)
    }

    /// Swap in the next epoch (writer lock held by the caller).
    fn install(&self, x: Dense, y: Dense) -> u64 {
        let mut current = self.current.write();
        let epoch = current.epoch + 1;
        *current = Arc::new(FeatureEpoch { epoch, x, y });
        drop(current);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    fn check_shapes(&self, x: &Dense, y: &Dense) {
        assert_eq!(x.nrows(), self.x_rows, "published X row count changed");
        assert_eq!(y.nrows(), self.y_rows, "published Y row count changed");
        assert_eq!(x.ncols(), self.d, "published X dimension changed");
        assert_eq!(y.ncols(), self.d, "published Y dimension changed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize, d: usize) -> FeatureStore {
        FeatureStore::new(Dense::filled(n, d, 0.0), Dense::filled(n, d, 0.0))
    }

    #[test]
    fn epoch_zero_holds_the_load_time_features() {
        let s = FeatureStore::new(Dense::filled(3, 2, 1.5), Dense::filled(4, 2, 2.5));
        assert_eq!((s.x_rows(), s.y_rows(), s.d()), (3, 4, 2));
        let ep = s.snapshot();
        assert_eq!(ep.epoch(), 0);
        assert_eq!(ep.x().get(2, 1), 1.5);
        assert_eq!(ep.y().get(3, 0), 2.5);
        assert_eq!(s.swap_count(), 0);
    }

    #[test]
    fn publish_mints_epochs_and_old_snapshots_stay_pinned() {
        let s = store(4, 2);
        let pinned = s.snapshot();
        assert_eq!(s.publish(Dense::filled(4, 2, 1.0), Dense::filled(4, 2, 1.0)), 1);
        assert_eq!(s.publish(Dense::filled(4, 2, 2.0), Dense::filled(4, 2, 2.0)), 2);
        assert_eq!(s.current_epoch(), 2);
        assert_eq!(s.swap_count(), 2);
        // The old pin still reads epoch-0 values.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.x().get(0, 0), 0.0);
        assert_eq!(s.snapshot().x().get(0, 0), 2.0);
    }

    #[test]
    fn delta_update_patches_only_the_named_rows() {
        let s = store(5, 3);
        let patch_x = Dense::filled(2, 3, 7.0);
        let patch_y = Dense::filled(2, 3, 9.0);
        assert_eq!(s.delta_update(&[1, 4], &patch_x, &patch_y), 1);
        let ep = s.snapshot();
        assert_eq!(ep.epoch(), 1);
        assert_eq!(ep.x().row(1), &[7.0; 3]);
        assert_eq!(ep.x().row(4), &[7.0; 3]);
        assert_eq!(ep.x().row(0), &[0.0; 3]);
        assert_eq!(ep.y().row(4), &[9.0; 3]);
        assert_eq!(ep.y().row(2), &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "row count changed")]
    fn publish_rejects_resizes() {
        let s = store(4, 2);
        s.publish(Dense::filled(5, 2, 0.0), Dense::filled(4, 2, 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_update_rejects_bad_rows() {
        let s = store(4, 2);
        s.delta_update(&[4], &Dense::filled(1, 2, 0.0), &Dense::filled(1, 2, 0.0));
    }

    #[test]
    fn concurrent_publishes_and_deltas_never_lose_an_epoch() {
        let s = Arc::new(store(8, 2));
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..25 {
                        if t % 2 == 0 {
                            let v = (t * 100 + i) as f32;
                            s.publish(Dense::filled(8, 2, v), Dense::filled(8, 2, v));
                        } else {
                            let p = Dense::filled(1, 2, i as f32);
                            s.delta_update(&[(i as usize) % 8], &p, &p);
                        }
                    }
                });
            }
        });
        // 4 writers x 25 swaps, each minting a distinct epoch.
        assert_eq!(s.current_epoch(), 100);
        assert_eq!(s.swap_count(), 100);
    }
}
