//! Epoch-versioned feature storage: the serving engine's write path.
//!
//! The engine used to own `X`/`Y` frozen forever — a training loop had
//! no way to publish refreshed embeddings without restarting traffic.
//! [`FeatureStore`] fixes that with RCU-style versioning:
//!
//! * readers call [`FeatureStore::snapshot`] and get an
//!   `Arc<FeatureEpoch>` — an immutable `(epoch, X, Y)` triple. The
//!   read path is a brief shared-lock Arc clone (no allocation, no
//!   copies, never blocked by an in-progress feature build);
//! * writers call [`FeatureStore::publish`] (whole matrices) or
//!   [`FeatureStore::delta_update`] (a row patch) to mint the next
//!   epoch and swap the pointer. Old epochs stay alive exactly as long
//!   as some in-flight batch still pins them, then drop.
//!
//! The epoch-pinning contract: every serving batch resolves one
//! snapshot up front and computes every output row from it, so a
//! response is never torn across a swap — it reflects exactly one
//! epoch, even while publishes race the request.
//!
//! Feature *shapes* are frozen at store construction (publishing a
//! different `nrows`/`d` panics): engines key their kernel plans on the
//! dimension and validate node ids against the row counts once, at
//! load time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use fusedmm_sparse::dense::Dense;
use fusedmm_sparse::Permutation;

/// One immutable published generation of the feature matrices.
#[derive(Debug)]
pub struct FeatureEpoch {
    epoch: u64,
    x: Dense,
    y: Dense,
}

impl FeatureEpoch {
    /// The generation number (0 for the load-time features, +1 per
    /// publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Target-side features (one row per vertex of `A`'s row space).
    pub fn x(&self) -> &Dense {
        &self.x
    }

    /// Neighbor-side features (one row per vertex of `A`'s column
    /// space).
    pub fn y(&self) -> &Dense {
        &self.y
    }
}

/// Observer of epoch transitions, registered with
/// [`FeatureStore::subscribe`]. Invalidation-aware layers (the result
/// cache, epoch-keyed plan entries) implement this to learn *which
/// kind* of write minted an epoch — a publish invalidates everything, a
/// delta update only a touch set.
///
/// # Ordering contract
///
/// The store calls a listener **before** the epoch swap becomes
/// visible, while holding the writer lock: when `on_publish(k)` /
/// `on_delta(k, ..)` runs, no reader can have pinned epoch `k` yet, and
/// no other writer can race the notification. A cache that retires
/// entries inside the callback therefore closes the window in which a
/// reader at epoch `k` could observe a stale pre-`k` entry. Callbacks
/// must not call back into the store's write path (deadlock) and should
/// stay short — they run on the publisher's critical path.
pub trait EpochListener: Send + Sync {
    /// Epoch `epoch` is about to be minted by a whole-matrix
    /// [`publish`](FeatureStore::publish): every derived result is
    /// invalid.
    fn on_publish(&self, epoch: u64);

    /// Epoch `epoch` is about to be minted by a
    /// [`delta_update`](FeatureStore::delta_update) patching exactly
    /// `rows`: only results depending on those rows are invalid.
    fn on_delta(&self, epoch: u64, rows: &[usize]);
}

/// Epoch-versioned `(X, Y)` holder shared by every engine (and every
/// shard) serving the same model. See the module docs for the
/// reader/writer contract.
pub struct FeatureStore {
    current: RwLock<Arc<FeatureEpoch>>,
    /// Serializes writers so a `delta_update`'s read-modify-publish is
    /// atomic; readers never touch this.
    writer: Mutex<()>,
    /// Epoch-transition observers, notified under the writer lock
    /// before each swap (see [`EpochListener`]). Held weakly: a
    /// dropped subscriber (e.g. a cache whose engine shut down) is
    /// pruned at the next notification instead of being invalidated
    /// forever.
    listeners: RwLock<Vec<Weak<dyn EpochListener>>>,
    swaps: AtomicU64,
    x_rows: usize,
    y_rows: usize,
    d: usize,
    /// When the engine serves a reordered graph, epochs hold features
    /// in *internal* (permuted) row order while the write path keeps
    /// speaking external vertex ids: `publish` permutes incoming
    /// matrices, `delta_update` translates row ids. Listeners are
    /// notified with internal ids — they key on the same rows the
    /// kernels read.
    perm: Option<Arc<Permutation>>,
}

impl std::fmt::Debug for FeatureStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureStore")
            .field("x_rows", &self.x_rows)
            .field("y_rows", &self.y_rows)
            .field("d", &self.d)
            .field("epoch", &self.current_epoch())
            .field("listeners", &self.listeners.read().len())
            .finish()
    }
}

impl FeatureStore {
    /// Wrap the load-time features as epoch 0.
    ///
    /// # Panics
    /// Panics when `x` and `y` disagree on the embedding dimension.
    pub fn new(x: Dense, y: Dense) -> FeatureStore {
        assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
        let (x_rows, y_rows, d) = (x.nrows(), y.nrows(), x.ncols());
        FeatureStore {
            current: RwLock::new(Arc::new(FeatureEpoch { epoch: 0, x, y })),
            writer: Mutex::new(()),
            listeners: RwLock::new(Vec::new()),
            swaps: AtomicU64::new(0),
            x_rows,
            y_rows,
            d,
            perm: None,
        }
    }

    /// Wrap load-time features given in **external** row order as
    /// epoch 0 of a store whose epochs live in the permuted (internal)
    /// order. Writers keep using external ids — see the `perm` field
    /// docs. Built by engines configured with a reordering; snapshots
    /// hand the kernels rows in the same order as the permuted matrix.
    ///
    /// # Panics
    /// Panics when the dimensions disagree or either matrix's row count
    /// differs from the permutation length.
    pub fn with_permutation(x: Dense, y: Dense, perm: Arc<Permutation>) -> FeatureStore {
        assert_eq!(x.nrows(), perm.len(), "X rows != permutation length");
        assert_eq!(y.nrows(), perm.len(), "Y rows != permutation length");
        let mut store = FeatureStore::new(perm.permute_rows(&x), perm.permute_rows(&y));
        store.perm = Some(perm);
        store
    }

    /// The permutation separating external ids from epoch row order,
    /// when this store backs a reordered engine.
    pub fn permutation(&self) -> Option<&Arc<Permutation>> {
        self.perm.as_ref()
    }

    /// Register an epoch-transition observer (see [`EpochListener`] for
    /// the ordering contract). The store keeps only a weak reference:
    /// when the subscriber's last `Arc` drops (its engine shut down),
    /// the slot is pruned at the next write instead of taxing every
    /// future publish forever.
    ///
    /// Registration serializes with writers: it lands either entirely
    /// before an in-flight write (and is notified of its epoch) or
    /// entirely after its install (so every epoch the listener's
    /// readers can pin post-dates registration). Without this a
    /// listener slipping in between a write's notification and its
    /// swap would silently miss one invalidation.
    pub fn subscribe(&self, listener: Arc<dyn EpochListener>) {
        let _w = self.writer.lock();
        self.listeners.write().push(Arc::downgrade(&listener));
    }

    /// Call `notify` on every live listener, pruning dead ones.
    /// Runs under the writer lock, before the matching swap.
    fn for_each_listener(&self, notify: impl Fn(&dyn EpochListener)) {
        let mut listeners = self.listeners.write();
        listeners.retain(|weak| match weak.upgrade() {
            Some(listener) => {
                notify(&*listener);
                true
            }
            None => false,
        });
    }

    /// Rows of `X` (fixed across epochs).
    pub fn x_rows(&self) -> usize {
        self.x_rows
    }

    /// Rows of `Y` (fixed across epochs).
    pub fn y_rows(&self) -> usize {
        self.y_rows
    }

    /// The embedding dimension (fixed across epochs).
    pub fn d(&self) -> usize {
        self.d
    }

    /// Pin the current epoch. The returned snapshot stays valid (and
    /// immutable) for as long as the caller holds it, regardless of
    /// how many publishes happen meanwhile.
    pub fn snapshot(&self) -> Arc<FeatureEpoch> {
        Arc::clone(&self.current.read())
    }

    /// The current epoch number, without pinning it.
    pub fn current_epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// How many epoch swaps ([`publish`](Self::publish) +
    /// [`delta_update`](Self::delta_update)) have completed.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Publish whole replacement matrices as the next epoch; returns
    /// the new epoch number. In-flight batches keep serving the epoch
    /// they pinned; new snapshots see the published features.
    ///
    /// # Panics
    /// Panics when the shapes differ from the load-time shapes.
    pub fn publish(&self, x: Dense, y: Dense) -> u64 {
        self.check_shapes(&x, &y);
        let (x, y) = match &self.perm {
            Some(p) => (p.permute_rows(&x), p.permute_rows(&y)),
            None => (x, y),
        };
        let _w = self.writer.lock();
        // Writers are serialized, so the next epoch number is stable
        // from here until `install`; announce it before any reader can
        // pin it.
        let next = self.current.read().epoch + 1;
        self.for_each_listener(|l| l.on_publish(next));
        self.install(x, y)
    }

    /// Patch `rows` of both matrices — `x_rows_new`/`y_rows_new` hold
    /// one replacement row per entry of `rows` — and publish the result
    /// as the next epoch; returns the new epoch number. The
    /// copy-on-write clone happens outside the reader lock, so readers
    /// are only blocked for the pointer swap.
    ///
    /// # Panics
    /// Panics when a row id is out of range or the patch dimensions
    /// disagree with the store's.
    pub fn delta_update(&self, rows: &[usize], x_rows_new: &Dense, y_rows_new: &Dense) -> u64 {
        assert_eq!(x_rows_new.nrows(), rows.len(), "one X patch row per updated row id");
        assert_eq!(y_rows_new.nrows(), rows.len(), "one Y patch row per updated row id");
        assert_eq!(x_rows_new.ncols(), self.d, "X patch dimension mismatch");
        assert_eq!(y_rows_new.ncols(), self.d, "Y patch dimension mismatch");
        for &u in rows {
            assert!(u < self.x_rows, "patched X row {u} out of range for {} rows", self.x_rows);
            assert!(u < self.y_rows, "patched Y row {u} out of range for {} rows", self.y_rows);
        }
        // External row ids become epoch (internal) rows here; listeners
        // and the patch loop below agree on the translated set.
        let mapped: Vec<usize>;
        let rows: &[usize] = match &self.perm {
            Some(p) => {
                mapped = p.map_to_new(rows);
                &mapped
            }
            None => rows,
        };
        let _w = self.writer.lock();
        let base = self.snapshot();
        let mut x = base.x.clone();
        let mut y = base.y.clone();
        for (i, &u) in rows.iter().enumerate() {
            x.row_mut(u).copy_from_slice(x_rows_new.row(i));
            y.row_mut(u).copy_from_slice(y_rows_new.row(i));
        }
        let next = base.epoch + 1;
        self.for_each_listener(|l| l.on_delta(next, rows));
        self.install(x, y)
    }

    /// Replication seam: install whole matrices **as** epoch `epoch`,
    /// which may jump ahead of (or equal) the current number — a
    /// replica applying a coordinator's snapshot record lands directly
    /// on the coordinator's epoch numbering instead of minting its own.
    /// Listeners are notified with the applied epoch (`on_publish`),
    /// under the same before-the-swap ordering contract as
    /// [`publish`](Self::publish).
    ///
    /// # Panics
    /// Panics on a shape mismatch, on a permuted store (replicas hold
    /// internal-order features; the coordinator translates ids before
    /// shipping), or when `epoch` would move the store backwards.
    pub(crate) fn publish_at(&self, epoch: u64, x: Dense, y: Dense) {
        self.check_shapes(&x, &y);
        assert!(self.perm.is_none(), "replica stores hold internal-order features");
        let _w = self.writer.lock();
        let current = self.current.read().epoch;
        assert!(epoch >= current, "epoch log regressed: applying {epoch} over {current}");
        self.for_each_listener(|l| l.on_publish(epoch));
        let mut cur = self.current.write();
        *cur = Arc::new(FeatureEpoch { epoch, x, y });
        drop(cur);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Replication seam: apply a coordinator's delta record **as**
    /// epoch `epoch`. Unlike [`publish_at`](Self::publish_at) the base
    /// matters — a patch only reproduces the coordinator's matrices
    /// when applied to the epoch right before it — so the record must
    /// be the immediate successor of the replica's current epoch.
    /// `rows` are internal row ids (the coordinator ships them
    /// pre-translated); listeners see exactly that set (`on_delta`).
    ///
    /// # Panics
    /// Panics on shape/range mismatches, a permuted store, or a gap in
    /// the log (`epoch != current + 1`).
    pub(crate) fn delta_update_at(
        &self,
        epoch: u64,
        rows: &[usize],
        x_rows_new: &Dense,
        y_rows_new: &Dense,
    ) {
        assert!(self.perm.is_none(), "replica stores hold internal-order features");
        assert_eq!(x_rows_new.nrows(), rows.len(), "one X patch row per updated row id");
        assert_eq!(y_rows_new.nrows(), rows.len(), "one Y patch row per updated row id");
        assert_eq!(x_rows_new.ncols(), self.d, "X patch dimension mismatch");
        assert_eq!(y_rows_new.ncols(), self.d, "Y patch dimension mismatch");
        for &u in rows {
            assert!(u < self.x_rows, "patched X row {u} out of range for {} rows", self.x_rows);
            assert!(u < self.y_rows, "patched Y row {u} out of range for {} rows", self.y_rows);
        }
        let _w = self.writer.lock();
        let base = self.snapshot();
        assert_eq!(
            epoch,
            base.epoch + 1,
            "epoch log gap: delta record {epoch} cannot apply over {}",
            base.epoch
        );
        let mut x = base.x.clone();
        let mut y = base.y.clone();
        for (i, &u) in rows.iter().enumerate() {
            x.row_mut(u).copy_from_slice(x_rows_new.row(i));
            y.row_mut(u).copy_from_slice(y_rows_new.row(i));
        }
        self.for_each_listener(|l| l.on_delta(epoch, rows));
        let mut cur = self.current.write();
        *cur = Arc::new(FeatureEpoch { epoch, x, y });
        drop(cur);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Swap in the next epoch (writer lock held by the caller, the
    /// epoch already announced to listeners).
    fn install(&self, x: Dense, y: Dense) -> u64 {
        let mut current = self.current.write();
        let epoch = current.epoch + 1;
        *current = Arc::new(FeatureEpoch { epoch, x, y });
        drop(current);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    fn check_shapes(&self, x: &Dense, y: &Dense) {
        assert_eq!(x.nrows(), self.x_rows, "published X row count changed");
        assert_eq!(y.nrows(), self.y_rows, "published Y row count changed");
        assert_eq!(x.ncols(), self.d, "published X dimension changed");
        assert_eq!(y.ncols(), self.d, "published Y dimension changed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize, d: usize) -> FeatureStore {
        FeatureStore::new(Dense::filled(n, d, 0.0), Dense::filled(n, d, 0.0))
    }

    #[test]
    fn epoch_zero_holds_the_load_time_features() {
        let s = FeatureStore::new(Dense::filled(3, 2, 1.5), Dense::filled(4, 2, 2.5));
        assert_eq!((s.x_rows(), s.y_rows(), s.d()), (3, 4, 2));
        let ep = s.snapshot();
        assert_eq!(ep.epoch(), 0);
        assert_eq!(ep.x().get(2, 1), 1.5);
        assert_eq!(ep.y().get(3, 0), 2.5);
        assert_eq!(s.swap_count(), 0);
    }

    #[test]
    fn publish_mints_epochs_and_old_snapshots_stay_pinned() {
        let s = store(4, 2);
        let pinned = s.snapshot();
        assert_eq!(s.publish(Dense::filled(4, 2, 1.0), Dense::filled(4, 2, 1.0)), 1);
        assert_eq!(s.publish(Dense::filled(4, 2, 2.0), Dense::filled(4, 2, 2.0)), 2);
        assert_eq!(s.current_epoch(), 2);
        assert_eq!(s.swap_count(), 2);
        // The old pin still reads epoch-0 values.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.x().get(0, 0), 0.0);
        assert_eq!(s.snapshot().x().get(0, 0), 2.0);
    }

    #[test]
    fn delta_update_patches_only_the_named_rows() {
        let s = store(5, 3);
        let patch_x = Dense::filled(2, 3, 7.0);
        let patch_y = Dense::filled(2, 3, 9.0);
        assert_eq!(s.delta_update(&[1, 4], &patch_x, &patch_y), 1);
        let ep = s.snapshot();
        assert_eq!(ep.epoch(), 1);
        assert_eq!(ep.x().row(1), &[7.0; 3]);
        assert_eq!(ep.x().row(4), &[7.0; 3]);
        assert_eq!(ep.x().row(0), &[0.0; 3]);
        assert_eq!(ep.y().row(4), &[9.0; 3]);
        assert_eq!(ep.y().row(2), &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "row count changed")]
    fn publish_rejects_resizes() {
        let s = store(4, 2);
        s.publish(Dense::filled(5, 2, 0.0), Dense::filled(4, 2, 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_update_rejects_bad_rows() {
        let s = store(4, 2);
        s.delta_update(&[4], &Dense::filled(1, 2, 0.0), &Dense::filled(1, 2, 0.0));
    }

    #[test]
    fn listeners_see_each_epoch_before_it_is_pinnable() {
        use std::sync::Mutex as StdMutex;

        struct Recorder {
            store: std::sync::Weak<FeatureStore>,
            events: StdMutex<Vec<(u64, Option<Vec<usize>>)>>,
        }
        impl EpochListener for Recorder {
            fn on_publish(&self, epoch: u64) {
                // The announced epoch must not be current yet: the
                // callback runs strictly before the swap.
                let store = self.store.upgrade().expect("store alive");
                assert!(store.current_epoch() < epoch, "listener ran after the swap");
                self.events.lock().unwrap().push((epoch, None));
            }
            fn on_delta(&self, epoch: u64, rows: &[usize]) {
                let store = self.store.upgrade().expect("store alive");
                assert!(store.current_epoch() < epoch, "listener ran after the swap");
                self.events.lock().unwrap().push((epoch, Some(rows.to_vec())));
            }
        }

        let s = Arc::new(store(4, 2));
        let rec =
            Arc::new(Recorder { store: Arc::downgrade(&s), events: StdMutex::new(Vec::new()) });
        s.subscribe(Arc::clone(&rec) as _);
        assert_eq!(s.publish(Dense::filled(4, 2, 1.0), Dense::filled(4, 2, 1.0)), 1);
        let p = Dense::filled(2, 2, 2.0);
        assert_eq!(s.delta_update(&[0, 3], &p, &p), 2);
        assert_eq!(s.publish(Dense::filled(4, 2, 3.0), Dense::filled(4, 2, 3.0)), 3);
        let events = rec.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![(1, None), (2, Some(vec![0, 3])), (3, None)],
            "every epoch announced exactly once, in order, with its kind"
        );
    }

    #[test]
    fn dropped_listeners_are_pruned_not_notified() {
        use std::sync::atomic::AtomicU64 as Counter;

        struct Counting(Arc<Counter>);
        impl EpochListener for Counting {
            fn on_publish(&self, _: u64) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn on_delta(&self, _: u64, _: &[usize]) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let s = store(4, 2);
        let calls = Arc::new(Counter::new(0));
        let listener = Arc::new(Counting(Arc::clone(&calls)));
        s.subscribe(Arc::clone(&listener) as _);
        s.publish(Dense::filled(4, 2, 1.0), Dense::filled(4, 2, 1.0));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // Drop the subscriber (an engine shutting down): the next
        // write prunes the dead slot and never calls it again.
        drop(listener);
        s.publish(Dense::filled(4, 2, 2.0), Dense::filled(4, 2, 2.0));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "dead listener was notified");
        assert_eq!(s.listeners.read().len(), 0, "dead listener slot was pruned");
    }

    #[test]
    fn permuted_store_speaks_external_ids_on_the_write_path() {
        // new_of_old = [2, 0, 1, 3]: external row 0 lives at internal 2.
        let perm = Arc::new(Permutation::from_new_of_old(vec![2, 0, 1, 3]));
        let x = Dense::from_fn(4, 2, |r, c| (10 * r + c) as f32);
        let y = Dense::from_fn(4, 2, |r, c| (100 * r + c) as f32);
        let s = FeatureStore::with_permutation(x.clone(), y.clone(), Arc::clone(&perm));
        // Epoch 0 is stored internally: internal row to_new(u) is
        // external row u.
        let ep = s.snapshot();
        for u in 0..4 {
            assert_eq!(ep.x().row(perm.to_new(u)), x.row(u));
            assert_eq!(ep.y().row(perm.to_new(u)), y.row(u));
        }
        // publish() takes external-order matrices too.
        let x1 = Dense::from_fn(4, 2, |r, c| (7 * r + c) as f32);
        s.publish(x1.clone(), y.clone());
        assert_eq!(s.snapshot().x().row(perm.to_new(3)), x1.row(3));
        // delta_update() takes external row ids; internal rows move.
        let px = Dense::filled(1, 2, 5.5);
        s.delta_update(&[0], &px, &px);
        let ep = s.snapshot();
        assert_eq!(ep.x().row(perm.to_new(0)), &[5.5; 2]);
        assert_eq!(ep.y().row(perm.to_new(0)), &[5.5; 2]);
        // Untouched external row 1 still holds its published value.
        assert_eq!(ep.x().row(perm.to_new(1)), x1.row(1));
    }

    #[test]
    fn concurrent_publishes_and_deltas_never_lose_an_epoch() {
        let s = Arc::new(store(8, 2));
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..25 {
                        if t % 2 == 0 {
                            let v = (t * 100 + i) as f32;
                            s.publish(Dense::filled(8, 2, v), Dense::filled(8, 2, v));
                        } else {
                            let p = Dense::filled(1, 2, i as f32);
                            s.delta_update(&[(i as usize) % 8], &p, &p);
                        }
                    }
                });
            }
        });
        // 4 writers x 25 swaps, each minting a distinct epoch.
        assert_eq!(s.current_epoch(), 100);
        assert_eq!(s.swap_count(), 100);
    }
}
