//! One-shot completion slots and multi-ticket waiting.
//!
//! The dispatcher answers each enqueued request through a `Slot`: a
//! single-value channel built on a mutex/condvar pair that — unlike
//! `mpsc` — supports **wakeup subscription**. A harvest can register a
//! callback on every source it still waits on and then park once;
//! each source fires its callbacks exactly once, when it resolves.
//! That is what makes [`wait_any`] O(1) per completion: no poll loop
//! sweeps N tickets per wakeup — the completing source pushes its
//! ticket's index onto a shared `WakeQueue` and exactly that ticket
//! is re-checked.
//!
//! Slots also carry typed failure (`PartError`): the dispatcher
//! reports a caught kernel panic or a dropped-past-deadline request
//! instead of silently disconnecting, so tickets can retry or surface
//! a precise error.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fusedmm_sparse::dense::Dense;

use crate::ticket::Ticket;

/// A wakeup callback fired when a pending source resolves.
pub(crate) type Watcher = Arc<dyn Fn() + Send + Sync>;

/// Why the dispatcher could not answer a request with rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PartError {
    /// The request's deadline passed before its kernel launch; the
    /// work was dropped, not computed.
    Expired,
    /// The kernel launch serving this request panicked (caught at the
    /// dispatch boundary). The requester may retry on a healthy path.
    Panicked,
}

/// What the dispatcher sends back for one enqueued request.
pub(crate) type PartReply = Result<Dense, PartError>;

/// Non-blocking receive outcome.
pub(crate) enum SlotPoll {
    /// Nothing sent yet (on `recv_deadline`: the deadline passed).
    Pending,
    /// The reply, moved out (a slot resolves exactly once).
    Reply(PartReply),
    /// The sender was dropped without replying (dispatcher died).
    Closed,
}

#[derive(Default)]
struct SlotState {
    value: Option<PartReply>,
    closed: bool,
    watchers: Vec<Watcher>,
}

struct SlotShared {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl SlotShared {
    /// Mark resolved (value or close), wake blocked receivers, and fire
    /// every subscribed watcher — outside the lock, so a watcher may
    /// take unrelated locks (the wake queue's) without ordering risk.
    fn resolve(&self, value: Option<PartReply>) {
        let watchers = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            match value {
                Some(v) if st.value.is_none() && !st.closed => st.value = Some(v),
                Some(_) => return,
                None => st.closed = true,
            }
            std::mem::take(&mut st.watchers)
        };
        self.cv.notify_all();
        for w in watchers {
            w();
        }
    }
}

/// Sending half of a one-shot reply slot (held by the dispatcher).
/// Dropping it unreplied closes the slot.
pub(crate) struct SlotTx {
    shared: Option<Arc<SlotShared>>,
}

/// Receiving half of a one-shot reply slot (held by the ticket).
pub(crate) struct SlotRx {
    shared: Arc<SlotShared>,
}

/// A fresh unresolved slot.
pub(crate) fn slot() -> (SlotTx, SlotRx) {
    let shared =
        Arc::new(SlotShared { state: Mutex::new(SlotState::default()), cv: Condvar::new() });
    (SlotTx { shared: Some(Arc::clone(&shared)) }, SlotRx { shared })
}

impl SlotTx {
    /// Deliver the reply (consumes the sender; a slot resolves once).
    pub fn send(mut self, reply: PartReply) {
        if let Some(shared) = self.shared.take() {
            shared.resolve(Some(reply));
        }
    }
}

impl Drop for SlotTx {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            shared.resolve(None);
        }
    }
}

impl SlotRx {
    /// Non-blocking probe; a delivered reply is moved out.
    pub fn try_recv(&self) -> SlotPoll {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        match st.value.take() {
            Some(v) => SlotPoll::Reply(v),
            None if st.closed => SlotPoll::Closed,
            None => SlotPoll::Pending,
        }
    }

    /// Park until the reply lands; `None` when the sender was dropped
    /// without replying.
    pub fn recv(&self) -> Option<PartReply> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.value.take() {
                return Some(v);
            }
            if st.closed {
                return None;
            }
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Park until the reply lands, the sender drops, or `deadline`
    /// passes — condvar-based, so precision does not depend on any
    /// poll cadence.
    pub fn recv_deadline(&self, deadline: Instant) -> SlotPoll {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.value.take() {
                return SlotPoll::Reply(v);
            }
            if st.closed {
                return SlotPoll::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return SlotPoll::Pending;
            }
            let (guard, _timeout) =
                self.shared.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Register a wakeup callback: fired once when the slot resolves
    /// (reply or close) — immediately, if it already has.
    pub fn subscribe(&self, watcher: Watcher) {
        let fire_now = {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.value.is_some() || st.closed {
                true
            } else {
                st.watchers.push(watcher.clone());
                false
            }
        };
        if fire_now {
            watcher();
        }
    }
}

/// The shared wakeup channel behind [`wait_any`]: completing sources
/// push their ticket's index; the waiter parks on the condvar and
/// re-checks only the indicated ticket.
pub(crate) struct WakeQueue {
    ready: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl WakeQueue {
    pub fn new() -> WakeQueue {
        WakeQueue { ready: Mutex::new(VecDeque::new()), cv: Condvar::new() }
    }

    pub fn push(&self, index: usize) {
        self.ready.lock().unwrap_or_else(|e| e.into_inner()).push_back(index);
        self.cv.notify_one();
    }

    pub fn wait(&self) -> usize {
        let mut q = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(i) = q.pop_front() {
                return i;
            }
            q = self.cv.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Block until (at least) one live ticket is harvestable and return its
/// index: `tickets[i].poll()` is then guaranteed to return `Some`.
/// Returns `None` when no live ticket remains (all already harvested).
///
/// Spent tickets in the slice are skipped, so the open-loop pattern is
/// simply: `while let Some(i) = wait_any(&mut window) { let r =
/// window[i].poll().unwrap(); ... }` — no poll sweep. Internally every
/// pending source of every live ticket carries a subscription pushing
/// its ticket's index onto one shared `WakeQueue`, making the cost
/// O(1) per completion instead of O(window) per poll round.
pub fn wait_any<T>(tickets: &mut [Ticket<T>]) -> Option<usize> {
    let mut any_live = false;
    for (i, t) in tickets.iter_mut().enumerate() {
        if !t.is_live() {
            continue;
        }
        any_live = true;
        if t.ready_now() {
            return Some(i);
        }
    }
    if !any_live {
        return None;
    }
    let wake = Arc::new(WakeQueue::new());
    let mut watchers: Vec<Option<Watcher>> = (0..tickets.len()).map(|_| None).collect();
    for (i, t) in tickets.iter_mut().enumerate() {
        if !t.is_live() {
            continue;
        }
        let w: Watcher = {
            let wake = Arc::clone(&wake);
            Arc::new(move || wake.push(i))
        };
        watchers[i] = Some(w.clone());
        t.subscribe(w);
    }
    loop {
        let i = wake.wait();
        if !tickets[i].is_live() {
            continue;
        }
        if tickets[i].ready_now() {
            return Some(i);
        }
        // Progress without completion (e.g. a failed part re-enqueued
        // on its retry path swapped in a fresh, unwatched slot):
        // re-subscribe so the new source wakes us too. Duplicate
        // subscriptions on still-pending sources only cost spurious
        // queue entries, which this loop drains.
        if let Some(w) = &watchers[i] {
            tickets[i].subscribe(w.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn rows(v: f32) -> Dense {
        Dense::from_rows(1, 1, &[v]).unwrap()
    }

    #[test]
    fn slot_roundtrip_and_one_shot() {
        let (tx, rx) = slot();
        assert!(matches!(rx.try_recv(), SlotPoll::Pending));
        tx.send(Ok(rows(3.0)));
        match rx.try_recv() {
            SlotPoll::Reply(Ok(z)) => assert_eq!(z.as_slice(), &[3.0]),
            _ => panic!("reply expected"),
        }
        assert!(matches!(rx.try_recv(), SlotPoll::Pending), "a reply is moved out once");
    }

    #[test]
    fn dropped_sender_closes() {
        let (tx, rx) = slot();
        drop(tx);
        assert!(matches!(rx.try_recv(), SlotPoll::Closed));
        assert!(rx.recv().is_none());
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let (tx, rx) = slot();
        let soon = Instant::now() + std::time::Duration::from_millis(5);
        assert!(matches!(rx.recv_deadline(soon), SlotPoll::Pending));
        tx.send(Err(PartError::Panicked));
        let far = Instant::now() + std::time::Duration::from_secs(5);
        assert!(matches!(rx.recv_deadline(far), SlotPoll::Reply(Err(PartError::Panicked))));
    }

    #[test]
    fn recv_blocks_until_cross_thread_send() {
        let (tx, rx) = slot();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(Ok(rows(7.0)));
        });
        let z = rx.recv().expect("sender replied").expect("ok");
        assert_eq!(z.as_slice(), &[7.0]);
        h.join().unwrap();
    }

    #[test]
    fn subscribe_fires_on_resolution_and_immediately_when_late() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = slot();
        let f = Arc::clone(&fired);
        rx.subscribe(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        tx.send(Ok(rows(1.0)));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "watcher fired on send");
        // Late subscription on an already-resolved slot fires at once.
        let f = Arc::clone(&fired);
        rx.subscribe(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wake_queue_delivers_in_order() {
        let q = Arc::new(WakeQueue::new());
        q.push(4);
        q.push(9);
        assert_eq!(q.wait(), 4);
        assert_eq!(q.wait(), 9);
    }

    #[test]
    fn wait_any_returns_ready_tickets_and_none_when_spent() {
        let mut window = vec![Ticket::ready(Ok(1usize)), Ticket::ready(Ok(2usize))];
        let mut seen = Vec::new();
        while let Some(i) = wait_any(&mut window) {
            seen.push(window[i].poll().unwrap().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        assert!(wait_any(&mut window).is_none(), "no live tickets left");
    }
}
