//! Completion tokens for the non-blocking serving API.
//!
//! [`Engine::embed_begin`](crate::Engine::embed_begin) and
//! [`ShardedEngine::embed_begin`](crate::ShardedEngine::embed_begin)
//! return a [`Ticket`] instead of blocking: the caller can launch N
//! requests, do other work, and harvest completions with
//! [`Ticket::poll`] (non-blocking), [`Ticket::wait`] (blocking), or
//! [`Ticket::wait_deadline`] (bounded blocking) — or park on a whole
//! window at once with [`wait_any`](crate::wait_any). There is no
//! executor and no extra thread — a ticket is condvar machinery lifted
//! into an object: the dispatcher (or, for a coalesced miss, the
//! owning request's dispatcher) resolves per-ticket one-shot slots,
//! and harvesting just drains them. Shard tickets gather lazily:
//! `embed_begin` fans the request out to every involved band engine
//! immediately, but nothing blocks until the first `poll`/`wait`.
//!
//! The blocking `embed` calls are implemented as
//! `embed_begin(..)?.wait()`, so ticketed and blocking serving are the
//! same code path — bit-identical by construction.
//!
//! Failure is part of the state machine, not an afterthought: a part
//! whose kernel launch panicked retries **once** on a healthy path
//! (same pinned epoch — an Exact retry stays bit-identical) before the
//! ticket resolves [`ServeError::PartFailed`]; a part dropped past its
//! deadline resolves [`ServeError::DeadlineExpired`]. Every admitted
//! request therefore ends in exactly one of the `RequestStats`
//! outcome buckets — no ticket ever hangs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fusedmm_cache::RowWaiter;
use fusedmm_perf::gauge::GaugeGuard;
use fusedmm_perf::hist::{HistogramVec, LatencyHistogram};
use fusedmm_perf::trace::{SpanCtx, SpanKind, Tracer};
use fusedmm_sparse::dense::Dense;

use crate::engine::ServeError;
use crate::wait::{PartError, SlotPoll, SlotRx, Watcher};

/// The answer tier a request asks for (or is downgraded to by the
/// admission ladder). Degraded tiers trade accuracy for latency and
/// queue pressure; responses mark exactly which rows were degraded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Quality {
    /// The full computation — bit-identical to the batch kernels.
    #[default]
    Exact,
    /// Aggregate only each node's `k` strongest neighbors (largest
    /// `|weight|`): a principled approximation whose cost and error
    /// both shrink with `k`. Rows with degree ≤ `k` are exact.
    TopKNeighbors(usize),
    /// Answer from the result cache immediately; rows not resident
    /// come back zeroed and marked degraded. Never touches the kernel
    /// queue — the admission ladder's downgrade target.
    CachedOnly,
}

/// Per-request serving options for
/// [`Engine::embed_begin_opts`](crate::Engine::embed_begin_opts).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmbedOptions {
    /// Drop the work (and resolve `DeadlineExpired`) instead of
    /// computing past this instant. Checked at admission, at batch
    /// drain, and again right before the kernel launch.
    pub deadline: Option<Instant>,
    /// The requested answer tier.
    pub quality: Quality,
}

impl EmbedOptions {
    /// Exact quality with a deadline.
    pub fn with_deadline(deadline: Instant) -> EmbedOptions {
        EmbedOptions { deadline: Some(deadline), quality: Quality::Exact }
    }

    /// A quality tier with no deadline.
    pub fn with_quality(quality: Quality) -> EmbedOptions {
        EmbedOptions { deadline: None, quality }
    }
}

/// An embedding response plus its quality provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedResponse {
    /// One row per requested node, in request order.
    pub rows: Dense,
    /// `served_degraded[i]` is true when row `i` was *not* the exact
    /// answer (truncated neighbors, or a cache miss under `CachedOnly`
    /// served as zeros).
    pub served_degraded: Vec<bool>,
    /// The tier the request was ultimately served at (after any
    /// admission-ladder downgrade).
    pub quality: Quality,
}

impl EmbedResponse {
    /// True when any row was served degraded.
    pub fn any_degraded(&self) -> bool {
        self.served_degraded.iter().any(|&b| b)
    }

    /// Indices of the degraded rows.
    pub fn degraded_rows(&self) -> Vec<usize> {
        (0..self.served_degraded.len()).filter(|&i| self.served_degraded[i]).collect()
    }
}

/// Request-lifecycle reconciliation counters. Every request that
/// reaches admission counts one `begun`, and exactly one outcome:
///
/// * `harvested` — the exact response was assembled and returned;
/// * `degraded` — a response was returned with ≥ 1 degraded row
///   (`CachedOnly` misses or truncated-neighbor rows);
/// * `shed` — rejected by the admission policy (`ServeError::Shed`);
/// * `failed` — resolved with an error after admission (deadline
///   expired, part failed past its retry, engine shutdown mid-flight);
/// * `abandoned` — the ticket was dropped unresolved.
///
/// So `begun == harvested + degraded + shed + failed + abandoned` once
/// every ticket has resolved — the invariant the chaos tests assert
/// exactly. Tickets resolved at creation (empty request, full cache
/// hit) count `begun` and their outcome immediately.
#[derive(Debug, Default)]
pub(crate) struct RequestStats {
    pub begun: AtomicU64,
    pub harvested: AtomicU64,
    pub degraded: AtomicU64,
    pub shed: AtomicU64,
    pub failed: AtomicU64,
    pub abandoned: AtomicU64,
}

impl RequestStats {
    pub fn begin(&self) {
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    pub fn harvest(&self) {
        self.harvested.fetch_add(1, Ordering::Relaxed);
    }

    pub fn degraded_harvest(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub fn fail(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admission rejection: begun and shed in one step.
    pub fn shed(&self) {
        self.begin();
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A ticket resolved exactly at creation: begun and harvested.
    pub fn ready(&self) {
        self.begin();
        self.harvest();
    }

    /// A ticket resolved degraded at creation (`CachedOnly` with
    /// misses): begun and degraded in one step.
    pub fn ready_degraded(&self) {
        self.begin();
        self.degraded_harvest();
    }
}

/// The sampled root span a ticket carries until it resolves: the
/// completing harvest records the `Harvest` child and closes the root
/// `Embed` span; an abandoned or failed assembly still closes the root
/// so every sampled request leaves a rooted tree.
pub(crate) struct TraceHandle {
    pub tracer: Arc<Tracer>,
    pub root: SpanCtx,
    /// `Tracer::now()` at `embed_begin` — the root span's start.
    pub begin_ns: u64,
}

/// Everything recorded when an [`EmbedAssembly`] resolves (or is
/// dropped unresolved). Bundled so the assembly constructors stay at a
/// readable arity.
#[derive(Default)]
pub(crate) struct Completion {
    /// Records begin→completion when no dispatcher saw this request
    /// (fully coalesced) — keeps one histogram observation per request.
    pub hist: Option<Arc<LatencyHistogram>>,
    /// The owning engine's reconciliation counters.
    pub stats: Option<Arc<RequestStats>>,
    /// The sampled root span, when this request was admitted.
    pub trace: Option<TraceHandle>,
}

/// A completion token for one in-flight serving request. Obtained from
/// `embed_begin`; resolves exactly once (the result is moved out by
/// the call that completes it).
///
/// # Panics
/// Every harvesting method panics when called again after one of them
/// has already returned the result — a resolved ticket is spent.
pub struct Ticket<T> {
    state: State<T>,
}

enum State<T> {
    Ready(Result<T, ServeError>),
    Pending(Box<dyn Harvest<T> + Send>),
    Taken,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            State::Ready(_) => "ready",
            State::Pending(_) => "pending",
            State::Taken => "taken",
        };
        f.debug_struct("Ticket").field("state", &state).finish()
    }
}

impl<T> Ticket<T> {
    /// A ticket already resolved at creation (full cache hit, empty
    /// request).
    pub(crate) fn ready(result: Result<T, ServeError>) -> Self {
        Ticket { state: State::Ready(result) }
    }

    /// A ticket that harvests `job` on demand.
    pub(crate) fn pending(job: impl Harvest<T> + Send + 'static) -> Self {
        Ticket { state: State::Pending(Box::new(job)) }
    }

    /// Non-blocking harvest: `Some(result)` once every piece of the
    /// response has arrived (the ticket is then spent), `None` while
    /// still in flight. Partial progress is kept across calls, so a
    /// poll loop over many tickets does no repeated work.
    pub fn poll(&mut self) -> Option<Result<T, ServeError>> {
        match &mut self.state {
            State::Ready(_) => {
                let State::Ready(r) = std::mem::replace(&mut self.state, State::Taken) else {
                    unreachable!()
                };
                Some(r)
            }
            State::Pending(job) => match job.try_harvest() {
                Some(r) => {
                    self.state = State::Taken;
                    Some(r)
                }
                None => None,
            },
            State::Taken => panic!("ticket already harvested"),
        }
    }

    /// Block until the response is complete and return it.
    pub fn wait(mut self) -> Result<T, ServeError> {
        match std::mem::replace(&mut self.state, State::Taken) {
            State::Ready(r) => r,
            State::Pending(mut job) => job.harvest(),
            State::Taken => panic!("ticket already harvested"),
        }
    }

    /// Block until the response is complete or `deadline` passes:
    /// `Some(result)` on completion (the ticket is then spent), `None`
    /// on timeout — the ticket stays live and keeps any partial
    /// progress, so the caller can keep polling or extend the
    /// deadline. The wait parks on condvars; precision does not depend
    /// on any poll cadence.
    pub fn wait_deadline(&mut self, deadline: Instant) -> Option<Result<T, ServeError>> {
        match &mut self.state {
            State::Ready(_) => self.poll(),
            State::Pending(job) => match job.harvest_deadline(deadline) {
                Some(r) => {
                    self.state = State::Taken;
                    Some(r)
                }
                None => None,
            },
            State::Taken => panic!("ticket already harvested"),
        }
    }

    /// True while the result has not been taken yet (ready or still in
    /// flight).
    pub fn is_live(&self) -> bool {
        !matches!(self.state, State::Taken)
    }

    /// Advance without consuming: true when a `poll` would return
    /// `Some`. False for spent tickets.
    pub(crate) fn ready_now(&mut self) -> bool {
        match &mut self.state {
            State::Ready(_) => true,
            State::Pending(job) => job.ready(),
            State::Taken => false,
        }
    }

    /// Register a wakeup callback on every still-pending source of
    /// this ticket (fired immediately when already resolved). Spent
    /// tickets ignore the call.
    pub(crate) fn subscribe(&mut self, watcher: Watcher) {
        match &mut self.state {
            State::Ready(_) => watcher(),
            State::Pending(job) => job.subscribe(watcher),
            State::Taken => {}
        }
    }

    /// Transform the success value when the ticket resolves, keeping
    /// the state machine (and its wakeup plumbing) intact — how
    /// `embed_begin` derives a bare-`Dense` ticket from the
    /// full-response path without a second code path.
    pub(crate) fn map<U: 'static>(self, f: impl FnOnce(T) -> U + Send + 'static) -> Ticket<U>
    where
        T: 'static,
    {
        match self.state {
            State::Ready(r) => Ticket::ready(r.map(f)),
            State::Pending(job) => Ticket::pending(MapHarvest { inner: job, f: Some(f) }),
            State::Taken => Ticket { state: State::Taken },
        }
    }
}

/// The harvesting strategy behind a pending [`Ticket`].
pub(crate) trait Harvest<T> {
    /// Advance without blocking; `Some` when complete.
    fn try_harvest(&mut self) -> Option<Result<T, ServeError>>;
    /// Block to completion.
    fn harvest(&mut self) -> Result<T, ServeError>;
    /// Block until complete or `deadline`; `None` on timeout.
    fn harvest_deadline(&mut self, deadline: Instant) -> Option<Result<T, ServeError>>;
    /// Advance without consuming; true when `try_harvest` would return
    /// `Some`.
    fn ready(&mut self) -> bool;
    /// Register a wakeup callback on every still-pending source (fire
    /// immediately when none remain).
    fn subscribe(&mut self, watcher: Watcher);
}

/// [`Ticket::map`]'s harvest adapter: forwards the state machine and
/// applies `f` to the success value exactly once, at resolution.
struct MapHarvest<T, U, F: FnOnce(T) -> U> {
    inner: Box<dyn Harvest<T> + Send>,
    f: Option<F>,
}

impl<T, U, F: FnOnce(T) -> U> MapHarvest<T, U, F> {
    fn apply(&mut self, r: Result<T, ServeError>) -> Result<U, ServeError> {
        let f = self.f.take().expect("a map resolves once");
        r.map(f)
    }
}

impl<T, U, F: FnOnce(T) -> U> Harvest<U> for MapHarvest<T, U, F> {
    fn try_harvest(&mut self) -> Option<Result<U, ServeError>> {
        let r = self.inner.try_harvest()?;
        Some(self.apply(r))
    }

    fn harvest(&mut self) -> Result<U, ServeError> {
        let r = self.inner.harvest();
        self.apply(r)
    }

    fn harvest_deadline(&mut self, deadline: Instant) -> Option<Result<U, ServeError>> {
        let r = self.inner.harvest_deadline(deadline)?;
        Some(self.apply(r))
    }

    fn ready(&mut self) -> bool {
        self.inner.ready()
    }

    fn subscribe(&mut self, watcher: Watcher) {
        self.inner.subscribe(watcher)
    }
}

/// The healthy-path re-enqueue a part falls back to when its original
/// kernel launch panicked: same nodes, same pinned epoch (an Exact
/// retry is bit-identical), no cache fills (the originals were
/// aborted).
pub(crate) type PartRetry = Box<dyn FnOnce(&[usize]) -> Result<SlotRx, ServeError> + Send>;

/// One dispatched sub-request: the dispatcher will reply one row per
/// entry of `union`, in that order — or a typed [`PartError`].
pub(crate) struct Part {
    /// Sorted, deduplicated nodes this part computes.
    union: Vec<usize>,
    /// Member index in the fan-out histogram (the shard id).
    tag: usize,
    /// The failing shard reported by `ServeError::PartFailed` (`None`
    /// for a single-engine part or a coalesced-fill failure).
    shard: Option<usize>,
    rx: SlotRx,
    rows: Option<Dense>,
    /// One-shot healthy-path retry, consumed on the first `Panicked`
    /// reply. `None` (or consumed) means the next failure is terminal.
    retry: Option<PartRetry>,
}

impl Part {
    pub(crate) fn with_retry(
        union: Vec<usize>,
        tag: usize,
        shard: Option<usize>,
        rx: SlotRx,
        retry: Option<PartRetry>,
    ) -> Part {
        Part { union, tag, shard, rx, rows: None, retry }
    }
}

/// One miss served without a dispatch from this request: either a
/// coalesced miss (another request's computation will back-fill the
/// row for `node`) or a row that was already resolved at begin time (a
/// concurrent fill landed between lookup and routing).
pub(crate) struct WaiterSlot {
    node: usize,
    /// `None` when the slot was resolved at construction.
    waiter: Option<RowWaiter>,
    row: Option<Box<[f32]>>,
}

impl WaiterSlot {
    pub(crate) fn new(node: usize, waiter: RowWaiter) -> WaiterSlot {
        WaiterSlot { node, waiter: Some(waiter), row: None }
    }

    /// A slot whose row is already known (a `MissRoute::Resident`).
    pub(crate) fn resolved(node: usize, row: Box<[f32]>) -> WaiterSlot {
        WaiterSlot { node, waiter: None, row: Some(row) }
    }

    fn pending(&self) -> Option<&RowWaiter> {
        match &self.row {
            Some(_) => None,
            None => Some(self.waiter.as_ref().expect("unresolved slot has a waiter")),
        }
    }
}

/// What one advance step over a part's slot decided.
enum PartStep {
    Resolved,
    Pending,
    /// A failed part was re-enqueued on its retry path; poll the fresh
    /// slot.
    Retried,
    Terminal,
}

/// The embed-request harvest shared by the single and the sharded
/// engine: hit rows are pre-filled into `out`, dispatched parts and
/// coalesced waiters stream in, and the first call that finds
/// everything present assembles the response in request order. A
/// typed part failure (panic past its retry, expired deadline,
/// shutdown) resolves the ticket with the corresponding error instead.
pub(crate) struct EmbedAssembly {
    /// Pre-filled output; taken by the resolving call (success or
    /// error), so `Drop` counts `abandoned` only for truly unresolved
    /// tickets.
    out: Option<Dense>,
    /// When set, the single part's `Dense` *is* the whole response
    /// (the dispatcher already scattered it to request order).
    whole: bool,
    parts: Vec<Part>,
    waiters: Vec<WaiterSlot>,
    /// `(output row, node)` pairs to fill from parts/waiters.
    positions: Vec<(usize, usize)>,
    /// Per-row degradation marks, fixed at begin time by the serving
    /// tier (`Exact` → all false, `TopKNeighbors` → all true).
    degraded: Vec<bool>,
    /// The tier this request is served at.
    quality: Quality,
    /// A terminal error, sticky once set: the next harvest call
    /// resolves it.
    error: Option<ServeError>,
    /// Recorded when the assembly resolves: completion histogram,
    /// reconciliation counters, and the sampled root span.
    completion: Completion,
    /// `Tracer::now()` at the start of the harvest call currently in
    /// progress — the `Harvest` span's start when that call completes.
    harvest_start_ns: u64,
    /// Gather-progress histogram (sharded front end): member
    /// `parts[i].tag` records when that part's rows arrive.
    fanout: Option<Arc<HistogramVec>>,
    begun: Instant,
    /// Holds one unit of the engine's in-flight gauge until the ticket
    /// resolves or is dropped.
    _inflight: GaugeGuard,
}

impl EmbedAssembly {
    /// The single-part shape: the dispatcher's reply is the final
    /// response (already in request order).
    pub(crate) fn direct(
        part: Part,
        degraded: Vec<bool>,
        quality: Quality,
        completion: Completion,
        guard: GaugeGuard,
    ) -> Self {
        EmbedAssembly {
            out: Some(Dense::zeros(0, 0)),
            whole: true,
            parts: vec![part],
            waiters: Vec::new(),
            positions: Vec::new(),
            degraded,
            quality,
            error: None,
            completion,
            harvest_start_ns: 0,
            fanout: None,
            begun: Instant::now(),
            _inflight: guard,
        }
    }

    /// The assembling shape: `out` holds the hit rows, `positions`
    /// name what parts and waiters still owe.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        out: Dense,
        parts: Vec<Part>,
        waiters: Vec<WaiterSlot>,
        positions: Vec<(usize, usize)>,
        degraded: Vec<bool>,
        quality: Quality,
        completion: Completion,
        fanout: Option<Arc<HistogramVec>>,
        guard: GaugeGuard,
    ) -> Self {
        EmbedAssembly {
            out: Some(out),
            whole: false,
            parts,
            waiters,
            positions,
            degraded,
            quality,
            error: None,
            completion,
            harvest_start_ns: 0,
            fanout,
            begun: Instant::now(),
            _inflight: guard,
        }
    }

    /// Called at the top of every harvest entry point so the
    /// completing call's `Harvest` span covers exactly that call.
    fn note_harvest_start(&mut self) {
        if let Some(tr) = &self.completion.trace {
            self.harvest_start_ns = tr.tracer.now();
        }
    }

    fn store_part(&mut self, i: usize, rows: Dense) {
        if let Some(fanout) = &self.fanout {
            fanout.record(self.parts[i].tag, self.begun.elapsed());
        }
        self.parts[i].rows = Some(rows);
    }

    /// React to a typed part failure: consume the retry (healthy-path
    /// re-enqueue, same pinned epoch) on the first panic, or set the
    /// terminal error.
    fn part_failed(&mut self, i: usize, e: PartError) -> PartStep {
        match e {
            PartError::Expired => {
                self.error = Some(ServeError::DeadlineExpired);
                PartStep::Terminal
            }
            PartError::Panicked => match self.parts[i].retry.take() {
                Some(retry) => {
                    let nodes = self.parts[i].union.clone();
                    match retry(&nodes) {
                        Ok(rx) => {
                            self.parts[i].rx = rx;
                            PartStep::Retried
                        }
                        Err(err) => {
                            self.error = Some(err);
                            PartStep::Terminal
                        }
                    }
                }
                None => {
                    self.error = Some(ServeError::PartFailed { shard: self.parts[i].shard });
                    PartStep::Terminal
                }
            },
        }
    }

    /// One non-blocking advance step over part `i`.
    fn step_part(&mut self, i: usize) -> PartStep {
        if self.parts[i].rows.is_some() {
            return PartStep::Resolved;
        }
        match self.parts[i].rx.try_recv() {
            SlotPoll::Reply(Ok(rows)) => {
                self.store_part(i, rows);
                PartStep::Resolved
            }
            SlotPoll::Reply(Err(e)) => self.part_failed(i, e),
            SlotPoll::Pending => PartStep::Pending,
            SlotPoll::Closed => {
                self.error = Some(ServeError::EngineShutdown);
                PartStep::Terminal
            }
        }
    }

    /// Drive every source forward without blocking. True when the
    /// assembly can resolve (complete, or terminal error).
    fn advance(&mut self) -> bool {
        if self.error.is_some() {
            return true;
        }
        let mut pending = false;
        for i in 0..self.parts.len() {
            loop {
                match self.step_part(i) {
                    PartStep::Resolved => break,
                    PartStep::Pending => {
                        pending = true;
                        break;
                    }
                    PartStep::Retried => continue,
                    PartStep::Terminal => return true,
                }
            }
        }
        for w in &mut self.waiters {
            let Some(waiter) = w.pending() else { continue };
            match waiter.poll() {
                Some(Ok(row)) => w.row = Some(row),
                Some(Err(_)) => {
                    // A coalesced fill was aborted under this request:
                    // the owning computation died (fault-injected
                    // poison, or shutdown). No retry handle exists for
                    // foreign computations — fail the ticket.
                    self.error = Some(ServeError::PartFailed { shard: None });
                    return true;
                }
                None => pending = true,
            }
        }
        !pending
    }

    /// Resolve the assembly: the terminal error, or the completed
    /// response. Only called once `advance` (or a blocking walk)
    /// reported readiness.
    fn resolve(&mut self) -> Result<EmbedResponse, ServeError> {
        match self.error.take() {
            Some(e) => self.finish_err(e),
            None => self.complete(),
        }
    }

    /// Resolve with `e`: count `failed`, close the root span, and take
    /// `out` so `Drop` does not also count `abandoned`.
    fn finish_err(&mut self, e: ServeError) -> Result<EmbedResponse, ServeError> {
        self.out = None;
        if let Some(stats) = &self.completion.stats {
            stats.fail();
        }
        if let Some(tr) = &self.completion.trace {
            tr.tracer.record(tr.root, SpanKind::Embed, tr.begin_ns, tr.tracer.now(), None, 0);
        }
        Err(e)
    }

    /// Copy every outstanding row into `out` and finish. Only called
    /// once all parts and waiters have resolved.
    fn complete(&mut self) -> Result<EmbedResponse, ServeError> {
        let mut out = self.out.take().expect("assembly completes once");
        if self.whole {
            out = self.parts[0].rows.take().expect("direct part resolved");
        } else {
            // One index over every owed row, then one pass over the
            // positions — assembly stays linear even when a request
            // fully coalesced into hundreds of waiter slots.
            let mut by_node: std::collections::HashMap<usize, &[f32]> =
                std::collections::HashMap::new();
            for p in &self.parts {
                let rows = p.rows.as_ref().expect("part resolved");
                for (j, &u) in p.union.iter().enumerate() {
                    by_node.insert(u, rows.row(j));
                }
            }
            for w in &self.waiters {
                by_node.insert(w.node, w.row.as_ref().expect("waiter resolved"));
            }
            for &(pos, node) in &self.positions {
                let row =
                    by_node.get(&node).expect("every miss position is owed by a part or a waiter");
                out.row_mut(pos).copy_from_slice(row);
            }
        }
        if let Some(hist) = &self.completion.hist {
            hist.record(self.begun.elapsed());
        }
        let degraded = std::mem::take(&mut self.degraded);
        if let Some(stats) = &self.completion.stats {
            if degraded.iter().any(|&b| b) {
                stats.degraded_harvest();
            } else {
                stats.harvest();
            }
        }
        if let Some(tr) = &self.completion.trace {
            let now = tr.tracer.now();
            let harvest = tr.tracer.child(tr.root);
            tr.tracer.record(
                harvest,
                SpanKind::Harvest,
                self.harvest_start_ns,
                now,
                None,
                out.nrows() as u64,
            );
            tr.tracer.record(tr.root, SpanKind::Embed, tr.begin_ns, now, None, out.nrows() as u64);
        }
        Ok(EmbedResponse { rows: out, served_degraded: degraded, quality: self.quality })
    }
}

impl Drop for EmbedAssembly {
    fn drop(&mut self) {
        // `resolve` takes `out` (on success *and* on error); if it is
        // still here the ticket never resolved — dropped unharvested.
        if self.out.is_none() {
            return;
        }
        if let Some(stats) = &self.completion.stats {
            stats.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        // Close the root span anyway so a sampled-then-abandoned
        // request still leaves a rooted (if truncated) tree.
        if let Some(tr) = &self.completion.trace {
            tr.tracer.record(tr.root, SpanKind::Embed, tr.begin_ns, tr.tracer.now(), None, 0);
        }
    }
}

impl Harvest<EmbedResponse> for EmbedAssembly {
    fn try_harvest(&mut self) -> Option<Result<EmbedResponse, ServeError>> {
        self.note_harvest_start();
        if self.advance() {
            return Some(self.resolve());
        }
        None
    }

    fn harvest(&mut self) -> Result<EmbedResponse, ServeError> {
        self.note_harvest_start();
        let mut i = 0;
        while self.error.is_none() && i < self.parts.len() {
            if self.parts[i].rows.is_some() {
                i += 1;
                continue;
            }
            match self.parts[i].rx.recv() {
                Some(Ok(rows)) => {
                    self.store_part(i, rows);
                    i += 1;
                }
                // A retried part re-blocks on its fresh slot (`i`
                // unchanged); a terminal failure exits the loop.
                Some(Err(e)) => {
                    let _ = self.part_failed(i, e);
                }
                None => self.error = Some(ServeError::EngineShutdown),
            }
        }
        if self.error.is_none() {
            for w in &mut self.waiters {
                let Some(waiter) = w.pending() else { continue };
                match waiter.wait() {
                    Ok(row) => w.row = Some(row),
                    Err(_) => {
                        self.error = Some(ServeError::PartFailed { shard: None });
                        break;
                    }
                }
            }
        }
        self.resolve()
    }

    fn harvest_deadline(&mut self, deadline: Instant) -> Option<Result<EmbedResponse, ServeError>> {
        self.note_harvest_start();
        let mut i = 0;
        while self.error.is_none() && i < self.parts.len() {
            if self.parts[i].rows.is_some() {
                i += 1;
                continue;
            }
            match self.parts[i].rx.recv_deadline(deadline) {
                SlotPoll::Reply(Ok(rows)) => {
                    self.store_part(i, rows);
                    i += 1;
                }
                SlotPoll::Reply(Err(e)) => {
                    let _ = self.part_failed(i, e);
                }
                SlotPoll::Pending => return None,
                SlotPoll::Closed => self.error = Some(ServeError::EngineShutdown),
            }
        }
        if self.error.is_none() {
            for w in &mut self.waiters {
                let Some(waiter) = w.pending() else { continue };
                match waiter.wait_deadline(deadline) {
                    Some(Ok(row)) => w.row = Some(row),
                    Some(Err(_)) => {
                        self.error = Some(ServeError::PartFailed { shard: None });
                        break;
                    }
                    None => return None,
                }
            }
        }
        Some(self.resolve())
    }

    fn ready(&mut self) -> bool {
        self.advance()
    }

    fn subscribe(&mut self, watcher: Watcher) {
        let mut any_pending = false;
        for p in &self.parts {
            if p.rows.is_none() {
                any_pending = true;
                p.rx.subscribe(watcher.clone());
            }
        }
        for w in &self.waiters {
            if let Some(waiter) = w.pending() {
                any_pending = true;
                waiter.subscribe(watcher.clone());
            }
        }
        if !any_pending {
            watcher();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::slot;
    use fusedmm_perf::gauge::Gauge;

    fn guard() -> (Arc<Gauge>, GaugeGuard) {
        let g = Arc::new(Gauge::new());
        let h = g.acquire();
        (g, h)
    }

    fn exact(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    fn direct(
        nodes: Vec<usize>,
        rx: SlotRx,
        completion: Completion,
        g: GaugeGuard,
    ) -> EmbedAssembly {
        let marks = exact(nodes.len());
        EmbedAssembly::direct(
            Part::with_retry(nodes, 0, None, rx, None),
            marks,
            Quality::Exact,
            completion,
            g,
        )
    }

    #[test]
    fn ready_ticket_resolves_immediately() {
        let mut t = Ticket::ready(Ok(7usize));
        assert!(t.is_live());
        assert!(t.ready_now());
        assert_eq!(t.poll(), Some(Ok(7)));
        assert!(!t.is_live());
        assert!(!t.ready_now());
    }

    #[test]
    #[should_panic(expected = "already harvested")]
    fn double_harvest_panics() {
        let mut t = Ticket::ready(Ok(1usize));
        let _ = t.poll();
        let _ = t.poll();
    }

    #[test]
    fn mapped_ticket_transforms_the_result() {
        let t = Ticket::ready(Ok(21usize)).map(|v| v * 2);
        assert_eq!(t.wait(), Ok(42));
    }

    #[test]
    fn direct_assembly_polls_then_completes() {
        let (gauge, g) = guard();
        let (tx, rx) = slot();
        let mut t = Ticket::pending(direct(vec![0, 1], rx, Completion::default(), g));
        assert_eq!(t.poll(), None, "nothing sent yet");
        assert_eq!(gauge.value(), 1);
        let rows = Dense::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        tx.send(Ok(rows.clone()));
        let resp = t.poll().expect("complete").expect("ok");
        assert_eq!(resp.rows, rows);
        assert_eq!(resp.quality, Quality::Exact);
        assert!(!resp.any_degraded());
        assert_eq!(gauge.value(), 0, "resolving releases the in-flight unit");
    }

    #[test]
    fn dropped_ticket_releases_the_gauge() {
        let (gauge, g) = guard();
        let (_tx, rx) = slot();
        let t = Ticket::pending(direct(vec![0], rx, Completion::default(), g));
        assert_eq!(gauge.value(), 1);
        drop(t);
        assert_eq!(gauge.value(), 0);
    }

    #[test]
    fn disconnected_dispatcher_is_a_shutdown_error() {
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        drop(tx);
        let t = Ticket::pending(direct(vec![0], rx, Completion::default(), g));
        assert_eq!(t.wait().unwrap_err(), ServeError::EngineShutdown);
    }

    #[test]
    fn wait_deadline_times_out_and_stays_live() {
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let mut t = Ticket::pending(direct(vec![3], rx, Completion::default(), g));
        let soon = Instant::now() + std::time::Duration::from_millis(5);
        assert!(t.wait_deadline(soon).is_none());
        assert!(t.is_live());
        let rows = Dense::from_rows(1, 1, &[9.0]).unwrap();
        tx.send(Ok(rows.clone()));
        let far = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(t.wait_deadline(far).unwrap().unwrap().rows, rows);
    }

    #[test]
    fn panicked_part_retries_once_then_fails_terminally() {
        // First failure consumes the retry; the retried slot fails
        // again and the ticket resolves PartFailed with the shard id.
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let (retry_tx, retry_rx) = slot();
        let retry_slot = std::sync::Mutex::new(Some(retry_rx));
        let retried = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let retried_in = Arc::clone(&retried);
        let retry: PartRetry = Box::new(move |nodes: &[usize]| {
            assert_eq!(nodes, &[4, 7]);
            retried_in.fetch_add(1, Ordering::SeqCst);
            Ok(retry_slot.lock().unwrap().take().expect("retry used once"))
        });
        let part = Part::with_retry(vec![4, 7], 0, Some(2), rx, Some(retry));
        let mut t = Ticket::pending(EmbedAssembly::direct(
            part,
            exact(2),
            Quality::Exact,
            Completion::default(),
            g,
        ));
        tx.send(Err(PartError::Panicked));
        assert_eq!(t.poll(), None, "retry re-enqueued; fresh slot still pending");
        assert_eq!(retried.load(Ordering::SeqCst), 1);
        retry_tx.send(Err(PartError::Panicked));
        assert_eq!(
            t.poll(),
            Some(Err(ServeError::PartFailed { shard: Some(2) })),
            "second panic is terminal"
        );
    }

    #[test]
    fn panicked_part_recovers_via_retry() {
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let (retry_tx, retry_rx) = slot();
        let retry_slot = std::sync::Mutex::new(Some(retry_rx));
        let retry: PartRetry =
            Box::new(move |_: &[usize]| Ok(retry_slot.lock().unwrap().take().unwrap()));
        let part = Part::with_retry(vec![1], 0, Some(0), rx, Some(retry));
        let stats = Arc::new(RequestStats::default());
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        let t =
            Ticket::pending(EmbedAssembly::direct(part, exact(1), Quality::Exact, completion, g));
        tx.send(Err(PartError::Panicked));
        let rows = Dense::from_rows(1, 1, &[5.0]).unwrap();
        retry_tx.send(Ok(rows.clone()));
        let resp = t.wait().expect("retry healed the request");
        assert_eq!(resp.rows, rows);
        assert_eq!(stats.harvested.load(Ordering::Relaxed), 1, "a healed request harvests");
        assert_eq!(stats.failed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn expired_part_fails_with_deadline_expired() {
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let stats = Arc::new(RequestStats::default());
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        let t = Ticket::pending(direct(vec![0], rx, completion, g));
        tx.send(Err(PartError::Expired));
        assert_eq!(t.wait().unwrap_err(), ServeError::DeadlineExpired);
        assert_eq!(stats.failed.load(Ordering::Relaxed), 1);
        assert_eq!(stats.abandoned.load(Ordering::Relaxed), 0, "failed is not abandoned");
    }

    #[test]
    fn assembly_scatters_parts_and_waiters_in_request_order() {
        use fusedmm_cache::{CacheConfig, MissRoute, ResultCache};
        let (_gauge, g) = guard();
        // Request order: [8 (waiter), 2 (part), 8 (dup), 5 (hit)].
        let mut out = Dense::zeros(4, 1);
        out.row_mut(3).copy_from_slice(&[55.0]);
        let cache = ResultCache::new(16, 1, CacheConfig::default());
        let MissRoute::Owner(owner) = cache.route_miss(8, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = cache.route_miss(8, 0) else { panic!("waiter") };
        let (tx, rx) = slot();
        let mut t = Ticket::pending(EmbedAssembly::assemble(
            out,
            vec![Part::with_retry(vec![2], 0, None, rx, None)],
            vec![WaiterSlot::new(8, w)],
            vec![(0, 8), (1, 2), (2, 8)],
            exact(4),
            Quality::Exact,
            Completion::default(),
            None,
            g,
        ));
        assert_eq!(t.poll(), None);
        tx.send(Ok(Dense::from_rows(1, 1, &[22.0]).unwrap()));
        assert_eq!(t.poll(), None, "waiter still outstanding; part progress kept");
        cache.fill(owner, &[88.0]);
        let z = t.poll().expect("complete").expect("ok");
        assert_eq!(z.rows.as_slice(), &[88.0, 22.0, 88.0, 55.0]);
    }

    #[test]
    fn aborted_coalesced_fill_fails_the_ticket() {
        use fusedmm_cache::{CacheConfig, MissRoute, ResultCache};
        let (_gauge, g) = guard();
        let cache = ResultCache::new(16, 1, CacheConfig::default());
        let MissRoute::Owner(owner) = cache.route_miss(3, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = cache.route_miss(3, 0) else { panic!("waiter") };
        let t = Ticket::pending(EmbedAssembly::assemble(
            Dense::zeros(1, 1),
            Vec::new(),
            vec![WaiterSlot::new(3, w)],
            vec![(0, 3)],
            exact(1),
            Quality::Exact,
            Completion::default(),
            None,
            g,
        ));
        cache.abort(owner);
        assert_eq!(t.wait().unwrap_err(), ServeError::PartFailed { shard: None });
    }

    #[test]
    fn completion_reconciles_every_outcome_bucket() {
        let stats = Arc::new(RequestStats::default());
        // Harvested: the dispatcher answers and the ticket is waited.
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        let t = Ticket::pending(direct(vec![0], rx, completion, g));
        tx.send(Ok(Dense::from_rows(1, 1, &[1.0]).unwrap()));
        t.wait().unwrap();
        // Abandoned: the ticket is dropped before any answer.
        let (_gauge2, g2) = guard();
        let (_tx2, rx2) = slot();
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        drop(Ticket::pending(direct(vec![1], rx2, completion, g2)));
        // Ready at creation.
        stats.ready();
        // Shed at admission.
        stats.shed();
        // Failed: expired before the kernel ran.
        let (_gauge3, g3) = guard();
        let (tx3, rx3) = slot();
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        let t = Ticket::pending(direct(vec![2], rx3, completion, g3));
        tx3.send(Err(PartError::Expired));
        assert!(t.wait().is_err());
        // Degraded at creation (CachedOnly with misses).
        stats.ready_degraded();
        let begun = stats.begun.load(Ordering::Relaxed);
        let harvested = stats.harvested.load(Ordering::Relaxed);
        let degraded = stats.degraded.load(Ordering::Relaxed);
        let shed = stats.shed.load(Ordering::Relaxed);
        let failed = stats.failed.load(Ordering::Relaxed);
        let abandoned = stats.abandoned.load(Ordering::Relaxed);
        assert_eq!((begun, harvested, degraded, shed, failed, abandoned), (6, 2, 1, 1, 1, 1));
        assert_eq!(begun, harvested + degraded + shed + failed + abandoned);
    }

    #[test]
    fn degraded_marks_route_to_the_degraded_bucket() {
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let stats = Arc::new(RequestStats::default());
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        let part = Part::with_retry(vec![0, 1], 0, None, rx, None);
        let t = Ticket::pending(EmbedAssembly::direct(
            part,
            vec![true, true],
            Quality::TopKNeighbors(2),
            completion,
            g,
        ));
        tx.send(Ok(Dense::from_rows(2, 1, &[1.0, 2.0]).unwrap()));
        let resp = t.wait().unwrap();
        assert_eq!(resp.quality, Quality::TopKNeighbors(2));
        assert_eq!(resp.degraded_rows(), vec![0, 1]);
        assert_eq!(stats.degraded.load(Ordering::Relaxed), 1);
        assert_eq!(stats.harvested.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn subscribe_wakes_on_the_last_outstanding_source() {
        use std::sync::atomic::AtomicUsize;
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let mut t = Ticket::pending(direct(vec![0], rx, Completion::default(), g));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        t.subscribe(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert!(!t.ready_now());
        tx.send(Ok(Dense::from_rows(1, 1, &[3.0]).unwrap()));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "source resolution fired the watcher");
        assert!(t.ready_now());
        assert!(t.poll().unwrap().is_ok());
    }

    #[test]
    fn resolving_a_traced_assembly_closes_the_root_and_harvest_spans() {
        let tracer = Tracer::new(1.0, 64);
        let root = tracer.sample_root().unwrap();
        let begin_ns = tracer.now();
        let (_gauge, g) = guard();
        let (tx, rx) = slot();
        let completion = Completion {
            trace: Some(TraceHandle { tracer: Arc::clone(&tracer), root, begin_ns }),
            ..Completion::default()
        };
        let t = Ticket::pending(direct(vec![0, 1], rx, completion, g));
        tx.send(Ok(Dense::from_rows(2, 1, &[1.0, 2.0]).unwrap()));
        t.wait().unwrap();
        let spans = tracer.spans();
        let embed = spans.iter().find(|s| s.kind == SpanKind::Embed).expect("root closed");
        let harvest = spans.iter().find(|s| s.kind == SpanKind::Harvest).expect("harvest span");
        assert_eq!(embed.parent, 0);
        assert_eq!(harvest.parent, embed.span);
        assert_eq!(harvest.trace, embed.trace);
        assert_eq!(embed.rows, 2);
        assert!(embed.start_ns <= harvest.start_ns && harvest.end_ns <= embed.end_ns);
    }
}
