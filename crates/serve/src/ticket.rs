//! Completion tokens for the non-blocking serving API.
//!
//! [`Engine::embed_begin`](crate::Engine::embed_begin) and
//! [`ShardedEngine::embed_begin`](crate::ShardedEngine::embed_begin)
//! return a [`Ticket`] instead of blocking: the caller can launch N
//! requests, do other work, and harvest completions with
//! [`Ticket::poll`] (non-blocking), [`Ticket::wait`] (blocking), or
//! [`Ticket::wait_deadline`] (bounded blocking). There is no executor
//! and no extra thread — a ticket is the existing mpsc/condvar
//! machinery lifted into an object: the dispatcher (or, for a
//! coalesced miss, the owning request's dispatcher) pushes the rows
//! into per-ticket channels, and harvesting just drains them. Shard
//! tickets gather lazily: `embed_begin` fans the request out to every
//! involved band engine immediately, but nothing blocks until the
//! first `poll`/`wait`.
//!
//! The blocking `embed` calls are implemented as
//! `embed_begin(..)?.wait()`, so ticketed and blocking serving are the
//! same code path — bit-identical by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use fusedmm_cache::RowWaiter;
use fusedmm_perf::gauge::GaugeGuard;
use fusedmm_perf::hist::{HistogramVec, LatencyHistogram};
use fusedmm_perf::trace::{SpanCtx, SpanKind, Tracer};
use fusedmm_sparse::dense::Dense;

use crate::engine::ServeError;

/// Request-lifecycle reconciliation counters: every `embed_begin` that
/// returns `Ok` counts one `begun`, and exactly one of `harvested`
/// (the response was assembled and returned) or `abandoned` (the
/// ticket was dropped unresolved, or died on an engine shutdown) —
/// so `begun == harvested + abandoned` once every ticket has resolved.
/// Tickets that are already resolved at creation (empty request, full
/// cache hit) count `begun` and `harvested` immediately: their result
/// is materialized at begin time.
#[derive(Debug, Default)]
pub(crate) struct RequestStats {
    pub begun: AtomicU64,
    pub harvested: AtomicU64,
    pub abandoned: AtomicU64,
}

impl RequestStats {
    pub fn begin(&self) {
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    pub fn harvest(&self) {
        self.harvested.fetch_add(1, Ordering::Relaxed);
    }

    /// A ticket resolved at creation: begun and harvested in one step.
    pub fn ready(&self) {
        self.begin();
        self.harvest();
    }
}

/// The sampled root span a ticket carries until it resolves: the
/// completing harvest records the `Harvest` child and closes the root
/// `Embed` span; an abandoned assembly still closes the root so every
/// sampled request leaves a rooted tree.
pub(crate) struct TraceHandle {
    pub tracer: Arc<Tracer>,
    pub root: SpanCtx,
    /// `Tracer::now()` at `embed_begin` — the root span's start.
    pub begin_ns: u64,
}

/// Everything recorded when an [`EmbedAssembly`] resolves (or is
/// dropped unresolved). Bundled so the assembly constructors stay at a
/// readable arity.
#[derive(Default)]
pub(crate) struct Completion {
    /// Records begin→completion when no dispatcher saw this request
    /// (fully coalesced) — keeps one histogram observation per request.
    pub hist: Option<Arc<LatencyHistogram>>,
    /// The owning engine's reconciliation counters.
    pub stats: Option<Arc<RequestStats>>,
    /// The sampled root span, when this request was admitted.
    pub trace: Option<TraceHandle>,
}

/// A completion token for one in-flight serving request. Obtained from
/// `embed_begin`; resolves exactly once (the result is moved out by
/// the call that completes it).
///
/// # Panics
/// Every harvesting method panics when called again after one of them
/// has already returned the result — a resolved ticket is spent.
pub struct Ticket<T> {
    state: State<T>,
}

enum State<T> {
    Ready(Result<T, ServeError>),
    Pending(Box<dyn Harvest<T> + Send>),
    Taken,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            State::Ready(_) => "ready",
            State::Pending(_) => "pending",
            State::Taken => "taken",
        };
        f.debug_struct("Ticket").field("state", &state).finish()
    }
}

impl<T> Ticket<T> {
    /// A ticket already resolved at creation (full cache hit, empty
    /// request).
    pub(crate) fn ready(result: Result<T, ServeError>) -> Self {
        Ticket { state: State::Ready(result) }
    }

    /// A ticket that harvests `job` on demand.
    pub(crate) fn pending(job: impl Harvest<T> + Send + 'static) -> Self {
        Ticket { state: State::Pending(Box::new(job)) }
    }

    /// Non-blocking harvest: `Some(result)` once every piece of the
    /// response has arrived (the ticket is then spent), `None` while
    /// still in flight. Partial progress is kept across calls, so a
    /// poll loop over many tickets does no repeated work.
    pub fn poll(&mut self) -> Option<Result<T, ServeError>> {
        match &mut self.state {
            State::Ready(_) => {
                let State::Ready(r) = std::mem::replace(&mut self.state, State::Taken) else {
                    unreachable!()
                };
                Some(r)
            }
            State::Pending(job) => match job.try_harvest() {
                Some(r) => {
                    self.state = State::Taken;
                    Some(r)
                }
                None => None,
            },
            State::Taken => panic!("ticket already harvested"),
        }
    }

    /// Block until the response is complete and return it.
    pub fn wait(mut self) -> Result<T, ServeError> {
        match std::mem::replace(&mut self.state, State::Taken) {
            State::Ready(r) => r,
            State::Pending(mut job) => job.harvest(),
            State::Taken => panic!("ticket already harvested"),
        }
    }

    /// Block until the response is complete or `deadline` passes:
    /// `Some(result)` on completion (the ticket is then spent), `None`
    /// on timeout — the ticket stays live and keeps any partial
    /// progress, so the caller can keep polling or extend the
    /// deadline.
    pub fn wait_deadline(&mut self, deadline: Instant) -> Option<Result<T, ServeError>> {
        match &mut self.state {
            State::Ready(_) => self.poll(),
            State::Pending(job) => match job.harvest_deadline(deadline) {
                Some(r) => {
                    self.state = State::Taken;
                    Some(r)
                }
                None => None,
            },
            State::Taken => panic!("ticket already harvested"),
        }
    }

    /// True while the result has not been taken yet (ready or still in
    /// flight).
    pub fn is_live(&self) -> bool {
        !matches!(self.state, State::Taken)
    }
}

/// The harvesting strategy behind a pending [`Ticket`].
pub(crate) trait Harvest<T> {
    /// Advance without blocking; `Some` when complete.
    fn try_harvest(&mut self) -> Option<Result<T, ServeError>>;
    /// Block to completion.
    fn harvest(&mut self) -> Result<T, ServeError>;
    /// Block until complete or `deadline`; `None` on timeout.
    fn harvest_deadline(&mut self, deadline: Instant) -> Option<Result<T, ServeError>>;
}

/// One dispatched sub-request: the dispatcher will send one row per
/// entry of `union`, in that order.
pub(crate) struct Part {
    /// Sorted, deduplicated nodes this part computes.
    union: Vec<usize>,
    /// Member index in the fan-out histogram (the shard id).
    tag: usize,
    rx: mpsc::Receiver<Dense>,
    rows: Option<Dense>,
}

impl Part {
    pub(crate) fn new(union: Vec<usize>, tag: usize, rx: mpsc::Receiver<Dense>) -> Part {
        Part { union, tag, rx, rows: None }
    }
}

/// One miss served without a dispatch from this request: either a
/// coalesced miss (another request's computation will back-fill the
/// row for `node`) or a row that was already resolved at begin time (a
/// concurrent fill landed between lookup and routing).
pub(crate) struct WaiterSlot {
    node: usize,
    /// `None` when the slot was resolved at construction.
    waiter: Option<RowWaiter>,
    row: Option<Box<[f32]>>,
}

impl WaiterSlot {
    pub(crate) fn new(node: usize, waiter: RowWaiter) -> WaiterSlot {
        WaiterSlot { node, waiter: Some(waiter), row: None }
    }

    /// A slot whose row is already known (a `MissRoute::Resident`).
    pub(crate) fn resolved(node: usize, row: Box<[f32]>) -> WaiterSlot {
        WaiterSlot { node, waiter: None, row: Some(row) }
    }

    fn pending(&self) -> Option<&RowWaiter> {
        match &self.row {
            Some(_) => None,
            None => Some(self.waiter.as_ref().expect("unresolved slot has a waiter")),
        }
    }
}

/// The embed-request harvest shared by the single and the sharded
/// engine: hit rows are pre-filled into `out`, dispatched parts and
/// coalesced waiters stream in, and the first call that finds
/// everything present assembles the response in request order.
pub(crate) struct EmbedAssembly {
    /// Pre-filled output; taken by the completing call.
    out: Option<Dense>,
    /// When set, the single part's `Dense` *is* the whole response
    /// (the dispatcher already scattered it to request order).
    whole: bool,
    parts: Vec<Part>,
    waiters: Vec<WaiterSlot>,
    /// `(output row, node)` pairs to fill from parts/waiters.
    positions: Vec<(usize, usize)>,
    /// Recorded when the assembly resolves: completion histogram,
    /// reconciliation counters, and the sampled root span.
    completion: Completion,
    /// `Tracer::now()` at the start of the harvest call currently in
    /// progress — the `Harvest` span's start when that call completes.
    harvest_start_ns: u64,
    /// Gather-progress histogram (sharded front end): member
    /// `parts[i].tag` records when that part's rows arrive.
    fanout: Option<Arc<HistogramVec>>,
    begun: Instant,
    /// Holds one unit of the engine's in-flight gauge until the ticket
    /// resolves or is dropped.
    _inflight: GaugeGuard,
}

impl EmbedAssembly {
    /// The uncached single-engine shape: the dispatcher's response is
    /// the final one.
    pub(crate) fn direct(
        nodes: Vec<usize>,
        rx: mpsc::Receiver<Dense>,
        completion: Completion,
        guard: GaugeGuard,
    ) -> Self {
        EmbedAssembly {
            out: Some(Dense::zeros(0, 0)),
            whole: true,
            parts: vec![Part::new(nodes, 0, rx)],
            waiters: Vec::new(),
            positions: Vec::new(),
            completion,
            harvest_start_ns: 0,
            fanout: None,
            begun: Instant::now(),
            _inflight: guard,
        }
    }

    /// The assembling shape: `out` holds the hit rows, `positions`
    /// name what parts and waiters still owe.
    pub(crate) fn assemble(
        out: Dense,
        parts: Vec<Part>,
        waiters: Vec<WaiterSlot>,
        positions: Vec<(usize, usize)>,
        completion: Completion,
        fanout: Option<Arc<HistogramVec>>,
        guard: GaugeGuard,
    ) -> Self {
        EmbedAssembly {
            out: Some(out),
            whole: false,
            parts,
            waiters,
            positions,
            completion,
            harvest_start_ns: 0,
            fanout,
            begun: Instant::now(),
            _inflight: guard,
        }
    }

    /// Called at the top of every harvest entry point so the
    /// completing call's `Harvest` span covers exactly that call.
    fn note_harvest_start(&mut self) {
        if let Some(tr) = &self.completion.trace {
            self.harvest_start_ns = tr.tracer.now();
        }
    }

    fn store_part(&mut self, i: usize, rows: Dense) {
        if let Some(fanout) = &self.fanout {
            fanout.record(self.parts[i].tag, self.begun.elapsed());
        }
        self.parts[i].rows = Some(rows);
    }

    /// Copy every outstanding row into `out` and finish. Only called
    /// once all parts and waiters have resolved.
    fn complete(&mut self) -> Result<Dense, ServeError> {
        let mut out = self.out.take().expect("assembly completes once");
        if self.whole {
            out = self.parts[0].rows.take().expect("direct part resolved");
        } else {
            // One index over every owed row, then one pass over the
            // positions — assembly stays linear even when a request
            // fully coalesced into hundreds of waiter slots.
            let mut by_node: std::collections::HashMap<usize, &[f32]> =
                std::collections::HashMap::new();
            for p in &self.parts {
                let rows = p.rows.as_ref().expect("part resolved");
                for (j, &u) in p.union.iter().enumerate() {
                    by_node.insert(u, rows.row(j));
                }
            }
            for w in &self.waiters {
                by_node.insert(w.node, w.row.as_ref().expect("waiter resolved"));
            }
            for &(pos, node) in &self.positions {
                let row =
                    by_node.get(&node).expect("every miss position is owed by a part or a waiter");
                out.row_mut(pos).copy_from_slice(row);
            }
        }
        if let Some(hist) = &self.completion.hist {
            hist.record(self.begun.elapsed());
        }
        if let Some(stats) = &self.completion.stats {
            stats.harvest();
        }
        if let Some(tr) = &self.completion.trace {
            let now = tr.tracer.now();
            let harvest = tr.tracer.child(tr.root);
            tr.tracer.record(
                harvest,
                SpanKind::Harvest,
                self.harvest_start_ns,
                now,
                None,
                out.nrows() as u64,
            );
            tr.tracer.record(tr.root, SpanKind::Embed, tr.begin_ns, now, None, out.nrows() as u64);
        }
        Ok(out)
    }
}

impl Drop for EmbedAssembly {
    fn drop(&mut self) {
        // `complete` takes `out`; if it is still here the ticket never
        // resolved — dropped unharvested, or failed on a shutdown.
        if self.out.is_none() {
            return;
        }
        if let Some(stats) = &self.completion.stats {
            stats.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        // Close the root span anyway so a sampled-then-abandoned
        // request still leaves a rooted (if truncated) tree.
        if let Some(tr) = &self.completion.trace {
            tr.tracer.record(tr.root, SpanKind::Embed, tr.begin_ns, tr.tracer.now(), None, 0);
        }
    }
}

impl Harvest<Dense> for EmbedAssembly {
    fn try_harvest(&mut self) -> Option<Result<Dense, ServeError>> {
        self.note_harvest_start();
        let mut pending = false;
        for i in 0..self.parts.len() {
            if self.parts[i].rows.is_some() {
                continue;
            }
            match self.parts[i].rx.try_recv() {
                Ok(rows) => self.store_part(i, rows),
                Err(mpsc::TryRecvError::Empty) => pending = true,
                Err(mpsc::TryRecvError::Disconnected) => {
                    return Some(Err(ServeError::EngineShutdown))
                }
            }
        }
        for w in &mut self.waiters {
            let Some(waiter) = w.pending() else { continue };
            match waiter.poll() {
                Some(Ok(row)) => w.row = Some(row),
                Some(Err(_)) => return Some(Err(ServeError::EngineShutdown)),
                None => pending = true,
            }
        }
        if pending {
            return None;
        }
        Some(self.complete())
    }

    fn harvest(&mut self) -> Result<Dense, ServeError> {
        self.note_harvest_start();
        for i in 0..self.parts.len() {
            if self.parts[i].rows.is_some() {
                continue;
            }
            match self.parts[i].rx.recv() {
                Ok(rows) => self.store_part(i, rows),
                Err(_) => return Err(ServeError::EngineShutdown),
            }
        }
        for w in &mut self.waiters {
            let Some(waiter) = w.pending() else { continue };
            match waiter.wait() {
                Ok(row) => w.row = Some(row),
                Err(_) => return Err(ServeError::EngineShutdown),
            }
        }
        self.complete()
    }

    fn harvest_deadline(&mut self, deadline: Instant) -> Option<Result<Dense, ServeError>> {
        self.note_harvest_start();
        for i in 0..self.parts.len() {
            if self.parts[i].rows.is_some() {
                continue;
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.parts[i].rx.recv_timeout(timeout) {
                Ok(rows) => self.store_part(i, rows),
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Some(Err(ServeError::EngineShutdown))
                }
            }
        }
        for w in &mut self.waiters {
            let Some(waiter) = w.pending() else { continue };
            match waiter.wait_deadline(deadline) {
                Some(Ok(row)) => w.row = Some(row),
                Some(Err(_)) => return Some(Err(ServeError::EngineShutdown)),
                None => return None,
            }
        }
        Some(self.complete())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_perf::gauge::Gauge;

    fn guard() -> (Arc<Gauge>, GaugeGuard) {
        let g = Arc::new(Gauge::new());
        let h = g.acquire();
        (g, h)
    }

    #[test]
    fn ready_ticket_resolves_immediately() {
        let mut t = Ticket::ready(Ok(7usize));
        assert!(t.is_live());
        assert_eq!(t.poll(), Some(Ok(7)));
        assert!(!t.is_live());
    }

    #[test]
    #[should_panic(expected = "already harvested")]
    fn double_harvest_panics() {
        let mut t = Ticket::ready(Ok(1usize));
        let _ = t.poll();
        let _ = t.poll();
    }

    #[test]
    fn direct_assembly_polls_then_completes() {
        let (gauge, g) = guard();
        let (tx, rx) = mpsc::channel();
        let mut t =
            Ticket::pending(EmbedAssembly::direct(vec![0, 1], rx, Completion::default(), g));
        assert_eq!(t.poll(), None, "nothing sent yet");
        assert_eq!(gauge.value(), 1);
        let rows = Dense::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        tx.send(rows.clone()).unwrap();
        assert_eq!(t.poll(), Some(Ok(rows)));
        assert_eq!(gauge.value(), 0, "resolving releases the in-flight unit");
    }

    #[test]
    fn dropped_ticket_releases_the_gauge() {
        let (gauge, g) = guard();
        let (_tx, rx) = mpsc::channel();
        let t = Ticket::pending(EmbedAssembly::direct(vec![0], rx, Completion::default(), g));
        assert_eq!(gauge.value(), 1);
        drop(t);
        assert_eq!(gauge.value(), 0);
    }

    #[test]
    fn disconnected_dispatcher_is_a_shutdown_error() {
        let (_gauge, g) = guard();
        let (tx, rx) = mpsc::channel::<Dense>();
        drop(tx);
        let t = Ticket::pending(EmbedAssembly::direct(vec![0], rx, Completion::default(), g));
        assert_eq!(t.wait(), Err(ServeError::EngineShutdown));
    }

    #[test]
    fn wait_deadline_times_out_and_stays_live() {
        let (_gauge, g) = guard();
        let (tx, rx) = mpsc::channel();
        let mut t = Ticket::pending(EmbedAssembly::direct(vec![3], rx, Completion::default(), g));
        let soon = Instant::now() + std::time::Duration::from_millis(5);
        assert!(t.wait_deadline(soon).is_none());
        assert!(t.is_live());
        let rows = Dense::from_rows(1, 1, &[9.0]).unwrap();
        tx.send(rows.clone()).unwrap();
        let far = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(t.wait_deadline(far), Some(Ok(rows)));
    }

    #[test]
    fn assembly_scatters_parts_and_waiters_in_request_order() {
        use fusedmm_cache::{CacheConfig, MissRoute, ResultCache};
        let (_gauge, g) = guard();
        // Request order: [8 (waiter), 2 (part), 8 (dup), 5 (hit)].
        let mut out = Dense::zeros(4, 1);
        out.row_mut(3).copy_from_slice(&[55.0]);
        let cache = ResultCache::new(16, 1, CacheConfig::default());
        let MissRoute::Owner(owner) = cache.route_miss(8, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = cache.route_miss(8, 0) else { panic!("waiter") };
        let (tx, rx) = mpsc::channel();
        let mut t = Ticket::pending(EmbedAssembly::assemble(
            out,
            vec![Part::new(vec![2], 0, rx)],
            vec![WaiterSlot::new(8, w)],
            vec![(0, 8), (1, 2), (2, 8)],
            Completion::default(),
            None,
            g,
        ));
        assert_eq!(t.poll(), None);
        tx.send(Dense::from_rows(1, 1, &[22.0]).unwrap()).unwrap();
        assert_eq!(t.poll(), None, "waiter still outstanding; part progress kept");
        cache.fill(owner, &[88.0]);
        let z = t.poll().expect("complete").expect("ok");
        assert_eq!(z.as_slice(), &[88.0, 22.0, 88.0, 55.0]);
    }

    #[test]
    fn completion_reconciles_harvested_and_abandoned() {
        let stats = Arc::new(RequestStats::default());
        // Harvested: the dispatcher answers and the ticket is waited.
        let (_gauge, g) = guard();
        let (tx, rx) = mpsc::channel();
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        let t = Ticket::pending(EmbedAssembly::direct(vec![0], rx, completion, g));
        tx.send(Dense::from_rows(1, 1, &[1.0]).unwrap()).unwrap();
        t.wait().unwrap();
        // Abandoned: the ticket is dropped before any answer.
        let (_gauge2, g2) = guard();
        let (_tx2, rx2) = mpsc::channel();
        stats.begin();
        let completion = Completion { stats: Some(Arc::clone(&stats)), ..Completion::default() };
        drop(Ticket::pending(EmbedAssembly::direct(vec![1], rx2, completion, g2)));
        // Ready at creation.
        stats.ready();
        let begun = stats.begun.load(Ordering::Relaxed);
        let harvested = stats.harvested.load(Ordering::Relaxed);
        let abandoned = stats.abandoned.load(Ordering::Relaxed);
        assert_eq!((begun, harvested, abandoned), (3, 2, 1));
        assert_eq!(begun, harvested + abandoned);
    }

    #[test]
    fn resolving_a_traced_assembly_closes_the_root_and_harvest_spans() {
        let tracer = Tracer::new(1.0, 64);
        let root = tracer.sample_root().unwrap();
        let begin_ns = tracer.now();
        let (_gauge, g) = guard();
        let (tx, rx) = mpsc::channel();
        let completion = Completion {
            trace: Some(TraceHandle { tracer: Arc::clone(&tracer), root, begin_ns }),
            ..Completion::default()
        };
        let t = Ticket::pending(EmbedAssembly::direct(vec![0, 1], rx, completion, g));
        tx.send(Dense::from_rows(2, 1, &[1.0, 2.0]).unwrap()).unwrap();
        t.wait().unwrap();
        let spans = tracer.spans();
        let embed = spans.iter().find(|s| s.kind == SpanKind::Embed).expect("root closed");
        let harvest = spans.iter().find(|s| s.kind == SpanKind::Harvest).expect("harvest span");
        assert_eq!(embed.parent, 0);
        assert_eq!(harvest.parent, embed.span);
        assert_eq!(harvest.trace, embed.trace);
        assert_eq!(embed.rows, 2);
        assert!(embed.start_ns <= harvest.start_ns && harvest.end_ns <= embed.end_ns);
    }
}
