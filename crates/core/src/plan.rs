//! Explicit, shareable kernel execution plans.
//!
//! [`crate::fusedmm`] consults the measuring autotuner on every call —
//! fine for one-shot batch jobs, wasteful for a serving loop issuing
//! thousands of small requests per second against the same (pattern,
//! dimension). A [`Plan`] lifts that per-call decision into a value:
//! prepare it once (paying the tuning probe at load time), then execute
//! full-graph or row-subset kernels through it with zero per-request
//! tuning, lock traffic, or dispatch ambiguity. [`PlanCache`] memoizes
//! plans per (pattern, d) for engines that serve several operator sets.

use std::collections::HashMap;

use parking_lot::RwLock;

use fusedmm_ops::{OpSet, Pattern};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::autotune::global_tuner;
use crate::dispatch::{fusedmm_opt_with, Blocking};
use crate::part::PartitionStrategy;
use crate::rows::{fusedmm_rows_banded, fusedmm_rows_banded_topk, fusedmm_rows_with};
use crate::simd::{active_backend, Backend};

/// A frozen kernel configuration for one (pattern, dimension): which
/// blocking level to run — possibly one plan-time specialized shape
/// from the generated dispatch table
/// ([`Blocking::Specialized`], keyed by
/// the probed best panel/chunk grid point for this `(pattern, d,
/// backend)`) — which SIMD backend executes it, and how to partition
/// rows across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    pattern: Pattern,
    d: usize,
    blocking: Blocking,
    backend: Backend,
    strategy: PartitionStrategy,
}

impl Plan {
    /// Measure (via the global autotuner) and freeze the best blocking
    /// for `ops` at dimension `d` — the fixed const/strip/dyn levels
    /// race against the specialized table's probed best shape, so a
    /// prepared plan carries a monomorphized kernel selection, not
    /// just a strategy tag. The probe runs at most once per process
    /// per (pattern, d); repeated `prepare` calls are cheap.
    pub fn prepare(ops: &OpSet, d: usize) -> Plan {
        Plan {
            pattern: ops.pattern,
            d,
            blocking: global_tuner().choose(ops, d),
            backend: active_backend(),
            strategy: PartitionStrategy::NnzBalanced,
        }
    }

    /// Build a plan with an explicit blocking choice (no measurement) —
    /// for tests, ablations, or configs pinned from a previous run.
    pub fn with_blocking(
        ops: &OpSet,
        d: usize,
        blocking: Blocking,
        strategy: PartitionStrategy,
    ) -> Plan {
        Plan { pattern: ops.pattern, d, blocking, backend: active_backend(), strategy }
    }

    /// The operator pattern this plan was prepared for.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The embedding dimension this plan was prepared for.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The frozen blocking level.
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// The SIMD backend that executes this plan — recorded at
    /// preparation time for observability; kernels always run on the
    /// process-wide [`active_backend`].
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The frozen partition strategy.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Full-graph execution under this plan.
    ///
    /// # Panics
    /// Panics when `ops` or the operand shapes disagree with what the
    /// plan was prepared for.
    pub fn execute(&self, a: &Csr, x: &Dense, y: &Dense, ops: &OpSet) -> Dense {
        self.check(ops, x);
        fusedmm_opt_with(a, x, y, ops, self.blocking, None, self.strategy)
    }

    /// Row-subset execution under this plan (see
    /// [`crate::rows::fusedmm_rows`]).
    pub fn execute_rows(
        &self,
        a: &Csr,
        rows: &[usize],
        x: &Dense,
        y: &Dense,
        ops: &OpSet,
    ) -> Dense {
        self.check(ops, x);
        fusedmm_rows_with(a, rows, x, y, ops, self.blocking, None, self.strategy)
    }

    /// Row-subset execution against a PART1D row band (see
    /// [`crate::rows::fusedmm_rows_banded`]): `a_band` holds global rows
    /// `band_start..` under local indices, `rows` are global ids inside
    /// the band, `x` is the full (store-global) feature matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_rows_banded(
        &self,
        a_band: &Csr,
        band_start: usize,
        rows: &[usize],
        x: &Dense,
        y: &Dense,
        ops: &OpSet,
    ) -> Dense {
        self.check(ops, x);
        fusedmm_rows_banded(a_band, band_start, rows, x, y, ops, self.blocking, None, self.strategy)
    }

    /// Degraded-tier band execution: like
    /// [`Plan::execute_rows_banded`], but each requested row aggregates
    /// only its `k` strongest neighbors (see
    /// [`crate::rows::fusedmm_rows_banded_topk`]).
    #[allow(clippy::too_many_arguments)]
    pub fn execute_rows_banded_topk(
        &self,
        a_band: &Csr,
        band_start: usize,
        rows: &[usize],
        k: usize,
        x: &Dense,
        y: &Dense,
        ops: &OpSet,
    ) -> Dense {
        self.check(ops, x);
        fusedmm_rows_banded_topk(
            a_band,
            band_start,
            rows,
            k,
            x,
            y,
            ops,
            self.blocking,
            None,
            self.strategy,
        )
    }

    fn check(&self, ops: &OpSet, x: &Dense) {
        assert_eq!(
            ops.pattern, self.pattern,
            "plan prepared for {:?} executed with {:?}",
            self.pattern, ops.pattern
        );
        assert_eq!(
            x.ncols(),
            self.d,
            "plan prepared for d={} executed with d={}",
            self.d,
            x.ncols()
        );
    }
}

/// Disambiguates otherwise-identical `(pattern, d)` cache entries that
/// belong to different serving contexts: the engine shard a plan was
/// prepared for and the feature epoch it serves. Shards may autotune
/// independently (their bands have different nnz profiles) and
/// epoch-keyed entries give invalidation-aware layers — result caches,
/// per-epoch specializations — a home in the same cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PlanTag {
    /// Serving shard id (0 for an unsharded engine).
    pub shard: u64,
    /// Feature epoch (0 when the plan is epoch-agnostic).
    pub epoch: u64,
}

impl PlanTag {
    /// Tag for `shard`, epoch-agnostic.
    pub fn for_shard(shard: u64) -> Self {
        PlanTag { shard, epoch: 0 }
    }
}

/// Default resident-entry cap for a [`PlanCache`] — generous for any
/// realistic (pattern × dimension × shard) working set, small enough
/// that per-epoch tagged entries cannot accumulate forever across a
/// long-lived serving process's publishes.
pub const PLAN_CACHE_DEFAULT_CAPACITY: usize = 64;

#[derive(Debug)]
struct PlanCacheInner {
    /// Value carries an insertion sequence number for eviction
    /// tie-breaks among same-epoch entries.
    plans: HashMap<(Pattern, usize, PlanTag), (Plan, u64)>,
    seq: u64,
}

/// A concurrent, capacity-bounded memo of [`Plan`]s keyed by (pattern,
/// dimension, [`PlanTag`]). When the cap is exceeded, entries retire
/// **oldest-epoch-first**: the stalest epoch-tagged plans go before
/// fresher ones, and the epoch-*agnostic* sentinel entries (`epoch ==
/// 0` — the always-hot per-shard plans) are evicted last, by insertion
/// order.
#[derive(Debug)]
pub struct PlanCache {
    inner: RwLock<PlanCacheInner>,
    capacity: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache with the default capacity
    /// ([`PLAN_CACHE_DEFAULT_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_capacity(PLAN_CACHE_DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` plans.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a plan cache needs room for at least one plan");
        PlanCache { inner: RwLock::new(PlanCacheInner { plans: HashMap::new(), seq: 0 }), capacity }
    }

    /// The resident-entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cached plan for `ops` at dimension `d` under the default
    /// (unsharded, epoch-agnostic) tag, preparing (and memoizing) it on
    /// first use.
    pub fn plan_for(&self, ops: &OpSet, d: usize) -> Plan {
        self.plan_tagged(ops, d, PlanTag::default())
    }

    /// The cached plan for `ops` at dimension `d` under `tag`,
    /// preparing (and memoizing) it on first use. May evict the
    /// oldest-epoch entry when the cache is at capacity.
    pub fn plan_tagged(&self, ops: &OpSet, d: usize, tag: PlanTag) -> Plan {
        let key = (ops.pattern, d, tag);
        if let Some(&(plan, _)) = self.inner.read().plans.get(&key) {
            return plan;
        }
        let plan = Plan::prepare(ops, d);
        let mut inner = self.inner.write();
        let seq = inner.seq;
        inner.seq += 1;
        inner.plans.insert(key, (plan, seq));
        while inner.plans.len() > self.capacity {
            // Oldest-epoch-first: the epoch-0 sentinel sorts last (it
            // is "no epoch", not "the oldest"), so always-hot agnostic
            // plans outlive per-epoch ones; insertion order breaks
            // ties.
            // The entry just inserted is never the victim — a reader
            // pinned to an old epoch must not thrash its own slot on
            // every request.
            let victim = inner
                .plans
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(&(_, _, t), &(_, s))| {
                    (if t.epoch == 0 { u64::MAX } else { t.epoch }, s)
                })
                .map(|(&k, _)| k)
                .expect("cache over capacity holds more than the fresh entry");
            inner.plans.remove(&victim);
        }
        plan
    }

    /// Drop every entry tagged with `epoch` — the invalidation hook a
    /// feature publish uses to retire epoch-keyed plans. Epoch 0 is the
    /// epoch-*agnostic* sentinel ([`PlanTag::default`] /
    /// [`PlanTag::for_shard`]), not a real generation, so
    /// `evict_epoch(0)` is a no-op rather than a cache wipe.
    pub fn evict_epoch(&self, epoch: u64) {
        if epoch == 0 {
            return;
        }
        self.inner.write().plans.retain(|&(_, _, tag), _| tag.epoch != epoch);
    }

    /// Number of memoized plans.
    pub fn len(&self) -> usize {
        self.inner.read().plans.len()
    }

    /// True when no plan has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans.
    pub fn clear(&self) {
        self.inner.write().plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::fusedmm_reference;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn setup(n: usize, d: usize) -> (Csr, Dense, Dense) {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
            c.push(u, (u + 5) % n, 0.5);
        }
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::from_fn(n, d, |r, k| ((r + k) as f32 * 0.1).cos());
        let y = Dense::from_fn(n, d, |r, k| ((r * k) as f32 * 0.07).sin());
        (a, x, y)
    }

    #[test]
    fn plan_execution_matches_reference() {
        let (a, x, y) = setup(32, 16);
        let ops = OpSet::sigmoid_embedding(None);
        let plan = Plan::prepare(&ops, 16);
        assert_eq!(plan.pattern(), Pattern::SigmoidEmbedding);
        assert_eq!(plan.d(), 16);
        let z = plan.execute(&a, &x, &y, &ops);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn plan_rows_match_reference_rows() {
        let (a, x, y) = setup(40, 8);
        let ops = OpSet::gcn();
        let plan = Plan::with_blocking(&ops, 8, Blocking::Auto, PartitionStrategy::NnzBalanced);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        let rows = [39usize, 0, 12, 12];
        let z = plan.execute_rows(&a, &rows, &x, &y, &ops);
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..8 {
                assert!((z.get(i, k) - r.get(u, k)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn plan_records_the_active_backend() {
        let ops = OpSet::gcn();
        let plan =
            Plan::with_blocking(&ops, 48, Blocking::StripMined, PartitionStrategy::NnzBalanced);
        assert_eq!(plan.backend(), crate::simd::active_backend());
        assert_eq!(plan.blocking(), Blocking::StripMined);
        // Strip-mined plans execute correctly at non-generated dims.
        let (a, x, y) = setup(24, 48);
        let z = plan.execute(&a, &x, &y, &ops);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn specialized_plan_executes_at_odd_dims() {
        // A plan can freeze a specialized-table shape; at odd d that
        // shape is the only register-blocked option, and executing the
        // plan must match the reference.
        let ops = OpSet::sigmoid_embedding(None);
        let d = 100;
        let kspec = crate::autotune::global_tuner().spec_for(&ops, d);
        let plan = Plan::with_blocking(
            &ops,
            d,
            Blocking::Specialized(kspec),
            PartitionStrategy::NnzBalanced,
        );
        let (a, x, y) = setup(30, d);
        let z = plan.execute(&a, &x, &y, &ops);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn cache_memoizes_per_pattern_and_dim() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let ops = OpSet::gcn();
        let p1 = cache.plan_for(&ops, 32);
        let p2 = cache.plan_for(&ops, 32);
        assert_eq!(p1, p2);
        assert_eq!(cache.len(), 1);
        let _ = cache.plan_for(&ops, 64);
        let _ = cache.plan_for(&OpSet::fr_model(0.1), 32);
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn tagged_entries_are_distinct_and_epoch_evictable() {
        let cache = PlanCache::new();
        let ops = OpSet::gcn();
        let _ = cache.plan_for(&ops, 32);
        let _ = cache.plan_tagged(&ops, 32, PlanTag::for_shard(1));
        let _ = cache.plan_tagged(&ops, 32, PlanTag { shard: 1, epoch: 7 });
        assert_eq!(cache.len(), 3, "shard/epoch tags key separate entries");
        cache.evict_epoch(7);
        assert_eq!(cache.len(), 2, "only the epoch-7 entry is retired");
        cache.evict_epoch(0);
        assert_eq!(cache.len(), 2, "epoch 0 is the agnostic sentinel, never evicted");
    }

    #[test]
    fn capacity_cap_evicts_oldest_epoch_first() {
        let cache = PlanCache::with_capacity(3);
        assert_eq!(cache.capacity(), 3);
        let ops = OpSet::gcn();
        // One epoch-agnostic sentinel plus epoch-tagged entries well
        // past the cap — the regression this guards: one entry per
        // (pattern, d, tag) accumulating forever across epochs.
        let _ = cache.plan_for(&ops, 32);
        for epoch in 1..=6u64 {
            let _ = cache.plan_tagged(&ops, 32, PlanTag { shard: 0, epoch });
            assert!(cache.len() <= 3, "cap violated at epoch {epoch}");
        }
        // Newest epochs and the agnostic sentinel survive; the stalest
        // epochs were retired first.
        let survives = |tag| cache.inner.read().plans.contains_key(&(ops.pattern, 32, tag));
        assert!(survives(PlanTag::default()), "epoch-agnostic sentinel outlives epoch entries");
        assert!(survives(PlanTag { shard: 0, epoch: 6 }));
        assert!(survives(PlanTag { shard: 0, epoch: 5 }));
        assert!(!survives(PlanTag { shard: 0, epoch: 1 }));
        assert!(!survives(PlanTag { shard: 0, epoch: 2 }));
        // A re-request of an evicted epoch re-prepares without error.
        let p = cache.plan_tagged(&ops, 32, PlanTag { shard: 0, epoch: 1 });
        assert_eq!(p.d(), 32);
    }

    #[test]
    fn capacity_cap_never_evicts_the_entry_just_requested() {
        let cache = PlanCache::with_capacity(2);
        let ops = OpSet::gcn();
        let _ = cache.plan_tagged(&ops, 8, PlanTag { shard: 0, epoch: 5 });
        let _ = cache.plan_tagged(&ops, 8, PlanTag { shard: 0, epoch: 6 });
        // A straggler reader pinned to epoch 1 — the oldest epoch in
        // the cache after insertion — must land (evicting epoch 5),
        // not be the victim of its own insert.
        let _ = cache.plan_tagged(&ops, 8, PlanTag { shard: 0, epoch: 1 });
        let inner = cache.inner.read();
        assert!(inner.plans.contains_key(&(ops.pattern, 8, PlanTag { shard: 0, epoch: 1 })));
        assert!(!inner.plans.contains_key(&(ops.pattern, 8, PlanTag { shard: 0, epoch: 5 })));
        assert!(inner.plans.contains_key(&(ops.pattern, 8, PlanTag { shard: 0, epoch: 6 })));
    }

    #[test]
    fn capacity_cap_falls_back_to_insertion_order_for_agnostic_entries() {
        let cache = PlanCache::with_capacity(2);
        let a = OpSet::gcn();
        let b = OpSet::fr_model(0.1);
        let c = OpSet::sigmoid_embedding(None);
        let _ = cache.plan_for(&a, 8);
        let _ = cache.plan_for(&b, 8);
        let _ = cache.plan_for(&c, 8);
        assert_eq!(cache.len(), 2);
        let inner = cache.inner.read();
        assert!(
            !inner.plans.contains_key(&(a.pattern, 8, PlanTag::default())),
            "oldest-inserted agnostic entry is the tie-break victim"
        );
        assert!(inner.plans.contains_key(&(c.pattern, 8, PlanTag::default())));
    }

    #[test]
    fn banded_plan_execution_matches_reference_rows() {
        let (a, x, y) = setup(36, 8);
        let ops = OpSet::gcn();
        let plan = Plan::with_blocking(&ops, 8, Blocking::Auto, PartitionStrategy::NnzBalanced);
        let r = fusedmm_reference(&a, &x, &y, &ops);
        let band = a.row_band(10..30);
        let rows = [29usize, 10, 17];
        let z = plan.execute_rows_banded(&band, 10, &rows, &x, &y, &ops);
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..8 {
                assert!((z.get(i, k) - r.get(u, k)).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan prepared for")]
    fn pattern_mismatch_panics() {
        let (a, x, y) = setup(8, 4);
        let plan =
            Plan::with_blocking(&OpSet::gcn(), 4, Blocking::Auto, PartitionStrategy::NnzBalanced);
        let _ = plan.execute(&a, &x, &y, &OpSet::fr_model(1.0));
    }
}
