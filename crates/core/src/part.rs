//! PART1D — load-balanced 1D row partitioning (Algorithm 1, line 2).
//!
//! FusedMM rejects 2D (edge) partitioning because messages cannot be
//! generated from partial feature vectors and partial aggregation would
//! need synchronized intermediate state (§III-C). Instead the rows of
//! `A` are split into `t` contiguous parts with approximately equal
//! nonzero counts — `nnz(A_i) ≈ nnz(A)/t` — by scanning the CSR row
//! pointer array in O(m). Each part is processed by one thread with no
//! synchronization: threads share read access to `Y` but write disjoint
//! row bands of `Z`.

use fusedmm_sparse::csr::Csr;

/// How rows are assigned to parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The paper's scheme: balance nonzeros per part.
    NnzBalanced,
    /// Naive scheme for ablation: equal row counts per part, ignoring
    /// degree skew.
    RowBalanced,
}

/// A 1D partition of a CSR matrix: `boundaries[i]..boundaries[i+1]` is
/// the row range of part `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    boundaries: Vec<usize>,
    /// Largest row degree inside each part (0 for empty parts) —
    /// recorded at partition time so serving shards can export a
    /// skew gauge without rescanning the matrix.
    max_row_degree: Vec<usize>,
}

impl Partition {
    /// Partition `a` into at most `parts` contiguous row ranges using
    /// `strategy`. Fewer (non-empty) parts may be produced when the
    /// matrix has fewer rows than requested parts.
    ///
    /// # Panics
    /// Panics when `parts == 0`.
    pub fn part1d(a: &Csr, parts: usize, strategy: PartitionStrategy) -> Self {
        assert!(parts > 0, "cannot partition into zero parts");
        let m = a.nrows();
        let parts = parts.min(m).max(1);
        let mut boundaries = Vec::with_capacity(parts + 1);
        boundaries.push(0);
        match strategy {
            PartitionStrategy::RowBalanced => {
                for i in 1..parts {
                    boundaries.push(i * m / parts);
                }
            }
            PartitionStrategy::NnzBalanced => {
                // One scan of the row pointer array: advance the cut each
                // time the cumulative nnz passes the next multiple of
                // nnz/parts. O(m), as the paper states for PART1D.
                let nnz = a.nnz();
                let rowptr = a.rowptr();
                let mut next_part = 1usize;
                for r in 1..m {
                    if next_part >= parts {
                        break;
                    }
                    let target = nnz * next_part / parts;
                    if rowptr[r] >= target {
                        boundaries.push(r);
                        next_part += 1;
                    }
                }
                // If nnz is concentrated in few rows some cuts may not
                // have been placed; pad with m so trailing parts are
                // empty rather than missing.
                while boundaries.len() < parts {
                    boundaries.push(m);
                }
            }
        }
        boundaries.push(m);
        debug_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        let rowptr = a.rowptr();
        let max_row_degree = boundaries
            .windows(2)
            .map(|b| (b[0]..b[1]).map(|r| rowptr[r + 1] - rowptr[r]).max().unwrap_or(0))
            .collect();
        Partition { boundaries, max_row_degree }
    }

    /// Number of parts (including possibly empty trailing parts).
    pub fn len(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// True when there are no parts (never produced by `part1d`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row range of part `i`.
    pub fn rows(&self, i: usize) -> std::ops::Range<usize> {
        self.boundaries[i]..self.boundaries[i + 1]
    }

    /// The boundary array (`len() + 1` entries).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Largest row degree inside part `i` (0 when the part is empty).
    /// A band whose maximum approaches its whole nnz share signals a
    /// hub row that PART1D cannot balance away — the case the hybrid
    /// dispatcher's mega class exists for.
    pub fn part_max_row_degree(&self, i: usize) -> usize {
        self.max_row_degree[i]
    }

    /// Per-part maximum row degrees (`len()` entries).
    pub fn max_row_degrees(&self) -> &[usize] {
        &self.max_row_degree
    }

    /// Nonzeros assigned to part `i`.
    pub fn part_nnz(&self, a: &Csr, i: usize) -> usize {
        let r = self.rows(i);
        a.rowptr()[r.end] - a.rowptr()[r.start]
    }

    /// Load imbalance: `max_i nnz(A_i) / (nnz(A)/parts)`; 1.0 is perfect.
    pub fn imbalance(&self, a: &Csr) -> f64 {
        let parts = self.len();
        if a.nnz() == 0 || parts == 0 {
            return 1.0;
        }
        let ideal = a.nnz() as f64 / parts as f64;
        let max = (0..parts).map(|i| self.part_nnz(a, i)).max().unwrap_or(0);
        max as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    /// A graph where the first rows hold almost all nonzeros.
    fn skewed(rows: usize, heavy: usize) -> Csr {
        let mut c = Coo::new(rows, rows);
        for r in 0..rows {
            let deg = if r < heavy { 64 } else { 1 };
            for k in 0..deg {
                c.push(r, (r + k + 1) % rows, 1.0);
            }
        }
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn covers_all_rows_contiguously() {
        let a = skewed(100, 10);
        let p = Partition::part1d(&a, 4, PartitionStrategy::NnzBalanced);
        assert_eq!(p.boundaries()[0], 0);
        assert_eq!(*p.boundaries().last().unwrap(), 100);
        let total: usize = (0..p.len()).map(|i| p.rows(i).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn nnz_balanced_beats_row_balanced_on_skew() {
        let a = skewed(128, 8);
        let nnz = Partition::part1d(&a, 4, PartitionStrategy::NnzBalanced);
        let rows = Partition::part1d(&a, 4, PartitionStrategy::RowBalanced);
        assert!(
            nnz.imbalance(&a) < rows.imbalance(&a),
            "nnz imbalance {} !< row imbalance {}",
            nnz.imbalance(&a),
            rows.imbalance(&a)
        );
    }

    #[test]
    fn imbalance_bounded_by_max_row() {
        // nnz-balanced imbalance can exceed 1 by at most roughly one
        // row's nnz worth per part.
        let a = skewed(256, 16);
        let p = Partition::part1d(&a, 8, PartitionStrategy::NnzBalanced);
        let ideal = a.nnz() as f64 / 8.0;
        for i in 0..p.len() {
            assert!(
                (p.part_nnz(&a, i) as f64) <= ideal + a.max_degree() as f64 + 1.0,
                "part {i} holds {} nnz, ideal {ideal}",
                p.part_nnz(&a, i)
            );
        }
    }

    #[test]
    fn single_part_is_whole_matrix() {
        let a = skewed(10, 2);
        let p = Partition::part1d(&a, 1, PartitionStrategy::NnzBalanced);
        assert_eq!(p.len(), 1);
        assert_eq!(p.rows(0), 0..10);
    }

    #[test]
    fn more_parts_than_rows_clamps() {
        let a = skewed(3, 1);
        let p = Partition::part1d(&a, 16, PartitionStrategy::NnzBalanced);
        assert_eq!(p.len(), 3);
        assert_eq!(*p.boundaries().last().unwrap(), 3);
    }

    #[test]
    fn empty_matrix_partitions_sanely() {
        let a = Csr::empty(5, 5);
        let p = Partition::part1d(&a, 3, PartitionStrategy::NnzBalanced);
        assert_eq!(*p.boundaries().last().unwrap(), 5);
        assert!((p.imbalance(&a) - 1.0).abs() < 1e-12);
        let total: usize = (0..p.len()).map(|i| p.rows(i).len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn uniform_matrix_balances_rows_too() {
        let mut c = Coo::new(40, 40);
        for r in 0..40 {
            c.push(r, (r + 1) % 40, 1.0);
            c.push(r, (r + 2) % 40, 1.0);
        }
        let a = c.to_csr(Dedup::Last);
        let p = Partition::part1d(&a, 4, PartitionStrategy::NnzBalanced);
        for i in 0..4 {
            assert_eq!(p.rows(i).len(), 10);
        }
        assert!((p.imbalance(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        let a = skewed(4, 1);
        let _ = Partition::part1d(&a, 0, PartitionStrategy::NnzBalanced);
    }

    /// Shard bands must be contiguous, monotone, and tile `0..m` with
    /// no gap or overlap — the invariant engine-level sharding stacks
    /// band outputs on.
    fn assert_tiles_exactly(p: &Partition, m: usize) {
        let b = p.boundaries();
        assert_eq!(b[0], 0, "first band starts at row 0");
        assert_eq!(*b.last().unwrap(), m, "last band ends at row m");
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "boundaries monotone");
        let covered: usize = (0..p.len()).map(|i| p.rows(i).len()).sum();
        assert_eq!(covered, m, "bands cover every row exactly once");
    }

    #[test]
    fn star_graph_concentrates_but_still_tiles() {
        // All nnz in one row (a star's hub): every cut lands right
        // after the hub and the remaining bands are empty, but they
        // still tile 0..m.
        let mut c = Coo::new(64, 64);
        for v in 1..64 {
            c.push(0, v, 1.0);
        }
        let a = c.to_csr(Dedup::Last);
        for parts in [1usize, 2, 4, 7, 64] {
            let p = Partition::part1d(&a, parts, PartitionStrategy::NnzBalanced);
            assert_tiles_exactly(&p, 64);
            let hub_part =
                (0..p.len()).find(|&i| p.rows(i).contains(&0)).expect("some band owns the hub");
            assert_eq!(p.part_nnz(&a, hub_part), a.nnz(), "hub band holds every nonzero");
        }
    }

    #[test]
    fn interspersed_empty_rows_tile_exactly() {
        // Rows 0, 3, 6, ... have degree 2; the rest are empty.
        let mut c = Coo::new(90, 90);
        for r in (0..90).step_by(3) {
            c.push(r, (r + 1) % 90, 1.0);
            c.push(r, (r + 2) % 90, 1.0);
        }
        let a = c.to_csr(Dedup::Last);
        for strategy in [PartitionStrategy::NnzBalanced, PartitionStrategy::RowBalanced] {
            for parts in [1usize, 3, 5, 8] {
                let p = Partition::part1d(&a, parts, strategy);
                assert_tiles_exactly(&p, 90);
                let nnz_covered: usize = (0..p.len()).map(|i| p.part_nnz(&a, i)).sum();
                assert_eq!(nnz_covered, a.nnz());
            }
        }
    }

    #[test]
    fn more_parts_than_rows_tiles_with_singleton_bands() {
        let a = skewed(5, 2);
        let p = Partition::part1d(&a, 100, PartitionStrategy::NnzBalanced);
        assert_eq!(p.len(), 5, "clamped to one band per row");
        assert_tiles_exactly(&p, 5);
        for i in 0..p.len() {
            assert!(p.rows(i).len() <= 1, "band {i} spans more than one row");
        }
    }

    #[test]
    fn per_band_max_degree_tracks_the_heavy_rows() {
        let a = skewed(100, 10); // rows 0..10 have degree 64, rest degree 1
        let p = Partition::part1d(&a, 4, PartitionStrategy::RowBalanced);
        assert_eq!(p.max_row_degrees().len(), p.len());
        assert_eq!(p.part_max_row_degree(0), 64, "first band holds the heavy rows");
        assert_eq!(p.part_max_row_degree(3), 1, "last band is all tail");
        let empty = Partition::part1d(&Csr::empty(8, 8), 2, PartitionStrategy::NnzBalanced);
        assert!(empty.max_row_degrees().iter().all(|&m| m == 0));
    }

    #[test]
    fn all_empty_rows_tile_exactly() {
        let a = Csr::empty(12, 12);
        for parts in [1usize, 4, 12, 20] {
            let p = Partition::part1d(&a, parts, PartitionStrategy::NnzBalanced);
            assert_tiles_exactly(&p, 12);
        }
    }
}
