//! The generic five-step FusedMM kernel (Algorithm 1).
//!
//! This is the "FusedMM" (unoptimized) row of the paper's Table VI: the
//! flexible path that executes arbitrary user operations step by step,
//! storing each step's output in thread-local scratch. It is fused — no
//! per-edge message is ever written to memory shared across edges — but
//! not specialized: every step is a dynamic dispatch over the [`OpSet`]
//! enums. The specialized kernels of [`crate::genkern`] eliminate that
//! dispatch and the scratch traffic for recognized patterns.

use fusedmm_ops::{Message, OpSet};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::driver::parallel_row_bands;
use crate::part::PartitionStrategy;

/// Check the operand shapes of `Z = FusedMM(A, X, Y)`.
///
/// # Panics
/// Panics with a descriptive message on any mismatch (shape errors are
/// programming errors at this layer; fallible validation lives in the
/// sparse crate's constructors).
pub fn validate_shapes(a: &Csr, x: &Dense, y: &Dense) {
    assert_eq!(x.nrows(), a.nrows(), "X must have m = {} rows, has {}", a.nrows(), x.nrows());
    assert_eq!(y.nrows(), a.ncols(), "Y must have n = {} rows, has {}", a.ncols(), y.nrows());
    assert_eq!(
        x.ncols(),
        y.ncols(),
        "X and Y must share the embedding dimension (got {} vs {})",
        x.ncols(),
        y.ncols()
    );
}

/// UPDATE_U (Algorithm 1 lines 9–18): generate and aggregate messages
/// for one target vertex.
///
/// `cols`/`vals` are vertex `u`'s row of `A`; `zu` is its output row,
/// pre-filled with the AOP identity by the caller; `scratch_z` and
/// `scratch_w` are `d`-length thread-local buffers.
#[inline]
pub fn update_u(
    ops: &OpSet,
    xu: &[f32],
    cols: &[usize],
    vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    scratch_z: &mut [f32],
    scratch_w: &mut [f32],
) {
    for (&v, &a) in cols.iter().zip(vals) {
        let yv = y.row(v);
        // Step 1: VOP
        ops.vop.apply(xu, yv, a, scratch_z);
        // Steps 2+3: ROP then SOP on scalar, or SOP elementwise on the
        // vector when ROP is a NOOP ("directly use z if ROP is a NOOP").
        match ops.rop.apply(scratch_z) {
            Some(s) => {
                let h = ops.sop.apply_scalar(s, a);
                // Step 4: MOP
                ops.mop.apply(Message::Scalar(h), yv, a, scratch_w);
            }
            None => {
                ops.sop.apply_vec(scratch_z, a);
                ops.mop.apply(Message::Vector(scratch_z), yv, a, scratch_w);
            }
        }
        // Step 5: AOP
        ops.aop.apply(zu, scratch_w);
    }
}

/// The generic multithreaded FusedMM: `Z = FusedMM(A, X, Y)` with
/// user-supplied operations, PART1D load balancing and the current
/// rayon thread pool.
pub fn fusedmm_generic(a: &Csr, x: &Dense, y: &Dense, ops: &OpSet) -> Dense {
    fusedmm_generic_opts(a, x, y, ops, None, PartitionStrategy::NnzBalanced)
}

/// [`fusedmm_generic`] with explicit partition count and strategy
/// (used by the scaling and ablation benchmarks).
pub fn fusedmm_generic_opts(
    a: &Csr,
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
) -> Dense {
    validate_shapes(a, x, y);
    let d = x.ncols();
    let mut z = Dense::zeros(a.nrows(), d);
    let identity = ops.aop.identity();
    parallel_row_bands(a, &mut z, partitions, strategy, |rows, band| {
        let mut scratch_z = vec![0f32; d];
        let mut scratch_w = vec![0f32; d];
        for (i, u) in rows.enumerate() {
            let zu = &mut band[i * d..(i + 1) * d];
            let (cols, vals) = a.row(u);
            if cols.is_empty() {
                // Isolated vertex: defined as the zero vector, not the
                // AOP identity (±∞ for max/min would poison consumers).
                zu.fill(0.0);
                continue;
            }
            if identity != 0.0 {
                zu.fill(identity);
            }
            update_u(ops, x.row(u), cols, vals, y, zu, &mut scratch_z, &mut scratch_w);
        }
    });
    z
}

/// A deliberately simple sequential reference implementation used by the
/// test suite as ground truth. Same math as [`fusedmm_generic`], no
/// partitioning, fresh allocations per row — slow and obviously correct.
pub fn fusedmm_reference(a: &Csr, x: &Dense, y: &Dense, ops: &OpSet) -> Dense {
    validate_shapes(a, x, y);
    let d = x.ncols();
    let mut z = Dense::zeros(a.nrows(), d);
    for u in 0..a.nrows() {
        let (cols, vals) = a.row(u);
        if cols.is_empty() {
            continue;
        }
        let mut acc = vec![ops.aop.identity(); d];
        for (&v, &aval) in cols.iter().zip(vals) {
            let yv = y.row(v);
            let mut zvec = vec![0f32; d];
            ops.vop.apply(x.row(u), yv, aval, &mut zvec);
            let mut w = vec![0f32; d];
            match ops.rop.apply(&zvec) {
                Some(s) => {
                    let h = ops.sop.apply_scalar(s, aval);
                    ops.mop.apply(Message::Scalar(h), yv, aval, &mut w);
                }
                None => {
                    ops.sop.apply_vec(&mut zvec, aval);
                    ops.mop.apply(Message::Vector(&zvec), yv, aval, &mut w);
                }
            }
            ops.aop.apply(&mut acc, &w);
        }
        z.row_mut(u).copy_from_slice(&acc);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_ops::{AOp, MOp, ROp, SOp, VOp};
    use fusedmm_sparse::coo::{Coo, Dedup};
    use std::sync::Arc;

    fn path3() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.0);
        c.push(0, 2, 2.0);
        c.push(1, 2, 1.0);
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn gcn_pattern_is_weighted_spmm() {
        let a = path3();
        let x = Dense::zeros(3, 2);
        let y = Dense::from_rows(3, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let z = fusedmm_generic(&a, &x, &y, &OpSet::gcn());
        // z0 = 1*y1 + 2*y2, z1 = 1*y2, z2 = 0
        assert_eq!(z.row(0), &[8.0, 80.0]);
        assert_eq!(z.row(1), &[3.0, 30.0]);
        assert_eq!(z.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn embedding_pattern_matches_hand_computation() {
        let a = path3();
        let x = Dense::from_rows(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let y = x.clone();
        let z = fusedmm_generic(&a, &x, &y, &OpSet::sigmoid_embedding(None));
        // row 0: σ(x0·y1)*y1 + σ(x0·y2)*y2, x0·y1 = 0, x0·y2 = 1
        let s0 = fusedmm_ops::sigmoid(0.0);
        let s1 = fusedmm_ops::sigmoid(1.0);
        assert!((z.get(0, 0) - (s0 * 0.0 + s1 * 1.0)).abs() < 1e-6);
        assert!((z.get(0, 1) - (s0 * 1.0 + s1 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn parallel_matches_reference_on_random_ops() {
        let a = path3();
        let x = Dense::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let y = Dense::from_fn(3, 4, |r, c| (r * c) as f32 * 0.25 - 1.0);
        for ops in [
            OpSet::sigmoid_embedding(None),
            OpSet::fr_model(0.5),
            OpSet::gcn(),
            OpSet::custom(VOp::Add, ROp::Max, SOp::Relu, MOp::Mul, AOp::Min),
        ] {
            let par =
                fusedmm_generic_opts(&a, &x, &y, &ops, Some(3), PartitionStrategy::NnzBalanced);
            let refr = fusedmm_reference(&a, &x, &y, &ops);
            assert!(par.max_abs_diff(&refr) < 1e-6, "pattern {:?} diverged", ops.pattern);
        }
    }

    #[test]
    fn isolated_vertices_produce_zero_rows_even_with_amax() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.0);
        let a = c.to_csr(Dedup::Last);
        let x = Dense::filled(3, 2, 1.0);
        let y = Dense::filled(3, 2, -5.0);
        let ops = OpSet::custom(VOp::Sel2nd, ROp::Noop, SOp::Noop, MOp::Noop, AOp::Max);
        let z = fusedmm_generic(&a, &x, &y, &ops);
        assert_eq!(z.row(0), &[-5.0, -5.0]); // real max over one neighbor
        assert_eq!(z.row(1), &[0.0, 0.0]); // isolated
        assert_eq!(z.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn custom_closures_run_per_edge() {
        let a = path3();
        let x = Dense::filled(3, 2, 1.0);
        let y = Dense::filled(3, 2, 1.0);
        // VOP that multiplies by the edge value; identity elsewhere.
        let ops = OpSet::custom(
            VOp::Custom(Arc::new(|xr, _y, a, out| {
                for (o, &xi) in out.iter_mut().zip(xr) {
                    *o = a * xi;
                }
            })),
            ROp::Sum,
            SOp::Noop,
            MOp::Mul,
            AOp::Sum,
        );
        let z = fusedmm_generic(&a, &x, &y, &ops);
        // row 0: edges (0,1,w=1) and (0,2,w=2): h = w*2 (sum of a*1 over d=2)
        // w per edge = h * y = 2w each lane; total = 2*1 + 2*2 = 6
        assert_eq!(z.row(0), &[6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "X must have")]
    fn shape_validation_fires() {
        let a = path3();
        let x = Dense::zeros(2, 4);
        let y = Dense::zeros(3, 4);
        let _ = fusedmm_generic(&a, &x, &y, &OpSet::gcn());
    }

    #[test]
    fn rectangular_minibatch_shapes_work() {
        // 2 x 5 slice: 2 batch vertices, 5 global vertices.
        let mut c = Coo::new(2, 5);
        c.push(0, 4, 1.0);
        c.push(1, 0, 1.0);
        c.push(1, 3, 1.0);
        let a = c.to_csr(Dedup::Last);
        let x = Dense::filled(2, 3, 1.0);
        let y = Dense::from_fn(5, 3, |r, _| r as f32);
        let z = fusedmm_generic(&a, &x, &y, &OpSet::gcn());
        assert_eq!(z.row(0), &[4.0, 4.0, 4.0]);
        assert_eq!(z.row(1), &[3.0, 3.0, 3.0]);
    }
}
