//! Runtime autotuning of the blocking strategy per (pattern, dimension).
//!
//! The paper's library "tuned the factor of the register blocking after
//! applying different strategies" offline during code generation. We
//! tune at run time instead: the first `fusedmm` call for a given
//! (pattern, d) measures each candidate blocking — dynamic strips,
//! strip-mined (when `d ≡ 0 (mod 8)`), register-blocked (when a const
//! specialization exists), and the best plan-time specialized shape
//! from the generated dispatch table ([`Tuner::spec_for`] probes the
//! candidate panel/chunk grid first) — on a small synthetic probe and
//! caches the winner for the rest of the process — the ATLAS
//! philosophy the paper cites, applied lazily. The SIMD backend is
//! fixed per process, so the (pattern, d) key implicitly tunes per
//! (pattern, d, ISA).

use std::time::Instant;

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::OnceLock;

use fusedmm_ops::{OpSet, Pattern};
use fusedmm_sparse::coo::{Coo, Dedup};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::dispatch::{fusedmm_opt_with, specialize, Blocking, Specialized};
use crate::genkern::{candidate_specs, strip_minable, KernelSpec, GENERATED_DIMS};
use crate::part::PartitionStrategy;
use crate::simd::active_backend;

/// Cached tuning decisions, keyed by (pattern, dimension).
#[derive(Debug, Default)]
pub struct Tuner {
    cache: RwLock<HashMap<(Pattern, usize), Blocking>>,
    spec_cache: RwLock<HashMap<(Pattern, usize), KernelSpec>>,
}

/// Probe graph size used for tuning runs. Small enough to be
/// imperceptible, large enough that kernel time dominates dispatch.
const PROBE_VERTICES: usize = 512;
const PROBE_DEGREE: usize = 16;
const PROBE_REPS: usize = 3;

impl Tuner {
    /// Create an empty tuner (global instance available via
    /// [`global_tuner`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The blocking to use for `ops` at dimension `d`, measuring on
    /// first use.
    pub fn choose(&self, ops: &OpSet, d: usize) -> Blocking {
        if specialize(ops).is_none() {
            return Blocking::Generic;
        }
        let key = (ops.pattern, d);
        if let Some(&b) = self.cache.read().get(&key) {
            return b;
        }
        let chosen = self.measure(ops, d);
        self.cache.write().insert(key, chosen);
        chosen
    }

    /// Number of cached decisions (used by tests).
    pub fn cached_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Forget all decisions (used by tests).
    pub fn clear(&self) {
        self.cache.write().clear();
        self.spec_cache.write().clear();
    }

    /// The best specialized kernel shape for `ops` at dimension `d` on
    /// the active backend, probing the candidate grid (see
    /// [`candidate_specs`]) on first use and caching the winner. This
    /// is the shape a `Blocking::Specialized` plan (and the hybrid
    /// dispatcher's degree-class kernels) will run.
    pub fn spec_for(&self, ops: &OpSet, d: usize) -> KernelSpec {
        let key = (ops.pattern, d);
        if let Some(&s) = self.spec_cache.read().get(&key) {
            return s;
        }
        let chosen = self.measure_spec(ops, d);
        self.spec_cache.write().insert(key, chosen);
        chosen
    }

    fn measure_spec(&self, ops: &OpSet, d: usize) -> KernelSpec {
        let Some(sp) = specialize(ops) else {
            return KernelSpec::FALLBACK;
        };
        // Patterns with an SDDMM reduction also probe the message
        // chunk depth; pure SpMM has no message buffer.
        let sddmm = !matches!(sp, Specialized::Spmm);
        let candidates = candidate_specs(active_backend().lanes(), d, sddmm);
        if candidates.len() == 1 {
            return candidates[0];
        }
        let a = probe_graph();
        let x = probe_features(PROBE_VERTICES, d, 1);
        let y = probe_features(PROBE_VERTICES, d, 2);
        let mut best = (KernelSpec::FALLBACK, f64::INFINITY);
        for s in candidates {
            let b = Blocking::Specialized(s);
            let _ = fusedmm_opt_with(&a, &x, &y, ops, b, None, PartitionStrategy::NnzBalanced);
            let mut t_min = f64::INFINITY;
            for _ in 0..PROBE_REPS {
                let t0 = Instant::now();
                let _ = fusedmm_opt_with(&a, &x, &y, ops, b, None, PartitionStrategy::NnzBalanced);
                t_min = t_min.min(t0.elapsed().as_secs_f64());
            }
            if t_min < best.1 {
                best = (s, t_min);
            }
        }
        best.0
    }

    fn measure(&self, ops: &OpSet, d: usize) -> Blocking {
        let a = probe_graph();
        let x = probe_features(PROBE_VERTICES, d, 1);
        let y = probe_features(PROBE_VERTICES, d, 2);
        let mut candidates = vec![Blocking::DynStrips];
        if strip_minable(d) {
            candidates.push(Blocking::StripMined);
        }
        if GENERATED_DIMS.contains(&d) {
            candidates.push(Blocking::RegisterBlocked);
        }
        // The specialized table covers any d >= 1; enter its best
        // probed shape as one candidate against the fixed levels.
        candidates.push(Blocking::Specialized(self.spec_for(ops, d)));
        let mut best = (Blocking::DynStrips, f64::INFINITY);
        for b in candidates {
            // Warm-up then timed repetitions, keeping the minimum (least
            // noisy statistic for short kernels).
            let _ = fusedmm_opt_with(&a, &x, &y, ops, b, None, PartitionStrategy::NnzBalanced);
            let mut t_min = f64::INFINITY;
            for _ in 0..PROBE_REPS {
                let t0 = Instant::now();
                let _ = fusedmm_opt_with(&a, &x, &y, ops, b, None, PartitionStrategy::NnzBalanced);
                t_min = t_min.min(t0.elapsed().as_secs_f64());
            }
            if t_min < best.1 {
                best = (b, t_min);
            }
        }
        best.0
    }
}

/// A deterministic quasi-random probe graph (no RNG dependency): each
/// vertex links to `PROBE_DEGREE` pseudo-random targets via a multiplier
/// walk.
fn probe_graph() -> Csr {
    let n = PROBE_VERTICES;
    let mut c = Coo::with_capacity(n, n, n * PROBE_DEGREE);
    for u in 0..n {
        let mut t = u;
        for k in 0..PROBE_DEGREE {
            t = (t.wrapping_mul(2654435761) + k + 1) % n;
            if t != u {
                c.push(u, t, 1.0);
            }
        }
    }
    c.to_csr(Dedup::Last)
}

fn probe_features(n: usize, d: usize, seed: usize) -> Dense {
    Dense::from_fn(n, d, |r, c| (((r * 131 + c * 17 + seed * 97) % 1000) as f32 / 1000.0) - 0.5)
}

static GLOBAL_TUNER: OnceLock<Tuner> = OnceLock::new();

/// The process-wide tuner used by [`crate::fusedmm`].
pub fn global_tuner() -> &'static Tuner {
    GLOBAL_TUNER.get_or_init(Tuner::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_ops::{AOp, MOp, ROp, SOp, VOp};

    #[test]
    fn caches_decisions() {
        let tuner = Tuner::new();
        let ops = OpSet::sigmoid_embedding(None);
        assert_eq!(tuner.cached_len(), 0);
        let b1 = tuner.choose(&ops, 32);
        assert_eq!(tuner.cached_len(), 1);
        let b2 = tuner.choose(&ops, 32);
        assert_eq!(b1, b2);
        assert_eq!(tuner.cached_len(), 1);
    }

    #[test]
    fn nonspecializable_ops_pick_generic_without_measurement() {
        let tuner = Tuner::new();
        let ops = OpSet::custom(VOp::Add, ROp::Sum, SOp::Noop, MOp::Mul, AOp::Sum);
        assert_eq!(tuner.choose(&ops, 64), Blocking::Generic);
        assert_eq!(tuner.cached_len(), 0, "generic fallback needs no cache entry");
    }

    #[test]
    fn ungeneratable_dim_picks_dyn_or_specialized() {
        let tuner = Tuner::new();
        let ops = OpSet::gcn();
        // 100 is neither in GENERATED_DIMS nor a multiple of 8: the
        // candidates are DynStrips and the specialized table (whose
        // masked-tail panels cover odd dims).
        let b = tuner.choose(&ops, 100);
        assert!(matches!(b, Blocking::DynStrips | Blocking::Specialized(_)), "{b:?}");
    }

    #[test]
    fn spec_for_is_cached_and_on_grid() {
        let tuner = Tuner::new();
        let ops = OpSet::sigmoid_embedding(None);
        let s1 = tuner.spec_for(&ops, 100);
        let s2 = tuner.spec_for(&ops, 100);
        assert_eq!(s1, s2);
        assert!(KernelSpec::new(s1.main_panels() as u8, s1.h_chunk() as u16).is_some());
        tuner.clear();
        assert_eq!(tuner.cached_len(), 0);
    }

    #[test]
    fn strip_minable_dim_never_falls_back_to_generic() {
        let tuner = Tuner::new();
        let ops = OpSet::gcn();
        // 96 is a multiple of 8 but has no const specialization:
        // candidates are DynStrips, StripMined, and the spec table.
        let b = tuner.choose(&ops, 96);
        assert!(
            matches!(b, Blocking::DynStrips | Blocking::StripMined | Blocking::Specialized(_)),
            "{b:?}"
        );
    }

    #[test]
    fn generated_dim_picks_a_specialized_blocking() {
        let tuner = Tuner::new();
        let ops = OpSet::fr_model(1.0);
        let b = tuner.choose(&ops, 64);
        assert!(matches!(
            b,
            Blocking::DynStrips
                | Blocking::StripMined
                | Blocking::RegisterBlocked
                | Blocking::Specialized(_)
        ));
        assert_ne!(b, Blocking::Generic);
    }

    #[test]
    fn clear_resets() {
        let tuner = Tuner::new();
        tuner.choose(&OpSet::gcn(), 100);
        assert!(tuner.cached_len() > 0);
        tuner.clear();
        assert_eq!(tuner.cached_len(), 0);
    }

    #[test]
    fn global_tuner_is_a_singleton() {
        let a = global_tuner() as *const Tuner;
        let b = global_tuner() as *const Tuner;
        assert_eq!(a, b);
    }
}
