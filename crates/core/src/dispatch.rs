//! Pattern recognition and kernel dispatch (§IV of the paper).
//!
//! "If we recognize a pattern from predefined VOP, ROP, SOP, MOP, and
//! AOP operations, we can optimize the whole kernel by feeding the
//! output of one operation directly to the next operation without
//! storing the results." [`specialize`] performs that recognition on an
//! [`OpSet`]; [`fusedmm_opt`] runs the recognized specialized kernel
//! (register-blocked when a generated dimension matches) and falls back
//! to the generic five-step kernel otherwise.

use fusedmm_ops::{AOp, MOp, OpSet, ROp, SOp, VOp};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::driver::parallel_row_bands;
use crate::generic::{fusedmm_generic_opts, validate_shapes};
use crate::genkern::{
    embed_dyn_kernel, embed_kernel_for, embed_spec_kernel, embed_strip_kernel, fr_dyn_kernel,
    fr_kernel_for, fr_spec_kernel, fr_strip_kernel, spmm_dyn_kernel, spmm_kernel_for,
    spmm_spec_kernel, spmm_strip_kernel, strip_minable, tdist_dyn_kernel, tdist_kernel_for,
    tdist_spec_kernel, tdist_strip_kernel, KernelSpec, SigmoidKind, GENERATED_DIMS,
};
use crate::part::PartitionStrategy;
use crate::simd::active_backend;

/// Largest dimension at which [`Blocking::Auto`] picks the
/// register-blocked kernel. The paper's generator likewise "limit\[s\]
/// register blocking up to a threshold when the dimension is large":
/// beyond ~64 f32 lanes the per-row blocks exceed the architectural
/// register file, the fully unrolled sweeps bloat the instruction
/// stream, and the measured advantage inverts (see the
/// `ablation_blocking` bench). The measuring autotuner can still pick
/// register blocking above the threshold when it actually wins.
pub const REGISTER_BLOCK_MAX_DIM: usize = 64;

/// Which kernel implementation level to use for a specialized pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blocking {
    /// Pick the best level the dimension admits: register-blocked for
    /// small generated dimensions, strip-mined for any other multiple
    /// of 8, dynamic strips otherwise (the library default).
    Auto,
    /// Force the const-dimension register-blocked kernel; an error if
    /// the dimension has no generated specialization.
    RegisterBlocked,
    /// Force the strip-mined kernel (8-lane panels with
    /// register-resident accumulators, any `d ≡ 0 (mod 8)`); an error
    /// for other dimensions.
    StripMined,
    /// Force the dynamic 8-lane strip kernel (no register blocking) —
    /// used by the register-blocking ablation.
    DynStrips,
    /// Run one plan-time specialized shape from the generated dispatch
    /// table (see [`crate::genkern::table`]): the strip passes
    /// monomorphized over a panel/chunk grid, valid for **any**
    /// `d ≥ 1` — odd dimensions end in a fused masked-tail panel
    /// instead of falling back to the unfused dyn path. Plans built by
    /// the measuring autotuner carry the probed best shape here.
    Specialized(KernelSpec),
    /// Force the generic five-step kernel even for recognized patterns —
    /// the paper's unoptimized "FusedMM" row.
    Generic,
    /// Degree-aware hybrid execution for skewed graphs: rows are
    /// classified by degree and each class runs a kernel shaped for it
    /// (gathered batches for short rows, strip-mined panels for the
    /// middle, cooperative span-split execution for mega rows). Engages
    /// when the dimension resolves to the strip level (`d ≡ 0 (mod 8)`
    /// outside the generated-const list); otherwise behaves exactly
    /// like [`Blocking::Auto`]. Bit-identical to the uniform kernels.
    Hybrid(crate::hybrid::HybridConfig),
}

/// The concrete kernel level [`fusedmm_opt_with`] resolved a
/// [`Blocking`] request to for a given dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Const,
    Strip,
    Spec(KernelSpec),
    Dyn,
}

impl Level {
    /// The `blocking` label the kernel profile table reports (the
    /// unspecialized path reports `generic` without resolving a level).
    /// Specialized launches report their shape, e.g. `"spec-m12-h32"`.
    fn label(self) -> &'static str {
        match self {
            Level::Const => "const",
            Level::Strip => "strip",
            Level::Spec(s) => s.label(),
            Level::Dyn => "dyn",
        }
    }
}

fn resolve_level(blocking: Blocking, d: usize) -> Level {
    match blocking {
        Blocking::RegisterBlocked => Level::Const,
        Blocking::StripMined => {
            assert!(
                strip_minable(d),
                "no strip-mined kernel for d={d} (d must be a positive multiple of 8)"
            );
            Level::Strip
        }
        Blocking::DynStrips => Level::Dyn,
        Blocking::Specialized(s) => Level::Spec(s),
        Blocking::Auto | Blocking::Generic | Blocking::Hybrid(_) => {
            if d <= REGISTER_BLOCK_MAX_DIM && GENERATED_DIMS.contains(&d) {
                Level::Const
            } else if strip_minable(d) {
                Level::Strip
            } else {
                Level::Dyn
            }
        }
    }
}

/// A recognized specialized pattern with its extracted parameters.
#[derive(Debug, Clone)]
pub enum Specialized {
    /// `(MUL, RSUM, SIGMOID, MUL, ASUM)` — sigmoid graph embedding.
    Embed(SigmoidKind),
    /// `(SUB, NORM, SCAL(α), MUL, ASUM)` — FR force model.
    Fr(f32),
    /// `(SUB, NORM, TDIST, MUL, ASUM)` — t-distribution embedding.
    TDist,
    /// `(SEL2ND, NOOP, NOOP, MUL, ASUM)` — GCN / SpMM.
    Spmm,
}

/// Inspect the actual operator variants (not just the pattern tag,
/// which user code could set inconsistently) and return the matching
/// specialization, if any.
pub fn specialize(ops: &OpSet) -> Option<Specialized> {
    match (&ops.vop, &ops.rop, &ops.sop, &ops.mop, &ops.aop) {
        (VOp::Mul, ROp::Sum, SOp::Sigmoid, MOp::Mul, AOp::Sum) => {
            Some(Specialized::Embed(SigmoidKind::Exact))
        }
        (VOp::Mul, ROp::Sum, SOp::SigmoidLut(lut), MOp::Mul, AOp::Sum) => {
            Some(Specialized::Embed(SigmoidKind::Lut(lut.clone())))
        }
        (VOp::Sub, ROp::Norm, SOp::Scale(alpha), MOp::Mul, AOp::Sum) => {
            Some(Specialized::Fr(*alpha))
        }
        (VOp::Sub, ROp::Norm, SOp::TDist, MOp::Mul, AOp::Sum) => Some(Specialized::TDist),
        (VOp::Sel2nd, ROp::Noop, SOp::Noop, MOp::Mul, AOp::Sum) => Some(Specialized::Spmm),
        _ => None,
    }
}

/// The optimized FusedMM ("FusedMMopt" in Table VI): specialized
/// register-blocked kernels for recognized patterns, generic fallback
/// otherwise. Runs on the current rayon pool with PART1D balancing.
pub fn fusedmm_opt(a: &Csr, x: &Dense, y: &Dense, ops: &OpSet) -> Dense {
    fusedmm_opt_with(a, x, y, ops, Blocking::Auto, None, PartitionStrategy::NnzBalanced)
}

/// [`fusedmm_opt`] with explicit blocking level, partition count, and
/// partition strategy (the knobs the ablation and scaling benches turn).
pub fn fusedmm_opt_with(
    a: &Csr,
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    blocking: Blocking,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
) -> Dense {
    validate_shapes(a, x, y);
    let spec = if blocking == Blocking::Generic { None } else { specialize(ops) };
    let Some(spec) = spec else {
        let t0 = std::time::Instant::now();
        let z = fusedmm_generic_opts(a, x, y, ops, partitions, strategy);
        crate::profile::record_kernel(
            ops.pattern,
            x.ncols(),
            active_backend(),
            "generic",
            t0.elapsed(),
            a.nrows(),
            a.nnz(),
        );
        return z;
    };
    let d = x.ncols();
    let level = resolve_level(blocking, d);
    let backend = active_backend();
    if let Blocking::Hybrid(cfg) = blocking {
        // The shaped degree-class kernels run the specialized table's
        // shapes, so hybrid engages at strip dimensions *and* — via the
        // table's masked-tail panels — at dimensions that resolve to
        // the dyn level (odd d). Only a const-resolved dimension falls
        // through to the uniform path below (identical by
        // construction).
        if matches!(level, Level::Strip | Level::Dyn) {
            let kspec = crate::autotune::global_tuner().spec_for(ops, d);
            return crate::hybrid::execute(
                a, x, y, ops, &spec, cfg, partitions, strategy, backend, kspec,
            );
        }
    }
    let mut z = Dense::zeros(a.nrows(), d);
    let t0 = std::time::Instant::now();

    match spec {
        Specialized::Embed(sk) => {
            let kern = match level {
                Level::Const => embed_kernel_for(d).unwrap_or_else(|| {
                    assert!(
                        blocking != Blocking::RegisterBlocked,
                        "no generated register-blocked embedding kernel for d={d}"
                    );
                    embed_dyn_kernel(backend)
                }),
                Level::Strip => embed_strip_kernel(backend),
                Level::Spec(s) => embed_spec_kernel(backend, s),
                Level::Dyn => embed_dyn_kernel(backend),
            };
            parallel_row_bands(a, &mut z, partitions, strategy, |rows, band| {
                for (i, u) in rows.enumerate() {
                    let (cols, vals) = a.row(u);
                    kern(x.row(u), cols, vals, y, &mut band[i * d..(i + 1) * d], &sk);
                }
            });
        }
        Specialized::Fr(alpha) => {
            let kern = match level {
                Level::Const => fr_kernel_for(d).unwrap_or_else(|| {
                    assert!(
                        blocking != Blocking::RegisterBlocked,
                        "no generated register-blocked FR kernel for d={d}"
                    );
                    fr_dyn_kernel(backend)
                }),
                Level::Strip => fr_strip_kernel(backend),
                Level::Spec(s) => fr_spec_kernel(backend, s),
                Level::Dyn => fr_dyn_kernel(backend),
            };
            parallel_row_bands(a, &mut z, partitions, strategy, |rows, band| {
                for (i, u) in rows.enumerate() {
                    let (cols, vals) = a.row(u);
                    kern(x.row(u), cols, vals, y, &mut band[i * d..(i + 1) * d], alpha);
                }
            });
        }
        Specialized::TDist => {
            let kern = match level {
                Level::Const => tdist_kernel_for(d).unwrap_or_else(|| {
                    assert!(
                        blocking != Blocking::RegisterBlocked,
                        "no generated register-blocked t-dist kernel for d={d}"
                    );
                    tdist_dyn_kernel(backend)
                }),
                Level::Strip => tdist_strip_kernel(backend),
                Level::Spec(s) => tdist_spec_kernel(backend, s),
                Level::Dyn => tdist_dyn_kernel(backend),
            };
            parallel_row_bands(a, &mut z, partitions, strategy, |rows, band| {
                for (i, u) in rows.enumerate() {
                    let (cols, vals) = a.row(u);
                    kern(x.row(u), cols, vals, y, &mut band[i * d..(i + 1) * d]);
                }
            });
        }
        Specialized::Spmm => {
            let kern = match level {
                Level::Const => spmm_kernel_for(d).unwrap_or_else(|| {
                    assert!(
                        blocking != Blocking::RegisterBlocked,
                        "no generated register-blocked SpMM kernel for d={d}"
                    );
                    spmm_dyn_kernel(backend)
                }),
                Level::Strip => spmm_strip_kernel(backend),
                Level::Spec(s) => spmm_spec_kernel(backend, s),
                Level::Dyn => spmm_dyn_kernel(backend),
            };
            parallel_row_bands(a, &mut z, partitions, strategy, |rows, band| {
                for (i, u) in rows.enumerate() {
                    let (cols, vals) = a.row(u);
                    kern(cols, vals, y, &mut band[i * d..(i + 1) * d]);
                }
            });
        }
    }
    crate::profile::record_kernel(
        ops.pattern,
        d,
        backend,
        level.label(),
        t0.elapsed(),
        a.nrows(),
        a.nnz(),
    );
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::fusedmm_reference;
    use fusedmm_ops::SigmoidLut;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use std::sync::Arc;

    fn graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=3usize {
                c.push(u, (u + k * 7) % n, 1.0 + (k as f32) * 0.25);
            }
        }
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 13 + c * 5) as f32 * 0.02 + seed).cos() * 0.4)
    }

    #[test]
    fn recognizes_the_three_specializable_presets() {
        assert!(matches!(
            specialize(&OpSet::sigmoid_embedding(None)),
            Some(Specialized::Embed(SigmoidKind::Exact))
        ));
        assert!(matches!(specialize(&OpSet::fr_model(2.0)), Some(Specialized::Fr(a)) if a == 2.0));
        assert!(matches!(specialize(&OpSet::tdist_embedding()), Some(Specialized::TDist)));
        assert!(matches!(specialize(&OpSet::gcn()), Some(Specialized::Spmm)));
    }

    #[test]
    fn rejects_nonmatching_opsets() {
        use fusedmm_ops::{AOp, MOp, ROp, SOp, VOp};
        let ops = OpSet::custom(VOp::Add, ROp::Sum, SOp::Sigmoid, MOp::Mul, AOp::Sum);
        assert!(specialize(&ops).is_none());
        let mlp = OpSet::gnn_mlp(Arc::new(fusedmm_ops::Mlp::seeded(4, 4, 4, 1)));
        assert!(specialize(&mlp).is_none());
    }

    #[test]
    fn opt_matches_generic_for_all_patterns_and_blockings() {
        let n = 40;
        let a = graph(n);
        for d in [16usize, 24, 64] {
            let x = feats(n, d, 0.1);
            let y = feats(n, d, 0.9);
            for ops in [
                OpSet::sigmoid_embedding(None),
                OpSet::fr_model(0.3),
                OpSet::tdist_embedding(),
                OpSet::gcn(),
            ] {
                let reference = fusedmm_reference(&a, &x, &y, &ops);
                for blocking in [Blocking::Auto, Blocking::DynStrips, Blocking::StripMined] {
                    let z = fusedmm_opt_with(
                        &a,
                        &x,
                        &y,
                        &ops,
                        blocking,
                        Some(4),
                        PartitionStrategy::NnzBalanced,
                    );
                    assert!(
                        z.max_abs_diff(&reference) < 1e-4,
                        "{:?} blocking {:?} d={d}: diff {}",
                        ops.pattern,
                        blocking,
                        z.max_abs_diff(&reference)
                    );
                }
                if crate::genkern::GENERATED_DIMS.contains(&d) {
                    let z = fusedmm_opt_with(
                        &a,
                        &x,
                        &y,
                        &ops,
                        Blocking::RegisterBlocked,
                        Some(2),
                        PartitionStrategy::NnzBalanced,
                    );
                    assert!(z.max_abs_diff(&reference) < 1e-4);
                }
            }
        }
    }

    #[test]
    fn auto_blocking_respects_the_dimension_threshold() {
        // Below the threshold Auto uses the register-blocked kernel,
        // above it the strip-mined kernel; both must be correct.
        let n = 20;
        let a = graph(n);
        for d in [32usize, 256] {
            let x = feats(n, d, 0.1);
            let y = feats(n, d, 0.4);
            let ops = OpSet::sigmoid_embedding(None);
            let auto = fusedmm_opt(&a, &x, &y, &ops);
            let reference = fusedmm_reference(&a, &x, &y, &ops);
            assert!(auto.max_abs_diff(&reference) < 1e-4, "d={d}");
        }
        const _: () = assert!(REGISTER_BLOCK_MAX_DIM >= 32);
    }

    #[test]
    fn lut_embedding_close_to_exact() {
        let n = 30;
        let a = graph(n);
        let d = 32;
        let x = feats(n, d, 0.2);
        let y = feats(n, d, 0.5);
        let exact = fusedmm_opt(&a, &x, &y, &OpSet::sigmoid_embedding(None));
        let lut = fusedmm_opt(
            &a,
            &x,
            &y,
            &OpSet::sigmoid_embedding(Some(Arc::new(SigmoidLut::default_table()))),
        );
        assert!(exact.max_abs_diff(&lut) < 1e-2);
    }

    #[test]
    fn custom_pattern_falls_back_to_generic() {
        use fusedmm_ops::{AOp, MOp, ROp, SOp, VOp};
        let n = 20;
        let a = graph(n);
        let d = 8;
        let x = feats(n, d, 0.3);
        let y = feats(n, d, 0.6);
        let ops = OpSet::custom(VOp::Add, ROp::Max, SOp::Tanh, MOp::Mul, AOp::Sum);
        let opt = fusedmm_opt(&a, &x, &y, &ops);
        let gen = fusedmm_reference(&a, &x, &y, &ops);
        assert!(opt.max_abs_diff(&gen) < 1e-5);
    }

    #[test]
    fn strip_mined_covers_serving_dims_the_const_list_misses() {
        let n = 36;
        let a = graph(n);
        for d in [48usize, 96, 192] {
            assert!(!crate::genkern::GENERATED_DIMS.contains(&d));
            let x = feats(n, d, 0.15);
            let y = feats(n, d, 0.55);
            for ops in [OpSet::sigmoid_embedding(None), OpSet::gcn()] {
                let reference = fusedmm_reference(&a, &x, &y, &ops);
                let z = fusedmm_opt_with(
                    &a,
                    &x,
                    &y,
                    &ops,
                    Blocking::StripMined,
                    Some(3),
                    PartitionStrategy::NnzBalanced,
                );
                assert!(
                    z.max_abs_diff(&reference) < 1e-4,
                    "{:?} d={d}: diff {}",
                    ops.pattern,
                    z.max_abs_diff(&reference)
                );
                // Auto must also land on a correct kernel at these dims.
                let auto = fusedmm_opt(&a, &x, &y, &ops);
                assert!(auto.max_abs_diff(&reference) < 1e-4, "auto {:?} d={d}", ops.pattern);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no strip-mined kernel for d=20")]
    fn forcing_strip_mining_on_odd_dim_panics() {
        let a = graph(10);
        let x = feats(10, 20, 0.1);
        let y = feats(10, 20, 0.2);
        let _ = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &OpSet::gcn(),
            Blocking::StripMined,
            Some(1),
            PartitionStrategy::NnzBalanced,
        );
    }

    #[test]
    #[should_panic(expected = "no generated register-blocked")]
    fn forcing_register_blocking_on_odd_dim_panics() {
        let a = graph(10);
        let x = feats(10, 20, 0.1);
        let y = feats(10, 20, 0.2);
        let _ = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &OpSet::sigmoid_embedding(None),
            Blocking::RegisterBlocked,
            Some(1),
            PartitionStrategy::NnzBalanced,
        );
    }
}
