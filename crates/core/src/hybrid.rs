//! Degree-aware hybrid execution for skewed graphs.
//!
//! Power-law degree distributions defeat a single row-shaped kernel:
//! the strip-mined kernel amortizes its per-row setup (loading `x_u`
//! panels, resolving the output slice) over the neighbor loop, so a
//! degree-2 row pays mostly overhead, while a hub row with a million
//! neighbors serializes an entire band on one thread no matter how
//! PART1D cuts the rest. This module classifies rows by degree once per
//! launch and runs each class through a kernel shaped for it (short and
//! strip share one storage-order band sweep so the CSR stream is walked
//! once; mega rows run as their own cooperative pass):
//!
//! * **short** (`0 < degree < short_max`) — gathered in storage order
//!   into batches that share one [`H_CHUNK`] message buffer and one
//!   SIMD sweep (the `embed_spec_batch_kernel` family);
//! * **strip** (everything between) — the plan-time specialized row
//!   kernels (see [`crate::genkern::table`]), running the shape the
//!   autotuner probed for this `(pattern, d, backend)`;
//! * **mega** (`degree ≥ max(mega_floor, nnz/parts)`) — each row is
//!   executed cooperatively: phase A fills the row's message vector in
//!   parallel column chunks, phase B folds *all* messages into
//!   VLEN-aligned output spans, one thread per span
//!   (`span_spec_kernel`).
//!
//! All three class kernels come from the specialized dispatch table,
//! whose masked-tail panels accept any `d ≥ 1` — so hybrid execution
//! also engages at odd dimensions the strip family rejects (the final
//! mega span absorbs the sub-VLEN remainder).
//!
//! Every class preserves the uniform kernels' per-output-element
//! accumulation order — a sequential left-fold over the neighbors in
//! row storage order — so the hybrid result is bit-identical to the
//! strip-mined baseline (asserted by the `genkern::strip` tests and the
//! repo-level property suite). The mega split is fixed by the span
//! plan, never by thread timing. Each pass records its own
//! [`KernelProfile`](crate::profile::KernelProfile) row under the
//! `hybrid-short` / `hybrid-strip` / `hybrid-mega` blocking labels.

use fusedmm_ops::OpSet;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::dispatch::Specialized;
use crate::driver::parallel_row_bands;
use crate::genkern::strip::H_CHUNK;
use crate::genkern::{
    embed_msg_kernel, embed_spec_batch_kernel, embed_spec_kernel, fr_msg_kernel,
    fr_spec_batch_kernel, fr_spec_kernel, span_spec_kernel, spmm_spec_batch_kernel,
    spmm_spec_kernel, tdist_msg_kernel, tdist_spec_batch_kernel, tdist_spec_kernel, GatheredRow,
    KernelSpec,
};
use crate::part::PartitionStrategy;
use crate::simd::{Backend, VLEN};

/// Column-chunk size for the mega-row message fill (phase A). Each
/// chunk is an independent SDDMM over a slice of the neighbor list, so
/// the value only trades scheduling overhead against load balance —
/// it never affects results.
const MSG_CHUNK: usize = 2048;

/// Phase-A message-fill shape (`xu`, neighbor slice, message slice);
/// named so the SpMM arm can spell its absent fill without a clippy
/// type-complexity lint.
type MsgFill = fn(&[f32], &[usize], &mut [f32]);

/// Degree thresholds for [`Blocking::Hybrid`](crate::Blocking::Hybrid).
///
/// The mega threshold is adaptive: a row is mega when its degree
/// reaches `max(mega_floor, nnz/parts)` — i.e. when one row alone is at
/// least a whole thread's fair share of the work, the situation where
/// PART1D degenerates to a single-threaded band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HybridConfig {
    /// Rows with `0 < degree < short_max` take the gathered batch
    /// kernel (capped internally at `H_CHUNK + 1` so one batch always
    /// fits the shared message buffer).
    pub short_max: usize,
    /// Lower bound on the mega threshold, so small test matrices do
    /// not classify ordinary rows as mega just because `nnz/parts` is
    /// tiny. Set it low (e.g. 32) to force the mega path in tests.
    pub mega_floor: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        // short_max = VLEN/2: the measured crossover on AVX2. A row
        // whose neighbor count is below half a vector width of
        // messages pays more in per-row setup than in math — gathering
        // it (and skipping the output-row load, see `panel_overwrite`)
        // wins. Longer rows amortize the strip kernel's setup fine, and
        // routing them through the gather path shows up as overhead on
        // unskewed graphs (the skew-sweep bench's s = 0 guard).
        HybridConfig { short_max: crate::simd::VLEN / 2, mega_floor: 4096 }
    }
}

/// Run the three degree-class passes with the kernel shape `kspec`
/// (the autotuner's probed best for this `(pattern, d, backend)`).
/// Called by the dispatcher when the blocking resolved to the strip
/// or dyn level — the specialized table's kernels cover both.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    a: &Csr,
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    spec: &Specialized,
    cfg: HybridConfig,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
    backend: Backend,
    kspec: KernelSpec,
) -> Dense {
    let d = x.ncols();
    let parts = partitions.unwrap_or_else(rayon::current_num_threads).max(1);
    let short_cut = cfg.short_max.clamp(1, H_CHUNK + 1);
    let mega_min = cfg.mega_floor.max(a.nnz().div_ceil(parts)).max(short_cut);
    let sweep = span_spec_kernel(backend, kspec);

    match spec {
        Specialized::Embed(sk) => {
            let batch = embed_spec_batch_kernel(backend, kspec);
            let strip = embed_spec_kernel(backend, kspec);
            let msg = embed_msg_kernel(backend);
            run_passes(
                a,
                x,
                y,
                ops,
                d,
                short_cut,
                mega_min,
                parts,
                partitions,
                strategy,
                backend,
                |rows, band| batch(rows, y, band, sk),
                |u, zu| {
                    let (cols, vals) = a.row(u);
                    strip(x.row(u), cols, vals, y, zu, sk)
                },
                Some(|xu: &[f32], cols: &[usize], h: &mut [f32]| msg(xu, cols, y, sk, h)),
                sweep,
            )
        }
        Specialized::Fr(alpha) => {
            let alpha = *alpha;
            let batch = fr_spec_batch_kernel(backend, kspec);
            let strip = fr_spec_kernel(backend, kspec);
            let msg = fr_msg_kernel(backend);
            run_passes(
                a,
                x,
                y,
                ops,
                d,
                short_cut,
                mega_min,
                parts,
                partitions,
                strategy,
                backend,
                |rows, band| batch(rows, y, band, alpha),
                |u, zu| {
                    let (cols, vals) = a.row(u);
                    strip(x.row(u), cols, vals, y, zu, alpha)
                },
                Some(|xu: &[f32], cols: &[usize], h: &mut [f32]| msg(xu, cols, y, alpha, h)),
                sweep,
            )
        }
        Specialized::TDist => {
            let batch = tdist_spec_batch_kernel(backend, kspec);
            let strip = tdist_spec_kernel(backend, kspec);
            let msg = tdist_msg_kernel(backend);
            run_passes(
                a,
                x,
                y,
                ops,
                d,
                short_cut,
                mega_min,
                parts,
                partitions,
                strategy,
                backend,
                |rows, band| batch(rows, y, band),
                |u, zu| {
                    let (cols, vals) = a.row(u);
                    strip(x.row(u), cols, vals, y, zu)
                },
                Some(|xu: &[f32], cols: &[usize], h: &mut [f32]| msg(xu, cols, y, h)),
                sweep,
            )
        }
        Specialized::Spmm => {
            let batch = spmm_spec_batch_kernel(backend, kspec);
            let strip = spmm_spec_kernel(backend, kspec);
            // SpMM's messages are the stored edge values: no phase A.
            let msg: Option<MsgFill> = None;
            run_passes(
                a,
                x,
                y,
                ops,
                d,
                short_cut,
                mega_min,
                parts,
                partitions,
                strategy,
                backend,
                |rows, band| batch(rows, y, band),
                |u, zu| {
                    let (cols, vals) = a.row(u);
                    strip(cols, vals, y, zu)
                },
                msg,
                sweep,
            )
        }
    }
}

/// Shared three-pass orchestration, generic over the pattern-specific
/// kernels. `msg_fill` is `None` for SpMM, whose message vector is the
/// row's stored values.
#[allow(clippy::too_many_arguments)]
fn run_passes<B, S, M>(
    a: &Csr,
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    d: usize,
    short_cut: usize,
    mega_min: usize,
    parts: usize,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
    backend: Backend,
    flush_batch: B,
    strip_row: S,
    msg_fill: Option<M>,
    sweep: crate::genkern::SpanSweepKernel,
) -> Dense
where
    B: Fn(&[GatheredRow<'_>], &mut [f32]) + Sync,
    S: Fn(usize, &mut [f32]) + Sync,
    M: Fn(&[f32], &[usize], &mut [f32]) + Sync,
{
    // One census pass over the row pointers — degrees are re-derived
    // from `rowptr` everywhere below (one subtraction on data the
    // kernel streams anyway) rather than materialized into a side
    // array, which would add a whole extra memory stream to the sweep.
    let (mut short_rows, mut short_edges) = (0usize, 0usize);
    let (mut strip_rows, mut strip_edges) = (0usize, 0usize);
    let (mut mega_rows, mut mega_edges) = (0usize, 0usize);
    for w in a.rowptr().windows(2) {
        let deg = w[1] - w[0];
        if deg == 0 {
            continue;
        }
        if deg < short_cut {
            short_rows += 1;
            short_edges += deg;
        } else if deg < mega_min {
            strip_rows += 1;
            strip_edges += deg;
        } else {
            mega_rows += 1;
            mega_edges += deg;
        }
    }

    let mut z = Dense::zeros(a.nrows(), d);

    // Short + strip classes run in ONE interleaved sweep per band, in
    // row-storage order. Separate per-class passes look cleaner but
    // walk the row-pointer/column/value stream twice with scattered
    // visits — adjacent rows of different classes share cache lines,
    // and the gaps defeat the hardware prefetcher on `x`, `z`, and the
    // CSR arrays — which measures ~5-10% slower on interleaved-degree
    // graphs. Here every array streams exactly like the uniform strip
    // pass: strip rows execute inline; short rows stage into a gather
    // batch that flushes when the next row would overflow the shared
    // message buffer (deferring a short row's write past a later strip
    // row touches disjoint output rows, so order across rows is free).
    // Batching never reorders the fold within a row, so each output row
    // stays bit-identical to strip.
    //
    // Profiling: flushes are timed individually (a batch is several
    // rows, so this is ~1% of the sweep) and the strip class gets the
    // band remainder — classification and gather staging are attributed
    // to strip. Per-class elapsed records the max across bands: the
    // slowest band, the same thing a per-pass wall clock would read
    // under PART1D.
    let short_ns = std::sync::atomic::AtomicU64::new(0);
    let strip_ns = std::sync::atomic::AtomicU64::new(0);
    parallel_row_bands(a, &mut z, partitions, strategy, |rows, band| {
        let start = rows.start;
        let band_t0 = std::time::Instant::now();
        let mut band_short_ns = 0u64;
        let mut gathered: Vec<GatheredRow<'_>> = Vec::with_capacity(H_CHUNK);
        let mut flush_timed = |gathered: &[GatheredRow<'_>], band: &mut [f32]| {
            let t0 = std::time::Instant::now();
            flush_batch(gathered, band);
            band_short_ns += t0.elapsed().as_nanos() as u64;
        };
        for u in rows {
            let (cols, vals) = a.row(u);
            let deg = cols.len();
            if deg == 0 || deg >= mega_min {
                continue;
            }
            if deg < short_cut {
                gathered.push(GatheredRow { xu: x.row(u), cols, vals, band_row: u - start });
                if gathered.len() == H_CHUNK {
                    flush_timed(&gathered, band);
                    gathered.clear();
                }
            } else {
                let i = u - start;
                strip_row(u, &mut band[i * d..(i + 1) * d]);
            }
        }
        if !gathered.is_empty() {
            flush_timed(&gathered, band);
        }
        let band_total = band_t0.elapsed().as_nanos() as u64;
        short_ns.fetch_max(band_short_ns, std::sync::atomic::Ordering::Relaxed);
        strip_ns.fetch_max(
            band_total.saturating_sub(band_short_ns),
            std::sync::atomic::Ordering::Relaxed,
        );
    });
    if short_rows > 0 {
        crate::profile::record_kernel(
            ops.pattern,
            d,
            backend,
            "hybrid-short",
            std::time::Duration::from_nanos(short_ns.into_inner()),
            short_rows,
            short_edges,
        );
    }
    // The strip row is always recorded, even when empty, so the profile
    // table shows the hybrid launch happened.
    crate::profile::record_kernel(
        ops.pattern,
        d,
        backend,
        "hybrid-strip",
        std::time::Duration::from_nanos(strip_ns.into_inner()),
        strip_rows,
        strip_edges,
    );

    // Pass 3: mega rows, one at a time, all threads cooperating.
    if mega_rows > 0 {
        let t0 = std::time::Instant::now();
        let panels = d / VLEN;
        let nspans = parts.min(panels).max(1);
        // At odd d the panels don't cover the row; the final span
        // absorbs the sub-VLEN remainder (the spec sweep's masked tail
        // finishes it, keeping the per-element fold order fixed).
        let rem = d - panels * VLEN;
        for u in 0..a.nrows() {
            if a.row_nnz(u) < mega_min {
                continue;
            }
            let (cols, vals) = a.row(u);
            // Phase A: fill the message vector in independent column
            // chunks (pure SDDMM, no cross-chunk dependency).
            let h_owned: Vec<f32>;
            let h: &[f32] = if let Some(msg) = &msg_fill {
                let xu = x.row(u);
                let mut buf = vec![0f32; cols.len()];
                rayon::scope(|s| {
                    let mut rest: &mut [f32] = &mut buf;
                    let mut off = 0usize;
                    while !rest.is_empty() {
                        let take = rest.len().min(MSG_CHUNK);
                        let (chunk, tail) = rest.split_at_mut(take);
                        let ccols = &cols[off..off + take];
                        s.spawn(move |_| msg(xu, ccols, chunk));
                        rest = tail;
                        off += take;
                    }
                });
                h_owned = buf;
                &h_owned
            } else {
                vals
            };
            // Phase B: each thread folds every message into its own
            // VLEN-aligned span of z_u. The span plan is a pure
            // function of (d, parts), so the per-element fold order —
            // all neighbors, storage order — never depends on timing.
            let zu = z.row_mut(u);
            rayon::scope(|s| {
                let mut rest = zu;
                let mut off = 0usize;
                for t in 0..nspans {
                    let mut w = (panels * (t + 1) / nspans - panels * t / nspans) * VLEN;
                    if t == nspans - 1 {
                        w += rem;
                    }
                    if w == 0 {
                        continue;
                    }
                    let (span, tail) = rest.split_at_mut(w);
                    s.spawn(move |_| sweep(cols, h, y, span, off));
                    rest = tail;
                    off += w;
                }
            });
        }
        crate::profile::record_kernel(
            ops.pattern,
            d,
            backend,
            "hybrid-mega",
            t0.elapsed(),
            mega_rows,
            mega_edges,
        );
    }

    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{fusedmm_opt_with, Blocking};
    use fusedmm_sparse::coo::{Coo, Dedup};

    /// A skewed graph: one hub adjacent to everyone, a mid-degree
    /// block, and a long tail of degree-1..3 rows — plus empty rows.
    fn skewed(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for v in 1..n {
            c.push(0, v, 0.5 + (v % 7) as f32 * 0.1);
        }
        for u in 1..n / 4 {
            for k in 1..=12usize {
                c.push(u, (u * 3 + k * 5) % n, 1.0 + k as f32 * 0.05);
            }
        }
        for u in n / 4..n - n / 8 {
            for k in 1..=(u % 3 + 1) {
                c.push(u, (u + k * 11) % n, 0.75);
            }
        }
        // rows in n-n/8..n stay empty
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 17 + c * 3) as f32 * 0.013 + seed).sin() * 0.4)
    }

    #[test]
    fn hybrid_bit_identical_to_strip_mined_all_patterns() {
        let n = 96;
        let a = skewed(n);
        let cfg = HybridConfig { short_max: 8, mega_floor: 32 };
        for d in [48usize, 96] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            for ops in [
                OpSet::sigmoid_embedding(None),
                OpSet::fr_model(0.4),
                OpSet::tdist_embedding(),
                OpSet::gcn(),
            ] {
                for parts in [1usize, 2, 4] {
                    let base = fusedmm_opt_with(
                        &a,
                        &x,
                        &y,
                        &ops,
                        Blocking::StripMined,
                        Some(parts),
                        PartitionStrategy::NnzBalanced,
                    );
                    let hybrid = fusedmm_opt_with(
                        &a,
                        &x,
                        &y,
                        &ops,
                        Blocking::Hybrid(cfg),
                        Some(parts),
                        PartitionStrategy::NnzBalanced,
                    );
                    assert_eq!(
                        base.as_slice(),
                        hybrid.as_slice(),
                        "{:?} d={d} parts={parts} not bit-identical",
                        ops.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn star_graph_takes_the_mega_path_and_matches() {
        // One row holds every edge: with a low mega floor the hub is
        // mega-class and split across spans.
        let n = 300;
        let mut c = Coo::new(n, n);
        for v in 1..n {
            c.push(0, v, 1.0);
        }
        let a = c.to_csr(Dedup::Last);
        let d = 96;
        let x = feats(n, d, 0.1);
        let y = feats(n, d, 0.9);
        let cfg = HybridConfig { short_max: 8, mega_floor: 32 };
        let ops = OpSet::sigmoid_embedding(None);
        crate::profile::reset_kernel_profiles();
        let base = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &ops,
            Blocking::StripMined,
            Some(4),
            PartitionStrategy::NnzBalanced,
        );
        let hybrid = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &ops,
            Blocking::Hybrid(cfg),
            Some(4),
            PartitionStrategy::NnzBalanced,
        );
        assert_eq!(base.as_slice(), hybrid.as_slice());
        let labels: Vec<&'static str> =
            crate::profile::kernel_profiles().iter().map(|p| p.blocking).collect();
        assert!(labels.contains(&"hybrid-mega"), "mega pass not profiled: {labels:?}");
    }

    #[test]
    fn hybrid_engages_at_odd_dims_and_matches_specialized() {
        // Odd d resolves to the dyn level, where hybrid now runs the
        // specialized table's kernels. All three classes preserve the
        // per-element fold order, so the result must be bit-identical
        // to the uniform specialized plan with the same shape.
        let n = 96;
        let a = skewed(n);
        let cfg = HybridConfig { short_max: 8, mega_floor: 32 };
        for d in [20usize, 100] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            for ops in [OpSet::sigmoid_embedding(None), OpSet::gcn()] {
                let kspec = crate::autotune::global_tuner().spec_for(&ops, d);
                for parts in [1usize, 3] {
                    let base = fusedmm_opt_with(
                        &a,
                        &x,
                        &y,
                        &ops,
                        Blocking::Specialized(kspec),
                        Some(parts),
                        PartitionStrategy::NnzBalanced,
                    );
                    let hybrid = fusedmm_opt_with(
                        &a,
                        &x,
                        &y,
                        &ops,
                        Blocking::Hybrid(cfg),
                        Some(parts),
                        PartitionStrategy::NnzBalanced,
                    );
                    assert_eq!(
                        base.as_slice(),
                        hybrid.as_slice(),
                        "{:?} d={d} parts={parts} not bit-identical",
                        ops.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let a = Csr::empty(10, 10);
        let x = feats(10, 48, 0.1);
        let y = feats(10, 48, 0.2);
        let z = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &OpSet::gcn(),
            Blocking::Hybrid(HybridConfig::default()),
            Some(2),
            PartitionStrategy::NnzBalanced,
        );
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn profile_records_per_class_rows() {
        let n = 64;
        let a = skewed(n);
        let x = feats(n, 48, 0.3);
        let y = feats(n, 48, 0.6);
        crate::profile::reset_kernel_profiles();
        let _ = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &OpSet::gcn(),
            Blocking::Hybrid(HybridConfig { short_max: 8, mega_floor: 16 }),
            Some(2),
            PartitionStrategy::NnzBalanced,
        );
        let profiles = crate::profile::kernel_profiles();
        let total_edges: u64 =
            profiles.iter().filter(|p| p.blocking.starts_with("hybrid-")).map(|p| p.edges).sum();
        assert_eq!(total_edges, a.nnz() as u64, "classes must partition the edges: {profiles:?}");
    }
}
