//! FusedMM — a unified SDDMM-SpMM kernel for graph embedding and GNNs.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Rahman, Sujon & Azad, IPDPS 2021): one fused kernel computing
//!
//! ```text
//! z_u = ⊕_{v ∈ N(u)} φ(x_u, y_v, ψ(x_u, y_v, a_uv))     (Eq. 1)
//! ```
//!
//! for every vertex — message generation (SDDMM) and aggregation (SpMM)
//! in one pass, with no materialized intermediate — parameterized by the
//! five user-defined steps of [`fusedmm_ops`].
//!
//! # Entry points
//!
//! * [`fusedmm`] — the tuned kernel: recognizes the operator pattern,
//!   autotunes the blocking strategy on first use, dispatches to
//!   register-blocked generated kernels ("FusedMMopt" in the paper's
//!   Table VI);
//! * [`fusedmm_opt`] — same dispatch without the measuring autotuner
//!   (Auto blocking picks register blocking whenever generated);
//! * [`fusedmm_generic`] — the flexible five-step kernel with no
//!   specialization (the paper's unoptimized "FusedMM" row);
//! * [`fusedmm_reference`] — slow sequential ground truth for tests;
//! * [`fusedmm_rows`] — row-subset execution (only the requested output
//!   rows), the serving-path entry point;
//! * [`Plan`] / [`PlanCache`] — the autotuner's per-call choice lifted
//!   into an explicit, reusable plan object for serving engines.
//!
//! Kernels execute on a SIMD backend detected once per process
//! (AVX-512 or AVX2+FMA on x86-64, NEON on AArch64, portable scalar
//! otherwise — see [`crate::simd`] and [`cpu_features`]); set
//! `FUSEDMM_FORCE_SCALAR=1` to pin the portable fallback, or
//! `FUSEDMM_FORCE_BACKEND=<name>` to request a specific one.
//! Per-`(pattern, d)` blocking — including the plan-time kernel
//! specialization table in [`genkern::table`] — is chosen by the
//! [`autotune`] module; `docs/ARCHITECTURE.md` at the workspace root
//! draws the whole dispatch stack.
//!
//! # Example
//!
//! ```
//! use fusedmm_core::fusedmm;
//! use fusedmm_ops::OpSet;
//! use fusedmm_sparse::{coo::Dedup, Coo, Dense};
//!
//! // A 3-vertex graph: 0 -> 1 -> 2.
//! let mut coo = Coo::new(3, 3);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 2, 1.0);
//! let a = coo.to_csr(Dedup::Sum);
//!
//! let x = Dense::filled(3, 8, 0.5);
//! let y = Dense::filled(3, 8, 0.25);
//!
//! // z_u = Σ_v σ(x_u · y_v) y_v  — sigmoid graph embedding.
//! let z = fusedmm(&a, &x, &y, &OpSet::sigmoid_embedding(None));
//! assert_eq!(z.nrows(), 3);
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod dispatch;
pub mod driver;
pub mod generic;
pub mod genkern;
pub mod hybrid;
pub mod part;
pub mod plan;
pub mod profile;
pub mod rows;
pub mod simd;

pub use autotune::{global_tuner, Tuner};
pub use dispatch::{fusedmm_opt, fusedmm_opt_with, specialize, Blocking, Specialized};
pub use generic::{fusedmm_generic, fusedmm_generic_opts, fusedmm_reference};
pub use hybrid::HybridConfig;
pub use part::{Partition, PartitionStrategy};
pub use plan::{Plan, PlanCache, PlanTag};
pub use profile::{kernel_profiles, reset_kernel_profiles, KernelProfile};
pub use rows::{fusedmm_rows, fusedmm_rows_banded, fusedmm_rows_banded_topk, fusedmm_rows_with};
pub use simd::{active_backend, cpu_features, Backend, CpuFeatures};

use fusedmm_ops::OpSet;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// `Z = FusedMM(A, X, Y)` — the tuned kernel.
///
/// Equivalent to [`fusedmm_opt`] but the blocking strategy for each
/// (pattern, dimension) is measured once per process by the global
/// [`Tuner`] rather than chosen statically.
pub fn fusedmm(a: &Csr, x: &Dense, y: &Dense, ops: &OpSet) -> Dense {
    let blocking = global_tuner().choose(ops, x.ncols());
    fusedmm_opt_with(a, x, y, ops, blocking, None, PartitionStrategy::NnzBalanced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    #[test]
    fn tuned_entry_point_matches_reference() {
        let mut c = Coo::new(8, 8);
        for u in 0..8usize {
            c.push(u, (u + 1) % 8, 1.0);
            c.push(u, (u + 3) % 8, 0.5);
        }
        let a = c.to_csr(Dedup::Last);
        let x = Dense::from_fn(8, 16, |r, k| ((r + k) as f32).sin() * 0.3);
        let y = Dense::from_fn(8, 16, |r, k| ((r * k) as f32).cos() * 0.2);
        for ops in [OpSet::sigmoid_embedding(None), OpSet::fr_model(0.1), OpSet::gcn()] {
            let z = fusedmm(&a, &x, &y, &ops);
            let r = fusedmm_reference(&a, &x, &y, &ops);
            assert!(z.max_abs_diff(&r) < 1e-4, "{:?}", ops.pattern);
        }
    }
}
