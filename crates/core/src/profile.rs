//! Per-shape kernel profiling: cycle and work accounting for every
//! fused-kernel launch, keyed by `(op, d, backend, blocking level)`.
//!
//! The dispatcher ([`crate::dispatch::fusedmm_opt_with`]) records one
//! observation per launch — wall time, output rows, and edges (nnz)
//! swept — into a process-global table. Row-subset serving calls route
//! through the same dispatcher, so the serving engines' kernel work is
//! captured without extra hooks. Consumers turn the accumulated edge
//! counts into FLOPs with `fusedmm_perf::flops::flops_per_edge` and
//! compare achieved GFLOP/s against the roofline bound per kernel
//! shape; the metrics registry exposes the table as
//! `fusedmm_kernel_*` samples labeled `op` / `d` / `backend` /
//! `blocking`.
//!
//! Cost: one `Instant` pair and one short mutex-protected hash-map
//! upsert per *launch* (not per row or edge) — noise next to a kernel
//! sweep, so the hooks stay compiled in unconditionally.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use fusedmm_ops::Pattern;

use crate::simd::Backend;

/// One row of the kernel profile table: every launch with the same
/// shape key, accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelProfile {
    /// The recognized operator pattern the launch executed.
    pub pattern: Pattern,
    /// Embedding dimension (columns of `X`/`Y`/`Z`).
    pub d: usize,
    /// SIMD backend the kernels ran on.
    pub backend: Backend,
    /// Resolved blocking level label: `const` (register-blocked),
    /// `strip` (strip-mined), `spec-m{M}-h{H}` (a plan-time
    /// specialized shape from the generated table — per-variant
    /// roofline rows fall out of the label), `dyn` (dynamic strips),
    /// `generic` (the unspecialized five-step kernel), or the
    /// `hybrid-short`/`hybrid-strip`/`hybrid-mega` per-class rows.
    pub blocking: &'static str,
    /// Launches recorded.
    pub calls: u64,
    /// Total wall time across launches.
    pub elapsed: Duration,
    /// Total output rows computed.
    pub rows: u64,
    /// Total edges (nonzeros) swept — multiply by
    /// `flops_per_edge(pattern, d)` for total FLOPs.
    pub edges: u64,
}

#[derive(Default)]
struct Acc {
    calls: u64,
    nanos: u64,
    rows: u64,
    edges: u64,
}

type Key = (Pattern, usize, Backend, &'static str);

fn table() -> &'static Mutex<HashMap<Key, Acc>> {
    static TABLE: OnceLock<Mutex<HashMap<Key, Acc>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record one kernel launch (called by the dispatcher).
pub(crate) fn record_kernel(
    pattern: Pattern,
    d: usize,
    backend: Backend,
    blocking: &'static str,
    elapsed: Duration,
    rows: usize,
    edges: usize,
) {
    let mut t = table().lock().unwrap();
    let acc = t.entry((pattern, d, backend, blocking)).or_default();
    acc.calls += 1;
    acc.nanos += elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    acc.rows += rows as u64;
    acc.edges += edges as u64;
}

/// The accumulated per-shape kernel profiles, sorted by
/// `(op name, d, blocking)` for stable reporting.
pub fn kernel_profiles() -> Vec<KernelProfile> {
    let t = table().lock().unwrap();
    let mut out: Vec<KernelProfile> = t
        .iter()
        .map(|(&(pattern, d, backend, blocking), acc)| KernelProfile {
            pattern,
            d,
            backend,
            blocking,
            calls: acc.calls,
            elapsed: Duration::from_nanos(acc.nanos),
            rows: acc.rows,
            edges: acc.edges,
        })
        .collect();
    out.sort_by_key(|p| (p.pattern.name(), p.d, p.blocking));
    out
}

/// Clear the profile table — benches call this between sections so a
/// report covers exactly one workload.
pub fn reset_kernel_profiles() {
    table().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{fusedmm_opt_with, Blocking};
    use crate::part::PartitionStrategy;
    use fusedmm_ops::OpSet;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use fusedmm_sparse::dense::Dense;

    /// The profile table is process-global and other tests in this
    /// crate launch kernels concurrently, so assertions are scoped to
    /// a d no other test uses.
    const D: usize = 40;

    #[test]
    fn dispatcher_launches_are_accounted_per_shape() {
        let n = 24;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
            c.push(u, (u + 5) % n, 0.5);
        }
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::from_fn(n, D, |r, k| ((r + k) as f32).sin() * 0.1);
        let y = Dense::from_fn(n, D, |r, k| ((r * k) as f32).cos() * 0.1);
        let ops = OpSet::sigmoid_embedding(None);
        let before = kernel_profiles()
            .into_iter()
            .find(|p| p.d == D && p.pattern == Pattern::SigmoidEmbedding)
            .map(|p| (p.calls, p.rows, p.edges))
            .unwrap_or((0, 0, 0));
        for _ in 0..3 {
            let _ = fusedmm_opt_with(
                &a,
                &x,
                &y,
                &ops,
                Blocking::StripMined,
                Some(2),
                PartitionStrategy::NnzBalanced,
            );
        }
        let p = kernel_profiles()
            .into_iter()
            .find(|p| p.d == D && p.pattern == Pattern::SigmoidEmbedding && p.blocking == "strip")
            .expect("launches recorded under the strip level");
        assert!(p.calls >= before.0 + 3);
        assert!(p.rows >= before.1 + 3 * n as u64);
        assert!(p.edges >= before.2 + 3 * a.nnz() as u64);
        assert_eq!(p.backend, crate::simd::active_backend());
    }

    #[test]
    fn generic_fallback_is_accounted_too() {
        use fusedmm_ops::{AOp, MOp, ROp, SOp, VOp};
        let n = 12;
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        let a = c.to_csr(Dedup::Sum);
        let x = Dense::filled(n, D, 0.2);
        let y = Dense::filled(n, D, 0.3);
        let ops = OpSet::custom(VOp::Add, ROp::Max, SOp::Tanh, MOp::Mul, AOp::Sum);
        let _ = fusedmm_opt_with(
            &a,
            &x,
            &y,
            &ops,
            Blocking::Auto,
            Some(1),
            PartitionStrategy::NnzBalanced,
        );
        let p = kernel_profiles()
            .into_iter()
            .find(|p| p.d == D && p.pattern == Pattern::Custom && p.blocking == "generic")
            .expect("generic launches recorded");
        assert!(p.calls >= 1 && p.edges >= a.nnz() as u64);
    }
}
