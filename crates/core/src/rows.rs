//! Row-subset FusedMM: compute only the requested output rows.
//!
//! Serving traffic rarely wants the whole graph — a request asks for a
//! few target vertices ("refresh the embeddings of these 64 users").
//! [`fusedmm_rows`] answers that by gathering the requested rows of `A`
//! and `X` into a compact rectangular slice (the paper's §II minibatch
//! setting: a `batch × n` slice of the adjacency matrix whose column
//! space — and therefore `Y` — stays global) and running the same
//! PART1D band driver and specialized kernels over it. Work is
//! proportional to the subset's nonzeros, not the graph's.
//!
//! The subset may be in any order and may contain duplicates; output
//! row `i` always corresponds to `rows[i]`.

use fusedmm_ops::OpSet;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;
use fusedmm_sparse::slice::{gather_rows, slice_rows};

use crate::autotune::global_tuner;
use crate::dispatch::{fusedmm_opt_with, Blocking};
use crate::generic::validate_shapes;
use crate::part::PartitionStrategy;

/// `out[i, :] = FusedMM(A, X, Y)[rows[i], :]`, computing only the
/// requested rows. Tuned like [`crate::fusedmm`]: the blocking strategy
/// (dynamic, strip-mined, or register-blocked) comes from the global
/// autotuner, and the kernels run on the detected SIMD backend.
///
/// # Panics
/// Panics when the full-problem shapes are inconsistent or any
/// requested row is out of range.
pub fn fusedmm_rows(a: &Csr, rows: &[usize], x: &Dense, y: &Dense, ops: &OpSet) -> Dense {
    let blocking = global_tuner().choose(ops, x.ncols());
    fusedmm_rows_with(a, rows, x, y, ops, blocking, None, PartitionStrategy::NnzBalanced)
}

/// [`fusedmm_rows`] with explicit blocking, partition count, and
/// partition strategy — the entry point a precomputed
/// [`Plan`](crate::plan::Plan) drives.
#[allow(clippy::too_many_arguments)]
pub fn fusedmm_rows_with(
    a: &Csr,
    rows: &[usize],
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    blocking: Blocking,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
) -> Dense {
    validate_shapes(a, x, y);
    fusedmm_rows_banded(a, 0, rows, x, y, ops, blocking, partitions, strategy)
}

/// Row-subset FusedMM against a **row band** of a larger matrix: the
/// PART1D shard shape (see [`fusedmm_sparse::csr::Csr::row_band`]).
///
/// `a_band` stores global rows `band_start..band_start + a_band.nrows()`
/// under local indices while its columns — and therefore `y` — stay
/// global. `x` is the *full* feature matrix (`x.nrows() ≥ band end`),
/// shared by every shard, and `rows` are **global** vertex ids that must
/// fall inside the band. Output row `i` corresponds to `rows[i]`,
/// bit-identical to the same rows of the unsharded kernel (each output
/// row is computed independently, in the same column order).
///
/// # Panics
/// Panics when shapes are inconsistent or a requested row falls outside
/// the band.
#[allow(clippy::too_many_arguments)]
pub fn fusedmm_rows_banded(
    a_band: &Csr,
    band_start: usize,
    rows: &[usize],
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    blocking: Blocking,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
) -> Dense {
    let Some(local) = check_band(a_band, band_start, rows, x, y) else {
        return Dense::zeros(0, x.ncols());
    };
    let mb = slice_rows(a_band, &local);
    let xb = gather_rows(x, rows);
    fusedmm_opt_with(&mb.adj, &xb, y, ops, blocking, partitions, strategy)
}

/// [`fusedmm_rows_banded`] over each requested row's `k` strongest
/// neighbors only — the serving engine's `TopKNeighbors` degraded
/// tier. The truncation
/// ([`Csr::top_k_by_weight`]) is applied to the *sliced* minibatch, so
/// its cost is O(subset nnz), not O(graph nnz); work and accuracy both
/// degrade gracefully with `k`. Rows whose degree is already ≤ `k`
/// come out bit-identical to the exact path.
///
/// # Panics
/// Same contract as [`fusedmm_rows_banded`].
#[allow(clippy::too_many_arguments)]
pub fn fusedmm_rows_banded_topk(
    a_band: &Csr,
    band_start: usize,
    rows: &[usize],
    k: usize,
    x: &Dense,
    y: &Dense,
    ops: &OpSet,
    blocking: Blocking,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
) -> Dense {
    let Some(local) = check_band(a_band, band_start, rows, x, y) else {
        return Dense::zeros(0, x.ncols());
    };
    let mb = slice_rows(a_band, &local);
    let truncated = mb.adj.top_k_by_weight(k);
    let xb = gather_rows(x, rows);
    fusedmm_opt_with(&truncated, &xb, y, ops, blocking, partitions, strategy)
}

/// Validate the band-call contract shared by the exact and top-k row
/// paths, and map global `rows` to band-local indices. `None` for an
/// empty subset (the caller returns zero rows).
fn check_band(
    a_band: &Csr,
    band_start: usize,
    rows: &[usize],
    x: &Dense,
    y: &Dense,
) -> Option<Vec<usize>> {
    let band_end = band_start + a_band.nrows();
    assert!(
        x.nrows() >= band_end,
        "X must cover the band: {} rows < band end {band_end}",
        x.nrows()
    );
    assert_eq!(y.nrows(), a_band.ncols(), "Y must have one row per (global) column of the band");
    assert_eq!(x.ncols(), y.ncols(), "X and Y must share the embedding dimension");
    if rows.is_empty() {
        return None;
    }
    Some(
        rows.iter()
            .map(|&u| {
                assert!(
                    (band_start..band_end).contains(&u),
                    "row {u} out of range for band {band_start}..{band_end}"
                );
                u - band_start
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::fusedmm_reference;
    use fusedmm_ops::OpSet;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=4usize {
                c.push(u, (u * 3 + k * 5) % n, 0.5 + k as f32 * 0.25);
            }
        }
        c.to_csr(Dedup::Sum)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 7 + c * 3) as f32 * 0.05 + seed).sin() * 0.6)
    }

    #[test]
    fn subset_rows_match_full_kernel_rows() {
        let n = 50;
        let a = graph(n);
        let d = 24;
        let x = feats(n, d, 0.2);
        let y = feats(n, d, 0.8);
        for ops in [OpSet::sigmoid_embedding(None), OpSet::gcn(), OpSet::fr_model(0.4)] {
            let full = fusedmm_reference(&a, &x, &y, &ops);
            let rows = [0usize, 17, 3, 49, 3, 25];
            let z = fusedmm_rows(&a, &rows, &x, &y, &ops);
            assert_eq!(z.nrows(), rows.len());
            for (i, &u) in rows.iter().enumerate() {
                for k in 0..d {
                    assert!(
                        (z.get(i, k) - full.get(u, k)).abs() < 1e-5,
                        "row {u} lane {k} ({:?})",
                        ops.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn strip_mined_subset_matches_full_kernel_at_serving_dims() {
        // d = 48 has no const-generic kernel; the row path must serve
        // it through the strip-mined family.
        let n = 40;
        let a = graph(n);
        let d = 48;
        let x = feats(n, d, 0.15);
        let y = feats(n, d, 0.75);
        let ops = OpSet::sigmoid_embedding(None);
        let full = fusedmm_reference(&a, &x, &y, &ops);
        let rows = [5usize, 0, 39, 5, 21];
        let z = fusedmm_rows_with(
            &a,
            &rows,
            &x,
            &y,
            &ops,
            Blocking::StripMined,
            Some(2),
            PartitionStrategy::NnzBalanced,
        );
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..d {
                assert!((z.get(i, k) - full.get(u, k)).abs() < 1e-4, "row {u} lane {k}");
            }
        }
    }

    #[test]
    fn banded_subset_matches_unsharded_rows() {
        let n = 48;
        let a = graph(n);
        let d = 16;
        let x = feats(n, d, 0.25);
        let y = feats(n, d, 0.65);
        let ops = OpSet::sigmoid_embedding(None);
        let full = fusedmm_reference(&a, &x, &y, &ops);
        let (lo, hi) = (13usize, 37usize);
        let band = a.row_band(lo..hi);
        // Global ids inside the band, out of order, with a duplicate.
        let rows = [20usize, 13, 36, 20, 29];
        let z = fusedmm_rows_banded(
            &band,
            lo,
            &rows,
            &x,
            &y,
            &ops,
            Blocking::Auto,
            None,
            PartitionStrategy::NnzBalanced,
        );
        for (i, &u) in rows.iter().enumerate() {
            for k in 0..d {
                assert!((z.get(i, k) - full.get(u, k)).abs() < 1e-5, "row {u} lane {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range for band")]
    fn banded_rejects_rows_outside_the_band() {
        let a = graph(20);
        let x = feats(20, 8, 0.0);
        let y = feats(20, 8, 0.0);
        let band = a.row_band(5..15);
        let _ = fusedmm_rows_banded(
            &band,
            5,
            &[4],
            &x,
            &y,
            &OpSet::gcn(),
            Blocking::Auto,
            None,
            PartitionStrategy::NnzBalanced,
        );
    }

    #[test]
    fn topk_truncation_matches_kernel_over_truncated_graph() {
        let n = 48;
        let a = graph(n);
        let d = 16;
        let x = feats(n, d, 0.25);
        let y = feats(n, d, 0.65);
        let ops = OpSet::sigmoid_embedding(None);
        let (lo, hi) = (10usize, 40usize);
        let band = a.row_band(lo..hi);
        let rows = [12usize, 39, 10, 12, 25];
        let k = 2;
        let z = fusedmm_rows_banded_topk(
            &band,
            lo,
            &rows,
            k,
            &x,
            &y,
            &ops,
            Blocking::Auto,
            None,
            PartitionStrategy::NnzBalanced,
        );
        // Reference: exact row kernel over the globally-truncated graph
        // (slicing and truncating commute — both act per row).
        let truncated = a.top_k_by_weight(k);
        let full = fusedmm_reference(&truncated, &x, &y, &ops);
        for (i, &u) in rows.iter().enumerate() {
            for c in 0..d {
                assert!((z.get(i, c) - full.get(u, c)).abs() < 1e-5, "row {u} lane {c}");
            }
        }
        // A k covering every degree reproduces the exact path exactly.
        let exact = fusedmm_rows_banded(
            &band,
            lo,
            &rows,
            &x,
            &y,
            &ops,
            Blocking::Auto,
            None,
            PartitionStrategy::NnzBalanced,
        );
        let via_topk = fusedmm_rows_banded_topk(
            &band,
            lo,
            &rows,
            n,
            &x,
            &y,
            &ops,
            Blocking::Auto,
            None,
            PartitionStrategy::NnzBalanced,
        );
        assert_eq!(via_topk.as_slice(), exact.as_slice(), "k ≥ max degree is bit-identical");
    }

    #[test]
    fn empty_subset_yields_zero_rows() {
        let a = graph(10);
        let x = feats(10, 8, 0.1);
        let y = feats(10, 8, 0.2);
        let z = fusedmm_rows(&a, &[], &x, &y, &OpSet::gcn());
        assert_eq!((z.nrows(), z.ncols()), (0, 8));
    }

    #[test]
    fn all_rows_in_order_equals_full_run() {
        let n = 30;
        let a = graph(n);
        let x = feats(n, 16, 0.3);
        let y = feats(n, 16, 0.6);
        let all: Vec<usize> = (0..n).collect();
        let ops = OpSet::sigmoid_embedding(None);
        let z = fusedmm_rows(&a, &all, &x, &y, &ops);
        let full = fusedmm_reference(&a, &x, &y, &ops);
        assert!(z.max_abs_diff(&full) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let a = graph(5);
        let x = feats(5, 4, 0.0);
        let y = feats(5, 4, 0.0);
        let _ = fusedmm_rows(&a, &[7], &x, &y, &OpSet::gcn());
    }
}
