//! Shared thread-parallel driver: PART1D + scoped threads over row bands.
//!
//! Algorithm 1 lines 2–7: partition `A` (and with it `X` and `Z`) into
//! `t` parts, then process parts in parallel. Threads concurrently read
//! `Y` but each writes only its own contiguous band of `Z`, so no
//! synchronization is needed — expressed in Rust by handing each task a
//! disjoint `&mut` slice of `Z`'s backing storage.

use std::ops::Range;

use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::part::{Partition, PartitionStrategy};

/// Execute `body(rows, z_band)` for every part of a 1D partition of
/// `a`, in parallel on the current rayon thread pool. `z_band` is the
/// mutable sub-slice of `z` covering exactly `rows` (row-major, so
/// `z_band.len() == rows.len() * z.ncols()`).
///
/// `partitions` defaults (when `None`) to the current thread count, as
/// in the paper where `t` parts feed `t` OpenMP threads.
pub fn parallel_row_bands<F>(
    a: &Csr,
    z: &mut Dense,
    partitions: Option<usize>,
    strategy: PartitionStrategy,
    body: F,
) where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(z.nrows(), a.nrows(), "Z must have one row per row of A");
    let t = partitions.unwrap_or_else(rayon::current_num_threads).max(1);
    let part = Partition::part1d(a, t, strategy);
    let d = z.ncols();

    // Carve Z into disjoint bands following the partition boundaries.
    let mut bands: Vec<(Range<usize>, &mut [f32])> = Vec::with_capacity(part.len());
    let mut rest: &mut [f32] = z.as_mut_slice();
    for i in 0..part.len() {
        let rows = part.rows(i);
        let (band, tail) = rest.split_at_mut(rows.len() * d);
        bands.push((rows, band));
        rest = tail;
    }
    debug_assert!(rest.is_empty());

    if part.len() == 1 {
        // Avoid thread-pool dispatch for the sequential case.
        let (rows, band) = bands.pop().expect("one part");
        body(rows, band);
        return;
    }

    rayon::scope(|scope| {
        for (rows, band) in bands {
            let body = &body;
            scope.spawn(move |_| body(rows, band));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn ring(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
        }
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn bands_cover_all_rows_exactly_once() {
        let a = ring(37);
        let mut z = Dense::zeros(37, 4);
        parallel_row_bands(&a, &mut z, Some(5), PartitionStrategy::NnzBalanced, |rows, band| {
            assert_eq!(band.len(), rows.len() * 4);
            for (i, _r) in rows.enumerate() {
                for k in 0..4 {
                    band[i * 4 + k] += 1.0;
                }
            }
        });
        assert!(z.as_slice().iter().all(|&v| v == 1.0), "every cell touched exactly once");
    }

    #[test]
    fn band_offsets_match_rows() {
        let a = ring(16);
        let mut z = Dense::zeros(16, 2);
        parallel_row_bands(&a, &mut z, Some(4), PartitionStrategy::NnzBalanced, |rows, band| {
            for (i, r) in rows.enumerate() {
                band[i * 2] = r as f32;
            }
        });
        for r in 0..16 {
            assert_eq!(z.get(r, 0), r as f32);
        }
    }

    #[test]
    fn single_partition_runs_inline() {
        let a = ring(8);
        let mut z = Dense::zeros(8, 1);
        parallel_row_bands(&a, &mut z, Some(1), PartitionStrategy::RowBalanced, |rows, band| {
            assert_eq!(rows, 0..8);
            band.fill(2.0);
        });
        assert!(z.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "one row per row")]
    fn shape_mismatch_panics() {
        let a = ring(4);
        let mut z = Dense::zeros(3, 1);
        parallel_row_bands(&a, &mut z, None, PartitionStrategy::NnzBalanced, |_, _| {});
    }
}
