//! AArch64 NEON/ASIMD backend: 8 f32 lanes as a pair of `float32x4_t`
//! q-registers (NEON vectors are 128-bit, so `VLEN = 8` spans two).
//!
//! Loads and stores use `vld1q_f32`/`vst1q_f32`, which have no
//! alignment requirement beyond the element type — matching the
//! unaligned contract of the SIMD layer (see [`crate::simd`]).
//!
//! NEON is a baseline feature of AArch64, so the entries here are
//! executable on every aarch64 CPU; detection still routes through
//! [`Backend::Neon`](super::Backend) for uniformity with the x86 path
//! and to honor `FUSEDMM_FORCE_SCALAR`.

#![cfg(target_arch = "aarch64")]
#![allow(unused_unsafe)]

use core::arch::aarch64::{
    float32x4_t, vaddq_f32, vaddvq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vst1q_f32, vsubq_f32,
};

use super::isa::{axpy_body, dot_body, sqdist_body, SimdIsa};
use super::VLEN;

/// Two NEON q-registers acting as one 8-lane vector.
#[derive(Clone, Copy)]
pub(crate) struct NeonV(float32x4_t, float32x4_t);

/// The NEON instantiation of the kernel vocabulary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NeonIsa;

unsafe impl SimdIsa for NeonIsa {
    type V = NeonV;

    #[inline(always)]
    fn zero() -> NeonV {
        unsafe { NeonV(vdupq_n_f32(0.0), vdupq_n_f32(0.0)) }
    }

    #[inline(always)]
    fn splat(v: f32) -> NeonV {
        unsafe { NeonV(vdupq_n_f32(v), vdupq_n_f32(v)) }
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> NeonV {
        unsafe { NeonV(vld1q_f32(p), vld1q_f32(p.add(4))) }
    }

    #[inline(always)]
    unsafe fn storeu(p: *mut f32, v: NeonV) {
        unsafe {
            vst1q_f32(p, v.0);
            vst1q_f32(p.add(4), v.1);
        }
    }

    #[inline(always)]
    unsafe fn loadu_partial(p: *const f32, n: usize) -> NeonV {
        debug_assert!(n <= VLEN);
        // NEON has no lane-masked load; bounce through a zeroed stack
        // buffer (used only on kernel tails, never the hot panel loop).
        let mut buf = [0f32; VLEN];
        unsafe {
            std::ptr::copy_nonoverlapping(p, buf.as_mut_ptr(), n);
            NeonV(vld1q_f32(buf.as_ptr()), vld1q_f32(buf.as_ptr().add(4)))
        }
    }

    #[inline(always)]
    unsafe fn storeu_partial(p: *mut f32, v: NeonV, n: usize) {
        debug_assert!(n <= VLEN);
        let mut buf = [0f32; VLEN];
        unsafe {
            vst1q_f32(buf.as_mut_ptr(), v.0);
            vst1q_f32(buf.as_mut_ptr().add(4), v.1);
            std::ptr::copy_nonoverlapping(buf.as_ptr(), p, n);
        }
    }

    #[inline(always)]
    fn add(a: NeonV, b: NeonV) -> NeonV {
        unsafe { NeonV(vaddq_f32(a.0, b.0), vaddq_f32(a.1, b.1)) }
    }

    #[inline(always)]
    fn sub(a: NeonV, b: NeonV) -> NeonV {
        unsafe { NeonV(vsubq_f32(a.0, b.0), vsubq_f32(a.1, b.1)) }
    }

    #[inline(always)]
    fn fma(acc: NeonV, a: NeonV, b: NeonV) -> NeonV {
        unsafe { NeonV(vfmaq_f32(acc.0, a.0, b.0), vfmaq_f32(acc.1, a.1, b.1)) }
    }

    #[inline(always)]
    fn hsum(v: NeonV) -> f32 {
        unsafe { vaddvq_f32(vaddq_f32(v.0, v.1)) }
    }
}

#[target_feature(enable = "neon")]
unsafe fn dot_impl(x: &[f32], y: &[f32]) -> f32 {
    dot_body::<NeonIsa>(x, y)
}

#[target_feature(enable = "neon")]
unsafe fn sqdist_impl(x: &[f32], y: &[f32]) -> f32 {
    sqdist_body::<NeonIsa>(x, y)
}

#[target_feature(enable = "neon")]
unsafe fn axpy_impl(s: f32, y: &[f32], z: &mut [f32]) {
    axpy_body::<NeonIsa>(s, y, z)
}

/// NEON dot product. Must only be called on an aarch64 NEON CPU.
pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
    // Safety: reachable only through Backend::Neon selection.
    unsafe { dot_impl(x, y) }
}

/// NEON squared distance. Must only be called on an aarch64 NEON CPU.
pub(crate) fn sqdist(x: &[f32], y: &[f32]) -> f32 {
    // Safety: reachable only through Backend::Neon selection.
    unsafe { sqdist_impl(x, y) }
}

/// NEON axpy. Must only be called on an aarch64 NEON CPU.
pub(crate) fn axpy(s: f32, y: &[f32], z: &mut [f32]) {
    // Safety: reachable only through Backend::Neon selection.
    unsafe { axpy_impl(s, y, z) }
}
