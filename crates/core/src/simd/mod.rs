//! Portable SIMD layer — the Rust analogue of the paper's `simd.h`.
//!
//! The reference implementation hides AVX-512/AVX/SSE/NEON intrinsics
//! behind C preprocessor macros in a generated `simd.h`, giving every
//! kernel one vocabulary (`VLOAD`, `VMUL`, `VMAC`, `VHADD`, ...). This
//! module plays the same role with safe Rust: a fixed-width vector type
//! [`F32x8`] whose inlined elementwise operations compile to the target
//! ISA's SIMD instructions (SSE/AVX on x86, ASIMD on AArch64) through
//! LLVM's vectorizer — the same "one source, any ISA" property the
//! paper's code generator provides, without per-ISA source files.
//!
//! All lane counts are fixed at 8 (`VLEN`): wide enough to fill an AVX
//! register exactly and an AVX-512/NEON pipeline via unrolling, and the
//! greatest common divisor of all dimension values the paper benchmarks.

/// Number of f32 lanes per register-like vector.
pub const VLEN: usize = 8;

/// An eight-lane f32 vector with value semantics.
///
/// 32-byte alignment matches one AVX ymm register; operations are
/// written as straight-line lane loops that LLVM reliably turns into
/// single vector instructions at `opt-level ≥ 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(32))]
pub struct F32x8(pub [f32; VLEN]);

impl F32x8 {
    /// All lanes zero (`VZERO`).
    #[inline(always)]
    pub fn zero() -> Self {
        F32x8([0.0; VLEN])
    }

    /// All lanes set to `v` (`VBCAST` — the broadcast after SOP in the
    /// paper's Fig. 5).
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; VLEN])
    }

    /// Load 8 lanes from the first 8 elements of `src` (`VLOAD`).
    ///
    /// # Panics
    /// Panics in debug builds when `src` is shorter than 8.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= VLEN);
        let mut out = [0.0; VLEN];
        out.copy_from_slice(&src[..VLEN]);
        F32x8(out)
    }

    /// Store all lanes into the first 8 elements of `dst` (`VSTORE`).
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= VLEN);
        dst[..VLEN].copy_from_slice(&self.0);
    }

    /// Lanewise addition (`VADD`).
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] + rhs.0[i];
        }
        F32x8(out)
    }

    /// Lanewise subtraction (`VSUB`).
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] - rhs.0[i];
        }
        F32x8(out)
    }

    /// Lanewise multiplication (`VMUL`).
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] * rhs.0[i];
        }
        F32x8(out)
    }

    /// Multiply-accumulate: `self + a·b` (`VMAC` — the FMAC of the
    /// paper's Fig. 5 combining MOP and AOP). Written as separate
    /// multiply and add rather than `f32::mul_add`: on targets whose
    /// baseline lacks hardware FMA (default x86-64), `mul_add` lowers to
    /// a per-lane libm call for its single-rounding guarantee, defeating
    /// vectorization entirely; mul+add vectorizes everywhere and LLVM
    /// still contracts it to real FMA instructions when the target has
    /// them.
    #[inline(always)]
    pub fn fma(self, a: Self, b: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] + a.0[i] * b.0[i];
        }
        F32x8(out)
    }

    /// Lanewise maximum (`VMAX` — AMAX aggregation).
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i].max(rhs.0[i]);
        }
        F32x8(out)
    }

    /// Lanewise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i].min(rhs.0[i]);
        }
        F32x8(out)
    }

    /// Horizontal sum of all lanes (`VHADD`/reduce — completes ROP).
    /// Pairwise tree order matches how hardware horizontal adds
    /// associate, and is deterministic.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let a = self.0;
        let s01 = a[0] + a[1];
        let s23 = a[2] + a[3];
        let s45 = a[4] + a[5];
        let s67 = a[6] + a[7];
        (s01 + s23) + (s45 + s67)
    }

    /// Horizontal maximum of all lanes.
    #[inline(always)]
    pub fn hmax(self) -> f32 {
        let a = self.0;
        a[0].max(a[1]).max(a[2].max(a[3])).max(a[4].max(a[5]).max(a[6].max(a[7])))
    }
}

/// Dot product of two equal-length slices using 8-lane strips with a
/// scalar tail — the VOP(MUL) + ROP(RSUM) fusion.
///
/// Strips are walked with `chunks_exact`, which hands LLVM check-free
/// fixed-size blocks (slice-indexed loads keep a bounds check per strip
/// that measurably slows the memory-bound kernels).
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0f32; VLEN];
    let mut xs = x.chunks_exact(VLEN);
    let mut ys = y.chunks_exact(VLEN);
    for (xc, yc) in (&mut xs).zip(&mut ys) {
        for k in 0..VLEN {
            acc[k] += xc[k] * yc[k];
        }
    }
    let mut s = F32x8(acc).hsum();
    for (&a, &b) in xs.remainder().iter().zip(ys.remainder()) {
        s += a * b;
    }
    s
}

/// `z += s * y` over equal-length slices (`MOP(MUL) + AOP(ASUM)` with a
/// scalar message) — the axpy at the heart of the embedding pattern.
#[inline]
pub fn axpy(s: f32, y: &[f32], z: &mut [f32]) {
    debug_assert_eq!(y.len(), z.len());
    let mut zs = z.chunks_exact_mut(VLEN);
    let mut ys = y.chunks_exact(VLEN);
    for (zc, yc) in (&mut zs).zip(&mut ys) {
        for k in 0..VLEN {
            zc[k] += s * yc[k];
        }
    }
    for (zr, &yr) in zs.into_remainder().iter_mut().zip(ys.remainder()) {
        *zr += s * yr;
    }
}

/// Squared L2 distance `‖x − y‖²` (VOP(SUB) + ROP(NORM) without the
/// final sqrt) — the FR pattern's reduction.
#[inline]
pub fn sqdist(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0f32; VLEN];
    let mut xs = x.chunks_exact(VLEN);
    let mut ys = y.chunks_exact(VLEN);
    for (xc, yc) in (&mut xs).zip(&mut ys) {
        for k in 0..VLEN {
            let d = xc[k] - yc[k];
            acc[k] += d * d;
        }
    }
    let mut s = F32x8(acc).hsum();
    for (&a, &b) in xs.remainder().iter().zip(ys.remainder()) {
        let d = a - b;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_zero() {
        assert_eq!(F32x8::splat(2.0).0, [2.0; 8]);
        assert_eq!(F32x8::zero().0, [0.0; 8]);
    }

    #[test]
    fn load_store_round_trip() {
        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = F32x8::load(&src);
        let mut dst = [0.0; 9];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(dst[8], 0.0);
    }

    #[test]
    fn arithmetic_lanes() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(2.0);
        assert_eq!(a.add(b).0[0], 3.0);
        assert_eq!(a.sub(b).0[7], 6.0);
        assert_eq!(a.mul(b).0[3], 8.0);
        assert_eq!(a.max(F32x8::splat(4.5)).0, [4.5, 4.5, 4.5, 4.5, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.min(F32x8::splat(4.5)).0[7], 4.5);
    }

    #[test]
    fn fma_matches_mul_add() {
        let acc = F32x8::splat(1.0);
        let a = F32x8::splat(2.0);
        let b = F32x8::splat(3.0);
        assert_eq!(acc.fma(a, b).0, [7.0; 8]);
    }

    #[test]
    fn horizontal_reductions() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.hsum(), 36.0);
        assert_eq!(a.hmax(), 8.0);
    }

    #[test]
    fn dot_matches_scalar_for_odd_lengths() {
        for n in [1usize, 7, 8, 9, 16, 31, 64, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 1.0).collect();
            let y: Vec<f32> = (0..n).map(|i| 0.5 - (i as f32) * 0.125).collect();
            let expect: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot(&x, &y);
            assert!((got - expect).abs() < 1e-3, "n={n}: {got} vs {expect}");
        }
    }

    #[test]
    fn axpy_matches_scalar() {
        for n in [3usize, 8, 17, 40] {
            let y: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut z = vec![1.0f32; n];
            let mut z_ref = vec![1.0f32; n];
            axpy(0.5, &y, &mut z);
            for (zr, &yi) in z_ref.iter_mut().zip(&y) {
                *zr += 0.5 * yi;
            }
            assert_eq!(z, z_ref, "n={n}");
        }
    }

    #[test]
    fn sqdist_matches_scalar() {
        for n in [2usize, 8, 13, 32] {
            let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.3).collect();
            let y: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 0.1).collect();
            let expect: f32 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!((sqdist(&x, &y) - expect).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn alignment_is_32_bytes() {
        assert_eq!(std::mem::align_of::<F32x8>(), 32);
        assert_eq!(std::mem::size_of::<F32x8>(), 32);
    }
}
