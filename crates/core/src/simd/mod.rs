//! Multi-backend SIMD layer — the Rust analogue of the paper's `simd.h`.
//!
//! The reference implementation hides AVX-512/AVX/SSE/NEON intrinsics
//! behind C preprocessor macros in a generated `simd.h`, giving every
//! kernel one vocabulary (`VLOAD`, `VMUL`, `VMAC`, `VHADD`, ...) and
//! selecting the ISA at build time. This module provides the same
//! vocabulary with **runtime** ISA selection:
//!
//! | backend           | ISA                | selected when |
//! |-------------------|--------------------|---------------|
//! | [`Backend::Avx512`]  | x86-64 AVX-512F (16-lane `__m512`, masked tails) | `is_x86_feature_detected!("avx512f")` (plus avx2+fma) |
//! | [`Backend::Avx2Fma`] | x86-64 AVX2 + FMA (`std::arch` intrinsics) | `is_x86_feature_detected!("avx2")` and `("fma")` |
//! | [`Backend::Neon`]    | AArch64 NEON/ASIMD (`std::arch` intrinsics) | aarch64 build (NEON is baseline) |
//! | [`Backend::Scalar`]  | portable lane loops ([`F32x8`])             | everything else, or `FUSEDMM_FORCE_SCALAR=1` |
//!
//! The choice is made once per process ([`active_backend`]) and
//! consulted at kernel-launch granularity — the slice primitives below
//! route through a cached function-pointer table, and the row kernels
//! in [`crate::genkern`] are monomorphized per backend and picked by
//! the dispatcher — so no hot loop ever sniffs CPU features. Setting
//! `FUSEDMM_FORCE_SCALAR=1` before first use pins everything to the
//! portable fallback for debugging and A/B runs,
//! `FUSEDMM_FORCE_BACKEND=<name>` requests one backend by name (falling
//! back to the best available one when the CPU lacks it), and
//! [`cpu_features`] reports what was detected and chosen.
//!
//! The AVX-512 and AVX2 backends are **bit-identical** to each other by
//! construction (see the `avx512` submodule's docs); the scalar backend
//! differs in final-rounding because its multiply-accumulate is
//! deliberately unfused (see [`F32x8::fma`]) and is compared with a
//! small tolerance instead.
//!
//! # Alignment contract
//!
//! [`F32x8`] the *value type* is 32-byte aligned (one AVX ymm image),
//! but every load/store in this module — [`F32x8::load`],
//! [`F32x8::store`], and all ISA-backend memory ops — accepts data with
//! only the natural 4-byte `f32` alignment, because kernels index
//! arbitrary row offsets (`&row[k..]`) of packed dense matrices. The
//! AVX2 backend therefore always uses the unaligned intrinsics
//! (`_mm256_loadu_ps`/`_mm256_storeu_ps`; full speed on aligned
//! addresses on every AVX2 part), and NEON uses `vld1q_f32`/
//! `vst1q_f32`, which only require element alignment. Do not introduce
//! aligned intrinsics here without also guaranteeing 32-byte row
//! pitches in [`fusedmm_sparse::dense::Dense`].
//!
//! Panel layout stays expressed in units of 8 lanes (`VLEN`): the
//! greatest common divisor of all dimension values the paper
//! benchmarks, and the exact width of an AVX ymm register. The AVX-512
//! backend's register type spans two `VLEN` units (16 lanes,
//! `SimdIsa::LANES = 16`), so the same memory walk fills zmm registers
//! with half the iterations.

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
mod backend;
mod isa;
#[cfg(target_arch = "aarch64")]
mod neon;

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::Avx2Isa;
#[cfg(target_arch = "x86_64")]
pub(crate) use avx512::Avx512Isa;
pub use backend::{active_backend, cpu_features, scalar_forced, Backend, CpuFeatures};
pub(crate) use isa::{ScalarIsa, SimdIsa};
#[cfg(target_arch = "aarch64")]
pub(crate) use neon::NeonIsa;

use std::sync::OnceLock;

/// Number of f32 lanes per register-like vector.
pub const VLEN: usize = 8;

/// An eight-lane f32 vector with value semantics.
///
/// 32-byte alignment matches one AVX ymm register; operations are
/// written as straight-line lane loops that LLVM reliably turns into
/// single vector instructions at `opt-level ≥ 2`. This is the portable
/// backend's register type and the reference semantics the ISA
/// backends are tested against.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(32))]
pub struct F32x8(pub [f32; VLEN]);

impl F32x8 {
    /// All lanes zero (`VZERO`).
    #[inline(always)]
    pub fn zero() -> Self {
        F32x8([0.0; VLEN])
    }

    /// All lanes set to `v` (`VBCAST` — the broadcast after SOP in the
    /// paper's Fig. 5).
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; VLEN])
    }

    /// Load 8 lanes from the first 8 elements of `src` (`VLOAD`).
    /// `src` needs only `f32` alignment — see the module header's
    /// alignment contract.
    ///
    /// # Panics
    /// Panics in debug builds when `src` is shorter than 8.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= VLEN);
        let mut out = [0.0; VLEN];
        out.copy_from_slice(&src[..VLEN]);
        F32x8(out)
    }

    /// Store all lanes into the first 8 elements of `dst` (`VSTORE`).
    /// `dst` needs only `f32` alignment.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= VLEN);
        dst[..VLEN].copy_from_slice(&self.0);
    }

    /// Lanewise addition (`VADD`).
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] + rhs.0[i];
        }
        F32x8(out)
    }

    /// Lanewise subtraction (`VSUB`).
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] - rhs.0[i];
        }
        F32x8(out)
    }

    /// Lanewise multiplication (`VMUL`).
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] * rhs.0[i];
        }
        F32x8(out)
    }

    /// Multiply-accumulate: `self + a·b` (`VMAC` — the FMAC of the
    /// paper's Fig. 5 combining MOP and AOP). Written as separate
    /// multiply and add rather than `f32::mul_add`: on targets whose
    /// baseline lacks hardware FMA (default x86-64), `mul_add` lowers to
    /// a per-lane libm call for its single-rounding guarantee, defeating
    /// vectorization entirely. The AVX2 backend gets true fused FMA via
    /// `_mm256_fmadd_ps` instead (see [`crate::simd`] submodules).
    #[inline(always)]
    pub fn fma(self, a: Self, b: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i] + a.0[i] * b.0[i];
        }
        F32x8(out)
    }

    /// Lanewise maximum (`VMAX` — AMAX aggregation).
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i].max(rhs.0[i]);
        }
        F32x8(out)
    }

    /// Lanewise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut out = [0.0; VLEN];
        for i in 0..VLEN {
            out[i] = self.0[i].min(rhs.0[i]);
        }
        F32x8(out)
    }

    /// Horizontal sum of all lanes (`VHADD`/reduce — completes ROP).
    /// Pairwise tree order matches how hardware horizontal adds
    /// associate, and is deterministic.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let a = self.0;
        let s01 = a[0] + a[1];
        let s23 = a[2] + a[3];
        let s45 = a[4] + a[5];
        let s67 = a[6] + a[7];
        (s01 + s23) + (s45 + s67)
    }

    /// Horizontal maximum of all lanes.
    #[inline(always)]
    pub fn hmax(self) -> f32 {
        let a = self.0;
        a[0].max(a[1]).max(a[2].max(a[3])).max(a[4].max(a[5]).max(a[6].max(a[7])))
    }
}

// ---------------------------------------------------------------------------
// Dispatched slice primitives
// ---------------------------------------------------------------------------

/// The function-pointer table one backend installs — resolved once per
/// process so the per-call cost is a single indirect call.
#[derive(Clone, Copy)]
struct SliceOps {
    dot: fn(&[f32], &[f32]) -> f32,
    sqdist: fn(&[f32], &[f32]) -> f32,
    axpy: fn(f32, &[f32], &mut [f32]),
}

fn scalar_ops() -> SliceOps {
    SliceOps {
        dot: |x, y| isa::dot_body::<ScalarIsa>(x, y),
        sqdist: |x, y| isa::sqdist_body::<ScalarIsa>(x, y),
        axpy: |s, y, z| isa::axpy_body::<ScalarIsa>(s, y, z),
    }
}

fn ops_for(b: Backend) -> SliceOps {
    match b {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => {
            SliceOps { dot: avx512::dot, sqdist: avx512::sqdist, axpy: avx512::axpy }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => SliceOps { dot: avx2::dot, sqdist: avx2::sqdist, axpy: avx2::axpy },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => SliceOps { dot: neon::dot, sqdist: neon::sqdist, axpy: neon::axpy },
        _ => scalar_ops(),
    }
}

static SLICE_OPS: OnceLock<SliceOps> = OnceLock::new();

#[inline]
fn slice_ops() -> &'static SliceOps {
    SLICE_OPS.get_or_init(|| ops_for(active_backend()))
}

/// Dot product of two equal-length slices (VOP(MUL) + ROP(RSUM)
/// fusion), computed by the active backend.
///
/// # Panics
/// Panics when `y` is shorter than `x`.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    (slice_ops().dot)(x, y)
}

/// `z += s * y` over equal-length slices (`MOP(MUL) + AOP(ASUM)` with a
/// scalar message) — the axpy at the heart of the embedding pattern,
/// computed by the active backend.
///
/// # Panics
/// Panics when `y` is shorter than `z`.
#[inline]
pub fn axpy(s: f32, y: &[f32], z: &mut [f32]) {
    (slice_ops().axpy)(s, y, z)
}

/// Squared L2 distance `‖x − y‖²` (VOP(SUB) + ROP(NORM) without the
/// final sqrt) — the FR pattern's reduction, computed by the active
/// backend.
///
/// # Panics
/// Panics when `y` is shorter than `x`.
#[inline]
pub fn sqdist(x: &[f32], y: &[f32]) -> f32 {
    (slice_ops().sqdist)(x, y)
}

/// [`dot`] computed by an explicit backend — for cross-backend tests
/// and ablation benches.
///
/// # Panics
/// Panics when `b` is not available on this CPU.
pub fn dot_with(b: Backend, x: &[f32], y: &[f32]) -> f32 {
    assert!(b.is_available(), "backend {b} not available on this CPU");
    (ops_for(b).dot)(x, y)
}

/// [`sqdist`] computed by an explicit backend.
///
/// # Panics
/// Panics when `b` is not available on this CPU.
pub fn sqdist_with(b: Backend, x: &[f32], y: &[f32]) -> f32 {
    assert!(b.is_available(), "backend {b} not available on this CPU");
    (ops_for(b).sqdist)(x, y)
}

/// [`axpy`] computed by an explicit backend.
///
/// # Panics
/// Panics when `b` is not available on this CPU.
pub fn axpy_with(b: Backend, s: f32, y: &[f32], z: &mut [f32]) {
    assert!(b.is_available(), "backend {b} not available on this CPU");
    (ops_for(b).axpy)(s, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_zero() {
        assert_eq!(F32x8::splat(2.0).0, [2.0; 8]);
        assert_eq!(F32x8::zero().0, [0.0; 8]);
    }

    #[test]
    fn load_store_round_trip() {
        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = F32x8::load(&src);
        let mut dst = [0.0; 9];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(dst[8], 0.0);
    }

    #[test]
    fn load_store_tolerate_unaligned_offsets() {
        // Slices at odd offsets are only 4-byte aligned — the contract
        // the ISA backends' unaligned intrinsics exist for.
        let src: Vec<f32> = (0..17).map(|i| i as f32).collect();
        for off in 0..8 {
            let v = F32x8::load(&src[off..]);
            assert_eq!(v.0[0], off as f32);
            let mut dst = [0.0; 17];
            v.store(&mut dst[off..]);
            assert_eq!(dst[off], off as f32);
            assert_eq!(dst[off + 7], (off + 7) as f32);
        }
    }

    #[test]
    fn arithmetic_lanes() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(2.0);
        assert_eq!(a.add(b).0[0], 3.0);
        assert_eq!(a.sub(b).0[7], 6.0);
        assert_eq!(a.mul(b).0[3], 8.0);
        assert_eq!(a.max(F32x8::splat(4.5)).0, [4.5, 4.5, 4.5, 4.5, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.min(F32x8::splat(4.5)).0[7], 4.5);
    }

    #[test]
    fn fma_matches_mul_add() {
        let acc = F32x8::splat(1.0);
        let a = F32x8::splat(2.0);
        let b = F32x8::splat(3.0);
        assert_eq!(acc.fma(a, b).0, [7.0; 8]);
    }

    #[test]
    fn horizontal_reductions() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.hsum(), 36.0);
        assert_eq!(a.hmax(), 8.0);
    }

    #[test]
    fn dot_matches_scalar_for_odd_lengths() {
        for n in [1usize, 7, 8, 9, 16, 31, 64, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 1.0).collect();
            let y: Vec<f32> = (0..n).map(|i| 0.5 - (i as f32) * 0.125).collect();
            let expect: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot(&x, &y);
            assert!((got - expect).abs() < 1e-3, "n={n}: {got} vs {expect}");
        }
    }

    #[test]
    fn axpy_matches_scalar() {
        for n in [3usize, 8, 17, 40] {
            let y: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut z = vec![1.0f32; n];
            let mut z_ref = vec![1.0f32; n];
            axpy(0.5, &y, &mut z);
            for (zr, &yi) in z_ref.iter_mut().zip(&y) {
                *zr += 0.5 * yi;
            }
            assert_eq!(z, z_ref, "n={n}");
        }
    }

    #[test]
    fn sqdist_matches_scalar() {
        for n in [2usize, 8, 13, 32] {
            let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.3).collect();
            let y: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 0.1).collect();
            let expect: f32 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!((sqdist(&x, &y) - expect).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn every_available_backend_agrees_on_primitives() {
        for n in [1usize, 8, 24, 48, 96, 192, 384, 391] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin() * 0.4).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.19).cos() * 0.4).collect();
            let d_ref = dot_with(Backend::Scalar, &x, &y);
            let s_ref = sqdist_with(Backend::Scalar, &x, &y);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                assert!((dot_with(b, &x, &y) - d_ref).abs() < 1e-5, "dot {b} n={n}");
                assert!((sqdist_with(b, &x, &y) - s_ref).abs() < 1e-5, "sqdist {b} n={n}");
                let mut z = vec![0.2f32; n];
                let mut z_ref = vec![0.2f32; n];
                axpy_with(b, 0.7, &x, &mut z);
                axpy_with(Backend::Scalar, 0.7, &x, &mut z_ref);
                for k in 0..n {
                    assert!((z[k] - z_ref[k]).abs() < 1e-5, "axpy {b} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn explicit_backend_requires_availability() {
        // One of the two ISA backends is always foreign to the build
        // target, so this panics on every machine.
        let unavailable = if Backend::Avx2Fma.is_available() || cfg!(target_arch = "x86_64") {
            Backend::Neon
        } else {
            Backend::Avx2Fma
        };
        let _ = dot_with(unavailable, &[1.0; 8], &[1.0; 8]);
    }

    #[test]
    fn alignment_is_32_bytes() {
        assert_eq!(std::mem::align_of::<F32x8>(), 32);
        assert_eq!(std::mem::size_of::<F32x8>(), 32);
    }
}
