//! Runtime ISA backend selection.
//!
//! The paper's build system compiles one kernel library per ISA
//! (AVX-512/AVX/SSE on x86, ASIMD on ARM) and picks at configure time.
//! We decide once per process at run time instead: the first caller of
//! [`active_backend`] probes the CPU (`is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!`), honors the `FUSEDMM_FORCE_SCALAR`
//! environment variable, and caches the answer for the lifetime of the
//! process. Everything downstream — the slice primitives in
//! [`crate::simd`], the per-ISA kernel entries in
//! [`crate::genkern::strip`] — routes through that single decision, so
//! there is no per-operation feature sniffing on the hot path.

use std::sync::OnceLock;

/// Which SIMD implementation the process executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// x86-64 AVX2 + FMA: 8-lane `__m256` arithmetic with true fused
    /// multiply-add (`_mm256_fmadd_ps`).
    Avx2Fma,
    /// AArch64 NEON/ASIMD: an 8-lane vector emulated as a pair of
    /// 4-lane `float32x4_t` q-registers with `vfmaq_f32`.
    Neon,
    /// Portable lane loops (the seed implementation) — correct on every
    /// target; LLVM autovectorizes them to whatever the build target
    /// guarantees (SSE2 on default x86-64).
    Scalar,
}

impl Backend {
    /// Every backend, in preference order.
    pub const ALL: &'static [Backend] = &[Backend::Avx2Fma, Backend::Neon, Backend::Scalar];

    /// Whether this backend can execute on the current CPU. `Scalar`
    /// is always available; the ISA backends require both the matching
    /// compile-time architecture and the runtime CPU features.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// Human-readable name used in reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Avx2Fma => "avx2+fma",
            Backend::Neon => "neon",
            Backend::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// True when `FUSEDMM_FORCE_SCALAR` is set to anything other than the
/// empty string or `0` — the debugging escape hatch that pins every
/// kernel to the portable fallback regardless of CPU capabilities.
pub fn scalar_forced() -> bool {
    match std::env::var("FUSEDMM_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The one-time decision: the backend plus whether the scalar force
/// flag drove it. Captured together so [`cpu_features`] can never
/// attribute a backend to an env state it did not see.
static ACTIVE: OnceLock<(Backend, bool)> = OnceLock::new();

fn decide_backend() -> (Backend, bool) {
    *ACTIVE.get_or_init(|| {
        if scalar_forced() {
            return (Backend::Scalar, true);
        }
        for &b in Backend::ALL {
            if b.is_available() {
                return (b, false);
            }
        }
        (Backend::Scalar, false)
    })
}

/// The backend this process runs on, decided once: forced scalar if
/// the env var says so, otherwise the best ISA the CPU supports.
pub fn active_backend() -> Backend {
    decide_backend().0
}

/// What the CPU offers and what we chose — recorded by benchmark
/// binaries so measurements are attributable to a hardware path.
#[derive(Debug, Clone)]
pub struct CpuFeatures {
    /// Compile-time architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// Runtime-detected ISA features relevant to kernel selection,
    /// as `(name, present)` pairs.
    pub detected: Vec<(&'static str, bool)>,
    /// Whether `FUSEDMM_FORCE_SCALAR` suppressed the ISA backends —
    /// as observed when the backend was decided, not at report time.
    pub forced_scalar: bool,
    /// The backend the process executes (see [`active_backend`]).
    pub backend: Backend,
}

/// Probe the CPU and report the detected features and chosen backend.
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    let detected = vec![
        ("avx2", is_x86_feature_detected!("avx2")),
        ("fma", is_x86_feature_detected!("fma")),
        ("avx512f", is_x86_feature_detected!("avx512f")),
    ];
    #[cfg(target_arch = "aarch64")]
    let detected = vec![("neon", std::arch::is_aarch64_feature_detected!("neon"))];
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let detected = Vec::new();

    let (backend, forced_scalar) = decide_backend();
    CpuFeatures { arch: std::env::consts::ARCH, detected, forced_scalar, backend }
}

impl std::fmt::Display for CpuFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu: {}", self.arch)?;
        for (name, present) in &self.detected {
            write!(f, " {name}={}", if *present { "yes" } else { "no" })?;
        }
        write!(f, " | simd backend: {}", self.backend)?;
        if self.forced_scalar {
            write!(f, " (FUSEDMM_FORCE_SCALAR)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(Backend::Scalar.is_available());
    }

    #[test]
    fn active_backend_is_available_and_stable() {
        let b = active_backend();
        assert!(b.is_available());
        assert_eq!(b, active_backend());
    }

    #[test]
    fn at_most_one_arch_backend_per_target() {
        // A single build can never see both x86 and ARM backends.
        assert!(!(Backend::Avx2Fma.is_available() && Backend::Neon.is_available()));
    }

    #[test]
    fn report_names_the_active_backend() {
        let report = cpu_features();
        assert_eq!(report.backend, active_backend());
        let text = report.to_string();
        assert!(text.contains("simd backend:"));
        assert!(text.contains(report.backend.label()));
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Backend::Avx2Fma.label(), Backend::Scalar.label());
        assert_ne!(Backend::Neon.label(), Backend::Scalar.label());
    }
}
