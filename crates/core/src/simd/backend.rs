//! Runtime ISA backend selection.
//!
//! The paper's build system compiles one kernel library per ISA
//! (AVX-512/AVX/SSE on x86, ASIMD on ARM) and picks at configure time.
//! We decide once per process at run time instead: the first caller of
//! [`active_backend`] probes the CPU (`is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!`), honors the `FUSEDMM_FORCE_SCALAR`
//! and `FUSEDMM_FORCE_BACKEND` environment variables, and caches the
//! answer for the lifetime of the process. Everything downstream — the
//! slice primitives in [`crate::simd`], the per-ISA kernel entries in
//! [`crate::genkern::strip`] and [`crate::genkern::table`] — routes
//! through that single decision, so there is no per-operation feature
//! sniffing on the hot path.
//!
//! Overrides:
//!
//! * `FUSEDMM_FORCE_SCALAR=1` pins the portable fallback (the original
//!   escape hatch; wins over everything).
//! * `FUSEDMM_FORCE_BACKEND=scalar|avx2|avx512|neon` requests one
//!   backend by name. If the CPU cannot execute it, selection **falls
//!   back to the best available backend** rather than aborting — this
//!   is deliberate, so CI can set `FUSEDMM_FORCE_BACKEND=avx512` on
//!   every runner and non-AVX-512 machines exercise the dispatch-miss
//!   path while AVX-512 machines run the real thing. The fallback is
//!   recorded in [`CpuFeatures::forced_unavailable`].

use std::sync::OnceLock;

/// Which SIMD implementation the process executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// x86-64 AVX-512F: 16-lane `__m512` arithmetic with fused
    /// multiply-add (`_mm512_fmadd_ps`) and native masked tail
    /// loads/stores.
    Avx512,
    /// x86-64 AVX2 + FMA: 8-lane `__m256` arithmetic with true fused
    /// multiply-add (`_mm256_fmadd_ps`).
    Avx2Fma,
    /// AArch64 NEON/ASIMD: an 8-lane vector emulated as a pair of
    /// 4-lane `float32x4_t` q-registers with `vfmaq_f32`.
    Neon,
    /// Portable lane loops (the seed implementation) — correct on every
    /// target; LLVM autovectorizes them to whatever the build target
    /// guarantees (SSE2 on default x86-64).
    Scalar,
}

impl Backend {
    /// Every backend, in preference order.
    pub const ALL: &'static [Backend] =
        &[Backend::Avx512, Backend::Avx2Fma, Backend::Neon, Backend::Scalar];

    /// Whether this backend can execute on the current CPU. `Scalar`
    /// is always available; the ISA backends require both the matching
    /// compile-time architecture and the runtime CPU features.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // The zmm kernels finish reductions with ymm FMA
                    // cleanup (see `simd::avx512`), so AVX2+FMA is
                    // part of the executable contract. Every AVX-512F
                    // part ships both, but probe explicitly anyway.
                    is_x86_feature_detected!("avx512f")
                        && is_x86_feature_detected!("avx2")
                        && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// Human-readable name used in reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Avx512 => "avx512",
            Backend::Avx2Fma => "avx2+fma",
            Backend::Neon => "neon",
            Backend::Scalar => "scalar",
        }
    }

    /// Number of f32 lanes in this backend's widest register: 16 for
    /// AVX-512 zmm, 8 everywhere else. The autotuner uses this to
    /// filter panel-shape candidates (see [`crate::autotune`]).
    pub fn lanes(self) -> usize {
        match self {
            Backend::Avx512 => 16,
            _ => crate::simd::VLEN,
        }
    }

    /// Parse a `FUSEDMM_FORCE_BACKEND` value. Accepts the canonical
    /// labels plus common spellings; `None` for anything else.
    fn parse(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "avx512" | "avx512f" | "avx-512" => Some(Backend::Avx512),
            "avx2" | "avx2+fma" | "avx2fma" => Some(Backend::Avx2Fma),
            "neon" | "asimd" => Some(Backend::Neon),
            "scalar" | "portable" => Some(Backend::Scalar),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// True when `FUSEDMM_FORCE_SCALAR` is set to anything other than the
/// empty string or `0` — the debugging escape hatch that pins every
/// kernel to the portable fallback regardless of CPU capabilities.
pub fn scalar_forced() -> bool {
    match std::env::var("FUSEDMM_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The backend named by `FUSEDMM_FORCE_BACKEND`, if the variable is
/// set to a recognized name (see [`Backend::parse`] spellings).
/// Unrecognized values are ignored rather than fatal.
fn requested_backend() -> Option<Backend> {
    match std::env::var("FUSEDMM_FORCE_BACKEND") {
        Ok(v) if !v.is_empty() && v != "0" => Backend::parse(&v),
        _ => None,
    }
}

/// The one-time decision, captured together with the env state that
/// drove it so [`cpu_features`] can never attribute a backend to an
/// env state it did not see.
#[derive(Debug, Clone, Copy)]
struct Decision {
    backend: Backend,
    forced_scalar: bool,
    /// `Some(requested)` when `FUSEDMM_FORCE_BACKEND` named a backend
    /// this CPU cannot run and selection fell back.
    forced_unavailable: Option<Backend>,
}

static ACTIVE: OnceLock<Decision> = OnceLock::new();

fn best_available() -> Backend {
    for &b in Backend::ALL {
        if b.is_available() {
            return b;
        }
    }
    Backend::Scalar
}

fn decide_backend() -> Decision {
    *ACTIVE.get_or_init(|| {
        if scalar_forced() {
            return Decision {
                backend: Backend::Scalar,
                forced_scalar: true,
                forced_unavailable: None,
            };
        }
        if let Some(req) = requested_backend() {
            if req.is_available() {
                return Decision { backend: req, forced_scalar: false, forced_unavailable: None };
            }
            // Requested ISA missing on this CPU: degrade to the best
            // real backend and record the miss (the CI fallback arm
            // asserts this path keeps everything correct).
            return Decision {
                backend: best_available(),
                forced_scalar: false,
                forced_unavailable: Some(req),
            };
        }
        Decision { backend: best_available(), forced_scalar: false, forced_unavailable: None }
    })
}

/// The backend this process runs on, decided once: forced scalar if
/// `FUSEDMM_FORCE_SCALAR` says so, the `FUSEDMM_FORCE_BACKEND` choice
/// when it is executable here, otherwise the best ISA the CPU
/// supports.
pub fn active_backend() -> Backend {
    decide_backend().backend
}

/// What the CPU offers and what we chose — recorded by benchmark
/// binaries so measurements are attributable to a hardware path.
#[derive(Debug, Clone)]
pub struct CpuFeatures {
    /// Compile-time architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// Runtime-detected ISA features relevant to kernel selection,
    /// as `(name, present)` pairs.
    pub detected: Vec<(&'static str, bool)>,
    /// Whether `FUSEDMM_FORCE_SCALAR` suppressed the ISA backends —
    /// as observed when the backend was decided, not at report time.
    pub forced_scalar: bool,
    /// Set when `FUSEDMM_FORCE_BACKEND` named a backend this CPU
    /// cannot execute and selection fell back to [`CpuFeatures::backend`].
    pub forced_unavailable: Option<Backend>,
    /// The backend the process executes (see [`active_backend`]).
    pub backend: Backend,
}

/// Probe the CPU and report the detected features and chosen backend.
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    let detected = vec![
        ("avx2", is_x86_feature_detected!("avx2")),
        ("fma", is_x86_feature_detected!("fma")),
        ("avx512f", is_x86_feature_detected!("avx512f")),
    ];
    #[cfg(target_arch = "aarch64")]
    let detected = vec![("neon", std::arch::is_aarch64_feature_detected!("neon"))];
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let detected = Vec::new();

    let decision = decide_backend();
    CpuFeatures {
        arch: std::env::consts::ARCH,
        detected,
        forced_scalar: decision.forced_scalar,
        forced_unavailable: decision.forced_unavailable,
        backend: decision.backend,
    }
}

impl std::fmt::Display for CpuFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu: {}", self.arch)?;
        for (name, present) in &self.detected {
            write!(f, " {name}={}", if *present { "yes" } else { "no" })?;
        }
        write!(f, " | simd backend: {}", self.backend)?;
        if self.forced_scalar {
            write!(f, " (FUSEDMM_FORCE_SCALAR)")?;
        }
        if let Some(req) = self.forced_unavailable {
            write!(f, " (FUSEDMM_FORCE_BACKEND={req} unavailable, fell back)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(Backend::Scalar.is_available());
    }

    #[test]
    fn active_backend_is_available_and_stable() {
        let b = active_backend();
        assert!(b.is_available());
        assert_eq!(b, active_backend());
    }

    #[test]
    fn at_most_one_arch_backend_per_target() {
        // A single build can never see both x86 and ARM backends.
        assert!(!(Backend::Avx2Fma.is_available() && Backend::Neon.is_available()));
        assert!(!(Backend::Avx512.is_available() && Backend::Neon.is_available()));
    }

    #[test]
    fn avx512_implies_avx2() {
        // The availability contract the zmm kernels rely on for their
        // ymm cleanup sequences.
        if Backend::Avx512.is_available() {
            assert!(Backend::Avx2Fma.is_available());
        }
    }

    #[test]
    fn report_names_the_active_backend() {
        let report = cpu_features();
        assert_eq!(report.backend, active_backend());
        let text = report.to_string();
        assert!(text.contains("simd backend:"));
        assert!(text.contains(report.backend.label()));
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = Backend::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Backend::ALL.len());
    }

    #[test]
    fn force_backend_names_parse() {
        assert_eq!(Backend::parse("avx512"), Some(Backend::Avx512));
        assert_eq!(Backend::parse("AVX-512"), Some(Backend::Avx512));
        assert_eq!(Backend::parse("avx2"), Some(Backend::Avx2Fma));
        assert_eq!(Backend::parse("neon"), Some(Backend::Neon));
        assert_eq!(Backend::parse("scalar"), Some(Backend::Scalar));
        assert_eq!(Backend::parse("riscv"), None);
    }

    #[test]
    fn lanes_match_register_width() {
        assert_eq!(Backend::Avx512.lanes(), 16);
        assert_eq!(Backend::Avx2Fma.lanes(), 8);
        assert_eq!(Backend::Scalar.lanes(), 8);
    }
}
