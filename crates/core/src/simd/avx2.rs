//! x86-64 AVX2 + FMA backend: 8 f32 lanes in one `__m256` ymm register.
//!
//! All loads and stores use the **unaligned** intrinsics
//! (`_mm256_loadu_ps` / `_mm256_storeu_ps`): kernel callers pass
//! arbitrary row offsets into dense matrices, which are only 4-byte
//! aligned. On every AVX2 part the unaligned forms run at full speed
//! when the address happens to be aligned, so there is no penalty for
//! the general contract.
//!
//! Safety model: [`Avx2Isa`]'s methods lower to AVX/AVX2/FMA
//! instructions and are sound only when executed on a CPU with those
//! features. The public entry functions in this module wrap a
//! `#[target_feature(enable = "avx2,fma")]` inner function; they must
//! only be reached through [`Backend::Avx2Fma`](super::Backend)
//! after [`is_available`](super::Backend::is_available) returned true,
//! which [`super::active_backend`] and the kernel selectors guarantee.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::{
    __m256, __m256i, _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps,
    _mm256_loadu_ps, _mm256_loadu_si256, _mm256_maskload_ps, _mm256_maskstore_ps, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32,
    _mm_movehdup_ps, _mm_movehl_ps,
};

use super::isa::{axpy_body, dot_body, sqdist_body, SimdIsa};
use super::VLEN;

/// Sliding-window source for `maskload`/`maskstore` lane masks: a
/// window of 8 starting at index `VLEN - n` has exactly its first `n`
/// entries set (high bit on selects the lane).
static TAIL_MASK: [i32; 2 * VLEN] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

/// Lane mask selecting the first `n` of 8 lanes. `n <= VLEN`.
#[inline(always)]
unsafe fn lane_mask(n: usize) -> __m256i {
    debug_assert!(n <= VLEN);
    // Safety: VLEN - n + VLEN <= 2*VLEN keeps the window in bounds.
    unsafe { _mm256_loadu_si256(TAIL_MASK.as_ptr().add(VLEN - n) as *const __m256i) }
}

/// The AVX2+FMA instantiation of the kernel vocabulary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Avx2Isa;

unsafe impl SimdIsa for Avx2Isa {
    type V = __m256;

    #[inline(always)]
    fn zero() -> __m256 {
        unsafe { _mm256_setzero_ps() }
    }

    #[inline(always)]
    fn splat(v: f32) -> __m256 {
        unsafe { _mm256_set1_ps(v) }
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> __m256 {
        unsafe { _mm256_loadu_ps(p) }
    }

    #[inline(always)]
    unsafe fn storeu(p: *mut f32, v: __m256) {
        unsafe { _mm256_storeu_ps(p, v) }
    }

    #[inline(always)]
    unsafe fn loadu_partial(p: *const f32, n: usize) -> __m256 {
        // Masked lanes load as zero, matching the trait contract.
        unsafe { _mm256_maskload_ps(p, lane_mask(n)) }
    }

    #[inline(always)]
    unsafe fn storeu_partial(p: *mut f32, v: __m256, n: usize) {
        unsafe { _mm256_maskstore_ps(p, lane_mask(n), v) }
    }

    #[inline(always)]
    fn add(a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_add_ps(a, b) }
    }

    #[inline(always)]
    fn sub(a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_sub_ps(a, b) }
    }

    #[inline(always)]
    fn fma(acc: __m256, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_fmadd_ps(a, b, acc) }
    }

    #[inline(always)]
    fn hsum(v: __m256) -> f32 {
        unsafe {
            // ymm -> xmm: add high and low 128-bit halves, then the
            // classic movehdup/movehl 4-lane reduction.
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps::<1>(v);
            let quad = _mm_add_ps(lo, hi);
            let shuf = _mm_movehdup_ps(quad);
            let pair = _mm_add_ps(quad, shuf);
            let high = _mm_movehl_ps(shuf, pair);
            _mm_cvtss_f32(_mm_add_ss(pair, high))
        }
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_impl(x: &[f32], y: &[f32]) -> f32 {
    dot_body::<Avx2Isa>(x, y)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sqdist_impl(x: &[f32], y: &[f32]) -> f32 {
    sqdist_body::<Avx2Isa>(x, y)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_impl(s: f32, y: &[f32], z: &mut [f32]) {
    axpy_body::<Avx2Isa>(s, y, z)
}

/// AVX2 dot product. Must only be called on an AVX2+FMA CPU.
pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
    // Safety: reachable only through Backend::Avx2Fma selection.
    unsafe { dot_impl(x, y) }
}

/// AVX2 squared distance. Must only be called on an AVX2+FMA CPU.
pub(crate) fn sqdist(x: &[f32], y: &[f32]) -> f32 {
    // Safety: reachable only through Backend::Avx2Fma selection.
    unsafe { sqdist_impl(x, y) }
}

/// AVX2 axpy. Must only be called on an AVX2+FMA CPU.
pub(crate) fn axpy(s: f32, y: &[f32], z: &mut [f32]) {
    // Safety: reachable only through Backend::Avx2Fma selection.
    unsafe { axpy_impl(s, y, z) }
}

#[cfg(test)]
mod tests {
    use super::super::Backend;
    use super::*;

    #[test]
    fn avx2_matches_scalar_when_available() {
        if !Backend::Avx2Fma.is_available() {
            return;
        }
        for n in [8usize, 16, 24, 48, 96, 192, 384, 385] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).sin() * 0.4).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).cos() * 0.4).collect();
            let d_ref = dot_body::<super::super::isa::ScalarIsa>(&x, &y);
            assert!((dot(&x, &y) - d_ref).abs() < 1e-4, "dot n={n}");
            let s_ref = sqdist_body::<super::super::isa::ScalarIsa>(&x, &y);
            assert!((sqdist(&x, &y) - s_ref).abs() < 1e-4, "sqdist n={n}");
            let mut z = vec![0.1f32; n];
            let mut z_ref = vec![0.1f32; n];
            axpy(0.3, &y, &mut z);
            axpy_body::<super::super::isa::ScalarIsa>(0.3, &y, &mut z_ref);
            for k in 0..n {
                assert!((z[k] - z_ref[k]).abs() < 1e-5, "axpy n={n} k={k}");
            }
        }
    }
}
