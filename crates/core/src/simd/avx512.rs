//! x86-64 AVX-512F backend: 16 f32 lanes in one `__m512` zmm register.
//!
//! Like the AVX2 backend, all loads and stores are unaligned
//! (`_mm512_loadu_ps` / `_mm512_storeu_ps`) because kernel callers
//! pass arbitrary row offsets with only 4-byte alignment. Tail lanes
//! use the native `__mmask16` masked forms — AVX-512's masked
//! load/store is a first-class instruction, so odd dimensions cost a
//! mask register instead of a scalar remainder loop.
//!
//! # Bit-identity with the AVX2 backend
//!
//! The property suite asserts the fused-FMA backends (AVX2 and
//! AVX-512) produce **bit-identical** results, so every reduction here
//! is built to replay AVX2's exact floating-point association:
//!
//! * Lanewise ops (`fma`, panel accumulation, `axpy`) are per-element
//!   independent — 16 lanes at a time fold each element in the same
//!   order as 8 lanes at a time, so nothing special is needed beyond
//!   keeping the same fused/unfused coverage. [`Avx512Isa::axpy`]
//!   therefore finishes with an 8-lane ymm step and the same unfused
//!   scalar tail as `axpy_body` on AVX2.
//! * Reductions (`dot`, `sqdist`) exploit that AVX2's `dot_body` runs
//!   *two* independent ymm chains stepping 16 elements per iteration:
//!   one zmm chain stepping 16 holds chain 0 in lanes 0–7 and chain 1
//!   in lanes 8–15, bit-for-bit. After the wide loop we split the zmm
//!   accumulator into its ymm halves, continue AVX2's 8-lane cleanup
//!   loop on the low half, and finish with the identical
//!   `hsum(add(acc0, acc1))` shuffle tree and unfused scalar tail.
//!   (Two zmm chains would be faster on paper but associate
//!   differently — correctness of the cross-backend contract wins.)
//!
//! The scalar backend stays tolerance-compared: its `F32x8::fma` is
//! deliberately unfused (see [`crate::simd`]), so exact equality with
//! FMA hardware is impossible by design.
//!
//! Safety model: identical to [`super::avx2`] — entries wrap a
//! `#[target_feature(enable = "avx512f,avx2,fma")]` inner function and
//! must only be reached through [`Backend::Avx512`](super::Backend)
//! after feature detection. The ymm cleanup reuses [`Avx2Isa`]
//! methods, which inline into the same feature-gated entry.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::{
    __m256, __m512, __mmask16, _mm256_castpd_ps, _mm512_add_ps, _mm512_castps512_ps256,
    _mm512_castps_pd, _mm512_extractf64x4_pd, _mm512_fmadd_ps, _mm512_loadu_ps,
    _mm512_mask_storeu_ps, _mm512_maskz_loadu_ps, _mm512_set1_ps, _mm512_setzero_ps,
    _mm512_storeu_ps, _mm512_sub_ps,
};

use super::avx2::Avx2Isa;
use super::isa::SimdIsa;

/// Number of f32 lanes in a zmm register.
pub(crate) const LANES: usize = 16;

/// The AVX-512F instantiation of the kernel vocabulary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Avx512Isa;

/// `__mmask16` selecting the first `n` of 16 lanes.
#[inline(always)]
fn lane_mask(n: usize) -> __mmask16 {
    debug_assert!(n <= LANES);
    if n >= LANES {
        !0
    } else {
        ((1u32 << n) - 1) as __mmask16
    }
}

/// Low 8 lanes of a zmm register as a ymm register.
#[inline(always)]
fn lo256(v: __m512) -> __m256 {
    unsafe { _mm512_castps512_ps256(v) }
}

/// High 8 lanes of a zmm register as a ymm register. Routed through
/// `_mm512_extractf64x4_pd` (an AVX-512**F** instruction) so the
/// backend never requires AVX-512DQ.
#[inline(always)]
fn hi256(v: __m512) -> __m256 {
    unsafe { _mm256_castpd_ps(_mm512_extractf64x4_pd::<1>(_mm512_castps_pd(v))) }
}

unsafe impl SimdIsa for Avx512Isa {
    type V = __m512;

    const LANES: usize = LANES;

    #[inline(always)]
    fn zero() -> __m512 {
        unsafe { _mm512_setzero_ps() }
    }

    #[inline(always)]
    fn splat(v: f32) -> __m512 {
        unsafe { _mm512_set1_ps(v) }
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> __m512 {
        unsafe { _mm512_loadu_ps(p) }
    }

    #[inline(always)]
    unsafe fn storeu(p: *mut f32, v: __m512) {
        unsafe { _mm512_storeu_ps(p, v) }
    }

    #[inline(always)]
    unsafe fn loadu_partial(p: *const f32, n: usize) -> __m512 {
        // maskz: unselected lanes load as zero, per the trait contract.
        unsafe { _mm512_maskz_loadu_ps(lane_mask(n), p) }
    }

    #[inline(always)]
    unsafe fn storeu_partial(p: *mut f32, v: __m512, n: usize) {
        unsafe { _mm512_mask_storeu_ps(p, lane_mask(n), v) }
    }

    #[inline(always)]
    fn add(a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_add_ps(a, b) }
    }

    #[inline(always)]
    fn sub(a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_sub_ps(a, b) }
    }

    #[inline(always)]
    fn fma(acc: __m512, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_fmadd_ps(a, b, acc) }
    }

    #[inline(always)]
    fn hsum(v: __m512) -> f32 {
        // Halves-add then AVX2's shuffle tree: the same association a
        // pair of ymm accumulators would reduce with.
        Avx2Isa::hsum(Avx2Isa::add(lo256(v), hi256(v)))
    }

    #[inline(always)]
    fn dot(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        assert!(y.len() >= n, "dot: y shorter than x");
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut k = 0;
        let mut s;
        // Safety: every load below is bounded by its loop condition.
        unsafe {
            // One zmm chain ≡ AVX2's two ymm chains (lanes 0–7 =
            // chain 0, lanes 8–15 = chain 1), stepping 16 like
            // dot_body's unrolled loop.
            let mut acc = _mm512_setzero_ps();
            while k + LANES <= n {
                acc = _mm512_fmadd_ps(_mm512_loadu_ps(xp.add(k)), _mm512_loadu_ps(yp.add(k)), acc);
                k += LANES;
            }
            let mut acc0 = lo256(acc);
            let acc1 = hi256(acc);
            // AVX2's 8-lane cleanup loop, folding into chain 0.
            while k + 8 <= n {
                acc0 = Avx2Isa::fma(acc0, Avx2Isa::loadu(xp.add(k)), Avx2Isa::loadu(yp.add(k)));
                k += 8;
            }
            s = Avx2Isa::hsum(Avx2Isa::add(acc0, acc1));
        }
        while k < n {
            s += x[k] * y[k];
            k += 1;
        }
        s
    }

    #[inline(always)]
    fn sqdist(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        assert!(y.len() >= n, "sqdist: y shorter than x");
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut k = 0;
        let mut s;
        // Safety: every load below is bounded by its loop condition.
        unsafe {
            let mut acc = _mm512_setzero_ps();
            while k + LANES <= n {
                let d = _mm512_sub_ps(_mm512_loadu_ps(xp.add(k)), _mm512_loadu_ps(yp.add(k)));
                acc = _mm512_fmadd_ps(d, d, acc);
                k += LANES;
            }
            let mut acc0 = lo256(acc);
            let acc1 = hi256(acc);
            while k + 8 <= n {
                let d = Avx2Isa::sub(Avx2Isa::loadu(xp.add(k)), Avx2Isa::loadu(yp.add(k)));
                acc0 = Avx2Isa::fma(acc0, d, d);
                k += 8;
            }
            s = Avx2Isa::hsum(Avx2Isa::add(acc0, acc1));
        }
        while k < n {
            let d = x[k] - y[k];
            s += d * d;
            k += 1;
        }
        s
    }

    #[inline(always)]
    fn axpy(s: f32, y: &[f32], z: &mut [f32]) {
        let n = z.len();
        assert!(y.len() >= n, "axpy: y shorter than z");
        let yp = y.as_ptr();
        let zp = z.as_mut_ptr();
        let mut k = 0;
        // Safety: bounded by the loop conditions; y and z are distinct
        // slices (&/&mut), so reads and writes never alias.
        unsafe {
            let sv = _mm512_set1_ps(s);
            while k + LANES <= n {
                let zv =
                    _mm512_fmadd_ps(_mm512_loadu_ps(yp.add(k)), sv, _mm512_loadu_ps(zp.add(k)));
                _mm512_storeu_ps(zp.add(k), zv);
                k += LANES;
            }
            // 8-lane step + unfused scalar tail: the exact fused
            // coverage of axpy_body on AVX2 (fused for k < 8⌊n/8⌋).
            let sv8 = Avx2Isa::splat(s);
            while k + 8 <= n {
                let zv = Avx2Isa::fma(Avx2Isa::loadu(zp.add(k)), sv8, Avx2Isa::loadu(yp.add(k)));
                Avx2Isa::storeu(zp.add(k), zv);
                k += 8;
            }
        }
        while k < n {
            z[k] += s * y[k];
            k += 1;
        }
    }
}

#[target_feature(enable = "avx512f,avx2,fma")]
unsafe fn dot_impl(x: &[f32], y: &[f32]) -> f32 {
    Avx512Isa::dot(x, y)
}

#[target_feature(enable = "avx512f,avx2,fma")]
unsafe fn sqdist_impl(x: &[f32], y: &[f32]) -> f32 {
    Avx512Isa::sqdist(x, y)
}

#[target_feature(enable = "avx512f,avx2,fma")]
unsafe fn axpy_impl(s: f32, y: &[f32], z: &mut [f32]) {
    Avx512Isa::axpy(s, y, z)
}

/// AVX-512 dot product. Must only be called on an AVX-512F CPU.
pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
    // Safety: reachable only through Backend::Avx512 selection.
    unsafe { dot_impl(x, y) }
}

/// AVX-512 squared distance. Must only be called on an AVX-512F CPU.
pub(crate) fn sqdist(x: &[f32], y: &[f32]) -> f32 {
    // Safety: reachable only through Backend::Avx512 selection.
    unsafe { sqdist_impl(x, y) }
}

/// AVX-512 axpy. Must only be called on an AVX-512F CPU.
pub(crate) fn axpy(s: f32, y: &[f32], z: &mut [f32]) {
    // Safety: reachable only through Backend::Avx512 selection.
    unsafe { axpy_impl(s, y, z) }
}

#[cfg(test)]
mod tests {
    use super::super::Backend;
    use super::*;

    /// The cross-backend contract: AVX-512 reductions and axpy are
    /// bit-identical to AVX2 at every length, aligned or not.
    #[test]
    fn avx512_bit_identical_to_avx2() {
        if !Backend::Avx512.is_available() || !Backend::Avx2Fma.is_available() {
            return;
        }
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 24, 31, 33, 48, 96, 100, 192, 384, 385] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).sin() * 0.4).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).cos() * 0.4).collect();
            assert_eq!(
                dot(&x, &y).to_bits(),
                super::super::avx2::dot(&x, &y).to_bits(),
                "dot n={n}"
            );
            assert_eq!(
                sqdist(&x, &y).to_bits(),
                super::super::avx2::sqdist(&x, &y).to_bits(),
                "sqdist n={n}"
            );
            let mut z = vec![0.1f32; n];
            let mut z2 = vec![0.1f32; n];
            axpy(0.3, &y, &mut z);
            super::super::avx2::axpy(0.3, &y, &mut z2);
            for k in 0..n {
                assert_eq!(z[k].to_bits(), z2[k].to_bits(), "axpy n={n} k={k}");
            }
        }
    }

    #[test]
    fn partial_ops_cover_every_tail_width() {
        if !Backend::Avx512.is_available() {
            return;
        }
        #[target_feature(enable = "avx512f")]
        unsafe fn roundtrip(src: &[f32], n: usize) -> Vec<f32> {
            let v = unsafe { Avx512Isa::loadu_partial(src.as_ptr(), n) };
            let mut out = vec![9.0f32; LANES + 1];
            unsafe { Avx512Isa::storeu_partial(out.as_mut_ptr(), v, n) };
            out
        }
        let src: Vec<f32> = (0..LANES).map(|i| i as f32 + 1.0).collect();
        for n in 0..=LANES {
            let out = unsafe { roundtrip(&src, n) };
            for (k, &v) in out.iter().enumerate() {
                let want = if k < n { src[k] } else { 9.0 };
                assert_eq!(v, want, "n={n} k={k}");
            }
        }
    }
}
