//! The ISA abstraction the kernels are written against.
//!
//! [`SimdIsa`] is the Rust analogue of the paper's `simd.h` macro
//! vocabulary: an 8-lane register type plus `VZERO`/`VBCAST`/`VLOAD`/
//! `VSTORE`/`VADD`/`VSUB`/`VMUL`/`VMAC`/`VHADD`. Kernel bodies are
//! generic over it and marked `#[inline(always)]`; each backend then
//! exposes one monomorphized entry per kernel, compiled under the
//! matching `#[target_feature]` so the intrinsics (and everything
//! inlined into the entry) codegen with the real ISA. This is the
//! memchr/pulp pattern: features apply *after* inlining, so one source
//! body serves every backend.
//!
//! Loads and stores take raw pointers and are **unaligned by
//! contract** — callers hand in arbitrary row offsets of `f32` data
//! with only 4-byte alignment guaranteed (see the module header of
//! [`crate::simd`]).

use crate::simd::{F32x8, VLEN};

/// An f32 vector ISA with `LANES` lanes (8 on AVX2/NEON/scalar, 16 on
/// AVX-512).
///
/// # Safety
///
/// Implementations may compile to instructions beyond the build
/// target's baseline. An implementation must only be *executed* on a
/// CPU that supports its ISA; the per-backend entry functions uphold
/// this by being reachable only through
/// [`Backend`](crate::simd::Backend) detection. `loadu`/`storeu`
/// additionally require pointers valid for `Self::LANES` consecutive
/// `f32` reads/writes (any 4-byte alignment), and the partial forms
/// require validity for the first `n` lanes only.
pub unsafe trait SimdIsa {
    /// The register type (`LANES` f32 lanes).
    type V: Copy;

    /// Number of f32 lanes in [`Self::V`]. Always a multiple of
    /// [`VLEN`]; kernel panel layout stays expressed in `VLEN` units
    /// so wider ISAs see the same memory walk, just fewer iterations.
    const LANES: usize = VLEN;

    /// All lanes zero (`VZERO`).
    fn zero() -> Self::V;
    /// All lanes set to `v` (`VBCAST`).
    fn splat(v: f32) -> Self::V;
    /// Unaligned full-width load (`VLOAD`).
    ///
    /// # Safety
    /// `p` must be valid for reading `Self::LANES` consecutive `f32`s.
    unsafe fn loadu(p: *const f32) -> Self::V;
    /// Unaligned full-width store (`VSTORE`).
    ///
    /// # Safety
    /// `p` must be valid for writing `Self::LANES` consecutive `f32`s.
    unsafe fn storeu(p: *mut f32, v: Self::V);
    /// Masked load of the first `n` lanes (`n <= LANES`); lanes `>= n`
    /// are zero. Lets the specialized kernels cover arbitrary (odd)
    /// dims with a fused tail instead of a scalar remainder loop.
    ///
    /// # Safety
    /// `p` must be valid for reading `n` consecutive `f32`s.
    unsafe fn loadu_partial(p: *const f32, n: usize) -> Self::V;
    /// Masked store of the first `n` lanes (`n <= LANES`); memory past
    /// `p + n` is untouched.
    ///
    /// # Safety
    /// `p` must be valid for writing `n` consecutive `f32`s.
    unsafe fn storeu_partial(p: *mut f32, v: Self::V, n: usize);
    /// Lanewise `a + b` (`VADD`).
    fn add(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a - b` (`VSUB`).
    fn sub(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `acc + a * b` (`VMAC`), fused where the ISA has FMA.
    /// (`VMUL` is expressed as `fma(zero, a, b)` — every pattern's
    /// multiply feeds an accumulate, so a standalone mul never appears
    /// in kernel bodies.)
    fn fma(acc: Self::V, a: Self::V, b: Self::V) -> Self::V;
    /// Horizontal sum of all lanes (`VHADD`).
    fn hsum(v: Self::V) -> f32;

    /// Dot product `x · y` over `x.len()` elements. Defaults to
    /// `dot_body`; wider ISAs override it to keep the reduction
    /// *bit-identical* to the 8-lane backends (see the `avx512`
    /// module docs in [`crate::simd`]).
    #[inline(always)]
    fn dot(x: &[f32], y: &[f32]) -> f32
    where
        Self: Sized,
    {
        dot_body::<Self>(x, y)
    }

    /// Squared L2 distance `‖x − y‖²` over `x.len()` elements; same
    /// override contract as [`SimdIsa::dot`].
    #[inline(always)]
    fn sqdist(x: &[f32], y: &[f32]) -> f32
    where
        Self: Sized,
    {
        sqdist_body::<Self>(x, y)
    }

    /// `z += s * y` over `z.len()` elements; same override contract as
    /// [`SimdIsa::dot`].
    #[inline(always)]
    fn axpy(s: f32, y: &[f32], z: &mut [f32])
    where
        Self: Sized,
    {
        axpy_body::<Self>(s, y, z)
    }
}

/// The portable backend: [`F32x8`] lane loops, correct everywhere.
#[derive(Debug, Clone, Copy)]
pub struct ScalarIsa;

unsafe impl SimdIsa for ScalarIsa {
    type V = F32x8;

    #[inline(always)]
    fn zero() -> F32x8 {
        F32x8::zero()
    }

    #[inline(always)]
    fn splat(v: f32) -> F32x8 {
        F32x8::splat(v)
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> F32x8 {
        let mut out = [0f32; VLEN];
        unsafe { std::ptr::copy_nonoverlapping(p, out.as_mut_ptr(), VLEN) };
        F32x8(out)
    }

    #[inline(always)]
    unsafe fn storeu(p: *mut f32, v: F32x8) {
        unsafe { std::ptr::copy_nonoverlapping(v.0.as_ptr(), p, VLEN) };
    }

    #[inline(always)]
    unsafe fn loadu_partial(p: *const f32, n: usize) -> F32x8 {
        debug_assert!(n <= VLEN);
        let mut out = [0f32; VLEN];
        unsafe { std::ptr::copy_nonoverlapping(p, out.as_mut_ptr(), n) };
        F32x8(out)
    }

    #[inline(always)]
    unsafe fn storeu_partial(p: *mut f32, v: F32x8, n: usize) {
        debug_assert!(n <= VLEN);
        unsafe { std::ptr::copy_nonoverlapping(v.0.as_ptr(), p, n) };
    }

    #[inline(always)]
    fn add(a: F32x8, b: F32x8) -> F32x8 {
        a.add(b)
    }

    #[inline(always)]
    fn sub(a: F32x8, b: F32x8) -> F32x8 {
        a.sub(b)
    }

    #[inline(always)]
    fn fma(acc: F32x8, a: F32x8, b: F32x8) -> F32x8 {
        acc.fma(a, b)
    }

    #[inline(always)]
    fn hsum(v: F32x8) -> f32 {
        v.hsum()
    }
}

// ---------------------------------------------------------------------------
// ISA-generic slice primitive bodies. Each is `#[inline(always)]` so a
// `#[target_feature]` entry that instantiates it compiles the whole
// body — intrinsics included — under the entry's feature set.
// ---------------------------------------------------------------------------

/// Dot product `x · y` over `x.len()` elements: two `I::LANES`-wide
/// accumulator chains (hides FMA latency), scalar tail.
#[inline(always)]
pub(crate) fn dot_body<I: SimdIsa>(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len();
    assert!(y.len() >= n, "dot: y shorter than x");
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc0 = I::zero();
    let mut acc1 = I::zero();
    let mut k = 0;
    // Safety: k + 2*LANES <= n bounds every read below.
    unsafe {
        while k + 2 * I::LANES <= n {
            acc0 = I::fma(acc0, I::loadu(xp.add(k)), I::loadu(yp.add(k)));
            acc1 = I::fma(acc1, I::loadu(xp.add(k + I::LANES)), I::loadu(yp.add(k + I::LANES)));
            k += 2 * I::LANES;
        }
        while k + I::LANES <= n {
            acc0 = I::fma(acc0, I::loadu(xp.add(k)), I::loadu(yp.add(k)));
            k += I::LANES;
        }
    }
    let mut s = I::hsum(I::add(acc0, acc1));
    while k < n {
        s += x[k] * y[k];
        k += 1;
    }
    s
}

/// Squared L2 distance `‖x − y‖²` over `x.len()` elements.
#[inline(always)]
pub(crate) fn sqdist_body<I: SimdIsa>(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len();
    assert!(y.len() >= n, "sqdist: y shorter than x");
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc0 = I::zero();
    let mut acc1 = I::zero();
    let mut k = 0;
    // Safety: k + 2*LANES <= n bounds every read below.
    unsafe {
        while k + 2 * I::LANES <= n {
            let d0 = I::sub(I::loadu(xp.add(k)), I::loadu(yp.add(k)));
            let d1 = I::sub(I::loadu(xp.add(k + I::LANES)), I::loadu(yp.add(k + I::LANES)));
            acc0 = I::fma(acc0, d0, d0);
            acc1 = I::fma(acc1, d1, d1);
            k += 2 * I::LANES;
        }
        while k + I::LANES <= n {
            let d0 = I::sub(I::loadu(xp.add(k)), I::loadu(yp.add(k)));
            acc0 = I::fma(acc0, d0, d0);
            k += I::LANES;
        }
    }
    let mut s = I::hsum(I::add(acc0, acc1));
    while k < n {
        let d = x[k] - y[k];
        s += d * d;
        k += 1;
    }
    s
}

/// `z += s * y` over `z.len()` elements.
#[inline(always)]
pub(crate) fn axpy_body<I: SimdIsa>(s: f32, y: &[f32], z: &mut [f32]) {
    let n = z.len();
    assert!(y.len() >= n, "axpy: y shorter than z");
    let yp = y.as_ptr();
    let zp = z.as_mut_ptr();
    let sv = I::splat(s);
    let mut k = 0;
    // Safety: k + 2*LANES <= n bounds every access below; y and z are
    // distinct slices (&/&mut), so reads and writes never alias.
    unsafe {
        while k + 2 * I::LANES <= n {
            let z0 = I::fma(I::loadu(zp.add(k)), sv, I::loadu(yp.add(k)));
            let z1 = I::fma(I::loadu(zp.add(k + I::LANES)), sv, I::loadu(yp.add(k + I::LANES)));
            I::storeu(zp.add(k), z0);
            I::storeu(zp.add(k + I::LANES), z1);
            k += 2 * I::LANES;
        }
        while k + I::LANES <= n {
            let z0 = I::fma(I::loadu(zp.add(k)), sv, I::loadu(yp.add(k)));
            I::storeu(zp.add(k), z0);
            k += I::LANES;
        }
    }
    while k < n {
        z[k] += s * y[k];
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_bodies_match_plain_loops() {
        for n in [0usize, 1, 7, 8, 15, 16, 17, 33, 96] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 0.5).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.21).cos() * 0.5).collect();
            let dot_ref: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot_body::<ScalarIsa>(&x, &y) - dot_ref).abs() < 1e-4, "dot n={n}");
            let sq_ref: f32 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!((sqdist_body::<ScalarIsa>(&x, &y) - sq_ref).abs() < 1e-4, "sqdist n={n}");
            let mut z = vec![0.25f32; n];
            axpy_body::<ScalarIsa>(0.5, &y, &mut z);
            for (k, zv) in z.iter().enumerate() {
                assert!((zv - (0.25 + 0.5 * y[k])).abs() < 1e-6, "axpy n={n} k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "y shorter than x")]
    fn dot_rejects_short_y() {
        let _ = dot_body::<ScalarIsa>(&[0.0; 9], &[0.0; 8]);
    }
}
