//! ISA-specialized dynamic and strip-mined row kernels.
//!
//! Two kernel families live here, both written once as ISA-generic
//! bodies and monomorphized per [`Backend`] (AVX2+FMA / NEON / scalar)
//! behind `#[target_feature]` entry functions:
//!
//! * `*_row_dyn_*` — the dynamic-dimension kernels: per neighbor, a
//!   full-row reduction (dot / squared distance) followed by a full-row
//!   axpy, with `z_u` living in memory. Works for any `d`.
//! * `*_row_strip_*` — **strip-mined** kernels for any `d ≡ 0 (mod 8)`:
//!   the feature dimension is tiled into 8-lane panels (up to twelve
//!   panels — 96 lanes — per pass), and each panel's `z_u` accumulator
//!   stays **register-resident across the neighbor loop**, recovering
//!   the paper's register-blocking win at dimensions the const-generic
//!   kernels don't cover (48, 96, 192, 384, ...). The GE-SpMM
//!   observation — specialize the inner loop to the vector width, not
//!   to the whole feature dimension — applied to FusedMM.
//!
//! For the patterns with an SDDMM reduction (embedding, FR, t-dist)
//! the per-neighbor messages `h_v` are produced in chunks of
//! [`H_CHUNK`] neighbors, then the chunk's contribution is swept
//! panel-by-panel: `z_u`'s memory traffic drops from one load+store
//! per strip *per neighbor* (the dyn kernels) to one per strip per
//! chunk, while `h_v` stays in a stack buffer. Pure SpMM has no
//! reduction, so its panels run over the entire neighbor list in one
//! pass — `z_u` is written to memory exactly once per panel.

use fusedmm_sparse::dense::Dense;

#[cfg(target_arch = "x86_64")]
use crate::simd::Avx2Isa;
#[cfg(target_arch = "aarch64")]
use crate::simd::NeonIsa;
use crate::simd::{axpy_body, dot_body, sqdist_body, Backend, ScalarIsa, SimdIsa, VLEN};

use super::{EmbedRowKernel, FrRowKernel, SigmoidKind, SpmmRowKernel, TDistRowKernel};

/// Neighbors whose messages are buffered per strip-mining chunk: a
/// 32-deep reuse of each `z_u` panel load while the chunk's `y` rows
/// (32·d·4 bytes — 12 KiB at d = 96) stay hot in L1 between the
/// reduction pass and the panel sweep.
pub const H_CHUNK: usize = 32;

/// Whether the strip-mined family covers dimension `d`: any positive
/// multiple of the vector width.
pub fn strip_minable(d: usize) -> bool {
    d > 0 && d.is_multiple_of(VLEN)
}

// ---------------------------------------------------------------------------
// ISA-generic bodies
// ---------------------------------------------------------------------------

/// `z_u += Σ_i h[i] · y_{cols[i]}` swept in register-resident panels:
/// the strip-mined MOP+AOP core shared by every pattern.
///
/// The dimension is consumed as a cascade of panel groups — 12, 8, 6,
/// 4, 2, then 1 eight-lane panels per pass — so the serving dims get
/// single sweeps (d = 96/192/384 via 12-panel passes, d = 48 via a
/// 6-panel pass) with many independent accumulator registers, while
/// any `d ≡ 0 (mod 8)` still tiles exactly.
#[inline(always)]
fn panel_accumulate<I: SimdIsa>(cols: &[usize], h: &[f32], y: &Dense, zu: &mut [f32]) {
    let d = zu.len();
    debug_assert_eq!(d % VLEN, 0);
    assert_eq!(y.ncols(), d, "panel kernel: y width {} != output width {d}", y.ncols());
    assert!(h.len() >= cols.len(), "panel kernel: fewer messages than neighbors");
    if let Some(&vmax) = cols.iter().max() {
        assert!(vmax < y.nrows(), "panel kernel: column {vmax} out of range");
    }
    let yp = y.as_slice().as_ptr();
    let zp = zu.as_mut_ptr();
    let mut p = 0;
    // Safety: every pointer offset below is `v * d + p + lanes` with
    // `v < y.nrows()` (checked above) and `p + lanes <= d`, hence in
    // bounds of `y`'s backing slice; z offsets stay below `zu.len()`;
    // `h[i]` is a checked index.
    unsafe {
        macro_rules! panel_pass {
            ($panels:literal) => {
                while p + $panels * VLEN <= d {
                    let mut acc = [I::zero(); $panels];
                    for (q, a) in acc.iter_mut().enumerate() {
                        *a = I::loadu(zp.add(p + q * VLEN));
                    }
                    for (i, &v) in cols.iter().enumerate() {
                        let hv = I::splat(h[i]);
                        let base = yp.add(v * d + p);
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::fma(*a, hv, I::loadu(base.add(q * VLEN)));
                        }
                    }
                    for (q, a) in acc.iter().enumerate() {
                        I::storeu(zp.add(p + q * VLEN), *a);
                    }
                    p += $panels * VLEN;
                }
            };
        }
        // 12 panels = 96 lanes: d = 96/192/288/384 in single sweeps
        // (12 accumulators + broadcast still fit 16 ymm registers —
        // FMA folds the y load into a memory operand).
        panel_pass!(12);
        panel_pass!(8);
        // 6 panels = 48 lanes: one sweep for the d = 48 serving dim.
        panel_pass!(6);
        panel_pass!(4);
        panel_pass!(2);
        panel_pass!(1);
    }
    debug_assert_eq!(p, d);
}

#[inline(always)]
fn assert_strip_dim(d: usize) {
    assert!(
        strip_minable(d),
        "strip-mined kernels require d to be a positive multiple of {VLEN}, got {d}"
    );
}

#[inline(always)]
fn embed_row_strip_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    assert_strip_dim(zu.len());
    let mut h = [0f32; H_CHUNK];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + H_CHUNK).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = sk.eval(dot_body::<I>(xu, y.row(v)));
        }
        panel_accumulate::<I>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn fr_row_strip_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    alpha: f32,
) {
    assert_strip_dim(zu.len());
    let mut h = [0f32; H_CHUNK];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + H_CHUNK).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = alpha * sqdist_body::<I>(xu, y.row(v)).sqrt();
        }
        panel_accumulate::<I>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn tdist_row_strip_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    assert_strip_dim(zu.len());
    let mut h = [0f32; H_CHUNK];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + H_CHUNK).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = 1.0 / (1.0 + sqdist_body::<I>(xu, y.row(v)));
        }
        panel_accumulate::<I>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn spmm_row_strip_body<I: SimdIsa>(cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    assert_strip_dim(zu.len());
    // No SDDMM reduction: the edge weights are the messages, so every
    // panel sweeps the entire neighbor list with its accumulators in
    // registers the whole time.
    panel_accumulate::<I>(cols, vals, y, zu);
}

#[inline(always)]
fn embed_row_dyn_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    for &v in cols {
        let yv = y.row(v);
        let h = sk.eval(dot_body::<I>(xu, yv));
        axpy_body::<I>(h, yv, zu);
    }
}

#[inline(always)]
fn fr_row_dyn_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    alpha: f32,
) {
    for &v in cols {
        let yv = y.row(v);
        let h = alpha * sqdist_body::<I>(xu, yv).sqrt();
        axpy_body::<I>(h, yv, zu);
    }
}

#[inline(always)]
fn tdist_row_dyn_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    for &v in cols {
        let yv = y.row(v);
        let h = 1.0 / (1.0 + sqdist_body::<I>(xu, yv));
        axpy_body::<I>(h, yv, zu);
    }
}

#[inline(always)]
fn spmm_row_dyn_body<I: SimdIsa>(cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    for (&v, &a) in cols.iter().zip(vals) {
        axpy_body::<I>(a, y.row(v), zu);
    }
}

// ---------------------------------------------------------------------------
// Per-backend entries: one monomorphization of each body per ISA,
// compiled under the matching #[target_feature] so the whole inlined
// body codegens with that ISA.
// ---------------------------------------------------------------------------

macro_rules! isa_entries {
    ($body:ident => $scalar:ident, $avx2:ident, $neon:ident; ($($a:ident: $t:ty),*)) => {
        /// Portable entry for the corresponding ISA-generic body.
        pub fn $scalar($($a: $t),*) {
            $body::<ScalarIsa>($($a),*)
        }

        #[cfg(target_arch = "x86_64")]
        /// AVX2+FMA entry. Must only be called on an AVX2+FMA CPU —
        /// reach it through the kernel selectors, which verify
        /// availability.
        pub fn $avx2($($a: $t),*) {
            #[target_feature(enable = "avx2,fma")]
            unsafe fn inner($($a: $t),*) {
                $body::<Avx2Isa>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Avx2Fma::is_available() returned true.
            unsafe { inner($($a),*) }
        }

        #[cfg(target_arch = "aarch64")]
        /// NEON entry. Must only be called on an aarch64 NEON CPU —
        /// reach it through the kernel selectors, which verify
        /// availability.
        pub fn $neon($($a: $t),*) {
            #[target_feature(enable = "neon")]
            unsafe fn inner($($a: $t),*) {
                $body::<NeonIsa>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Neon::is_available() returned true.
            unsafe { inner($($a),*) }
        }
    };
}

isa_entries!(embed_row_strip_body => embed_row_strip_scalar, embed_row_strip_avx2, embed_row_strip_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], sk: &SigmoidKind));
isa_entries!(fr_row_strip_body => fr_row_strip_scalar, fr_row_strip_avx2, fr_row_strip_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], alpha: f32));
isa_entries!(tdist_row_strip_body => tdist_row_strip_scalar, tdist_row_strip_avx2, tdist_row_strip_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));
isa_entries!(spmm_row_strip_body => spmm_row_strip_scalar, spmm_row_strip_avx2, spmm_row_strip_neon;
    (cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));

isa_entries!(embed_row_dyn_body => embed_row_dyn_scalar, embed_row_dyn_avx2, embed_row_dyn_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], sk: &SigmoidKind));
isa_entries!(fr_row_dyn_body => fr_row_dyn_scalar, fr_row_dyn_avx2, fr_row_dyn_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], alpha: f32));
isa_entries!(tdist_row_dyn_body => tdist_row_dyn_scalar, tdist_row_dyn_avx2, tdist_row_dyn_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));
isa_entries!(spmm_row_dyn_body => spmm_row_dyn_scalar, spmm_row_dyn_avx2, spmm_row_dyn_neon;
    (cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));

// ---------------------------------------------------------------------------
// Selectors: backend -> kernel entry
// ---------------------------------------------------------------------------

macro_rules! select {
    ($b:expr => $scalar:ident, $avx2:ident, $neon:ident) => {{
        let b = $b;
        assert!(b.is_available(), "backend {b} not available on this CPU");
        match b {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2Fma => $avx2,
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => $neon,
            _ => $scalar,
        }
    }};
}

/// The strip-mined embedding kernel compiled for `b`.
///
/// # Panics
/// Panics when `b` is not available on this CPU. The returned kernel
/// panics when invoked with `d` not a positive multiple of 8.
pub fn embed_strip_kernel(b: Backend) -> EmbedRowKernel {
    select!(b => embed_row_strip_scalar, embed_row_strip_avx2, embed_row_strip_neon)
}

/// The strip-mined FR kernel compiled for `b` (see
/// [`embed_strip_kernel`] for the contract).
pub fn fr_strip_kernel(b: Backend) -> FrRowKernel {
    select!(b => fr_row_strip_scalar, fr_row_strip_avx2, fr_row_strip_neon)
}

/// The strip-mined t-distribution kernel compiled for `b` (see
/// [`embed_strip_kernel`] for the contract).
pub fn tdist_strip_kernel(b: Backend) -> TDistRowKernel {
    select!(b => tdist_row_strip_scalar, tdist_row_strip_avx2, tdist_row_strip_neon)
}

/// The strip-mined SpMM kernel compiled for `b` (see
/// [`embed_strip_kernel`] for the contract).
pub fn spmm_strip_kernel(b: Backend) -> SpmmRowKernel {
    select!(b => spmm_row_strip_scalar, spmm_row_strip_avx2, spmm_row_strip_neon)
}

/// The dynamic-dimension embedding kernel compiled for `b` (any `d`).
///
/// # Panics
/// Panics when `b` is not available on this CPU.
pub fn embed_dyn_kernel(b: Backend) -> EmbedRowKernel {
    select!(b => embed_row_dyn_scalar, embed_row_dyn_avx2, embed_row_dyn_neon)
}

/// The dynamic-dimension FR kernel compiled for `b` (any `d`).
pub fn fr_dyn_kernel(b: Backend) -> FrRowKernel {
    select!(b => fr_row_dyn_scalar, fr_row_dyn_avx2, fr_row_dyn_neon)
}

/// The dynamic-dimension t-distribution kernel compiled for `b`
/// (any `d`).
pub fn tdist_dyn_kernel(b: Backend) -> TDistRowKernel {
    select!(b => tdist_row_dyn_scalar, tdist_row_dyn_avx2, tdist_row_dyn_neon)
}

/// The dynamic-dimension SpMM kernel compiled for `b` (any `d`).
pub fn spmm_dyn_kernel(b: Backend) -> SpmmRowKernel {
    select!(b => spmm_row_dyn_scalar, spmm_row_dyn_avx2, spmm_row_dyn_neon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::active_backend;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use fusedmm_sparse::csr::Csr;

    fn chain(n: usize, deg: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=deg {
                c.push(u, (u + k * 3) % n, 0.25 + k as f32 * 0.5);
            }
        }
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 31 + c * 7) as f32 * 0.01 + seed).sin() * 0.3)
    }

    #[test]
    fn strip_matches_dyn_on_every_available_backend() {
        // Degrees beyond H_CHUNK exercise the chunked message buffer.
        let n = 80;
        let a = chain(n, 70.min(n - 1));
        for d in [8usize, 24, 48, 96, 192, 384] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            let (cols, vals) = a.row(3);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                // Embedding
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                embed_dyn_kernel(b)(x.row(3), cols, vals, &y, &mut z_dyn, &SigmoidKind::Exact);
                embed_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip, &SigmoidKind::Exact);
                for k in 0..d {
                    assert!(
                        (z_dyn[k] - z_strip[k]).abs() < 1e-5,
                        "embed {b} d={d} k={k}: {} vs {}",
                        z_dyn[k],
                        z_strip[k]
                    );
                }
                // SpMM
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                spmm_dyn_kernel(b)(cols, vals, &y, &mut z_dyn);
                spmm_strip_kernel(b)(cols, vals, &y, &mut z_strip);
                for k in 0..d {
                    assert!((z_dyn[k] - z_strip[k]).abs() < 1e-5, "spmm {b} d={d} k={k}");
                }
                // t-distribution
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                tdist_dyn_kernel(b)(x.row(3), cols, vals, &y, &mut z_dyn);
                tdist_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip);
                for k in 0..d {
                    assert!((z_dyn[k] - z_strip[k]).abs() < 1e-5, "tdist {b} d={d} k={k}");
                }
                // FR (sqrt amplifies tiny sqdist differences; keep 1e-4)
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                fr_dyn_kernel(b)(x.row(3), cols, vals, &y, &mut z_dyn, 0.6);
                fr_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip, 0.6);
                for k in 0..d {
                    assert!((z_dyn[k] - z_strip[k]).abs() < 1e-4, "fr {b} d={d} k={k}");
                }
            }
        }
    }

    #[test]
    fn strip_minable_is_multiples_of_vlen() {
        assert!(strip_minable(8));
        assert!(strip_minable(48));
        assert!(strip_minable(96));
        assert!(strip_minable(384));
        assert!(!strip_minable(0));
        assert!(!strip_minable(4));
        assert!(!strip_minable(100));
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn strip_kernel_rejects_unaligned_dim() {
        let y = feats(4, 12, 0.1);
        let mut z = vec![0f32; 12];
        spmm_strip_kernel(Backend::Scalar)(&[1, 2], &[1.0, 2.0], &y, &mut z);
    }

    #[test]
    fn empty_row_is_identity_for_strip() {
        let y = feats(4, 16, 0.5);
        let mut z = vec![0.75f32; 16];
        spmm_strip_kernel(active_backend())(&[], &[], &y, &mut z);
        assert!(z.iter().all(|&v| v == 0.75));
    }
}
