//! ISA-specialized dynamic and strip-mined row kernels.
//!
//! Two kernel families live here, both written once as ISA-generic
//! bodies and monomorphized per [`Backend`] (AVX-512 / AVX2+FMA / NEON
//! / scalar) behind `#[target_feature]` entry functions:
//!
//! * `*_row_dyn_*` — the dynamic-dimension kernels: per neighbor, a
//!   full-row reduction (dot / squared distance) followed by a full-row
//!   axpy, with `z_u` living in memory. Works for any `d`.
//! * `*_row_strip_*` — **strip-mined** kernels for any `d ≡ 0 (mod 8)`:
//!   the feature dimension is tiled into register-wide panels (up to
//!   twelve panels per pass on 8-lane ISAs; up to twenty-four 16-lane
//!   panels — 384 lanes — on AVX-512, which has 32 zmm registers to
//!   fill), and each panel's `z_u` accumulator
//!   stays **register-resident across the neighbor loop**, recovering
//!   the paper's register-blocking win at dimensions the const-generic
//!   kernels don't cover (48, 96, 192, 384, ...). The GE-SpMM
//!   observation — specialize the inner loop to the vector width, not
//!   to the whole feature dimension — applied to FusedMM.
//!
//! For the patterns with an SDDMM reduction (embedding, FR, t-dist)
//! the per-neighbor messages `h_v` are produced in chunks of
//! [`H_CHUNK`] neighbors, then the chunk's contribution is swept
//! panel-by-panel: `z_u`'s memory traffic drops from one load+store
//! per strip *per neighbor* (the dyn kernels) to one per strip per
//! chunk, while `h_v` stays in a stack buffer. Pure SpMM has no
//! reduction, so its panels run over the entire neighbor list in one
//! pass — `z_u` is written to memory exactly once per panel.
//!
//! On ISAs wider than `VLEN` (AVX-512: `I::LANES = 16`) a dimension
//! that is a multiple of 8 but not of 16 ends in a **masked tail
//! pass**: one fused, mask-predicated panel covers the last 8 columns
//! via `SimdIsa::loadu_partial`/`storeu_partial`. The fold order per
//! element is unchanged, so results stay bit-identical to the 8-lane
//! backends. (A finer shape grid over the same passes — including
//! arbitrary odd `d` — lives in [`super::table`], selected at plan
//! time.)

use fusedmm_sparse::dense::Dense;

#[cfg(target_arch = "aarch64")]
use crate::simd::NeonIsa;
#[cfg(target_arch = "x86_64")]
use crate::simd::{Avx2Isa, Avx512Isa};
use crate::simd::{Backend, ScalarIsa, SimdIsa, VLEN};

use super::{
    EmbedBatchKernel, EmbedMsgKernel, EmbedRowKernel, FrBatchKernel, FrMsgKernel, FrRowKernel,
    GatheredRow, SigmoidKind, SpanSweepKernel, SpmmBatchKernel, SpmmRowKernel, TDistBatchKernel,
    TDistMsgKernel, TDistRowKernel,
};

/// Neighbors whose messages are buffered per strip-mining chunk: a
/// 32-deep reuse of each `z_u` panel load while the chunk's `y` rows
/// (32·d·4 bytes — 12 KiB at d = 96) stay hot in L1 between the
/// reduction pass and the panel sweep.
pub const H_CHUNK: usize = 32;

/// Whether the strip-mined family covers dimension `d`: any positive
/// multiple of the vector width.
pub fn strip_minable(d: usize) -> bool {
    d > 0 && d.is_multiple_of(VLEN)
}

// ---------------------------------------------------------------------------
// ISA-generic bodies
// ---------------------------------------------------------------------------

/// `Σ_i h[i] · y_{cols[i]}` swept into `z_u` in register-resident
/// panels: the strip-mined MOP+AOP core shared by every pattern.
/// `LOAD_Z` picks whether the accumulators start from the current
/// `z_u` (accumulate) or from `+0.0` (overwrite) — see the two
/// wrappers below.
///
/// The dimension is consumed as a cascade of panel groups — 12, 8, 6,
/// 4, 2, then 1 eight-lane panels per pass — so the serving dims get
/// single sweeps (d = 96/192/384 via 12-panel passes, d = 48 via a
/// 6-panel pass) with many independent accumulator registers, while
/// any `d ≡ 0 (mod 8)` still tiles exactly.
#[inline(always)]
fn panel_core<I: SimdIsa, const LOAD_Z: bool>(
    cols: &[usize],
    h: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    let d = zu.len();
    debug_assert_eq!(d % VLEN, 0);
    assert_eq!(y.ncols(), d, "panel kernel: y width {} != output width {d}", y.ncols());
    assert!(h.len() >= cols.len(), "panel kernel: fewer messages than neighbors");
    if let Some(&vmax) = cols.iter().max() {
        assert!(vmax < y.nrows(), "panel kernel: column {vmax} out of range");
    }
    let yp = y.as_slice().as_ptr();
    let zp = zu.as_mut_ptr();
    let mut p = 0;
    // Safety: every pointer offset below is `v * d + p + lanes` with
    // `v < y.nrows()` (checked above) and `p + lanes <= d` (the masked
    // tail reads/writes only `d - p` lanes), hence in bounds of `y`'s
    // backing slice; z offsets stay below `zu.len()`; `h[i]` is a
    // checked index.
    unsafe {
        macro_rules! panel_pass {
            ($panels:literal) => {
                while p + $panels * I::LANES <= d {
                    let mut acc = [I::zero(); $panels];
                    if LOAD_Z {
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::loadu(zp.add(p + q * I::LANES));
                        }
                    }
                    for (i, &v) in cols.iter().enumerate() {
                        let hv = I::splat(h[i]);
                        let base = yp.add(v * d + p);
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::fma(*a, hv, I::loadu(base.add(q * I::LANES)));
                        }
                    }
                    for (q, a) in acc.iter().enumerate() {
                        I::storeu(zp.add(p + q * I::LANES), *a);
                    }
                    p += $panels * I::LANES;
                }
            };
        }
        if I::LANES > VLEN {
            // 24 panels on a 16-lane ISA = 384 lanes: the top serving
            // dim in one sweep, using 24 of AVX-512's 32 zmm registers
            // (broadcast + y loads as memory operands fill the rest).
            panel_pass!(24);
        }
        // 12 panels = 96 lanes on 8-lane ISAs: d = 96/192/288/384 in
        // single sweeps (12 accumulators + broadcast still fit 16 ymm
        // registers — FMA folds the y load into a memory operand).
        panel_pass!(12);
        panel_pass!(8);
        // 6 panels = 48 lanes: one sweep for the d = 48 serving dim.
        panel_pass!(6);
        panel_pass!(4);
        panel_pass!(2);
        panel_pass!(1);
        // Masked tail: on ISAs wider than VLEN the cascade can leave a
        // sub-register remainder (d ≡ 8 (mod 16) on AVX-512). One
        // fused predicated panel finishes it; lanes past the remainder
        // load as +0.0 and contribute h·0, and the masked store leaves
        // memory past `d` untouched.
        if p < d {
            let r = d - p;
            let mut acc = if LOAD_Z { I::loadu_partial(zp.add(p), r) } else { I::zero() };
            for (i, &v) in cols.iter().enumerate() {
                let hv = I::splat(h[i]);
                acc = I::fma(acc, hv, I::loadu_partial(yp.add(v * d + p), r));
            }
            I::storeu_partial(zp.add(p), acc, r);
        }
    }
}

/// `z_u += Σ_i h[i] · y_{cols[i]}` — accumulate into the existing
/// output row (the strip kernels' chunked fold resumes a row's partial
/// sum across [`H_CHUNK`] chunks).
#[inline(always)]
fn panel_accumulate<I: SimdIsa>(cols: &[usize], h: &[f32], y: &Dense, zu: &mut [f32]) {
    panel_core::<I, true>(cols, h, y, zu)
}

/// `z_u = Σ_i h[i] · y_{cols[i]}` — overwrite the output row, starting
/// the accumulators at `+0.0` instead of loading `z_u`. Bit-identical
/// to accumulating into a pre-zeroed row (a load of zeroed memory also
/// yields `+0.0`), but skips one full row read per call — the short
/// gather kernels' edge over the strip path, since a short row's
/// setup traffic rivals its neighbor work. Callers must own the whole
/// fold for the row: nothing previously stored in `zu` survives.
#[inline(always)]
fn panel_overwrite<I: SimdIsa>(cols: &[usize], h: &[f32], y: &Dense, zu: &mut [f32]) {
    panel_core::<I, false>(cols, h, y, zu)
}

#[inline(always)]
fn assert_strip_dim(d: usize) {
    assert!(
        strip_minable(d),
        "strip-mined kernels require d to be a positive multiple of {VLEN}, got {d}"
    );
}

#[inline(always)]
fn embed_row_strip_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    assert_strip_dim(zu.len());
    let mut h = [0f32; H_CHUNK];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + H_CHUNK).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = sk.eval(I::dot(xu, y.row(v)));
        }
        panel_accumulate::<I>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn fr_row_strip_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    alpha: f32,
) {
    assert_strip_dim(zu.len());
    let mut h = [0f32; H_CHUNK];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + H_CHUNK).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = alpha * I::sqdist(xu, y.row(v)).sqrt();
        }
        panel_accumulate::<I>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn tdist_row_strip_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    assert_strip_dim(zu.len());
    let mut h = [0f32; H_CHUNK];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + H_CHUNK).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = 1.0 / (1.0 + I::sqdist(xu, y.row(v)));
        }
        panel_accumulate::<I>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn spmm_row_strip_body<I: SimdIsa>(cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    assert_strip_dim(zu.len());
    // No SDDMM reduction: the edge weights are the messages, so every
    // panel sweeps the entire neighbor list with its accumulators in
    // registers the whole time.
    panel_accumulate::<I>(cols, vals, y, zu);
}

// --- hybrid-execution bodies -----------------------------------------------
//
// Three shaped entries back the degree-classed hybrid dispatcher:
//
// * `*_batch_body` — the gather-style short-row kernels: several short
//   rows per call share one message buffer and one indirect dispatch.
//   Each row fills its message slice and immediately runs the
//   `panel_overwrite` cascade — fused per row, because a separate
//   whole-batch message sweep re-walks the gathered rows through their
//   staging structs and measures slower. The output row is OVERWRITTEN,
//   not accumulated into: each gathered row must carry its entire
//   neighbor list and its output slice must be freshly zeroed (the
//   hybrid sweep guarantees both). Starting the fold at `+0.0` is
//   bit-identical to loading a zeroed row, and skipping that load is
//   what makes the gather path cheaper than strip for rows whose setup
//   traffic rivals their neighbor work.
// * `*_msg_body` — phase A of the split-mega-row kernel: fill the
//   messages for a slice of a mega row's neighbors. Each message is an
//   independent reduction, so slices can be filled by different threads
//   with no effect on the result.
// * `span_sweep_body` — phase B: accumulate *every* neighbor, in
//   original row order, into one VLEN-aligned column span of `z_u`.
//   Threads split the row by output columns, not by neighbors, so the
//   per-element fold order is fixed by the span plan — bit-identical to
//   the strip kernel's chunked fold regardless of thread count.

/// Every gathered row must fit the shared message buffer on its own:
/// the batch bodies fill and fold one row at a time, so the buffer
/// bounds the per-row degree, not the batch total.
#[inline(always)]
fn assert_batch_fits(rows: &[GatheredRow<'_>]) {
    for r in rows {
        assert!(
            r.cols.len() <= H_CHUNK,
            "gathered row stages {} neighbors, message buffer holds {H_CHUNK}",
            r.cols.len()
        );
    }
}

#[inline(always)]
fn row_slice(band: &mut [f32], band_row: usize, d: usize) -> &mut [f32] {
    &mut band[band_row * d..(band_row + 1) * d]
}

#[inline(always)]
fn embed_batch_body<I: SimdIsa>(
    rows: &[GatheredRow<'_>],
    y: &Dense,
    band: &mut [f32],
    sk: &SigmoidKind,
) {
    let d = y.ncols();
    assert_strip_dim(d);
    assert_batch_fits(rows);
    let mut h = [0f32; H_CHUNK];
    for row in rows {
        for (i, &v) in row.cols.iter().enumerate() {
            h[i] = sk.eval(I::dot(row.xu, y.row(v)));
        }
        panel_overwrite::<I>(row.cols, &h[..row.cols.len()], y, row_slice(band, row.band_row, d));
    }
}

#[inline(always)]
fn fr_batch_body<I: SimdIsa>(rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32], alpha: f32) {
    let d = y.ncols();
    assert_strip_dim(d);
    assert_batch_fits(rows);
    let mut h = [0f32; H_CHUNK];
    for row in rows {
        for (i, &v) in row.cols.iter().enumerate() {
            h[i] = alpha * I::sqdist(row.xu, y.row(v)).sqrt();
        }
        panel_overwrite::<I>(row.cols, &h[..row.cols.len()], y, row_slice(band, row.band_row, d));
    }
}

#[inline(always)]
fn tdist_batch_body<I: SimdIsa>(rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32]) {
    let d = y.ncols();
    assert_strip_dim(d);
    assert_batch_fits(rows);
    let mut h = [0f32; H_CHUNK];
    for row in rows {
        for (i, &v) in row.cols.iter().enumerate() {
            h[i] = 1.0 / (1.0 + I::sqdist(row.xu, y.row(v)));
        }
        panel_overwrite::<I>(row.cols, &h[..row.cols.len()], y, row_slice(band, row.band_row, d));
    }
}

#[inline(always)]
fn spmm_batch_body<I: SimdIsa>(rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32]) {
    let d = y.ncols();
    assert_strip_dim(d);
    // No SDDMM reduction: the edge weights are the messages already.
    for row in rows {
        panel_overwrite::<I>(row.cols, row.vals, y, row_slice(band, row.band_row, d));
    }
}

#[inline(always)]
fn embed_msg_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    y: &Dense,
    sk: &SigmoidKind,
    h: &mut [f32],
) {
    assert_eq!(cols.len(), h.len(), "message slice length != neighbor slice length");
    for (hi, &v) in h.iter_mut().zip(cols) {
        *hi = sk.eval(I::dot(xu, y.row(v)));
    }
}

#[inline(always)]
fn fr_msg_body<I: SimdIsa>(xu: &[f32], cols: &[usize], y: &Dense, alpha: f32, h: &mut [f32]) {
    assert_eq!(cols.len(), h.len(), "message slice length != neighbor slice length");
    for (hi, &v) in h.iter_mut().zip(cols) {
        *hi = alpha * I::sqdist(xu, y.row(v)).sqrt();
    }
}

#[inline(always)]
fn tdist_msg_body<I: SimdIsa>(xu: &[f32], cols: &[usize], y: &Dense, h: &mut [f32]) {
    assert_eq!(cols.len(), h.len(), "message slice length != neighbor slice length");
    for (hi, &v) in h.iter_mut().zip(cols) {
        *hi = 1.0 / (1.0 + I::sqdist(xu, y.row(v)));
    }
}

/// `z_span += Σ_i h[i] · y_{cols[i]}[span_off..span_off + w]` — the
/// column-span sweep of the split-mega-row kernel. Folds **all**
/// neighbors, in row-storage order, into one VLEN-aligned span of the
/// output row, so the per-element accumulation chain matches the strip
/// kernel's exactly and is independent of how many spans (threads) the
/// row was split into.
#[inline(always)]
fn span_sweep_body<I: SimdIsa>(
    cols: &[usize],
    h: &[f32],
    y: &Dense,
    z_span: &mut [f32],
    span_off: usize,
) {
    let w = z_span.len();
    let d = y.ncols();
    // The span *offset* must stay VLEN-aligned (it fixes each thread's
    // fold origin); the width may end unaligned only for the final
    // span, which absorbs the row's sub-VLEN remainder at odd d.
    assert!(
        span_off.is_multiple_of(VLEN)
            && span_off + w <= d
            && (w.is_multiple_of(VLEN) || span_off + w == d),
        "span [{span_off}, {span_off}+{w}) not a VLEN-aligned slice of row width {d}"
    );
    assert!(h.len() >= cols.len(), "span kernel: fewer messages than neighbors");
    if let Some(&vmax) = cols.iter().max() {
        assert!(vmax < y.nrows(), "span kernel: column {vmax} out of range");
    }
    let yp = y.as_slice().as_ptr();
    let zp = z_span.as_mut_ptr();
    let mut p = 0;
    // Safety: every pointer offset is `v * d + span_off + p + lanes`
    // with `v < y.nrows()` (checked above) and `span_off + p + lanes
    // <= d`, hence in bounds of `y`'s backing slice; z offsets stay
    // below `z_span.len()`; `h[i]` is a checked index.
    unsafe {
        macro_rules! span_pass {
            ($panels:literal) => {
                while p + $panels * I::LANES <= w {
                    let mut acc = [I::zero(); $panels];
                    for (q, a) in acc.iter_mut().enumerate() {
                        *a = I::loadu(zp.add(p + q * I::LANES));
                    }
                    for (i, &v) in cols.iter().enumerate() {
                        let hv = I::splat(h[i]);
                        let base = yp.add(v * d + span_off + p);
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::fma(*a, hv, I::loadu(base.add(q * I::LANES)));
                        }
                    }
                    for (q, a) in acc.iter().enumerate() {
                        I::storeu(zp.add(p + q * I::LANES), *a);
                    }
                    p += $panels * I::LANES;
                }
            };
        }
        if I::LANES > VLEN {
            span_pass!(24);
        }
        span_pass!(12);
        span_pass!(8);
        span_pass!(6);
        span_pass!(4);
        span_pass!(2);
        span_pass!(1);
        // Masked tail: sub-register remainder on wide ISAs, or the
        // final span's sub-VLEN remainder at odd d.
        if p < w {
            let r = w - p;
            let mut acc = I::loadu_partial(zp.add(p), r);
            for (i, &v) in cols.iter().enumerate() {
                let hv = I::splat(h[i]);
                acc = I::fma(acc, hv, I::loadu_partial(yp.add(v * d + span_off + p), r));
            }
            I::storeu_partial(zp.add(p), acc, r);
        }
    }
}

#[inline(always)]
fn embed_row_dyn_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    for &v in cols {
        let yv = y.row(v);
        let h = sk.eval(I::dot(xu, yv));
        I::axpy(h, yv, zu);
    }
}

#[inline(always)]
fn fr_row_dyn_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    alpha: f32,
) {
    for &v in cols {
        let yv = y.row(v);
        let h = alpha * I::sqdist(xu, yv).sqrt();
        I::axpy(h, yv, zu);
    }
}

#[inline(always)]
fn tdist_row_dyn_body<I: SimdIsa>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    for &v in cols {
        let yv = y.row(v);
        let h = 1.0 / (1.0 + I::sqdist(xu, yv));
        I::axpy(h, yv, zu);
    }
}

#[inline(always)]
fn spmm_row_dyn_body<I: SimdIsa>(cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    for (&v, &a) in cols.iter().zip(vals) {
        I::axpy(a, y.row(v), zu);
    }
}

// ---------------------------------------------------------------------------
// Per-backend entries: one monomorphization of each body per ISA,
// compiled under the matching #[target_feature] so the whole inlined
// body codegens with that ISA.
// ---------------------------------------------------------------------------

macro_rules! isa_entries {
    ($body:ident => $scalar:ident, $avx2:ident, $avx512:ident, $neon:ident; ($($a:ident: $t:ty),*)) => {
        /// Portable entry for the corresponding ISA-generic body.
        pub fn $scalar($($a: $t),*) {
            $body::<ScalarIsa>($($a),*)
        }

        #[cfg(target_arch = "x86_64")]
        /// AVX2+FMA entry. Must only be called on an AVX2+FMA CPU —
        /// reach it through the kernel selectors, which verify
        /// availability.
        pub fn $avx2($($a: $t),*) {
            #[target_feature(enable = "avx2,fma")]
            unsafe fn inner($($a: $t),*) {
                $body::<Avx2Isa>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Avx2Fma::is_available() returned true.
            unsafe { inner($($a),*) }
        }

        #[cfg(target_arch = "x86_64")]
        /// AVX-512F entry. Must only be called on an AVX-512F CPU —
        /// reach it through the kernel selectors, which verify
        /// availability. (avx2+fma are enabled too: reductions finish
        /// with the ymm cleanup that keeps them bit-identical to the
        /// AVX2 backend.)
        pub fn $avx512($($a: $t),*) {
            #[target_feature(enable = "avx512f,avx2,fma")]
            unsafe fn inner($($a: $t),*) {
                $body::<Avx512Isa>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Avx512::is_available() returned true.
            unsafe { inner($($a),*) }
        }

        #[cfg(target_arch = "aarch64")]
        /// NEON entry. Must only be called on an aarch64 NEON CPU —
        /// reach it through the kernel selectors, which verify
        /// availability.
        pub fn $neon($($a: $t),*) {
            #[target_feature(enable = "neon")]
            unsafe fn inner($($a: $t),*) {
                $body::<NeonIsa>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Neon::is_available() returned true.
            unsafe { inner($($a),*) }
        }
    };
}

isa_entries!(embed_row_strip_body => embed_row_strip_scalar, embed_row_strip_avx2, embed_row_strip_avx512, embed_row_strip_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], sk: &SigmoidKind));
isa_entries!(fr_row_strip_body => fr_row_strip_scalar, fr_row_strip_avx2, fr_row_strip_avx512, fr_row_strip_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], alpha: f32));
isa_entries!(tdist_row_strip_body => tdist_row_strip_scalar, tdist_row_strip_avx2, tdist_row_strip_avx512, tdist_row_strip_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));
isa_entries!(spmm_row_strip_body => spmm_row_strip_scalar, spmm_row_strip_avx2, spmm_row_strip_avx512, spmm_row_strip_neon;
    (cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));

isa_entries!(embed_batch_body => embed_batch_scalar, embed_batch_avx2, embed_batch_avx512, embed_batch_neon;
    (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32], sk: &SigmoidKind));
isa_entries!(fr_batch_body => fr_batch_scalar, fr_batch_avx2, fr_batch_avx512, fr_batch_neon;
    (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32], alpha: f32));
isa_entries!(tdist_batch_body => tdist_batch_scalar, tdist_batch_avx2, tdist_batch_avx512, tdist_batch_neon;
    (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32]));
isa_entries!(spmm_batch_body => spmm_batch_scalar, spmm_batch_avx2, spmm_batch_avx512, spmm_batch_neon;
    (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32]));

isa_entries!(embed_msg_body => embed_msg_scalar, embed_msg_avx2, embed_msg_avx512, embed_msg_neon;
    (xu: &[f32], cols: &[usize], y: &Dense, sk: &SigmoidKind, h: &mut [f32]));
isa_entries!(fr_msg_body => fr_msg_scalar, fr_msg_avx2, fr_msg_avx512, fr_msg_neon;
    (xu: &[f32], cols: &[usize], y: &Dense, alpha: f32, h: &mut [f32]));
isa_entries!(tdist_msg_body => tdist_msg_scalar, tdist_msg_avx2, tdist_msg_avx512, tdist_msg_neon;
    (xu: &[f32], cols: &[usize], y: &Dense, h: &mut [f32]));
isa_entries!(span_sweep_body => span_sweep_scalar, span_sweep_avx2, span_sweep_avx512, span_sweep_neon;
    (cols: &[usize], h: &[f32], y: &Dense, z_span: &mut [f32], span_off: usize));

isa_entries!(embed_row_dyn_body => embed_row_dyn_scalar, embed_row_dyn_avx2, embed_row_dyn_avx512, embed_row_dyn_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], sk: &SigmoidKind));
isa_entries!(fr_row_dyn_body => fr_row_dyn_scalar, fr_row_dyn_avx2, fr_row_dyn_avx512, fr_row_dyn_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], alpha: f32));
isa_entries!(tdist_row_dyn_body => tdist_row_dyn_scalar, tdist_row_dyn_avx2, tdist_row_dyn_avx512, tdist_row_dyn_neon;
    (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));
isa_entries!(spmm_row_dyn_body => spmm_row_dyn_scalar, spmm_row_dyn_avx2, spmm_row_dyn_avx512, spmm_row_dyn_neon;
    (cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));

// ---------------------------------------------------------------------------
// Selectors: backend -> kernel entry
// ---------------------------------------------------------------------------

macro_rules! select {
    ($b:expr => $scalar:ident, $avx2:ident, $avx512:ident, $neon:ident) => {{
        let b = $b;
        assert!(b.is_available(), "backend {b} not available on this CPU");
        match b {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => $avx512,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2Fma => $avx2,
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => $neon,
            _ => $scalar,
        }
    }};
}

/// The strip-mined embedding kernel compiled for `b`.
///
/// # Panics
/// Panics when `b` is not available on this CPU. The returned kernel
/// panics when invoked with `d` not a positive multiple of 8.
pub fn embed_strip_kernel(b: Backend) -> EmbedRowKernel {
    select!(b => embed_row_strip_scalar, embed_row_strip_avx2, embed_row_strip_avx512, embed_row_strip_neon)
}

/// The strip-mined FR kernel compiled for `b` (see
/// [`embed_strip_kernel`] for the contract).
pub fn fr_strip_kernel(b: Backend) -> FrRowKernel {
    select!(b => fr_row_strip_scalar, fr_row_strip_avx2, fr_row_strip_avx512, fr_row_strip_neon)
}

/// The strip-mined t-distribution kernel compiled for `b` (see
/// [`embed_strip_kernel`] for the contract).
pub fn tdist_strip_kernel(b: Backend) -> TDistRowKernel {
    select!(b => tdist_row_strip_scalar, tdist_row_strip_avx2, tdist_row_strip_avx512, tdist_row_strip_neon)
}

/// The strip-mined SpMM kernel compiled for `b` (see
/// [`embed_strip_kernel`] for the contract).
pub fn spmm_strip_kernel(b: Backend) -> SpmmRowKernel {
    select!(b => spmm_row_strip_scalar, spmm_row_strip_avx2, spmm_row_strip_avx512, spmm_row_strip_neon)
}

/// The gather-style short-row embedding batch kernel compiled for `b`
/// (hybrid execution's short class).
///
/// # Panics
/// Panics when `b` is not available on this CPU. The returned kernel
/// panics when `d` is not a positive multiple of 8 or the batch stages
/// more than [`H_CHUNK`] neighbors in total.
pub fn embed_batch_kernel(b: Backend) -> EmbedBatchKernel {
    select!(b => embed_batch_scalar, embed_batch_avx2, embed_batch_avx512, embed_batch_neon)
}

/// The short-row FR batch kernel compiled for `b` (see
/// [`embed_batch_kernel`] for the contract).
pub fn fr_batch_kernel(b: Backend) -> FrBatchKernel {
    select!(b => fr_batch_scalar, fr_batch_avx2, fr_batch_avx512, fr_batch_neon)
}

/// The short-row t-distribution batch kernel compiled for `b` (see
/// [`embed_batch_kernel`] for the contract).
pub fn tdist_batch_kernel(b: Backend) -> TDistBatchKernel {
    select!(b => tdist_batch_scalar, tdist_batch_avx2, tdist_batch_avx512, tdist_batch_neon)
}

/// The short-row SpMM batch kernel compiled for `b` (no message
/// buffer, so the batch size is unconstrained).
pub fn spmm_batch_kernel(b: Backend) -> SpmmBatchKernel {
    select!(b => spmm_batch_scalar, spmm_batch_avx2, spmm_batch_avx512, spmm_batch_neon)
}

/// The mega-row embedding message-fill kernel compiled for `b`
/// (phase A of the split-mega-row pass; each neighbor slice is an
/// independent fill).
pub fn embed_msg_kernel(b: Backend) -> EmbedMsgKernel {
    select!(b => embed_msg_scalar, embed_msg_avx2, embed_msg_avx512, embed_msg_neon)
}

/// The mega-row FR message-fill kernel compiled for `b`.
pub fn fr_msg_kernel(b: Backend) -> FrMsgKernel {
    select!(b => fr_msg_scalar, fr_msg_avx2, fr_msg_avx512, fr_msg_neon)
}

/// The mega-row t-distribution message-fill kernel compiled for `b`.
pub fn tdist_msg_kernel(b: Backend) -> TDistMsgKernel {
    select!(b => tdist_msg_scalar, tdist_msg_avx2, tdist_msg_avx512, tdist_msg_neon)
}

/// The mega-row column-span sweep kernel compiled for `b` (phase B of
/// the split-mega-row pass; pattern-independent — the messages were
/// already computed).
pub fn span_sweep_kernel(b: Backend) -> SpanSweepKernel {
    select!(b => span_sweep_scalar, span_sweep_avx2, span_sweep_avx512, span_sweep_neon)
}

/// The dynamic-dimension embedding kernel compiled for `b` (any `d`).
///
/// # Panics
/// Panics when `b` is not available on this CPU.
pub fn embed_dyn_kernel(b: Backend) -> EmbedRowKernel {
    select!(b => embed_row_dyn_scalar, embed_row_dyn_avx2, embed_row_dyn_avx512, embed_row_dyn_neon)
}

/// The dynamic-dimension FR kernel compiled for `b` (any `d`).
pub fn fr_dyn_kernel(b: Backend) -> FrRowKernel {
    select!(b => fr_row_dyn_scalar, fr_row_dyn_avx2, fr_row_dyn_avx512, fr_row_dyn_neon)
}

/// The dynamic-dimension t-distribution kernel compiled for `b`
/// (any `d`).
pub fn tdist_dyn_kernel(b: Backend) -> TDistRowKernel {
    select!(b => tdist_row_dyn_scalar, tdist_row_dyn_avx2, tdist_row_dyn_avx512, tdist_row_dyn_neon)
}

/// The dynamic-dimension SpMM kernel compiled for `b` (any `d`).
pub fn spmm_dyn_kernel(b: Backend) -> SpmmRowKernel {
    select!(b => spmm_row_dyn_scalar, spmm_row_dyn_avx2, spmm_row_dyn_avx512, spmm_row_dyn_neon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::active_backend;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use fusedmm_sparse::csr::Csr;

    fn chain(n: usize, deg: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=deg {
                c.push(u, (u + k * 3) % n, 0.25 + k as f32 * 0.5);
            }
        }
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 31 + c * 7) as f32 * 0.01 + seed).sin() * 0.3)
    }

    #[test]
    fn strip_matches_dyn_on_every_available_backend() {
        // Degrees beyond H_CHUNK exercise the chunked message buffer.
        let n = 80;
        let a = chain(n, 70.min(n - 1));
        for d in [8usize, 24, 48, 96, 192, 384] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            let (cols, vals) = a.row(3);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                // Embedding
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                embed_dyn_kernel(b)(x.row(3), cols, vals, &y, &mut z_dyn, &SigmoidKind::Exact);
                embed_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip, &SigmoidKind::Exact);
                for k in 0..d {
                    assert!(
                        (z_dyn[k] - z_strip[k]).abs() < 1e-5,
                        "embed {b} d={d} k={k}: {} vs {}",
                        z_dyn[k],
                        z_strip[k]
                    );
                }
                // SpMM
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                spmm_dyn_kernel(b)(cols, vals, &y, &mut z_dyn);
                spmm_strip_kernel(b)(cols, vals, &y, &mut z_strip);
                for k in 0..d {
                    assert!((z_dyn[k] - z_strip[k]).abs() < 1e-5, "spmm {b} d={d} k={k}");
                }
                // t-distribution
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                tdist_dyn_kernel(b)(x.row(3), cols, vals, &y, &mut z_dyn);
                tdist_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip);
                for k in 0..d {
                    assert!((z_dyn[k] - z_strip[k]).abs() < 1e-5, "tdist {b} d={d} k={k}");
                }
                // FR (sqrt amplifies tiny sqdist differences; keep 1e-4)
                let mut z_dyn = vec![0f32; d];
                let mut z_strip = vec![0f32; d];
                fr_dyn_kernel(b)(x.row(3), cols, vals, &y, &mut z_dyn, 0.6);
                fr_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip, 0.6);
                for k in 0..d {
                    assert!((z_dyn[k] - z_strip[k]).abs() < 1e-4, "fr {b} d={d} k={k}");
                }
            }
        }
    }

    #[test]
    fn strip_minable_is_multiples_of_vlen() {
        assert!(strip_minable(8));
        assert!(strip_minable(48));
        assert!(strip_minable(96));
        assert!(strip_minable(384));
        assert!(!strip_minable(0));
        assert!(!strip_minable(4));
        assert!(!strip_minable(100));
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn strip_kernel_rejects_unaligned_dim() {
        let y = feats(4, 12, 0.1);
        let mut z = vec![0f32; 12];
        spmm_strip_kernel(Backend::Scalar)(&[1, 2], &[1.0, 2.0], &y, &mut z);
    }

    #[test]
    fn empty_row_is_identity_for_strip() {
        let y = feats(4, 16, 0.5);
        let mut z = vec![0.75f32; 16];
        spmm_strip_kernel(active_backend())(&[], &[], &y, &mut z);
        assert!(z.iter().all(|&v| v == 0.75));
    }

    #[test]
    fn gather_batch_bit_identical_to_strip_per_row() {
        // Short rows (degree 1..6); the batch kernel must reproduce the
        // per-row strip kernel bit for bit, since hybrid's short class
        // claims bit-identity to the uniform path.
        let n = 24;
        let a = chain(n, 5);
        for d in [48usize, 96] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let rows_in_batch = [2usize, 5, 9, 11];
                let mut band = vec![0f32; rows_in_batch.len() * d];
                let batch: Vec<GatheredRow<'_>> = rows_in_batch
                    .iter()
                    .enumerate()
                    .map(|(i, &u)| GatheredRow {
                        xu: x.row(u),
                        cols: a.row(u).0,
                        vals: a.row(u).1,
                        band_row: i,
                    })
                    .collect();
                embed_batch_kernel(b)(&batch, &y, &mut band, &SigmoidKind::Exact);
                for (i, &u) in rows_in_batch.iter().enumerate() {
                    let mut z_strip = vec![0f32; d];
                    let (cols, vals) = a.row(u);
                    embed_strip_kernel(b)(
                        x.row(u),
                        cols,
                        vals,
                        &y,
                        &mut z_strip,
                        &SigmoidKind::Exact,
                    );
                    assert_eq!(&band[i * d..(i + 1) * d], &z_strip[..], "embed {b} d={d} row {u}");
                }
                // SpMM batch too.
                let mut band = vec![0f32; rows_in_batch.len() * d];
                spmm_batch_kernel(b)(&batch, &y, &mut band);
                for (i, &u) in rows_in_batch.iter().enumerate() {
                    let mut z_strip = vec![0f32; d];
                    let (cols, vals) = a.row(u);
                    spmm_strip_kernel(b)(cols, vals, &y, &mut z_strip);
                    assert_eq!(&band[i * d..(i + 1) * d], &z_strip[..], "spmm {b} d={d} row {u}");
                }
            }
        }
    }

    #[test]
    fn msg_fill_plus_span_sweep_bit_identical_to_strip() {
        // A heavy row (degree > H_CHUNK exercises the strip kernel's
        // chunked fold) computed as mega phases A + B must match the
        // strip kernel bit for bit, for any span split.
        let n = 90;
        let a = chain(n, 80);
        for d in [48usize, 96] {
            let x = feats(n, d, 0.3);
            let y = feats(n, d, 0.7);
            let (cols, vals) = a.row(7);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut z_strip = vec![0f32; d];
                embed_strip_kernel(b)(x.row(7), cols, vals, &y, &mut z_strip, &SigmoidKind::Exact);
                // Phase A: messages filled in two independent slices.
                let mut h = vec![0f32; cols.len()];
                let split = cols.len() / 3;
                let (h0, h1) = h.split_at_mut(split);
                embed_msg_kernel(b)(x.row(7), &cols[..split], &y, &SigmoidKind::Exact, h0);
                embed_msg_kernel(b)(x.row(7), &cols[split..], &y, &SigmoidKind::Exact, h1);
                // Phase B: every VLEN-aligned span split must agree.
                for spans in [vec![d], vec![d / 2, d / 2], vec![VLEN; d / VLEN]] {
                    let mut z = vec![0f32; d];
                    let mut off = 0;
                    for w in spans {
                        span_sweep_kernel(b)(cols, &h, &y, &mut z[off..off + w], off);
                        off += w;
                    }
                    assert_eq!(z, z_strip, "embed mega {b} d={d}");
                }
                // SpMM: the values are the messages.
                let mut z_strip = vec![0f32; d];
                spmm_strip_kernel(b)(cols, vals, &y, &mut z_strip);
                let mut z = vec![0f32; d];
                let (lo, hi) = z.split_at_mut(d / 2);
                span_sweep_kernel(b)(cols, vals, &y, lo, 0);
                span_sweep_kernel(b)(cols, vals, &y, hi, d / 2);
                assert_eq!(z, z_strip, "spmm mega {b} d={d}");
            }
        }
    }
}
